"""Benchmark: metro-scale fleet runs through the planner.

Not a paper figure — the fleet driver exercises the §6-scale claim
that Concordia's per-server behaviour composes to a metro deployment:
a 50-cell fleet sharded across reference servers keeps the deadline
tail flat, reclaims half the provisioned CPU for best-effort work, and
the planner's worker pool turns shard count into near-linear wall-
clock speedup.  Slot budgets scale with ``REPRO_SCALE``; worker count
follows ``REPRO_JOBS`` (default: one worker per shard, capped at 4).
"""

import os

from repro.experiments.common import scaled_slots
from repro.fleet import FleetScenario, Planner

CELLS = 50
SHARDS = 4


def _jobs() -> int:
    raw = os.environ.get("REPRO_JOBS")
    return max(1, int(raw)) if raw else min(SHARDS, 4)


def run_fleet():
    fleet = FleetScenario(cells=CELLS, shards=SHARDS,
                          num_slots=scaled_slots(200), seed=7)
    report = Planner(fleet, jobs=_jobs()).run()
    serial = Planner(FleetScenario(cells=CELLS, shards=1,
                                   num_slots=scaled_slots(200), seed=7),
                     jobs=1).run()
    return report, serial


def test_fleet_scale(benchmark, write_report):
    report, serial = benchmark.pedantic(run_fleet, rounds=1,
                                        iterations=1)
    write_report("fleet_scale", report.render())

    assert report.ok, report.failures
    # Determinism contract at metro scale: sampling is shard-invariant.
    assert report.cell_digests == serial.cell_digests
    assert len(report.cell_digests) == CELLS

    # The fleet keeps the RAN deadline tail: sub-deadline p99.9 and a
    # (near-)zero miss fraction at 50% load.
    assert report.latency_us["p999"] < report.latency_us["deadline"]
    assert report.miss_fraction < 1e-3

    # Sharing still reclaims a large share of the provisioned cores
    # fleet-wide (paper: ~50-70% at mid load), and the federated
    # demand rollup stays within the provisioned envelope.
    assert report.reclaimed_fraction > 0.30
    assert 0 < report.demand_cores <= report.provisioned_cores + SHARDS

    # Every server carries a balanced slice: utilizations within a
    # tight band around the fleet mean.
    utils = [row["utilization"] for row in report.servers]
    assert max(utils) - min(utils) < 0.15, utils

    # The warm pool overlaps shard execution (only when workers > 1).
    if report.workers > 1:
        assert report.speedup > 1.3, report.speedup

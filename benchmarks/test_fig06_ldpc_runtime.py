"""Benchmark: Figure 6 — LDPC decode runtime vs codeblocks and cores."""

from repro.experiments import fig06_ldpc


def test_fig06_ldpc_runtime(benchmark, write_report):
    results = benchmark.pedantic(fig06_ldpc.run, rounds=1, iterations=1)
    write_report("fig06_ldpc_runtime", fig06_ldpc.main(500))

    runtimes = results["runtimes"]
    # Fig. 6a anchors: 3 CBs ~100 us and 15 CBs ~450-500 us on one core.
    assert 60 <= runtimes[(1, 3)].q50 <= 140
    assert 300 <= runtimes[(1, 15)].q50 <= 550
    # Runtime is linear in codeblocks ...
    ratio = runtimes[(1, 15)].q50 / runtimes[(1, 3)].q50
    assert 3.5 <= ratio <= 6.5
    # ... and spreading across cores costs up to ~25% extra.
    for cbs in results["codeblock_counts"]:
        penalty = runtimes[(6, cbs)].q50 / runtimes[(1, cbs)].q50
        assert 1.10 <= penalty <= 1.35, (cbs, penalty)
        assert runtimes[(4, cbs)].q50 <= runtimes[(6, cbs)].q50
    # Fig. 6b: stalls grow with both codeblocks and core spread.
    stalls = results["stalls"]
    assert stalls[(6, 15)] > stalls[(1, 15)] > stalls[(1, 3)]

"""Benchmark: Figure 10 — OS scheduling-latency histograms."""

from repro.experiments import fig10_sched_latency


def test_fig10_scheduling_latency(benchmark, write_report):
    results = benchmark.pedantic(fig10_sched_latency.run,
                                 rounds=1, iterations=1)
    write_report("fig10_sched_latency", fig10_sched_latency.main(500))

    # FlexRAN produces far more scheduling events than Concordia
    # (paper: ~230% more, i.e. ~3.3x).
    assert results["event_ratio"] > 2.0

    for policy in ("flexran", "concordia"):
        isolated = results[(policy, "none")]["histogram"]
        collocated = results[(policy, "redis")]["histogram"]
        # The bulk of wakeups is in the few-microsecond buckets.
        fast_iso = isolated["0-1"] + isolated["1-3"] + isolated["3-7"]
        assert fast_iso > 0.6 * sum(isolated.values())
        # Collocation produces a heavier tail (>=63us buckets).
        def tail(hist):
            total = max(1, sum(hist.values()))
            return (hist["63-127"] + hist["127-255"] + hist[">255"]) / total
        assert tail(collocated) >= tail(isolated)
    # Isolated wakeups never hit the kernel-stall range (>255us).
    assert results[("flexran", "none")]["histogram"][">255"] == 0
    # Collocated FlexRAN does (§2.3's non-preemptible sections).
    assert results[("flexran", "redis")]["histogram"][">255"] >= 1

"""Benchmark: Figure 9 — cache interference, Concordia vs FlexRAN."""

from repro.experiments import fig09_cache


def test_fig09_cache_efficiency(benchmark, write_report):
    results = benchmark.pedantic(fig09_cache.run, rounds=1, iterations=1)
    lines = [
        f"{policy:10s} stall+={entry['stall_increase'] * 100:5.1f}% "
        f"l1+={entry['l1_miss_increase'] * 100:5.1f}% "
        f"llc+={entry['llc_load_increase'] * 100:5.1f}% "
        f"events={entry['scheduling_events']}"
        for policy, entry in results.items()
    ]
    write_report("fig09_cache", "\n".join(lines))

    concordia = results["concordia"]
    flexran = results["flexran"]
    # Paper: FlexRAN ~25% extra stall cycles/instruction, Concordia <2%.
    assert concordia["stall_increase"] < 0.04
    assert 0.10 <= flexran["stall_increase"] <= 0.40
    assert flexran["stall_increase"] > 5 * concordia["stall_increase"]
    # Same ordering holds for the L1/LLC proxies.
    assert flexran["l1_miss_increase"] > concordia["l1_miss_increase"]
    assert flexran["llc_load_increase"] > concordia["llc_load_increase"]

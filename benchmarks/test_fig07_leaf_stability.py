"""Benchmark: Figure 7 — leaf-node stability under interference."""

from repro.experiments import fig07_leaves


def test_fig07_leaf_stability(benchmark, write_report):
    results = benchmark.pedantic(fig07_leaves.run, rounds=1, iterations=1)
    write_report("fig07_leaf_stability", fig07_leaves.main(400))

    # Fig. 7a: the tree splits the feature space into leaves whose
    # within-leaf variance is small vs the overall runtime variance.
    assert results["num_leaves"] >= 4
    assert results["mean_within_leaf_var_ratio"] < 0.25

    # §4.1: the collocated runtime distribution is statistically
    # different from the isolated one (KS p << 0.001 in the paper).
    assert results["ks_p_value"] < 0.05

    # Fig. 7b: even the most distorted leaves keep their runtimes in
    # the same region (heavier tail, not a different regime) — so the
    # offline tree structure remains valid online.
    for leaf in results["per_leaf"][:5]:
        assert 0.8 <= leaf["col_mean"] / leaf["iso_mean"] <= 1.6, leaf
        assert leaf["col_p99_over_iso_p99"] >= 0.95, leaf

"""Benchmark: Figure 8b-d — collocated workload throughput."""

from repro.experiments import fig08_reclaim
from repro.workloads.catalog import WORKLOAD_SPECS


def test_fig08bcd_workload_throughput(benchmark, write_report):
    results = benchmark.pedantic(
        fig08_reclaim.run_workloads, rounds=1, iterations=1,
        kwargs={"loads": (0.05, 0.5, 1.0)},
    )
    lines = []
    for workload, data in results["workloads"].items():
        for label, series in data["series"].items():
            for point in series:
                total = sum(point["rates"].values())
                lines.append(
                    f"{workload:7s} {label:7s} "
                    f"load={point['load'] * 100:5.1f}% "
                    f"rate={total:12,.0f} ops/s "
                    f"reclaimed={point['reclaimed'] * 100:5.1f}%"
                )
    write_report("fig08bcd_workloads", "\n".join(lines))

    for workload, data in results["workloads"].items():
        for label, series in data["series"].items():
            rates = [sum(p["rates"].values()) for p in series]
            # Throughput shrinks as the vRAN load grows (fewer
            # reclaimed cores to run on).
            assert rates[0] > rates[-1], (workload, label, rates)
            assert all(r >= 0 for r in rates)

    # §6.1 calibration: at low cell load the collocated throughput is a
    # substantial fraction (but < 100%) of the dedicated-cores ideal.
    redis = results["workloads"]["redis"]["series"]["100MHz"][0]
    cores = 12
    # The GET and SET containers split the cores in the no-vRAN ideal
    # too, so the reference is the mean of their per-core rates.
    ideal = (WORKLOAD_SPECS["redis-get"].ops_per_core_second
             + WORKLOAD_SPECS["redis-set"].ops_per_core_second) / 2 * cores
    achieved = sum(redis["rates"].values())
    assert 0.4 * ideal < achieved < ideal

"""Benchmark: Figure 15 — scheduler/predictor overhead and the deadline
parameter tradeoff."""

import numpy as np

from repro.experiments import fig15_overhead


def test_fig15a_overhead_scaling(benchmark, write_report):
    results = benchmark.pedantic(fig15_overhead.run_overhead,
                                 rounds=1, iterations=1)
    lines = [
        f"{cells} cells: scheduler={entry['scheduler_us']:6.1f}us/decision "
        f"predictor={entry['predictor_us']:6.1f}us/TTI"
        for cells, entry in sorted(results.items())
    ]
    write_report("fig15a_overhead", "\n".join(lines))

    cells = sorted(results)
    predictor = [results[c]["predictor_us"] for c in cells]
    scheduler = [results[c]["scheduler_us"] for c in cells]
    # The paper's claim is the *shape*: overhead grows roughly linearly
    # with the number of cells (more tasks to predict/schedule).
    assert predictor[-1] > predictor[0]
    correlation = np.corrcoef(cells, predictor)[0, 1]
    assert correlation > 0.9
    # The per-decision scheduler cost stays small and grows far slower
    # than the per-TTI prediction cost.
    assert max(scheduler) < max(predictor)


def test_fig15b_deadline_tradeoff(benchmark, write_report):
    results = benchmark.pedantic(fig15_overhead.run_deadline_sweep,
                                 rounds=1, iterations=1)
    lines = [
        f"deadline={deadline:6.0f}us p99.999={entry['p99999_us']:7.0f} "
        f"reclaimed={entry['reclaimed'] * 100:5.1f}% "
        f"miss={entry['miss_fraction']:.2e}"
        for deadline, entry in sorted(results.items())
    ]
    write_report("fig15b_deadline_sweep", "\n".join(lines))

    deadlines = sorted(results)
    tails = [results[d]["p99999_us"] for d in deadlines]
    reclaims = [results[d]["reclaimed"] for d in deadlines]
    # Fig. 15b: shorter deadline -> lower tail latency, fewer reclaimed
    # cores.  Check the trend via the endpoints (noise-tolerant).
    assert tails[0] < tails[-1]
    assert reclaims[0] < reclaims[-1] + 0.02
    for deadline in deadlines:
        assert results[deadline]["miss_fraction"] < 1e-3

"""Benchmark: long-run 99.999% reliability validation (§6 methodology).

The paper backs its headline with 8-hour Mix-workload runs; this is the
scaled equivalent.  At the default REPRO_SCALE the run covers ~5.6x10^5
slot DAGs; raise REPRO_SCALE for paper-grade event counts.
"""

from repro.experiments import longrun


def test_longrun_reliability(benchmark, write_report):
    results = benchmark.pedantic(longrun.run, rounds=1, iterations=1)
    lines = [
        f"total slot DAGs: {results['total_slots']:,}  "
        f"misses: {results['total_misses']} "
        f"({results['miss_fraction']:.2e})",
        f"worst latency: {results['worst_latency_us']:.0f} us "
        f"(deadline {results['deadline_us']:.0f})",
        f"halves: {results['first_half_misses']} / "
        f"{results['second_half_misses']} misses",
    ] + [
        f"  window {w['window']}: {w['slots']:,} slots, "
        f"{w['misses']} misses, p99.999={w['p99999_us']:.0f} us"
        for w in results["windows"]
    ]
    write_report("longrun_reliability", "\n".join(lines))

    # The reliability requirement, at this run's resolution.
    assert results["miss_fraction"] <= 1e-4
    # Stationarity: misses don't concentrate in either half (no drift
    # from the online predictor's adaptation).
    first, second = (results["first_half_misses"],
                     results["second_half_misses"])
    assert abs(first - second) <= max(3, 3 * max(first, second, 1))
    # The worst observed latency stays within small multiples of the
    # deadline even when a miss occurs.
    assert results["worst_latency_us"] < 5 * results["deadline_us"]

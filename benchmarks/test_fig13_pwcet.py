"""Benchmark: Figure 13 / §6.3 — alternative schedulers and predictors."""

from repro.experiments import fig13_pwcet


def test_fig13_pwcet_comparison(benchmark, write_report):
    results = benchmark.pedantic(fig13_pwcet.run_pwcet,
                                 rounds=1, iterations=1)
    lines = []
    for name, series in results["series"].items():
        for point in series:
            lines.append(
                f"{name:10s} load={point['load'] * 100:5.1f}% "
                f"reclaimed={point['reclaimed'] * 100:5.1f}% "
                f"p99.999={point['p99999_us']:7.0f} "
                f"miss={point['miss_fraction']:.2e}"
            )
    write_report("fig13_pwcet", "\n".join(lines))

    # At low/mid loads the parameterized quantile tree reclaims more
    # CPU than the single pessimistic pWCET bound (paper: up to ~20%).
    gains = []
    for concordia, pwcet in zip(results["series"]["concordia"],
                                results["series"]["pwcet"]):
        gains.append(concordia["reclaimed"] - pwcet["reclaimed"])
        # Both remain reliable; pWCET's latency advantage is marginal.
        assert pwcet["miss_fraction"] < 1e-3
        assert concordia["miss_fraction"] < 1e-3
    assert max(gains) > 0.03
    assert sum(gains) / len(gains) > 0.0


def test_sec63_wcetless_schedulers(benchmark, write_report):
    results = benchmark.pedantic(fig13_pwcet.run_wcetless,
                                 rounds=1, iterations=1)
    lines = [
        f"{name:16s} reclaimed={entry['reclaimed'] * 100:5.1f}% "
        f"p99.99={entry['p9999_us']:7.0f} miss={entry['miss_fraction']:.2e}"
        for name, entry in results.items()
    ]
    write_report("sec63_wcetless", "\n".join(lines))

    concordia = results["concordia"]
    # Concordia both shares and holds the deadline ...
    assert concordia["miss_fraction"] <= 1e-4
    assert concordia["reclaimed"] > 0.30
    # ... while no Shenango queue-delay threshold does: every setting
    # blows the 99.99% tail under collocation (§6.3: "no single value
    # always met deadlines with >= 99.99% reliability").
    for name, entry in results.items():
        if not name.startswith("shenango"):
            continue
        assert entry["p9999_us"] > entry["deadline_us"] or \
            entry["miss_fraction"] > 1e-4, (name, entry)
    # The utilization scheduler cannot track slot-scale burstiness: it
    # loses on at least one axis (here it over-reserves and forfeits
    # the sharing; the paper's instance under-reserved and missed
    # deadlines — either way, past utilization is the wrong signal).
    util = results["utilization-60%"]
    assert util["reclaimed"] < 0.5 * concordia["reclaimed"] or \
        util["miss_fraction"] > concordia["miss_fraction"] + 1e-4

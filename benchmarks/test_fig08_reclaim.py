"""Benchmark: Figure 8a — CPU reclaimed by Concordia vs the ideal bound."""

from repro.experiments import fig08_reclaim


def test_fig08a_reclaimed_cpu(benchmark, write_report):
    results = benchmark.pedantic(fig08_reclaim.run_reclaim,
                                 rounds=1, iterations=1)
    lines = []
    for label, series in results["configs"].items():
        for point in series:
            lines.append(
                f"{label:7s} load={point['load'] * 100:5.1f}% "
                f"reclaimed={point['reclaimed'] * 100:5.1f}% "
                f"upper bound={point['upper_bound'] * 100:5.1f}% "
                f"miss={point['miss_fraction']:.2e}"
            )
    write_report("fig08a_reclaim", "\n".join(lines))

    for label, series in results["configs"].items():
        # >70% of CPU reclaimed at low cell load (the paper's headline).
        assert series[0]["reclaimed"] > 0.70, (label, series[0])
        # Reclaim shrinks monotonically-ish with load and never exceeds
        # the every-idle-cycle upper bound.
        for point in series:
            assert point["reclaimed"] <= point["upper_bound"] + 0.02
        assert series[-1]["reclaimed"] < series[0]["reclaimed"] - 0.15
        # The RAN deadline reliability is maintained while sharing.
        for point in series:
            assert point["miss_fraction"] < 5e-3, (label, point)
    # At max load the 20MHz pool reclaims (almost) nothing; the 100MHz
    # pool still reclaims a substantial fraction (paper: 0% vs 38%).
    assert results["configs"]["20MHz"][-1]["reclaimed"] < 0.25
    assert results["configs"]["100MHz"][-1]["reclaimed"] > 0.30

"""Benchmark: Figure 11 — tail slot latency, Concordia vs FlexRAN.

The headline reliability result: with any collocated workload, vanilla
FlexRAN can no longer meet the deadline at the 99.99th percentile,
while Concordia maintains 99.999% reliability in every scenario.
"""

from repro.experiments import fig11_tail_latency
from repro.experiments.common import scaled_slots


def _run():
    return fig11_tail_latency.run(
        num_slots=None,
        workloads=("none", "redis", "tpcc"),
    )


def test_fig11_tail_latency(benchmark, write_report):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    lines = []
    for (config, policy, workload), entry in sorted(results.items()):
        lines.append(
            f"{config:7s} {policy:10s} {workload:6s} "
            f"mean={entry['mean_us']:6.0f} p99.99={entry['p9999_us']:7.0f} "
            f"p99.999={entry['p99999_us']:7.0f} "
            f"deadline={entry['deadline_us']:.0f} "
            f"miss={entry['miss_fraction']:.2e}"
        )
    write_report("fig11_tail_latency", "\n".join(lines))

    slots_enough = scaled_slots(8000) >= 8000
    for config in ("20MHz", "100MHz"):
        # Isolated: both schedulers meet the deadline.
        for policy in ("concordia", "flexran"):
            entry = results[(config, policy, "none")]
            assert entry["miss_fraction"] < 1e-4, (config, policy)
        for workload in ("redis", "tpcc"):
            concordia = results[(config, "concordia", workload)]
            flexran = results[(config, "flexran", workload)]
            # Concordia is unaffected by collocation ...
            assert concordia["miss_fraction"] <= 1e-4, (config, workload)
            # ... while FlexRAN's tail inflates well past Concordia's.
            assert flexran["p99999_us"] > concordia["p99999_us"], \
                (config, workload)
            if slots_enough:
                # With enough slots the 99.99% violation materializes.
                assert flexran["miss_fraction"] > \
                    5 * max(concordia["miss_fraction"], 1e-6) or \
                    flexran["p9999_us"] > flexran["deadline_us"], \
                    (config, workload, flexran)

"""Ablation benchmarks for Concordia's design choices (DESIGN.md §5).

Not figures from the paper, but quantifications of the design decisions
the paper motivates qualitatively:

* the 20 µs tick — coarser scheduling reacts too slowly to wakeup
  stalls and mispredictions;
* the release-hold window — releasing cores the instant demand dips
  thrashes caches like vanilla FlexRAN;
* the ML predictor itself — scheduling on a naive inflated-mean
  estimate instead of the quantile tree.
"""

import time

from repro.core.leaf_evt import LeafEvtQuantileTree
from repro.core.training import train_predictor
from repro.experiments.common import run_simulation, scaled_slots
from repro.ran.config import pool_20mhz_7cells


def _run(policy_kwargs, workload="redis", num_slots=None, seed=7,
         policy="concordia", **sim_kwargs):
    config = pool_20mhz_7cells()
    slots = num_slots if num_slots is not None else scaled_slots(5000)
    return run_simulation(config, policy, workload=workload,
                          load_fraction=0.5, num_slots=slots, seed=seed,
                          policy_kwargs=policy_kwargs, **sim_kwargs)


def test_ablation_tick_interval(benchmark, write_report):
    def sweep():
        return {tick: _run({"tick_interval_us": tick})
                for tick in (20.0, 100.0, 500.0)}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        f"tick={tick:5.0f}us p99.99={r.latency.p9999_us:7.0f} "
        f"miss={r.latency.miss_fraction:.2e} "
        f"reclaimed={r.reclaimed_fraction * 100:5.1f}%"
        for tick, r in results.items()
    ]
    write_report("ablation_tick", "\n".join(lines))
    # The 20us tick is at least as reliable as coarser ones.
    assert results[20.0].latency.p99999_us <= \
        results[500.0].latency.p99999_us * 1.05
    assert results[20.0].latency.miss_fraction <= \
        results[500.0].latency.miss_fraction + 1e-5


def test_ablation_release_hold(benchmark, write_report):
    def sweep():
        return {hold: _run({"release_hold_us": hold})
                for hold in (0.0, 300.0, 1500.0)}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        f"hold={hold:6.0f}us events={r.scheduling_events:7d} "
        f"stall+={r.mean_stall_increase * 100:5.2f}% "
        f"reclaimed={r.reclaimed_fraction * 100:5.1f}% "
        f"miss={r.latency.miss_fraction:.2e}"
        for hold, r in results.items()
    ]
    write_report("ablation_release_hold", "\n".join(lines))
    # No hold -> more scheduling events and markedly more cache churn.
    assert results[0.0].scheduling_events > \
        1.2 * results[300.0].scheduling_events
    assert results[0.0].mean_stall_increase > \
        1.5 * results[300.0].mean_stall_increase
    # A very long hold wastes reclaimable CPU.
    assert results[1500.0].reclaimed_fraction < \
        results[0.0].reclaimed_fraction


def test_ablation_predictor(benchmark, write_report):
    def sweep():
        return {
            "quantile-tree": _run({}),
            "no-ml-fallback": _run({}, policy="concordia-noml"),
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        f"{name:15s} p99.99={r.latency.p9999_us:7.0f} "
        f"miss={r.latency.miss_fraction:.2e} "
        f"reclaimed={r.reclaimed_fraction * 100:5.1f}%"
        for name, r in results.items()
    ]
    write_report("ablation_predictor", "\n".join(lines))
    ml = results["quantile-tree"]
    naive = results["no-ml-fallback"]
    # Both meet deadlines at this load, but the trained predictor's
    # tail-aware estimates come at little or no reclaim cost; the naive
    # margin either under-reserves (more misses) or over-reserves.
    assert ml.latency.miss_fraction <= naive.latency.miss_fraction + 1e-4


def test_ablation_leaf_predictor(benchmark, write_report):
    """§4.2's rejected alternative: per-leaf EVT instead of leaf max —
    comparable reliability, strictly more online compute."""

    def sweep():
        config = pool_20mhz_7cells()
        slots = scaled_slots(600, minimum=300)
        out = {}
        for name, factory in (("leaf-max", None),
                              ("leaf-evt", LeafEvtQuantileTree)):
            start = time.perf_counter()
            predictor = train_predictor(config, num_slots=slots, seed=42,
                                        model_factory=factory)
            result = run_simulation(
                config, "concordia", workload="redis", load_fraction=0.5,
                num_slots=scaled_slots(3000), seed=7,
                policy_kwargs={"predictor": predictor},
            )
            out[name] = (result, time.perf_counter() - start)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        f"{name:10s} miss={r.latency.miss_fraction:.2e} "
        f"p99.99={r.latency.p9999_us:7.0f} "
        f"reclaimed={r.reclaimed_fraction * 100:5.1f}% wall={wall:5.1f}s"
        for name, (r, wall) in results.items()
    ]
    write_report("ablation_leaf_predictor", "\n".join(lines))
    max_rule, __ = results["leaf-max"]
    evt_rule, __ = results["leaf-evt"]
    # Similar reliability (the paper's finding) ...
    assert max_rule.latency.miss_fraction < 1e-3
    assert evt_rule.latency.miss_fraction < 1e-3


def test_ablation_static_partition(benchmark, write_report):
    """The manual alternative Concordia replaces: a fixed k-core
    partition either misses deadlines (small k) or wastes CPU (big k);
    Concordia gets both ends at once."""

    def sweep():
        out = {}
        for cores in (3, 5, 8):
            out[f"static-{cores}"] = _run(
                {"reserved_cores": cores}, policy="static",
                num_slots=scaled_slots(3000))
        out["concordia"] = _run({}, num_slots=scaled_slots(3000))
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        f"{name:10s} miss={r.latency.miss_fraction:.2e} "
        f"p99.99={r.latency.p9999_us:9.0f} "
        f"reclaimed={r.reclaimed_fraction * 100:5.1f}%"
        for name, r in results.items()
    ]
    write_report("ablation_static_partition", "\n".join(lines))
    concordia = results["concordia"]
    # A small partition collapses under the 50% load ...
    assert results["static-3"].latency.miss_fraction > 0.01
    # ... the full partition is reliable but reclaims nothing ...
    assert results["static-8"].latency.miss_fraction < 1e-3
    assert results["static-8"].reclaimed_fraction < 0.01
    # ... Concordia is reliable AND reclaims.
    assert concordia.latency.miss_fraction < 1e-3
    assert concordia.reclaimed_fraction > 0.3


def test_ablation_harq_feedback(benchmark, write_report):
    """HARQ retransmissions add correlated load; Concordia absorbs it."""

    def sweep():
        return {
            "no-harq": _run({}, num_slots=scaled_slots(3000)),
            "harq": _run({}, num_slots=scaled_slots(3000),
                         harq=True),
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = []
    for name, r in results.items():
        extra = ""
        if r.harq:
            extra = (f" bler={r.harq['block_error_rate']:.3f} "
                     f"retx={r.harq['retransmissions']}")
        lines.append(
            f"{name:8s} miss={r.latency.miss_fraction:.2e} "
            f"util={r.vran_utilization * 100:5.1f}%"
            f" reclaimed={r.reclaimed_fraction * 100:5.1f}%{extra}")
    write_report("ablation_harq", "\n".join(lines))
    harq = results["harq"]
    assert harq.harq is not None
    assert 0.01 <= harq.harq["block_error_rate"] <= 0.2
    assert harq.harq["residual_loss_rate"] < 0.01
    # The retransmission load costs some reclaim but not reliability.
    assert harq.latency.miss_fraction < 1e-3
    assert harq.vran_utilization >= \
        results["no-harq"].vran_utilization - 0.01

"""Shared fixtures for the per-figure benchmark harness.

Each benchmark reproduces one of the paper's tables/figures via the
drivers in :mod:`repro.experiments`, asserts the qualitative shape the
paper reports, and writes the printable report to ``results/``.

Simulated-slot budgets scale with the ``REPRO_SCALE`` environment
variable (e.g. ``REPRO_SCALE=10 pytest benchmarks/`` for publication-
grade tail percentiles; the defaults keep the whole suite in tens of
minutes).
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def write_report(results_dir):
    def _write(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _write

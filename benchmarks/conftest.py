"""Shared fixtures for the per-figure benchmark harness.

Each benchmark reproduces one of the paper's tables/figures via the
drivers in :mod:`repro.experiments`, asserts the qualitative shape the
paper reports, and writes the printable report to ``results/``.

Simulated-slot budgets scale with the ``REPRO_SCALE`` environment
variable (e.g. ``REPRO_SCALE=10 pytest benchmarks/`` for publication-
grade tail percentiles; the defaults keep the whole suite in tens of
minutes).

Execution opt-ins (see :mod:`repro.exec`):

* ``REPRO_JOBS=N`` — the spec-batch drivers (Fig. 8, 11, 14 and any
  future grid) fan their simulations out over N worker processes;
  results are byte-identical to a serial run.
* ``REPRO_CACHE=1`` — simulations route through the persistent result
  cache under ``results/cache`` (``REPRO_CACHE_DIR`` overrides), so a
  re-run of the suite only executes what calibration changes
  invalidated.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session", autouse=True)
def exec_opt_ins():
    """Validate and surface REPRO_JOBS / REPRO_CACHE once per session."""
    from repro.exec.batch import default_jobs
    from repro.exec.cache import active_cache

    jobs = default_jobs()  # raises early on a malformed REPRO_JOBS
    cache = active_cache()
    if jobs > 1 or cache is not None:
        where = cache.root if cache is not None else "off"
        print(f"\n[repro.exec] batch drivers: jobs={jobs}, "
              f"result cache: {where}")
    return jobs


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def write_report(results_dir):
    def _write(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _write

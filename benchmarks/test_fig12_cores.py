"""Benchmark: Figure 12 — effect of pool size on Concordia's tail."""

from repro.experiments import fig12_cores


def test_fig12_pool_size(benchmark, write_report):
    results = benchmark.pedantic(fig12_cores.run, rounds=1, iterations=1)
    lines = [
        f"{label:7s} {cores} cores: p99.99={entry['p9999_us']:7.0f} "
        f"p99.999={entry['p99999_us']:7.0f} "
        f"deadline={entry['deadline_us']:.0f} "
        f"miss={entry['miss_fraction']:.2e}"
        for (label, cores), entry in sorted(results.items())
    ]
    write_report("fig12_cores", "\n".join(lines))

    for label in ("20MHz", "100MHz"):
        eight = results[(label, 8)]
        nine = results[(label, 9)]
        # Adding a core never costs reliability (the paper's point:
        # spare capacity absorbs slow wakeups) ...
        assert nine["miss_fraction"] <= eight["miss_fraction"] + 1e-5
        # ... and with 9 cores both configs are highly reliable with a
        # comfortable tail margin.  (Our simulated 8-core pool already
        # meets 99.999% where the paper's real 100MHz testbed needed 9;
        # see EXPERIMENTS.md.)
        assert nine["miss_fraction"] < 1e-3
        assert nine["p99999_us"] <= nine["deadline_us"]
        assert nine["p99999_us"] <= 2.0 * eight["p99999_us"]

"""Benchmark: Figure 4 — motivation (idle CPU + collocation violations)."""

from repro.experiments import fig04_motivation


def test_fig04a_utilization(benchmark, write_report):
    rows = benchmark.pedantic(fig04_motivation.run_utilization,
                              rounds=1, iterations=1)
    report = "\n".join(
        f"{r['scenario']:20s} cores={r['num_cores']:2d} "
        f"util={r['utilization'] * 100:5.1f}% "
        f"(paper {r['paper_utilization'] * 100:.0f}%)"
        for r in rows
    )
    write_report("fig04a_utilization", report)
    # The paper's point: even at peak traffic the minimum-size pool
    # leaves a large fraction of its cycles idle.  (Our UL-only cells
    # lack the TDD idle gaps and run hotter than the paper's ~42%;
    # the TDD scenarios land at 24-35% vs the paper's 33-38%.)
    for row in rows:
        assert row["utilization"] <= 0.65, row
        assert row["deadline_met"], row
    assert min(r["utilization"] for r in rows) <= 0.40


def test_fig04b_interference(benchmark, write_report):
    rows = benchmark.pedantic(fig04_motivation.run_interference,
                              rounds=1, iterations=1)
    report = "\n".join(
        f"{r['scenario']:20s} deadline={r['deadline_us']:.0f} "
        f"isolated={r['none']:.0f} nginx={r['nginx']:.0f} "
        f"redis={r['redis']:.0f}"
        for r in rows
    )
    write_report("fig04b_interference", report)
    for row in rows:
        # Isolated FlexRAN meets the deadline at 99.99%.
        assert row["none"] <= row["deadline_us"], row
        # Collocated workloads push the tail up ...
        assert row["redis"] > row["none"], row
    # ... and at least one scenario blows past the deadline entirely.
    assert any(max(r["nginx"], r["redis"]) > r["deadline_us"]
               for r in rows)

"""Benchmark: Figure 14 / appendix A.2 — prediction-model accuracy."""

import numpy as np

from repro.experiments import fig14_prediction
from repro.ran.tasks import TaskType


def _run():
    return fig14_prediction.run(
        scenarios=((1, "none"), (2, "none"), (1, "redis"), (2, "tpcc")),
    )


def test_fig14_model_accuracy(benchmark, write_report):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    lines = [
        f"{model:18s} {cells}cell {workload:6s} {task.value:18s} "
        f"miss={entry['miss_pct']:7.3f}% err={entry['avg_error_us']:6.0f}us "
        f"n={entry['samples']}"
        for (cells, workload, model, task), entry in sorted(
            results.items(), key=lambda kv: (kv[0][3].value, kv[0][2]))
    ]
    write_report("fig14_prediction", "\n".join(lines))

    def aggregate(model, metric, task=None):
        values = [entry[metric]
                  for (c, w, m, t), entry in results.items()
                  if m == model and (task is None or t is task)]
        return float(np.mean(values))

    # Every model is a usable WCET predictor (sub-2% per-task misses
    # at the paper's 0.99999 interval)...
    for model in ("linear_regression", "gradient_boosting",
                  "quantile_tree"):
        assert aggregate(model, "miss_pct") < 2.0, model
    # ... and the quantile tree's miss rate stays in the same regime as
    # the regression baselines (see EXPERIMENTS.md: with online z-sigma
    # adaptation our LR baseline is stronger than the paper's, so the
    # log-scale Fig. 14a gap does not reproduce; the max-of-N leaf rule
    # is bounded by its buffer size).
    assert aggregate("quantile_tree", "miss_pct") <=         min(aggregate("linear_regression", "miss_pct"),
            aggregate("gradient_boosting", "miss_pct")) + 1.0

    # Fig. 17c's exception: gradient boosting is the weak model on
    # channel estimation (allow a near-tie at bench resolution).
    assert aggregate("gradient_boosting", "miss_pct",
                     TaskType.CHANNEL_ESTIMATION) > \
        aggregate("quantile_tree", "miss_pct",
                  TaskType.CHANNEL_ESTIMATION) - 0.2

    # Fig. 14b: the tree has the smallest average WCET error, which is
    # what frees cores (paper: ~43us for decoding).
    qdt_err = aggregate("quantile_tree", "avg_error_us")
    assert qdt_err <= aggregate("gradient_boosting", "avg_error_us")
    assert qdt_err <= aggregate("linear_regression", "avg_error_us")
    decode_err = aggregate("quantile_tree", "avg_error_us",
                           TaskType.LDPC_DECODE)
    assert decode_err < 150.0


def test_fig14_full_dag(benchmark, write_report):
    results = benchmark.pedantic(fig14_prediction.run_full_dag,
                                 rounds=1, iterations=1)
    lines = [
        f"{cells}cell {workload:6s} slot-miss={entry['miss_pct']:.4f}% "
        f"p99.999={entry['p99999_us']:.0f}us"
        for (cells, workload), entry in results.items()
    ]
    write_report("fig14_full_dag", "\n".join(lines))
    # The Concordia scheduler's 20us compensation pushes the full-DAG
    # miss rate far below the per-task misprediction rates.
    for entry in results.values():
        assert entry["miss_pct"] < 0.05

"""Benchmark: sensitivity of the headline conclusions to model constants.

Not a paper figure — a robustness check on the reproduction itself: the
qualitative results (Concordia reliable, FlexRAN tail-broken under
collocation) must survive halving/doubling of the calibrated model
constants, otherwise they would be artifacts of tuning.
"""

from repro.experiments import sensitivity


def test_sensitivity_of_conclusions(benchmark, write_report):
    results = benchmark.pedantic(sensitivity.run, rounds=1, iterations=1)
    lines = [
        f"{knob:18s} x{factor:<4} concordia_miss={e['concordia_miss']:.1e} "
        f"flexran_miss={e['flexran_miss']:.1e} "
        f"tail_gap={e['tail_gap']:.1f}x reclaim={e['reclaimed'] * 100:.0f}%"
        for (knob, factor), e in sorted(results.items())
    ]
    write_report("sensitivity", "\n".join(lines))

    for (knob, factor), entry in results.items():
        # Concordia stays reliable under every perturbation ...
        assert entry["concordia_miss"] <= 1e-4, (knob, factor, entry)
        # ... and never loses the tail comparison to FlexRAN.
        assert entry["tail_gap"] >= 1.0, (knob, factor, entry)
        # Reclaim stays in a sane band (the scheduler keeps sharing).
        assert 0.2 <= entry["reclaimed"] <= 0.9, (knob, factor, entry)
    # The kernel-stall knob is what drives FlexRAN's failures: more
    # stalls => FlexRAN misses at least as much.
    assert results[("kernel_stall_prob", 2.0)]["flexran_miss"] >= \
        results[("kernel_stall_prob", 0.5)]["flexran_miss"]

"""Benchmark: Tables 3/4 — FPGA LDPC offload extension (§7)."""

from repro.experiments import tables


def test_table3_accelerated_cores(benchmark, write_report):
    results = benchmark.pedantic(tables.run_table3, rounds=1, iterations=1)
    lines = [
        f"{cells} cell(s): min cores={entry['min_cores']} "
        f"util={entry['utilization'] * 100:5.1f}%"
        for cells, entry in sorted(results.items())
    ]
    write_report("table3_accel", "\n".join(lines))

    # Paper Table 3: 1/3/4 cores for 1/2/3 cells, utilization <60%.
    assert results[1]["min_cores"] <= 2
    assert results[1]["min_cores"] <= results[2]["min_cores"] <= \
        results[3]["min_cores"]
    for entry in results.values():
        # The §7 observation: cores stay underutilized even with the
        # accelerator (TDD gaps + offload waits).
        assert entry["utilization"] < 0.65


def test_table4_offload_wait_times(benchmark, write_report):
    results = benchmark.pedantic(tables.run_table4, rounds=1, iterations=1)
    lines = [
        f"{direction:8s} non-offloaded={entry['avg_nonoffloaded_us']:5.0f}us "
        f"total={entry['avg_total_us']:5.0f}us "
        f"ratio={entry['avg_total_us'] / entry['avg_nonoffloaded_us']:.2f}x"
        for direction, entry in results.items()
    ]
    write_report("table4_offload", "\n".join(lines))

    ul = results["uplink"]
    dl = results["downlink"]
    ul_ratio = ul["avg_total_us"] / ul["avg_nonoffloaded_us"]
    dl_ratio = dl["avg_total_us"] / dl["avg_nonoffloaded_us"]
    # Paper Table 4: total UL slot ~2.5x its non-offloaded CPU time;
    # DL ~1.9x — the worker blocks waiting on the FPGA.
    assert 1.7 <= ul_ratio <= 3.5
    assert 1.4 <= dl_ratio <= 2.8
    assert ul_ratio > dl_ratio * 0.9

"""Benchmark: Figure 3 — LTE cell traffic characteristics."""

from repro.experiments import fig03_traffic


def test_fig03_traffic(benchmark, write_report):
    results = benchmark.pedantic(fig03_traffic.run, rounds=1, iterations=1)
    write_report("fig03_traffic", fig03_traffic.main())

    # §2.2 shape: a single cell idles ~75% of TTIs ...
    assert 0.70 <= results["single_idle_fraction"] <= 0.80
    # ... the 3-cell aggregate idles much less ...
    assert results["aggregate_idle_fraction"] < \
        results["single_idle_fraction"] - 0.2
    # ... median transfer stays small (~0.2 KB) ...
    assert results["aggregate_median_kb"] < 0.5
    # ... and the tail is many times the median (provision-for-peak waste).
    assert results["aggregate_p95_over_median"] > 4.0

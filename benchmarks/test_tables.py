"""Benchmark: Tables 1/2/5 — configurations and task-cost breakdown."""

from repro.experiments import tables
from repro.ran.config import pool_100mhz_2cells, pool_20mhz_7cells


def test_tables12_configurations(write_report):
    pool100 = pool_100mhz_2cells()
    pool20 = pool_20mhz_7cells()
    report = (
        f"100MHz: {len(pool100.cells)} cells, {pool100.num_cores} cores, "
        f"deadline {pool100.deadline_us:.0f}us, "
        f"peak {pool100.cells[0].peak_dl_mbps:.0f}/"
        f"{pool100.cells[0].peak_ul_mbps:.0f} Mbps DL/UL\n"
        f"20MHz:  {len(pool20.cells)} cells, {pool20.num_cores} cores, "
        f"deadline {pool20.deadline_us:.0f}us, "
        f"peak {pool20.cells[0].peak_dl_mbps:.0f}/"
        f"{pool20.cells[0].peak_ul_mbps:.0f} Mbps DL/UL"
    )
    write_report("tables12_configs", report)
    # Table 1/2 constants.
    assert (len(pool100.cells), pool100.num_cores,
            pool100.deadline_us) == (2, 12, 1500.0)
    assert (len(pool20.cells), pool20.num_cores,
            pool20.deadline_us) == (7, 8, 2000.0)


def test_table5_task_breakdown(benchmark, write_report):
    results = benchmark.pedantic(tables.run_table5, rounds=1, iterations=1)
    lines = ["uplink:"]
    lines += [f"  {name:20s} {share * 100:5.1f}%"
              for name, share in sorted(results["uplink_shares"].items(),
                                        key=lambda kv: -kv[1])]
    lines.append("downlink:")
    lines += [f"  {name:20s} {share * 100:5.1f}%"
              for name, share in sorted(results["downlink_shares"].items(),
                                        key=lambda kv: -kv[1])]
    write_report("table5_breakdown", "\n".join(lines))

    ul = results["uplink_shares"]
    dl = results["downlink_shares"]
    # Table 5: decode >60% of uplink; chanest >8%; equalization >5%;
    # demod >6%; encode >40% of downlink; precoding >15%; mod >10%.
    assert ul["ldpc_decode"] > 0.55
    assert ul["channel_estimation"] > 0.05
    assert ul["equalization"] > 0.02
    assert ul["demodulation"] > 0.04
    assert dl["ldpc_encode"] > 0.35
    assert dl["precoding"] > 0.10
    assert dl["modulation"] > 0.07
    # Decode dominates everything (the paper's >50% of total claim).
    assert ul["ldpc_decode"] == max(ul.values())

#!/usr/bin/env python
"""Hardware-accelerator offload study (paper §7, Tables 3-4).

Attaches the FPGA LDPC offload model to a 100 MHz TDD pool and shows:

* how many CPU cores accelerated cells need (Table 3);
* why cores remain idle even then — the per-slot offload waits
  (Table 4) and the TDD uplink/downlink asymmetry;
* that Concordia can reclaim the resulting idle CPU for a collocated
  workload while keeping the deadline.

Run:  python examples/accelerator_offload.py
"""

from repro import (
    ConcordiaScheduler,
    DedicatedScheduler,
    Simulation,
    train_predictor,
)
from repro.accel.offload import (
    Accelerator,
    AcceleratorConfig,
    attach_accelerator,
    pool_100mhz_accel,
)

NUM_SLOTS = 3000


def run(config, policy, seed=5, workload="none"):
    simulation = Simulation(config, policy, workload=workload,
                            load_fraction=1.0, seed=seed)
    accel = attach_accelerator(
        simulation.pool,
        Accelerator(simulation.engine,
                    AcceleratorConfig(pipelines=2 * len(config.cells))),
    )
    result = simulation.run(NUM_SLOTS)
    return result, accel


def main():
    print("Table 3 - minimum cores with FPGA LDPC offload "
          "(1.6 Gbps DL / 150 Mbps UL per cell):")
    for cells in (1, 2, 3):
        for cores in range(1, 7):
            config = pool_100mhz_accel(num_cells=cells, num_cores=cores)
            result, accel = run(config, DedicatedScheduler())
            if result.latency.miss_fraction < 1e-3:
                print(f"  {cells} cell(s): {cores} core(s), CPU util "
                      f"{result.vran_utilization * 100:4.1f}%, FPGA served "
                      f"{accel.tasks_served} coding tasks")
                break

    print("\nTable 4 - where the CPU time goes (1 cell, 1 core):")
    config = pool_100mhz_accel(num_cells=1, num_cores=1,
                               deadline_us=4000.0)
    result, accel = run(config, DedicatedScheduler())
    print(f"  total accelerator busy time: {accel.busy_time_us / 1e6:.2f} "
          f"core-seconds vs CPU busy "
          f"{result.metrics.busy_core_time_us / 1e6:.2f}")
    print("  -> workers block on offload waits; cores idle below 60% "
          "even at peak")

    print("\nConcordia on the accelerated pool (2 cells, 4 cores, "
          "Redis collocated):")
    config = pool_100mhz_accel(num_cells=2, num_cores=4)
    predictor = train_predictor(config, num_slots=500, seed=42)
    simulation = Simulation(config, ConcordiaScheduler(predictor),
                            workload="redis", load_fraction=1.0, seed=5)
    attach_accelerator(
        simulation.pool,
        Accelerator(simulation.engine, AcceleratorConfig(pipelines=4)))
    result = simulation.run(NUM_SLOTS)
    print(f"  deadline misses: {result.latency.miss_fraction:.2e}   "
          f"p99.99 latency: {result.latency.p9999_us:.0f} us "
          f"(deadline {result.latency.deadline_us:.0f})")
    print(f"  CPU reclaimed for Redis: "
          f"{result.reclaimed_fraction * 100:.1f}%  -> "
          f"{sum(result.workload_rates_per_s.values()):,.0f} requests/s")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Deep dive into the Concordia WCET predictor (paper §4).

Walks through the full offline pipeline on the LDPC decoding task:

1. profile the isolated vRAN and collect (features, runtime) samples;
2. rank features by distance correlation and prune with backwards
   elimination (Algorithm 1);
3. grow the quantile decision tree and inspect its leaves;
4. compare prediction quality against linear regression, gradient
   boosting and a conventional EVT pWCET bound (Fig. 13/14);
5. demonstrate the online phase: leaf ring buffers absorbing
   interference-shifted runtimes without re-growing the tree.

Run:  python examples/wcet_prediction.py
"""

import numpy as np

from repro import (
    GradientBoostingWCET,
    LinearRegressionWCET,
    PwcetEVT,
    QuantileTreeWCET,
    collect_offline_dataset,
    pool_20mhz_7cells,
)
from repro.core.features import (
    backwards_elimination,
    rank_by_distance_correlation,
)
from repro.ran.tasks import FEATURE_NAMES, TaskType


def main():
    config = pool_20mhz_7cells(num_cores=8)
    print("1. Profiling the isolated vRAN (synthetic per-TTI parameter "
          "sweeps)...")
    dataset = collect_offline_dataset(config, num_slots=800, seed=7)
    X, y = dataset.arrays(TaskType.LDPC_DECODE)
    print(f"   {len(y)} LDPC-decode samples; runtimes "
          f"{y.min():.0f}-{y.max():.0f} us (mean {y.mean():.0f})")

    print("\n2. Feature selection (Algorithm 1):")
    ranked = rank_by_distance_correlation(X, y, top_n=8)
    print("   top-8 by distance correlation:",
          [FEATURE_NAMES[i] for i in ranked])
    kept = backwards_elimination(X, y, ranked, keep_m=5)
    print("   after backwards elimination:  ",
          [FEATURE_NAMES[i] for i in kept])

    print("\n3. Quantile decision tree (variance-minimizing CART):")
    train, test = slice(None, int(0.8 * len(y))), slice(int(0.8 * len(y)),
                                                        None)
    models = {
        "quantile tree": QuantileTreeWCET(),
        "linear regression": LinearRegressionWCET(),
        "gradient boosting": GradientBoostingWCET(),
        "pWCET (EVT)": PwcetEVT(),
    }
    for model in models.values():
        model.fit(X[train][:, kept], y[train])
    tree = models["quantile tree"].tree
    print(f"   {tree.num_leaves} leaves; per-leaf WCET = max of a "
          f"{tree.config.leaf_buffer_capacity}-entry ring buffer")

    print("\n4. Prediction quality on held-out samples "
          "(miss = runtime exceeded prediction):")
    print(f"   {'model':20s} {'miss rate':>10s} {'mean overshoot':>15s}")
    for name, model in models.items():
        predictions = np.array([model.predict(x)
                                for x in X[test][:, kept]])
        actual = y[test]
        misses = (actual > predictions).mean()
        overshoot = np.mean(np.maximum(predictions - actual, 0.0))
        print(f"   {name:20s} {misses * 100:9.2f}% {overshoot:12.0f} us")
    print("   (the EVT bound never misses but wastes the most; the "
          "quantile tree\n    balances coverage against overshoot, which "
          "is what frees cores)")

    print("\n5. Online phase: shift runtimes +20% (cache interference) "
          "and observe:")
    tree_model = models["quantile tree"]
    probe = X[test][0][kept]
    before = tree_model.predict(probe)
    for x, runtime in zip(X[test][:, kept], y[test]):
        tree_model.observe(x, runtime * 1.2)
    after = tree_model.predict(probe)
    print(f"   prediction for a probe input: {before:.0f} us -> "
          f"{after:.0f} us after online updates")
    print("   (the tree structure never changed; only leaf buffers did)")


if __name__ == "__main__":
    main()

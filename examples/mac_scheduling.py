#!/usr/bin/env python
"""MAC-layer scheduling walkthrough (paper §7's extension direction).

The paper notes that MAC schedulers are themselves deadline tasks a
vRAN pool could host.  This example exercises the MAC substrate:

1. proportional-fair vs round-robin radio scheduling on a cell with
   polarized channel conditions (throughput/fairness tradeoff);
2. the full pipeline with ``allocation_mode="mac"``: buffer-driven,
   temporally correlated allocations feeding the PHY DAGs, with
   Concordia still meeting the slot deadline.

Run:  python examples/mac_scheduling.py
"""

import numpy as np

from repro import (
    ConcordiaScheduler,
    Simulation,
    pool_20mhz_7cells,
    train_predictor,
)
from repro.analysis.plotting import bar_chart
from repro.ran.config import cell_20mhz_fdd
from repro.ran.mac import MacCell, ProportionalFairScheduler, RoundRobinScheduler


def fairness_study():
    print("1. PF vs round-robin on a cell with 3 weak + 3 strong users:")
    for scheduler in (ProportionalFairScheduler(), RoundRobinScheduler()):
        mac = MacCell(cell_20mhz_fdd(), num_ues=6, total_rate_bps=150e6,
                      scheduler=scheduler, rng=np.random.default_rng(5))
        for i, session in enumerate(mac.sessions):
            session.mean_snr_db = 2.0 if i < 3 else 22.0
            session.snr_db = session.mean_snr_db
            session.mean_rate_bps = 25e6
        served = {s.ue_id: 0 for s in mac.sessions}
        for __ in range(2000):
            for alloc in mac.step():
                served[alloc.ue_id] += alloc.tbs_bytes
        total = sum(served.values())
        weak = sum(served[i] for i in range(3))
        rate_mbps = total * 8 / (2000 * 1e-3) / 1e6
        print(f"   {scheduler.name:18s} total={rate_mbps:6.1f} Mbps   "
              f"weak-user share={weak / total * 100:5.1f}%")
        print(bar_chart(
            [f"ue{ue} ({'weak' if ue < 3 else 'strong'})" for ue in served],
            [served[ue] / 1e6 for ue in served], width=30, unit=" MB"))
    print("   -> PF trades a little throughput for much better fairness.\n")


def pipeline_study():
    print("2. Full pipeline with MAC-driven allocations + Concordia:")
    config = pool_20mhz_7cells()
    predictor = train_predictor(config, num_slots=500, seed=42)
    for mode in ("iid", "mac"):
        sim = Simulation(config, ConcordiaScheduler(predictor),
                         workload="redis", load_fraction=0.4, seed=3,
                         allocation_mode=mode)
        result = sim.run(2500)
        print(f"   mode={mode:4s}: miss={result.latency.miss_fraction:.2e} "
              f"p99.99={result.latency.p9999_us:6.0f} us  "
              f"reclaimed={result.reclaimed_fraction * 100:5.1f}%")
    print("   -> buffer-driven allocations are burstier and temporally\n"
          "      correlated (backlogs persist across TTIs), and Concordia\n"
          "      still holds the deadline.")


if __name__ == "__main__":
    fairness_study()
    pipeline_study()

#!/usr/bin/env python
"""Cell-traffic exploration (paper §2.2 / Fig. 3).

Generates the LTE-calibrated bursty traces, shows why provisioning a
vRAN pool for peak traffic wastes most of its CPU, and scales the
traces up to the paper's 5G benchmark volumes.

Run:  python examples/traffic_analysis.py
"""

import numpy as np

from repro import CellTraffic, cell_100mhz_tdd, cell_20mhz_fdd, lte_cell_traffic

SLOTS = 30_000


def ascii_cdf(samples, width=50, points=(10, 25, 50, 75, 90, 95, 99)):
    """Tiny textual CDF of busy-slot sizes."""
    busy = samples[samples > 0] / 1024.0
    lines = []
    for p in points:
        value = np.percentile(busy, p)
        bar = "#" * max(1, int(width * p / 100))
        lines.append(f"  p{p:<3d} {value:7.2f} KB |{bar}")
    return "\n".join(lines)


def main():
    print("=== LTE traces (Fig. 3 calibration) ===")
    cells = [lte_cell_traffic(seed=s).trace(SLOTS) for s in range(3)]
    aggregate = np.sum(cells, axis=0)
    single = cells[0]
    print(f"single cell: idle {(single == 0).mean() * 100:.1f}% of TTIs "
          f"(paper: 75%)")
    print(f"3-cell pool: idle {(aggregate == 0).mean() * 100:.1f}% of TTIs")
    busy = aggregate[aggregate > 0]
    print(f"aggregate busy slots: median "
          f"{np.median(busy) / 1024:.2f} KB, p95 "
          f"{np.percentile(busy, 95) / 1024:.2f} KB "
          f"({np.percentile(busy, 95) / np.median(busy):.1f}x median)")
    print("aggregate CDF:")
    print(ascii_cdf(aggregate))
    peak = np.percentile(aggregate, 99.9)
    mean = aggregate.mean()
    print(f"\nprovision-for-peak waste: peak(p99.9)={peak / 1024:.1f} KB "
          f"vs mean={mean / 1024:.2f} KB -> "
          f"{(1 - mean / peak) * 100:.0f}% of capacity idle on average")

    print("\n=== 5G benchmark traces (>10x the LTE volume, §6) ===")
    for cell, label in ((cell_20mhz_fdd(), "20 MHz FDD"),
                        (cell_100mhz_tdd(), "100 MHz TDD")):
        for load in (0.25, 1.0):
            traffic = CellTraffic.for_cell(cell, load, seed=3)
            ul = traffic.uplink.trace(SLOTS // 3)
            dl = traffic.downlink.trace(SLOTS // 3)
            print(f"{label:12s} load={load * 100:5.1f}%: "
                  f"UL mean {ul.mean() / 1024:6.1f} KB/slot "
                  f"(max {ul.max() / 1024:6.1f}), "
                  f"DL mean {dl.mean() / 1024:6.1f} KB/slot "
                  f"(max {dl.max() / 1024:6.1f})")
    print("\nBursts remain ~10x the mean at every scale — the "
          "multiplexing opportunity Concordia exploits.")


if __name__ == "__main__":
    main()

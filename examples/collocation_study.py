#!/usr/bin/env python
"""Collocation study: every scheduler against every workload.

Sweeps the scheduling policies (Concordia, vanilla FlexRAN, a
Shenango-variant, a utilization-based scheduler, and full isolation)
against the paper's collocation scenarios (Redis, Nginx, TPCC, MLPerf,
Mix) on the 2 x 100 MHz deployment, and prints a reliability/efficiency
scorecard — a compact version of the paper's §6.2/§6.3 evaluation.

Run:  python examples/collocation_study.py [num_slots]
"""

import sys

from repro import pool_100mhz_2cells, train_predictor
from repro.experiments.common import format_table, make_policy, run_simulation

NUM_SLOTS = int(sys.argv[1]) if len(sys.argv) > 1 else 4000
POLICIES = ("dedicated", "concordia", "flexran", "shenango", "utilization")
WORKLOADS = ("none", "redis", "nginx", "tpcc", "mix")


def main():
    config = pool_100mhz_2cells(num_cores=8)
    print(f"2 x 100 MHz TDD cells, 8 cores, deadline "
          f"{config.deadline_us:.0f} us, {NUM_SLOTS} slots per run\n")
    # Warm the predictor cache once (Concordia reuses it per run).
    train_cache = {}
    rows = []
    for policy in POLICIES:
        for workload in WORKLOADS:
            result = run_simulation(
                config, policy, workload=workload, load_fraction=0.5,
                num_slots=NUM_SLOTS, seed=11,
            )
            latency = result.latency
            best_effort = sum(result.workload_rates_per_s.values())
            rows.append([
                policy, workload,
                f"{latency.p9999_us:7.0f}",
                "yes" if latency.p9999_us <= latency.deadline_us else "NO",
                f"{latency.miss_fraction:.1e}",
                f"{result.reclaimed_fraction * 100:5.1f}%",
                f"{best_effort:14,.0f}",
            ])
    print(format_table(
        ["policy", "workload", "p99.99 (us)", "meets deadline",
         "miss frac", "reclaimed", "best-effort ops/s"],
        rows,
        title="Scheduler x workload scorecard (deadline "
              f"{config.deadline_us:.0f} us)"))
    print(
        "\nReading guide: 'dedicated' is today's practice (safe, zero "
        "sharing);\n'flexran' shares greedily but loses the tail under "
        "any collocation;\nConcordia is the only policy that both "
        "shares and holds the deadline."
    )


if __name__ == "__main__":
    main()

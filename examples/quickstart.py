#!/usr/bin/env python
"""Quickstart: share a 5G vRAN pool with Redis using Concordia.

Builds the paper's 7-cell 20 MHz deployment, trains the WCET predictor
offline (isolated profiling + quantile decision trees), then runs the
pool side by side with a Redis workload and reports the reliability and
the CPU reclaimed — the paper's headline result in ~a minute.

Run:  python examples/quickstart.py
"""

from repro import (
    ConcordiaScheduler,
    FlexRanScheduler,
    Simulation,
    pool_20mhz_7cells,
    train_predictor,
)

NUM_SLOTS = 4000  # 4 simulated seconds of 1 ms TTIs
LOAD = 0.5  # half of the cells' maximum average traffic


def describe(result):
    latency = result.latency
    print(f"  slot DAGs processed  : {latency.count}")
    print(f"  mean slot latency    : {latency.mean_us:7.0f} us")
    print(f"  99.99% latency       : {latency.p9999_us:7.0f} us "
          f"(deadline {latency.deadline_us:.0f} us)")
    print(f"  deadline misses      : {latency.miss_fraction:.2e}")
    print(f"  CPU reclaimed        : {result.reclaimed_fraction * 100:5.1f}%"
          f"  (upper bound {result.idle_upper_bound * 100:.1f}%)")
    redis_rate = sum(result.workload_rates_per_s.values())
    print(f"  Redis throughput     : {redis_rate:12,.0f} requests/s")
    print(f"  scheduling events    : {result.scheduling_events}")


def main():
    config = pool_20mhz_7cells()
    print(f"Deployment: {len(config.cells)} x 20 MHz cells, "
          f"{config.num_cores} cores, deadline {config.deadline_us:.0f} us")

    print("\nTraining the Concordia WCET predictor offline "
          "(isolated profiling)...")
    predictor = train_predictor(config, num_slots=600, seed=42)
    for task_type, model in sorted(predictor.models.items(),
                                   key=lambda kv: kv[0].value):
        features = predictor.selected_features[task_type]
        print(f"  {task_type.value:20s} -> {len(features)} features, "
              f"{model.tree.num_leaves:3d} leaves")

    print(f"\nConcordia + Redis at {LOAD * 100:.0f}% cell load:")
    sim = Simulation(config, ConcordiaScheduler(predictor),
                     workload="redis", load_fraction=LOAD, seed=1)
    describe(sim.run(NUM_SLOTS))

    print("\nVanilla FlexRAN + Redis (the baseline):")
    sim = Simulation(config, FlexRanScheduler(), workload="redis",
                     load_fraction=LOAD, seed=1)
    describe(sim.run(NUM_SLOTS))

    print("\nConcordia reclaims idle vRAN CPU for Redis while keeping "
          "the slot deadline;\nthe baseline shares more aggressively but "
          "its latency tail blows past the deadline\n(run longer for "
          "tighter tail percentiles).")


if __name__ == "__main__":
    main()

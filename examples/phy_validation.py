#!/usr/bin/env python
"""Validate the simulator's cost model against real PHY kernels.

The discrete-event simulator never executes signal processing — it
draws task runtimes from calibrated cost models.  This example runs the
*actual* reference kernels in ``repro.phy`` and checks that the cost
model's qualitative assumptions hold:

1. LDPC decode iterations rise as SNR falls (§4.1's non-linearity);
2. higher modulation orders need higher SNR (the MCS table's premise);
3. MMSE equalization degrades gracefully where ZF blows up;
4. CRCs catch the corruption that LDPC decoding failed to fix.

Run:  python examples/phy_validation.py
"""

import numpy as np

from repro.analysis.plotting import bar_chart
from repro.phy import (
    LdpcCode,
    crc_append,
    crc_check,
    decode_bit_flip,
    encode,
)
from repro.phy.validate import (
    ber_vs_modulation,
    equalizer_mse,
    ldpc_iterations_vs_snr,
)
from repro.ran.tasks import _iteration_factor  # the cost-model curve


def main():
    print("1. LDPC decode iterations vs SNR (bit-flipping decoder):")
    results = ldpc_iterations_vs_snr(snrs_db=(1.0, 3.0, 5.0, 7.0, 9.0),
                                     trials=60)
    labels = [f"{snr:4.1f} dB" for snr in results]
    iterations = [entry["mean_iterations"] for entry in results.values()]
    print(bar_chart(labels, iterations, unit=" iters"))
    print("   cost-model iteration factor over the same margins:")
    factors = [_iteration_factor(snr) for snr in results]
    print(bar_chart(labels, factors, unit="x"))
    print("   -> both fall monotonically with SNR: the simulated decode\n"
          "      cost tracks what the real decoder does.\n")

    print("2. Hard-decision BER per modulation order at 12 dB:")
    ber = ber_vs_modulation(snr_db=12.0)
    print(bar_chart([f"{o}-bit QAM" for o in ber], list(ber.values())))
    print("   -> dense constellations need better channels: the MCS\n"
          "      table's link-adaptation thresholds.\n")

    print("3. Equalizer MSE at low/high SNR (4x2 Rayleigh):")
    for snr in (0.0, 20.0):
        mse = equalizer_mse(snr_db=snr)
        print(f"   {snr:5.1f} dB: ZF {mse['zf_mse']:.4f}  "
              f"MMSE {mse['mmse_mse']:.4f}")
    print("   -> MMSE <= ZF, converging at high SNR.\n")

    print("4. CRC + LDPC end-to-end:")
    rng = np.random.default_rng(0)
    code = LdpcCode(n=96, rate=0.5, seed=1)
    payload = rng.integers(0, 2, code.k - 24).astype(np.uint8)
    framed = crc_append(payload, width=24)
    codeword = encode(code, framed)
    noisy = codeword.copy()
    noisy[rng.integers(code.n)] ^= 1
    decoded = decode_bit_flip(code, noisy)
    ok = decoded.success and crc_check(decoded.bits[: code.k], width=24)
    print(f"   1 channel error  -> decoder used {decoded.iterations} "
          f"iteration(s); CRC verdict: {'PASS' if ok else 'FAIL'}")
    noisy = codeword.copy()
    noisy[rng.choice(code.n, 25, replace=False)] ^= 1
    decoded = decode_bit_flip(code, noisy, max_iterations=10)
    caught = not (decoded.success
                  and crc_check(decoded.bits[: code.k], width=24))
    print(f"   25 channel errors -> undecodable; CRC catches it: "
          f"{'yes' if caught else 'NO'}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Auditing a deadline miss with the execution tracer.

Recreates the debugging workflow used throughout the reproduction (and
presumably by the paper's authors against FlexRAN): run the vulnerable
baseline under collocation with a trace recorder attached, find the
slowest slots, and render their task timelines as Gantt charts — the
stuck-wakeup stall is directly visible as a long queueing gap before a
pinned task.

Run:  python examples/trace_debugging.py
"""

from repro import FlexRanScheduler, Simulation, pool_20mhz_7cells
from repro.analysis.comparison import compare_tails
from repro.sim.tracing import TraceRecorder, render_gantt


def main():
    config = pool_20mhz_7cells()
    print("Running vanilla FlexRAN + Redis with the tracer attached...")
    simulation = Simulation(config, FlexRanScheduler(), workload="redis",
                            load_fraction=0.5, seed=23)
    recorder = TraceRecorder(capacity=500_000).attach(simulation)
    result = simulation.run(4000)
    latency = result.latency
    print(f"  {latency.count} slot DAGs; p99 = {latency.p99_us:.0f} us, "
          f"max = {latency.max_us:.0f} us "
          f"(deadline {latency.deadline_us:.0f})")

    print("\nThe three slowest DAGs, as task Gantt charts "
          "('.' = queued, '#' = executing):\n")
    for dag_id in recorder.slowest_dags(top=3):
        traces = recorder.for_dag(dag_id)
        print(render_gantt(traces, title=f"DAG {dag_id}"))
        worst_wait = max(traces, key=lambda t: t.wait_us)
        print(f"  worst queueing: {worst_wait.task_type} waited "
              f"{worst_wait.wait_us:.0f} us before starting -> a worker "
              "stuck behind a non-preemptible kernel section (§2.3)\n")

    print("Statistical check: are the long waits really the tail driver?")
    waits = [t.wait_us for t in recorder.tasks]
    runtimes = [t.runtime_us for t in recorder.tasks]
    comparison = compare_tails(runtimes, waits, percentile=99.99)
    print(f"  p99.99 runtime = {comparison.a_value:.0f} us vs "
          f"p99.99 queueing wait = {comparison.b_value:.0f} us")
    if comparison.b_value > comparison.a_value:
        print("  -> the extreme waits dominate the extreme runtimes: "
              "the tail is a\n     scheduling-latency problem, not a "
              "compute problem — exactly the gap\n     Concordia's "
              "proactive reservation + 20 us compensation closes.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Hot-path benchmark and CI perf guard for the slot pipeline.

Runs a Fig. 11-style simulation (20 MHz / 7 cells, collocated Redis,
``concordia-noml`` so no training rides on the measurement) and reports
wall-clock plus throughput in simulated slots per second.  Two uses:

* **benchmarking** — ``PYTHONPATH=src python scripts/bench_hotpath.py``
  prints best-of-N wall/slots-per-second for the current tree;
* **CI regression guard** — ``--check results/bench_hotpath_baseline.json``
  compares against a recorded baseline and exits non-zero when
  throughput regressed by more than ``--tolerance`` (default 25 %).
  ``--write-baseline`` records the current tree as the new baseline.

The recorded baseline carries the machine's single-core reference so
wildly different hardware is flagged rather than silently failed; CI
runners of the same class are comparable within the tolerance.

Exit code 0 when within budget, 1 when the guard trips.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import time


def calibrate_reference() -> float:
    """Cheap single-core reference score (higher = faster machine).

    A fixed pure-Python workload, timed: used only to annotate
    baselines so cross-machine comparisons can be recognized.
    """
    start = time.perf_counter()
    acc = 0
    for i in range(2_000_000):
        acc += i * 3 // 7
    wall = time.perf_counter() - start
    return round(1.0 / wall, 3)


def timed_run(slots: int, seed: int) -> tuple[float, object]:
    """One Fig. 11-style simulation; returns (wall_s, result)."""
    from repro.scenario import Scenario, build_simulation

    scenario = Scenario(
        pool={"name": "20mhz"},
        policy="concordia-noml",
        workload="redis",
        load_fraction=0.5,
        seed=seed,
    )
    simulation = build_simulation(scenario)
    start = time.perf_counter()
    result = simulation.run(slots)
    return time.perf_counter() - start, result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--slots", type=int, default=600)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--rounds", type=int, default=3,
                        help="timed rounds (best-of)")
    parser.add_argument("--check", default=None,
                        help="baseline JSON to guard against")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="max fractional slowdown vs the baseline")
    parser.add_argument("--write-baseline", default=None,
                        help="record the current tree as baseline JSON")
    parser.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON")
    args = parser.parse_args(argv)

    walls = []
    result = None
    for _ in range(args.rounds):
        wall, result = timed_run(args.slots, args.seed)
        walls.append(wall)
    best = min(walls)
    slots_per_s = args.slots / best
    report = {
        "slots": args.slots,
        "seed": args.seed,
        "rounds": args.rounds,
        "wall_s_best": round(best, 3),
        "wall_s_all": [round(w, 3) for w in walls],
        "slots_per_s": round(slots_per_s, 1),
        "p99999_us": round(result.latency.p99999_us, 1),
        "machine_reference": calibrate_reference(),
        "python": platform.python_version(),
    }

    if not args.json:
        print(f"fig11-style hot path: {args.slots} slots in "
              f"{best:.2f}s best-of-{args.rounds} "
              f"({slots_per_s:,.0f} slots/s)")

    status = 0
    if args.check:
        baseline = json.loads(pathlib.Path(args.check).read_text())
        floor = baseline["slots_per_s"] * (1.0 - args.tolerance)
        report["baseline_slots_per_s"] = baseline["slots_per_s"]
        report["floor_slots_per_s"] = round(floor, 1)
        ratio = slots_per_s / baseline["slots_per_s"]
        report["ratio_vs_baseline"] = round(ratio, 3)
        if not args.json:
            print(f"baseline {baseline['slots_per_s']:,.0f} slots/s "
                  f"(machine ref {baseline.get('machine_reference')} vs "
                  f"{report['machine_reference']}); "
                  f"current/baseline = {ratio:.2f}x, "
                  f"floor {floor:,.0f} slots/s")
        if slots_per_s < floor:
            print("FAIL: hot-path throughput regressed beyond "
                  f"{args.tolerance:.0%} budget", file=sys.stderr)
            status = 1
        elif not args.json:
            print("OK")

    if args.write_baseline:
        path = pathlib.Path(args.write_baseline)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(report, indent=2) + "\n")
        if not args.json:
            print(f"baseline -> {path}")

    if args.json:
        print(json.dumps(report, indent=2))
    return status


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Thin wrapper around :mod:`repro.bench` (kept for CI and muscle memory).

The benchmark, the CI regression guard and the ``--profile`` mode all
live in ``src/repro/bench.py`` and are also reachable as
``repro bench``; see that module's docstring for usage.
"""

import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src"))

from repro.bench import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())

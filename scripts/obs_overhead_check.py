#!/usr/bin/env python
"""CI guard: the observability layer must not perturb the datapath.

Runs the same Fig. 11-style simulation (20 MHz / 7 cells, collocated
Redis) twice — event bus disabled (production default) and enabled
(full task/core/wakeup event recording) — and fails when the enabled
run adds more than the allowed wall-clock overhead.  The enabled run's
Chrome trace is written next to the metrics dump so CI can upload both
as artifacts.

Usage::

    PYTHONPATH=src python scripts/obs_overhead_check.py \
        [--slots 800] [--threshold 0.10] [--out-dir results/ci]

Exit code 0 when within budget, 1 when the overhead guard trips.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time


def timed_run(slots: int, seed: int, with_bus: bool):
    """One simulation; returns (wall_s, result, bus-or-None)."""
    from repro.experiments.common import make_policy
    from repro.obs.events import EventBus
    from repro.ran.config import pool_20mhz_7cells
    from repro.sim.runner import Simulation

    config = pool_20mhz_7cells(num_cores=8)
    policy = make_policy("concordia-noml", config)
    bus = EventBus() if with_bus else None
    simulation = Simulation(config, policy, workload="redis",
                            load_fraction=0.5, seed=seed, event_bus=bus)
    start = time.perf_counter()
    result = simulation.run(slots)
    return time.perf_counter() - start, result, bus


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--slots", type=int, default=800)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--rounds", type=int, default=2,
                        help="timed rounds per mode (best-of)")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="max fractional wall-clock overhead")
    parser.add_argument("--out-dir", default="results/ci")
    args = parser.parse_args(argv)

    # Best-of-N on both sides to damp scheduler/CI-runner noise.
    disabled = min(timed_run(args.slots, args.seed, False)[0]
                   for _ in range(args.rounds))
    enabled_runs = [timed_run(args.slots, args.seed, True)
                    for _ in range(args.rounds)]
    enabled = min(wall for wall, __, __ in enabled_runs)
    __, result, bus = enabled_runs[-1]

    out_dir = pathlib.Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    from repro.obs.export import write_chrome_trace, write_metrics_json
    write_chrome_trace(out_dir / "trace.json", bus.events)
    write_metrics_json(out_dir / "telemetry.json", result.telemetry)

    overhead = enabled / max(disabled, 1e-9) - 1.0
    report = {
        "slots": args.slots,
        "bus_disabled_wall_s": round(disabled, 3),
        "bus_enabled_wall_s": round(enabled, 3),
        "overhead_fraction": round(overhead, 4),
        "threshold": args.threshold,
        "events_recorded": len(bus.events),
        "events_dropped": bus.dropped,
    }
    (out_dir / "overhead.json").write_text(json.dumps(report, indent=2)
                                           + "\n")
    print(f"bus off: {disabled:.2f}s | bus on: {enabled:.2f}s | "
          f"overhead {overhead * 100:+.1f}% "
          f"(budget {args.threshold * 100:.0f}%) | "
          f"{len(bus.events)} events -> {out_dir / 'trace.json'}")
    if overhead > args.threshold:
        print("FAIL: observability overhead exceeds budget",
              file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())

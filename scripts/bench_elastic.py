#!/usr/bin/env python
"""Elastic-reconfiguration benchmark and CI regression guard.

Runs a small metro fleet through the planner's lockstep migration path
(one mid-run cell migration between two servers) and reports throughput
in simulated **cell-slots per second**.  Two modes:

* benchmarking — ``scripts/bench_elastic.py`` prints best-of-N wall and
  cell-slots/s for the migration run;
* CI guard — ``--check results/bench_elastic_baseline.json`` fails when
  throughput regresses more than ``--tolerance`` below the recorded
  baseline; ``--write-baseline`` records the current tree.

The guard also re-checks the migration determinism contract on every
run: the per-cell digests of the migrated run must equal a no-reconfig
serial run's — moving a cell between servers mid-run must not change a
single sampled byte.
"""

import argparse
import json
import os
import pathlib
import platform
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src"))

from repro.bench import calibrate_reference  # noqa: E402
from repro.fleet import FleetScenario, Planner  # noqa: E402


def timed_fleet(cells: int, shards: int, slots: int, seed: int,
                reconfig=()):
    """One serial/lockstep fleet run; returns (wall_s, report)."""
    fleet = FleetScenario(cells=cells, shards=shards, num_slots=slots,
                          seed=seed, reconfig=reconfig)
    planner = Planner(fleet, jobs=1)
    start = time.perf_counter()
    report = planner.run()
    return time.perf_counter() - start, report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cells", type=int, default=8)
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--slots", type=int, default=120)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--repeat", "--rounds", type=int, default=3,
                        dest="rounds", help="timed rounds (best-of)")
    parser.add_argument("--check", default=None,
                        help="baseline JSON to guard against")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="max fractional slowdown vs the baseline")
    parser.add_argument("--write-baseline", default=None,
                        help="record the current tree as baseline JSON")
    parser.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON")
    args = parser.parse_args(argv)

    migration = ({"action": "migrate", "cell": args.cells // 4,
                  "src_shard": 0, "dst_shard": args.shards - 1,
                  "at_slot": args.slots // 3, "transfer_slots": 2,
                  "warmup_slots": 8},)

    walls = []
    report = None
    for _ in range(args.rounds):
        wall, report = timed_fleet(args.cells, args.shards, args.slots,
                                   args.seed, reconfig=migration)
        walls.append(wall)
    best = min(walls)
    cell_slots = report.slot_count
    cell_slots_per_s = cell_slots / best

    _, baseline_run = timed_fleet(args.cells, args.shards, args.slots,
                                  args.seed)
    digests_ok = baseline_run.cell_digests == report.cell_digests

    payload = {
        "cells": args.cells,
        "shards": args.shards,
        "slots": args.slots,
        "seed": args.seed,
        "rounds": args.rounds,
        "migration": migration[0],
        "wall_s_best": round(best, 3),
        "wall_s_all": [round(w, 3) for w in walls],
        "cell_slots": cell_slots,
        "cell_slots_per_s": round(cell_slots_per_s, 1),
        "p99_us": round(report.latency_us["p99"], 1),
        "digests_match_unmigrated": digests_ok,
        "machine_reference": calibrate_reference(),
        "python": platform.python_version(),
    }

    if not args.json:
        print(f"elastic path: {args.cells} cells x {args.slots} slots "
              f"({args.shards} shards, 1 mid-run migration) in "
              f"{best:.2f}s best-of-{args.rounds} "
              f"({cell_slots_per_s:,.0f} cell-slots/s)")

    status = 0
    if not digests_ok:
        print("FAIL: migrated per-cell digests differ from the "
              "no-reconfig run (migration determinism contract broken)",
              file=sys.stderr)
        status = 1

    if args.check:
        baseline = json.loads(pathlib.Path(args.check).read_text())
        floor = baseline["cell_slots_per_s"] * (1.0 - args.tolerance)
        ratio = cell_slots_per_s / baseline["cell_slots_per_s"]
        payload["baseline_cell_slots_per_s"] = \
            baseline["cell_slots_per_s"]
        payload["floor_cell_slots_per_s"] = round(floor, 1)
        payload["ratio_vs_baseline"] = round(ratio, 3)
        if not args.json:
            print(f"baseline {baseline['cell_slots_per_s']:,.0f} "
                  f"cell-slots/s (machine ref "
                  f"{baseline.get('machine_reference')} vs "
                  f"{payload['machine_reference']}); "
                  f"current/baseline = {ratio:.2f}x, "
                  f"floor {floor:,.0f} cell-slots/s")
        if cell_slots_per_s < floor:
            print("FAIL: elastic-path throughput regressed beyond "
                  f"{args.tolerance:.0%} budget", file=sys.stderr)
            status = 1
        if status == 0 and not args.json:
            print("OK")

    if args.write_baseline:
        path = pathlib.Path(args.write_baseline)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2) + "\n")
        if not args.json:
            print(f"baseline -> {path}")

    if args.json:
        print(json.dumps(payload, indent=2))
    return status


if __name__ == "__main__":
    sys.exit(main())

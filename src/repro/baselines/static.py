"""Static core partitioning — the operator's manual middle ground.

Between full isolation (all cores dedicated, zero sharing — today's
best practice per §2.3) and dynamic scheduling sits the obvious manual
option: permanently dedicate ``k`` of the pool's cores to the vRAN and
give the rest to best-effort workloads.  No scheduler reacts to
anything at runtime.

This baseline exposes the tradeoff Concordia automates away: a small
``k`` misses deadlines during bursts, a large ``k`` wastes the idle
cycles the paper measures.  The ablation benchmarks sweep ``k`` to draw
that curve.
"""

from __future__ import annotations

from ..sim.policy import SchedulerPolicy

__all__ = ["StaticPartitionScheduler"]


class StaticPartitionScheduler(SchedulerPolicy):
    """Reserve a fixed number of cores forever."""

    name = "static"

    def __init__(self, reserved_cores: int) -> None:
        super().__init__()
        if reserved_cores < 1:
            raise ValueError("a static partition needs at least one core")
        self.reserved_cores = reserved_cores

    def attach(self, pool) -> None:
        super().attach(pool)
        if self.reserved_cores > pool.num_cores:
            raise ValueError(
                f"partition of {self.reserved_cores} cores exceeds the "
                f"pool's {pool.num_cores}")
        pool.request_cores(self.reserved_cores)

    # No event hooks: the partition never moves.  (The pool will never
    # yield the reserved cores because the target never changes.)

"""Utilization-threshold scheduler (paper §6.3).

Adjusts the vRAN core allocation once per TTI based on the pool's busy
fraction over the last few slots: above the threshold one more worker
is woken, below half the threshold one is released.  The paper uses
60 % (20 MHz) and 30 % (100 MHz) thresholds and finds the approach
cannot track bursty slot-scale traffic, underestimating the CPU needed
for the upcoming slot.
"""

from __future__ import annotations

from collections import deque

from ..sim.policy import SchedulerPolicy

__all__ = ["UtilizationScheduler"]


class UtilizationScheduler(SchedulerPolicy):
    """Per-TTI reactive scaling on recent pool utilization."""

    name = "utilization"
    #: Built as a variant of the FlexRAN pool, so it inherits the
    #: per-worker queue affinity (§2.1) and its §2.3 exposure.
    pin_tasks_to_wakeups = True

    def __init__(
        self,
        threshold: float = 0.6,
        window_slots: int = 3,
        slot_duration_us: float = 1000.0,
    ) -> None:
        super().__init__()
        if not 0.0 < threshold < 1.0:
            raise ValueError("threshold must be in (0, 1)")
        self.threshold = threshold
        self.window_slots = window_slots
        self.tick_interval_us = slot_duration_us
        self._busy_history: deque[float] = deque(maxlen=window_slots)
        self._last_busy_core_us = 0.0
        self._last_reserved_core_us = 0.0

    def attach(self, pool) -> None:
        super().attach(pool)
        pool.request_cores(max(1, pool.num_cores // 2))

    def on_tick(self, now: float) -> None:
        pool = self.pool
        metrics = pool.metrics
        # Utilization of the reserved cores over the last slot.
        busy_delta = metrics.busy_core_time_us - self._last_busy_core_us
        reserved_delta = (
            metrics.reserved_core_time_us - self._last_reserved_core_us
        )
        self._last_busy_core_us = metrics.busy_core_time_us
        self._last_reserved_core_us = metrics.reserved_core_time_us
        utilization = busy_delta / reserved_delta if reserved_delta > 0 else 0.0
        self._busy_history.append(utilization)
        average = sum(self._busy_history) / len(self._busy_history)
        reserved = pool.reserved_count
        if average > self.threshold:
            pool.request_cores(min(pool.num_cores, reserved + 1))
        elif average < self.threshold / 2 and reserved > 1:
            pool.request_cores(reserved - 1)

"""Shenango-variant scheduler (paper §6.3).

Shenango (NSDI'19) grows a best-effort application's core allocation
whenever a queued item has waited longer than a threshold (5 µs in the
original system).  The paper's variant applies the same rule to the
vRAN pool: every check interval, if the oldest ready signal-processing
task has queued for more than ``queue_delay_threshold_us``, one more
core is added.  Cores are released when the pool drains.

As §6.3 reports, no single threshold works: a low threshold hoards all
cores (no sharing), a high one reacts too slowly to meet 99.99 %.
"""

from __future__ import annotations

from ..ran.tasks import TaskInstance
from ..sim.policy import SchedulerPolicy

__all__ = ["ShenangoScheduler"]


class ShenangoScheduler(SchedulerPolicy):
    """Queueing-delay-threshold core scaling."""

    name = "shenango"
    #: Built as a variant of the FlexRAN pool, so it inherits the
    #: per-worker queue affinity (§2.1) and its §2.3 exposure.
    pin_tasks_to_wakeups = True

    def __init__(
        self,
        queue_delay_threshold_us: float = 5.0,
        check_interval_us: float = 5.0,
    ) -> None:
        super().__init__()
        if queue_delay_threshold_us < 0:
            raise ValueError("threshold must be non-negative")
        self.queue_delay_threshold_us = queue_delay_threshold_us
        self.tick_interval_us = check_interval_us

    def on_slot_start(self, dags: list, now: float) -> None:
        # A fresh slot with no cores reserved needs at least one worker,
        # otherwise nothing ever dequeues and the delay check never
        # triggers relative to an executing baseline.
        if self.pool.reserved_count == 0:
            self.pool.request_cores(1)

    def on_task_finished(self, task: TaskInstance) -> None:
        pool = self.pool
        if pool.ready_count == 0:
            # Drain: release idle cores, keep the busy ones.
            pool.request_cores(pool.running_count)

    def on_tick(self, now: float) -> None:
        pool = self.pool
        if pool.ready_count == 0:
            return
        if pool.oldest_ready_wait_us() > self.queue_delay_threshold_us:
            pool.request_cores(pool.reserved_count + 1)

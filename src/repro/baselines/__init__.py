"""Baseline schedulers compared against Concordia."""

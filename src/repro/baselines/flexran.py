"""Vanilla FlexRAN queue-driven scheduler (the paper's main baseline).

"It acquires more cores when there are tasks waiting in the queues and
relinquishes them when the queues are empty" (§6).  The target core
count is recomputed on every enqueue/finish event as the number of
running plus ready tasks; workers whose queues drain yield immediately,
and each newly ready task beyond the reserved capacity triggers a
wakeup.  This reactive behaviour is what produces the high
scheduling-event counts of Fig. 10 and the collocation tail-latency
blow-ups of Fig. 4b / Fig. 11.

``DedicatedScheduler`` models today's operational best practice of
fully isolating the vRAN: all cores stay reserved forever (zero
reclaim), used as the isolated reference and for offline profiling.
"""

from __future__ import annotations

from ..ran.tasks import TaskInstance
from ..sim.policy import SchedulerPolicy

__all__ = ["FlexRanScheduler", "DedicatedScheduler"]


class FlexRanScheduler(SchedulerPolicy):
    """Reactive queue-length-driven core allocation."""

    name = "flexran"
    pin_tasks_to_wakeups = True

    def _recompute(self) -> None:
        pool = self.pool
        demand = pool.running_count + pool.ready_count + pool.pinned_count
        pool.request_cores(min(pool.num_cores, demand))

    def on_task_enqueued(self, task: TaskInstance) -> None:
        self._recompute()

    def on_task_finished(self, task: TaskInstance) -> None:
        self._recompute()


class DedicatedScheduler(SchedulerPolicy):
    """Fully isolated vRAN: every pool core is held forever."""

    name = "dedicated"

    def attach(self, pool) -> None:
        super().attach(pool)
        pool.request_cores(pool.num_cores)

"""Best-effort workload modelling (paper §6 collocation scenarios).

Best-effort workloads (Redis, Nginx, TPCC, MLPerf, or a mix) run on
whatever cores the vRAN pool is not holding.  Two effects matter for the
reproduction:

* their **throughput** is proportional to the core-time they obtain,
  discounted by a sharing-efficiency factor (cache pollution from the
  vRAN, preemption overhead when cores are reclaimed) — §6.1 reports
  72–82 % of ideal at low cell load;
* they exert **cache pressure** on the vRAN, inflating signal-processing
  runtimes through :class:`repro.sim.cache.CacheInterferenceModel`.

The :class:`WorkloadHost` receives core-availability change events from
the pool and integrates per-workload usable core-time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["WorkloadSpec", "Workload", "WorkloadHost"]


@dataclass(frozen=True)
class WorkloadSpec:
    """Static description of a best-effort workload."""

    name: str
    unit: str
    ops_per_core_second: float  # ideal throughput per dedicated core
    cache_pressure: float  # in [0, 1]; how hard it hits the LLC
    base_sharing_efficiency: float  # fraction of ideal when collocated

    def __post_init__(self) -> None:
        if not 0.0 <= self.cache_pressure <= 1.0:
            raise ValueError("cache_pressure must be in [0, 1]")
        if not 0.0 < self.base_sharing_efficiency <= 1.0:
            raise ValueError("base_sharing_efficiency must be in (0, 1]")
        if self.ops_per_core_second <= 0:
            raise ValueError("ops_per_core_second must be positive")

    def ideal_ops(self, cores: int, duration_us: float) -> float:
        """Throughput achieved on ``cores`` dedicated cores (no vRAN)."""
        return self.ops_per_core_second * cores * duration_us / 1e6


@dataclass
class Workload:
    """A running instance of a best-effort workload."""

    spec: WorkloadSpec
    active: bool = True
    core_time_us: float = 0.0  # usable core-time accrued so far

    def achieved_ops(self, preemptions_per_core_ms: float = 0.0) -> float:
        """Operations completed given accrued core-time.

        Preemptions (the vRAN reclaiming a core) cost warm state; the
        penalty saturates at 30 % on top of the base sharing
        efficiency.
        """
        penalty = min(0.3, 0.05 * preemptions_per_core_ms)
        efficiency = self.spec.base_sharing_efficiency * (1.0 - penalty)
        return self.core_time_us / 1e6 * self.spec.ops_per_core_second * efficiency


class WorkloadHost:
    """Splits best-effort core-time among active workloads.

    Registered with the pool via ``pool.set_available_listener``; every
    time the number of unreserved cores changes the host accrues the
    elapsed interval to all active workloads (equal shares) and keeps
    the cache model's pressure in sync with the active set.
    """

    def __init__(self, workloads: list[Workload], cache_model=None) -> None:
        self.workloads = workloads
        self.cache_model = cache_model
        self._last_time: Optional[float] = None
        self._available = 0
        self.total_best_effort_core_us = 0.0
        self._sync_pressure()

    def _sync_pressure(self) -> None:
        if self.cache_model is not None:
            pressure = sum(w.spec.cache_pressure for w in self.workloads
                           if w.active)
            self.cache_model.set_pressure(min(1.0, pressure))

    def _accrue(self, now: float) -> None:
        if self._last_time is None:
            self._last_time = now
            return
        dt = now - self._last_time
        self._last_time = now
        if dt <= 0 or self._available <= 0:
            return
        core_us = dt * self._available
        self.total_best_effort_core_us += core_us
        active = [w for w in self.workloads if w.active]
        if active:
            share = core_us / len(active)
            for workload in active:
                workload.core_time_us += share

    def on_available_change(self, now: float, available: int) -> None:
        """Pool callback: the number of best-effort cores changed."""
        self._accrue(now)
        self._available = available

    def has_active_occupant(self) -> bool:
        """Is any best-effort workload running on reclaimed cores?

        The pool asks this when it signals a yielded core awake: only a
        wakeup that displaces an actual occupant counts as a preemption
        (``Metrics.on_preemption``); waking an idle core does not.
        """
        return any(w.active for w in self.workloads)

    def set_active(self, name: str, active: bool, now: float) -> None:
        """Toggle a workload on/off (used by the Mix scenario)."""
        self._accrue(now)
        for workload in self.workloads:
            if workload.spec.name == name:
                workload.active = active
        self._sync_pressure()

    def finalize(self, now: float) -> None:
        self._accrue(now)

    def results(self, preemptions_per_core_ms: float = 0.0) -> dict[str, float]:
        """Achieved throughput (ops/s is up to the caller) per workload."""
        return {
            w.spec.name: w.achieved_ops(preemptions_per_core_ms)
            for w in self.workloads
        }

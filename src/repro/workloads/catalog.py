"""The paper's five collocation scenarios (§6): Redis, Nginx, TPCC,
MLPerf and a randomly switching Mix.

Ideal per-core throughputs are calibrated so that the "No vRAN"
reference curves of Fig. 8b-d come out in the paper's reported ranges
(≈5×10⁶ Redis GET/s, ≈6×10⁴ Nginx req/s and ≈3×10³ TPCC tx/s on 12
dedicated cores); base sharing efficiencies match the §6.1 yields
(Redis 76.6 %, Nginx 82.2 %, TPCC 72 %, MLPerf 78 % of ideal at low
cell load).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .base import Workload, WorkloadHost, WorkloadSpec

__all__ = [
    "REDIS_GET",
    "REDIS_SET",
    "NGINX",
    "TPCC",
    "MLPERF",
    "WORKLOAD_SPECS",
    "make_workload",
    "make_host",
    "MixController",
]

REDIS_GET = WorkloadSpec(
    name="redis-get",
    unit="GET requests/s",
    ops_per_core_second=430_000.0,
    cache_pressure=0.25,
    base_sharing_efficiency=0.766,
)

REDIS_SET = WorkloadSpec(
    name="redis-set",
    unit="SET requests/s",
    ops_per_core_second=380_000.0,
    cache_pressure=0.25,
    base_sharing_efficiency=0.766,
)

NGINX = WorkloadSpec(
    name="nginx",
    unit="HTTP requests/s",
    ops_per_core_second=5_000.0,
    cache_pressure=0.20,
    base_sharing_efficiency=0.822,
)

TPCC = WorkloadSpec(
    name="tpcc",
    unit="transactions/s",
    ops_per_core_second=250.0,
    cache_pressure=0.35,
    base_sharing_efficiency=0.72,
)

MLPERF = WorkloadSpec(
    name="mlperf",
    unit="training samples/s",
    ops_per_core_second=30.0,
    cache_pressure=0.45,
    base_sharing_efficiency=0.78,
)

WORKLOAD_SPECS = {
    spec.name: spec
    for spec in (REDIS_GET, REDIS_SET, NGINX, TPCC, MLPERF)
}

#: Workload names accepted by :func:`make_host` (``redis`` expands to
#: GET+SET instances like the paper's 8-container benchmark).
SCENARIOS = ("none", "redis", "nginx", "tpcc", "mlperf", "mix")


def make_workload(name: str) -> list[Workload]:
    """Instantiate the workload(s) behind a scenario name."""
    if name == "none":
        return []
    if name == "redis":
        return [Workload(REDIS_GET), Workload(REDIS_SET)]
    if name == "mix":
        return [Workload(NGINX), Workload(REDIS_GET), Workload(TPCC)]
    if name in WORKLOAD_SPECS:
        return [Workload(WORKLOAD_SPECS[name])]
    raise ValueError(f"unknown workload scenario {name!r}; "
                     f"expected one of {SCENARIOS}")


def make_host(name: str, cache_model=None) -> WorkloadHost:
    """Build a :class:`WorkloadHost` for a named scenario."""
    return WorkloadHost(make_workload(name), cache_model=cache_model)


class MixController:
    """Randomly toggles the Mix workloads on and off (§6).

    The paper switches workloads at random intervals of 10–70 s; the
    interval range is configurable so short simulations still exercise
    the switching path.
    """

    def __init__(
        self,
        engine,
        host: WorkloadHost,
        min_interval_us: float = 10e6,
        max_interval_us: float = 70e6,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if min_interval_us <= 0 or max_interval_us < min_interval_us:
            raise ValueError("invalid toggle interval range")
        self.engine = engine
        self.host = host
        self.min_interval_us = min_interval_us
        self.max_interval_us = max_interval_us
        self.rng = rng if rng is not None else np.random.default_rng(17)
        self._schedule_next()

    def _schedule_next(self) -> None:
        delay = float(self.rng.uniform(self.min_interval_us,
                                       self.max_interval_us))
        self.engine.schedule_after(delay, self._toggle)

    def _toggle(self) -> None:
        workloads = self.host.workloads
        if workloads:
            chosen = workloads[int(self.rng.integers(len(workloads)))]
            active = [w for w in workloads if w.active]
            # Never switch the last active workload off: the Mix scenario
            # keeps pressure on the vRAN throughout the run.
            if chosen.active and len(active) == 1:
                chosen = None
            if chosen is not None:
                self.host.set_active(chosen.spec.name, not chosen.active,
                                     self.engine.now)
        self._schedule_next()

"""Best-effort collocated workload models."""

"""Figure 10: OS scheduling latency of vRAN pool worker threads.

Histograms of wakeup latencies (runqlat-style buckets) for vanilla
FlexRAN and Concordia, isolated and with a collocated Redis workload,
on a 2 × 100 MHz / 8-core pool.  The paper's findings:

* FlexRAN generates ~230 % more scheduling events than Concordia
  (reactive yield/wake on every queue transition vs proactive
  reservations);
* under collocation both see a heavier latency tail; Concordia has
  proportionally more high-tail events (it retains cores longer, so
  unmigratable kernel work queues up) but compensates for stuck cores
  every 20 µs.
"""

from __future__ import annotations

from ..ran.config import pool_100mhz_2cells
from .common import format_table, run_simulation, scaled_slots

__all__ = ["run", "main"]


def run(num_slots: int = None, load_fraction: float = 0.5,
        seed: int = 7) -> dict:
    if num_slots is None:
        num_slots = scaled_slots(6000)
    config = pool_100mhz_2cells(num_cores=8)
    results = {}
    for policy in ("flexran", "concordia"):
        for workload in ("none", "redis"):
            # Everything this figure needs rides in the telemetry
            # registry snapshot, so cached sweep results work too.
            result = run_simulation(config, policy, workload=workload,
                                    load_fraction=load_fraction,
                                    num_slots=num_slots, seed=seed)
            counters = result.telemetry.get("counters", {})
            results[(policy, workload)] = {
                "histogram": result.wakeup_histogram,
                "total_events": result.scheduling_events,
                "wakeups": counters.get("sched/wakeups", 0),
            }
    results["event_ratio"] = (
        results[("flexran", "redis")]["total_events"]
        / max(1, results[("concordia", "redis")]["total_events"])
    )
    return results


def main(num_slots: int = None) -> str:
    results = run(num_slots)
    buckets = list(results[("flexran", "none")]["histogram"].keys())
    out = []
    for workload, label in (("none", "Isolated vRAN"),
                            ("redis", "vRAN with Redis")):
        rows = []
        for bucket in buckets:
            rows.append([
                bucket,
                results[("flexran", workload)]["histogram"][bucket],
                results[("concordia", workload)]["histogram"][bucket],
            ])
        rows.append(["total events",
                     results[("flexran", workload)]["total_events"],
                     results[("concordia", workload)]["total_events"]])
        out.append(format_table(
            ["latency (us)", "FlexRAN", "Concordia"], rows,
            title=f"Figure 10 - scheduling latency histogram ({label})"))
    out.append(
        f"FlexRAN/Concordia total scheduling events (Redis): "
        f"{results['event_ratio']:.1f}x (paper: ~3.3x, i.e. 230% higher)")
    return "\n\n".join(out)


if __name__ == "__main__":
    print(main())

"""Figure 9: cache effects of collocation (Concordia vs FlexRAN).

With 2 × 100 MHz cells and a collocated Redis workload, vanilla FlexRAN
sees ~25 % more stall cycles per instruction than the isolated vRAN
(plus ~14 % more L1 misses and ~18 % more LLC loads), while Concordia
stays below 2 % — its proactive, stable core reservations avoid the
acquire/release churn that evicts the vRAN's warm working set.
"""

from __future__ import annotations

from ..ran.config import pool_100mhz_2cells
from .common import format_table, run_simulation, scaled_slots

__all__ = ["run", "main"]


def run(num_slots: int = None, workload: str = "redis",
        load_fraction: float = 0.5, seed: int = 7) -> dict:
    if num_slots is None:
        num_slots = scaled_slots(6000)
    config = pool_100mhz_2cells(num_cores=8)
    results = {}
    for policy in ("concordia", "flexran"):
        # use_cache=False: this driver reads the live cache model off
        # result.pool, which cached (reconstructed) results don't carry.
        result = run_simulation(config, policy, workload=workload,
                                load_fraction=load_fraction,
                                num_slots=num_slots, seed=seed,
                                use_cache=False)
        cache = result.pool.cache_model
        results[policy] = {
            "stall_increase": cache.mean_stall_increase,
            "l1_miss_increase": cache.l1_miss_increase(),
            "llc_load_increase": cache.llc_load_increase(),
            "scheduling_events": result.scheduling_events,
        }
    return results


def main(num_slots: int = None) -> str:
    results = run(num_slots)
    rows = []
    for metric, label, paper in (
        ("stall_increase", "stall cycles per instruction increase",
         "<2% vs ~25%"),
        ("l1_miss_increase", "L1 misses per instruction increase",
         "<2% vs ~14%"),
        ("llc_load_increase", "LLC loads per instruction increase",
         "<2% vs ~18%"),
    ):
        rows.append([
            label,
            f"{results['concordia'][metric] * 100:.1f}%",
            f"{results['flexran'][metric] * 100:.1f}%",
            paper,
        ])
    return format_table(
        ["metric", "Concordia", "FlexRAN", "paper (Concordia vs FlexRAN)"],
        rows,
        title="Figure 9 - cache interference from Redis collocation "
              "(2 x 100MHz cells)")


if __name__ == "__main__":
    print(main())

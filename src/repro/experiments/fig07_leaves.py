"""Figure 7: quantile-tree leaf stability under interference.

Fig. 7a — runtime samples routed to each leaf of the offline-trained
decode tree have low within-leaf variance, and the *grouping* stays
similar when the same workload runs next to a collocated workload.
Fig. 7b — the most distorted leaves (largest Wasserstein distance
between isolated and collocated CDFs) show heavier tails but runtimes
in the same region, which is what justifies updating leaf buffers
online without re-growing the tree (§4.2).

Also reproduces the §4.1 KS-test evidence: isolated vs collocated
runtimes are statistically different distributions (p << 0.001).
"""

from __future__ import annotations

import numpy as np

from ..analysis.stats import ks_two_sample, wasserstein_distance
from ..baselines.flexran import FlexRanScheduler
from ..core.quantile_tree import QuantileDecisionTree, TreeConfig
from ..core.training import collect_offline_dataset
from ..ran.config import PoolConfig, cell_20mhz_fdd
from ..ran.tasks import TaskType
from ..sim.runner import Simulation
from .common import scaled_slots, format_table

__all__ = ["run", "main"]


def _collect_collocated(config, workload: str, num_slots: int, seed: int):
    """Decode samples with a collocated workload running."""
    simulation = Simulation(config, FlexRanScheduler(), workload=workload,
                            load_fraction=0.8, seed=seed,
                            profiling_traffic=True)
    xs, ys = [], []

    def observe(task):
        if task.task_type is TaskType.LDPC_DECODE:
            xs.append(task.features)
            ys.append(task.runtime_us)

    simulation.pool.task_observer = observe
    simulation.run(num_slots)
    return np.vstack(xs), np.asarray(ys)


def run(num_slots: int = None, workload: str = "tpcc",
        seed: int = 21) -> dict:
    if num_slots is None:
        num_slots = scaled_slots(1200, minimum=300)
    config = PoolConfig(cells=(cell_20mhz_fdd(),), num_cores=4,
                        deadline_us=2000.0)
    # Offline (isolated) decode samples and tree.
    dataset = collect_offline_dataset(config, num_slots=num_slots,
                                      seed=seed)
    x_iso, y_iso = dataset.arrays(TaskType.LDPC_DECODE)
    tree = QuantileDecisionTree(TreeConfig(max_depth=6,
                                           min_samples_leaf=40))
    tree.fit(x_iso, y_iso)
    leaves_iso = tree.leaf_indices(x_iso)
    # Online samples with collocation, routed through the same tree.
    x_col, y_col = _collect_collocated(config, workload, num_slots, seed)
    leaves_col = tree.leaf_indices(x_col)

    overall_var = float(y_iso.var())
    per_leaf = []
    for leaf in range(tree.num_leaves):
        iso = y_iso[leaves_iso == leaf]
        col = y_col[leaves_col == leaf]
        if len(iso) < 20 or len(col) < 20:
            continue
        per_leaf.append({
            "leaf": leaf,
            "iso_mean": float(iso.mean()),
            "iso_var_ratio": float(iso.var() / overall_var),
            "col_mean": float(col.mean()),
            "wasserstein": wasserstein_distance(iso, col),
            "col_p99_over_iso_p99": float(np.percentile(col, 99)
                                          / np.percentile(iso, 99)),
        })
    ks_stat, ks_p = ks_two_sample(y_iso, y_col)
    per_leaf.sort(key=lambda r: r["wasserstein"], reverse=True)
    return {
        "num_leaves": tree.num_leaves,
        "mean_within_leaf_var_ratio": float(
            np.mean([r["iso_var_ratio"] for r in per_leaf])),
        "per_leaf": per_leaf,
        "ks_stat": ks_stat,
        "ks_p_value": ks_p,
        "workload": workload,
    }


def main(num_slots: int = None) -> str:
    results = run(num_slots)
    header = (
        f"Figure 7 - leaf stability under {results['workload']} "
        f"interference\n"
        f"leaves: {results['num_leaves']}; mean within-leaf variance / "
        f"overall variance: {results['mean_within_leaf_var_ratio']:.3f} "
        f"(small => Fig. 7a grouping)\n"
        f"KS test isolated vs collocated: D={results['ks_stat']:.3f}, "
        f"p={results['ks_p_value']:.2e} (paper: p << 0.001)"
    )
    rows = [
        [r["leaf"], f"{r['iso_mean']:.0f}", f"{r['col_mean']:.0f}",
         f"{r['wasserstein']:.1f}", f"{r['col_p99_over_iso_p99']:.2f}"]
        for r in results["per_leaf"][:8]
    ]
    table = format_table(
        ["leaf", "iso mean (us)", "colloc mean (us)", "wasserstein",
         "colloc p99 / iso p99"],
        rows, title="Fig. 7b - most distorted leaves")
    return header + "\n\n" + table


if __name__ == "__main__":
    print(main())

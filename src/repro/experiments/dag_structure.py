"""Figures 1 and 16: the uplink and downlink signal-processing DAGs.

Renders the task graphs the simulator actually builds for a
representative slot, as indented ASCII trees with per-task base costs —
a structural reproduction of the paper's two DAG illustrations.
Uses networkx for the graph checks (topological order, longest path).
"""

from __future__ import annotations

import numpy as np

try:
    import networkx as nx
except ImportError:  # pragma: no cover - networkx is a hard dependency
    nx = None

from ..ran.config import cell_100mhz_tdd
from ..ran.dag import DagBuilder
from ..ran.tasks import CostModel
from ..ran.ue import SlotLoad, bytes_to_allocations

__all__ = ["build_example_dags", "to_networkx", "render_dag", "main"]


def build_example_dags(total_bytes: int = 24_000, seed: int = 8):
    """One UL and one DL DAG for a moderately loaded 100 MHz slot."""
    cell = cell_100mhz_tdd()
    builder = DagBuilder(CostModel(rng=np.random.default_rng(0)),
                         rng=np.random.default_rng(1))
    rng = np.random.default_rng(seed)
    dags = {}
    for uplink in (True, False):
        allocations = bytes_to_allocations(total_bytes, rng,
                                           max_ues=4)
        load = SlotLoad(cell.name, 0, uplink, allocations)
        dags["uplink" if uplink else "downlink"] = builder.build(
            load, cell, 0.0, 1500.0)
    return dags


def to_networkx(dag):
    """Convert a DagInstance into a networkx DiGraph."""
    graph = nx.DiGraph()
    for task in dag.tasks:
        graph.add_node(task.task_id, task_type=task.task_type.value,
                       cost_us=task.base_cost_us)
    for task in dag.tasks:
        for successor in task.successors:
            graph.add_edge(task.task_id, successor.task_id)
    return graph


def render_dag(dag, title: str = "") -> str:
    """Indented rendering of the DAG in topological order."""
    graph = to_networkx(dag)
    assert nx.is_directed_acyclic_graph(graph)
    depth = {}
    for node in nx.topological_sort(graph):
        preds = list(graph.predecessors(node))
        depth[node] = 0 if not preds else 1 + max(depth[p] for p in preds)
    by_id = {task.task_id: task for task in dag.tasks}
    lines = [title] if title else []
    critical = nx.dag_longest_path(graph, weight=None)
    lines.append(f"{len(dag.tasks)} tasks, "
                 f"{graph.number_of_edges()} edges, "
                 f"depth {max(depth.values()) + 1}")
    for node in nx.topological_sort(graph):
        task = by_id[node]
        marker = "*" if node in critical else " "
        lines.append(f"{marker} {'  ' * depth[node]}{task.task_type.value}"
                     f" ({task.base_cost_us:.0f} us)")
    lines.append("(* = on the longest chain)")
    return "\n".join(lines)


def main() -> str:
    dags = build_example_dags()
    return "\n\n".join([
        render_dag(dags["uplink"],
                   "Figure 1 - uplink signal-processing DAG (5G NR)"),
        render_dag(dags["downlink"],
                   "Figure 16 - downlink signal-processing DAG (5G NR)"),
    ])


if __name__ == "__main__":
    print(main())

"""Figure 8: reclaimed CPU and collocated-workload performance.

Fig. 8a — percentage of vRAN pool CPU reclaimed by Concordia vs the
ideal upper bound (every idle cycle recovered), across cell loads, for
the 20 MHz (7 cells, 8 cores) and 100 MHz (2 cells, 12 cores)
deployments.  The paper reports >70 % at low load, dropping to 0 %
(20 MHz) and 38 % (100 MHz) at max load.

Fig. 8b-d — Redis / Nginx / TPCC throughput when collocated with the
vRAN under Concordia, against the "no vRAN" ideal on the same cores.
"""

from __future__ import annotations

from ..ran.config import pool_100mhz_2cells, pool_20mhz_7cells
from ..workloads.catalog import WORKLOAD_SPECS
from .common import format_table, make_spec, run_spec_batch, scaled_slots

__all__ = ["run_reclaim", "run_workloads", "build_reclaim_specs", "main",
           "LOAD_POINTS"]

LOAD_POINTS = (0.05, 0.25, 0.5, 0.75, 1.0)


def build_reclaim_specs(num_slots: int = None, seed: int = 7,
                        loads=LOAD_POINTS) -> tuple:
    """The Fig. 8a grid as (specs, (label, load) metadata) pairs."""
    specs, meta = [], []
    for label, config, slots_scale in (
        ("20MHz", pool_20mhz_7cells(), 1.0),
        ("100MHz", pool_100mhz_2cells(), 2.0),
    ):
        slots = num_slots if num_slots is not None else \
            scaled_slots(int(2500 * slots_scale))
        for load in loads:
            specs.append(make_spec(config, "concordia", workload="mix",
                                   load_fraction=load, num_slots=slots,
                                   seed=seed))
            meta.append((label, load))
    return specs, meta


def run_reclaim(num_slots: int = None, seed: int = 7,
                loads=LOAD_POINTS, jobs: int = None) -> dict:
    """Fig. 8a sweep: reclaimed CPU vs load for both configs."""
    specs, meta = build_reclaim_specs(num_slots, seed, loads)
    results = {"loads": list(loads), "configs": {}}
    for (label, load), result in zip(meta, run_spec_batch(specs,
                                                          jobs=jobs)):
        results["configs"].setdefault(label, []).append({
            "load": load,
            "reclaimed": result.reclaimed_fraction,
            "upper_bound": result.idle_upper_bound,
            "miss_fraction": result.latency.miss_fraction,
        })
    return results


def run_workloads(num_slots: int = None, seed: int = 7,
                  loads=LOAD_POINTS, jobs: int = None) -> dict:
    """Fig. 8b-d: collocated workload throughput vs the no-vRAN ideal."""
    results = {"loads": list(loads), "workloads": {}}
    configs = {
        "20MHz": (pool_20mhz_7cells(), 8),
        "100MHz": (pool_100mhz_2cells(), 12),
    }
    specs, meta = [], []
    for workload in ("redis", "nginx", "tpcc", "mlperf"):
        for label, (config, cores) in configs.items():
            slots = num_slots if num_slots is not None else \
                scaled_slots(2000 if label == "20MHz" else 4000)
            for load in loads:
                specs.append(make_spec(config, "concordia",
                                       workload=workload,
                                       load_fraction=load,
                                       num_slots=slots, seed=seed))
                meta.append((workload, label, load))
    batch = dict(zip(meta, run_spec_batch(specs, jobs=jobs)))
    for workload in ("redis", "nginx", "tpcc", "mlperf"):
        per_config = {}
        for label in configs:
            series = []
            for load in loads:
                result = batch[(workload, label, load)]
                series.append({
                    "load": load,
                    "rates": dict(result.workload_rates_per_s),
                    "reclaimed": result.reclaimed_fraction,
                })
            per_config[label] = series
        # The "no vRAN" ideal on n dedicated cores.
        ideals = {}
        for name, spec in WORKLOAD_SPECS.items():
            share = 0.5 if workload == "redis" else 1.0
            ideals[name] = {
                cores: spec.ops_per_core_second * cores * share
                for cores in (8, 12)
            }
        results["workloads"][workload] = {
            "series": per_config,
            "ideal_rates": ideals,
        }
    return results


def main(num_slots: int = None) -> str:
    reclaim = run_reclaim(num_slots)
    rows = []
    for load_index, load in enumerate(reclaim["loads"]):
        row = [f"{load * 100:.0f}%"]
        for label in ("20MHz", "100MHz"):
            point = reclaim["configs"][label][load_index]
            row.append(f"{point['reclaimed'] * 100:.0f}%")
            row.append(f"{point['upper_bound'] * 100:.0f}%")
        rows.append(row)
    out = format_table(
        ["cell load", "Concordia 20MHz", "upper bound 20MHz",
         "Concordia 100MHz", "upper bound 100MHz"],
        rows, title="Figure 8a - reclaimed vRAN pool CPU")

    workloads = run_workloads(num_slots, loads=(0.05, 0.5, 1.0))
    for workload, data in workloads["workloads"].items():
        rows = []
        for index, load in enumerate((0.05, 0.5, 1.0)):
            row = [f"{load * 100:.0f}%"]
            for label in ("20MHz", "100MHz"):
                point = data["series"][label][index]
                rate = sum(point["rates"].values())
                row.append(f"{rate:,.0f}")
            rows.append(row)
        out += "\n\n" + format_table(
            ["cell load", "20MHz vRAN (ops/s)", "100MHz vRAN (ops/s)"],
            rows, title=f"Figure 8b-d - {workload} throughput collocated "
                        f"with Concordia")
    return out


if __name__ == "__main__":
    print(main())

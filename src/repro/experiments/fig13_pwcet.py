"""Figure 13 and §6.3: comparison with alternative schedulers.

* Fig. 13a/b — Concordia's parameterized quantile-tree predictions vs a
  conventional probabilistic WCET (EVT, one bound per task at
  confidence 1-10^-5): the pWCET scheduler reclaims up to ~20 % fewer
  CPU cycles for only a marginal tail-latency improvement.
* §6.3 — schedulers that do not use WCETs at all: a Shenango-variant
  (queueing-delay threshold) and a utilization-based scheduler.  No
  Shenango threshold both shares cores and meets 99.99 %; the
  utilization scheduler cannot track slot-scale burstiness.
"""

from __future__ import annotations

from ..core.models import PwcetEVT
from ..ran.config import pool_20mhz_7cells
from .common import format_table, run_simulation, scaled_slots

__all__ = ["run_pwcet", "run_wcetless", "main"]


def run_pwcet(num_slots: int = None, seed: int = 7,
              loads=(0.05, 0.25, 0.5, 0.75, 1.0)) -> dict:
    """Fig. 13: quantile-tree Concordia vs pWCET-driven Concordia."""
    if num_slots is None:
        num_slots = scaled_slots(2500)
    config = pool_20mhz_7cells()
    results = {"loads": list(loads), "series": {}}
    from ..core.training import train_predictor
    pwcet_predictor = train_predictor(
        config, num_slots=scaled_slots(600, minimum=300), seed=42,
        model_factory=PwcetEVT,
    )
    for name, policy_kwargs in (
        ("concordia", {}),
        ("pwcet", {"predictor": pwcet_predictor}),
    ):
        series = []
        for load in loads:
            result = run_simulation(
                config, "concordia", workload="redis",
                load_fraction=load, num_slots=num_slots, seed=seed,
                policy_kwargs=dict(policy_kwargs),
            )
            series.append({
                "load": load,
                "reclaimed": result.reclaimed_fraction,
                "p99999_us": result.latency.p99999_us,
                "miss_fraction": result.latency.miss_fraction,
            })
        results["series"][name] = series
    return results


def run_wcetless(num_slots: int = None, seed: int = 7,
                 load_fraction: float = 0.5) -> dict:
    """§6.3: Shenango-variant threshold sweep + utilization scheduler."""
    if num_slots is None:
        num_slots = scaled_slots(4000)
    config = pool_20mhz_7cells()
    results = {}
    for threshold in (5.0, 50.0, 200.0):
        result = run_simulation(
            config, "shenango", workload="redis",
            load_fraction=load_fraction, num_slots=num_slots, seed=seed,
            policy_kwargs={"queue_delay_threshold_us": threshold},
        )
        results[f"shenango-{threshold:.0f}us"] = _wcetless_entry(result)
    result = run_simulation(
        config, "utilization", workload="redis",
        load_fraction=load_fraction, num_slots=num_slots, seed=seed,
        policy_kwargs={"threshold": 0.6},
    )
    results["utilization-60%"] = _wcetless_entry(result)
    result = run_simulation(
        config, "concordia", workload="redis",
        load_fraction=load_fraction, num_slots=num_slots, seed=seed,
    )
    results["concordia"] = _wcetless_entry(result)
    return results


def _wcetless_entry(result) -> dict:
    return {
        "reclaimed": result.reclaimed_fraction,
        "p9999_us": result.latency.p9999_us,
        "p99999_us": result.latency.p99999_us,
        "miss_fraction": result.latency.miss_fraction,
        "deadline_us": result.latency.deadline_us,
        "meets_five_nines": result.latency.meets_five_nines,
    }


def main(num_slots: int = None) -> str:
    pwcet = run_pwcet(num_slots)
    rows = []
    for index, load in enumerate(pwcet["loads"]):
        concordia = pwcet["series"]["concordia"][index]
        conventional = pwcet["series"]["pwcet"][index]
        rows.append([
            f"{load * 100:.0f}%",
            f"{concordia['reclaimed'] * 100:.0f}%",
            f"{conventional['reclaimed'] * 100:.0f}%",
            f"{concordia['p99999_us']:.0f}",
            f"{conventional['p99999_us']:.0f}",
        ])
    out = format_table(
        ["cell load", "Concordia reclaim", "pWCET reclaim",
         "Concordia p99.999", "pWCET p99.999"],
        rows, title="Figure 13 - Concordia vs conventional pWCET "
                    "(20MHz, Redis)")
    wcetless = run_wcetless(num_slots)
    rows = [
        [name,
         f"{entry['reclaimed'] * 100:.0f}%",
         f"{entry['p9999_us']:.0f}",
         f"{entry['miss_fraction']:.2e}",
         "yes" if entry["p9999_us"] <= entry["deadline_us"] else "NO"]
        for name, entry in wcetless.items()
    ]
    out += "\n\n" + format_table(
        ["scheduler", "reclaimed", "p99.99 (us)", "miss fraction",
         "meets 99.99%"],
        rows, title="§6.3 - schedulers without WCET predictions "
                    "(20MHz, Redis)")
    return out


if __name__ == "__main__":
    print(main())

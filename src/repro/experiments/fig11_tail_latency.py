"""Figure 11: tail TTI processing latency, Concordia vs FlexRAN.

For both deployments (7 × 20 MHz FDD and 2 × 100 MHz TDD, 8-core pool)
and workloads (isolated, Nginx, Redis, TPCC, MLPerf): the average,
99.99 % and 99.999 % slot-processing latency.  The paper's result:
isolated, both schedulers meet the deadline; under any collocated
workload vanilla FlexRAN's tail blows past the deadline while
Concordia stays within it at 99.999 %.
"""

from __future__ import annotations

from ..ran.config import pool_100mhz_2cells, pool_20mhz_7cells
from .common import format_table, make_spec, run_spec_batch, scaled_slots

__all__ = ["run", "build_specs", "main", "WORKLOADS"]

WORKLOADS = ("none", "nginx", "redis", "tpcc", "mlperf")


def build_specs(num_slots: int = None, load_fraction: float = 0.5,
                seed: int = 7, workloads=WORKLOADS,
                configs=("20MHz", "100MHz"),
                policies=("concordia", "flexran")) -> tuple:
    """The Fig. 11 grid as (specs, key metadata) pairs."""
    pool_factories = {
        "20MHz": lambda: pool_20mhz_7cells(num_cores=8),
        "100MHz": lambda: pool_100mhz_2cells(num_cores=8),
    }
    specs, meta = [], []
    for config_name in configs:
        config = pool_factories[config_name]()
        slots = num_slots if num_slots is not None else scaled_slots(
            8000 if config_name == "20MHz" else 16000)
        for policy in policies:
            for workload in workloads:
                specs.append(make_spec(config, policy, workload=workload,
                                       load_fraction=load_fraction,
                                       num_slots=slots, seed=seed))
                meta.append((config_name, policy, workload))
    return specs, meta


def run(num_slots: int = None, load_fraction: float = 0.5, seed: int = 7,
        workloads=WORKLOADS, configs=("20MHz", "100MHz"),
        policies=("concordia", "flexran"), jobs: int = None) -> dict:
    specs, meta = build_specs(num_slots, load_fraction, seed, workloads,
                              configs, policies)
    results = {}
    for key, result in zip(meta, run_spec_batch(specs, jobs=jobs)):
        summary = result.latency
        results[key] = {
            "mean_us": summary.mean_us,
            "p9999_us": summary.p9999_us,
            "p99999_us": summary.p99999_us,
            "deadline_us": summary.deadline_us,
            "miss_fraction": summary.miss_fraction,
            "meets_four_nines": summary.meets_four_nines,
            "meets_five_nines": summary.meets_five_nines,
            "count": summary.count,
        }
    return results


def main(num_slots: int = None, load_fraction: float = 0.5) -> str:
    results = run(num_slots, load_fraction=load_fraction)
    out = []
    for config_name in ("20MHz", "100MHz"):
        for policy in ("concordia", "flexran"):
            rows = []
            for workload in WORKLOADS:
                key = (config_name, policy, workload)
                if key not in results:
                    continue
                entry = results[key]
                rows.append([
                    workload,
                    f"{entry['mean_us']:.0f}",
                    f"{entry['p9999_us']:.0f}",
                    f"{entry['p99999_us']:.0f}",
                    "yes" if entry["meets_five_nines"] else "NO",
                ])
            deadline = results[(config_name, policy, "none")]["deadline_us"]
            out.append(format_table(
                ["workload", "mean (us)", "p99.99", "p99.999",
                 "meets 99.999%"],
                rows,
                title=f"Figure 11 - {policy} with {config_name} cells "
                      f"(deadline {deadline:.0f} us)"))
    return "\n\n".join(out)


if __name__ == "__main__":
    print(main())

"""Figure 14 (and appendix Figs. 17-18): prediction-model accuracy.

Compares linear regression, gradient boosting and the quantile decision
tree as per-task WCET predictors, per the paper's two metrics:

* **deadlines missed %** — the fraction of task executions whose actual
  runtime exceeded the predicted WCET (log scale in the paper);
* **average WCET prediction error** — mean (predicted − actual) over
  executions where the prediction held; smaller means fewer wasted
  cores.

Scenarios: 1 or 2 × 20 MHz FDD cells on 4 cores, isolated (FD) or with
Redis / TPCC collocated.  The paper's finding: gradient boosting ties
the quantile tree on miss rate (except channel estimation), linear
regression is far worse, and the quantile tree has the smallest error
(~43 µs for LDPC decoding) — plus the full-DAG deadline-miss rate under
the Concordia scheduler sits well below any per-task miss rate thanks
to the 20 µs compensation.
"""

from __future__ import annotations

import numpy as np

from ..baselines.flexran import FlexRanScheduler
from ..core.models import (
    GradientBoostingWCET,
    LinearRegressionWCET,
    QuantileTreeWCET,
)
from ..core.quantile_tree import TreeConfig
from ..core.predictor import ConcordiaPredictor
from ..core.training import collect_offline_dataset
from ..ran.config import PoolConfig, cell_20mhz_fdd
from ..ran.tasks import TaskType
from ..sim.runner import Simulation
from .common import format_table, make_spec, run_spec_batch, scaled_slots

__all__ = ["run", "run_full_dag", "main", "MODEL_FACTORIES", "TASKS"]

#: Mid-granularity tree for the accuracy study: with hundreds (not the
#: paper's 500K) of offline profiling samples, very deep trees leave
#: each leaf's ring buffer too thin for a stable maximum (a fresh
#: sample beats the max of N with ~1/N odds), while very coarse trees
#: surrender the per-input precision that drives Fig. 14b's error win.
_ACCURACY_TREE = TreeConfig(max_depth=7, min_samples_leaf=60)

MODEL_FACTORIES = {
    "linear_regression": LinearRegressionWCET,
    "gradient_boosting": GradientBoostingWCET,
    "quantile_tree": lambda: QuantileTreeWCET(_ACCURACY_TREE),
}

#: Tasks evaluated: Fig. 14 uses LDPC decoding; appendix A.2 adds these.
TASKS = (
    TaskType.LDPC_DECODE,
    TaskType.LDPC_ENCODE,
    TaskType.PRECODING,
    TaskType.CHANNEL_ESTIMATION,
    TaskType.EQUALIZATION,
)


def _pool(num_cells: int) -> PoolConfig:
    cells = tuple(cell_20mhz_fdd(f"cell-{i}") for i in range(num_cells))
    return PoolConfig(cells=cells, num_cores=4, deadline_us=2000.0)


def _collect_online(config, workload, num_slots, seed, predictors,
                    warmup_fraction: float = 0.3):
    """Run the pool and score every prediction against actual runtimes.

    The first ``warmup_fraction`` of the run trains the online buffers
    without scoring: the paper's measurements are steady-state (its
    online phase runs continuously), so the cold-start transient —
    per-leaf buffers that have not yet seen collocation-inflated
    samples — is excluded from the accuracy metrics.
    """
    simulation = Simulation(config, FlexRanScheduler(), workload=workload,
                            load_fraction=0.6, seed=seed)
    scores = {
        name: {task: {"miss": 0, "total": 0, "error_sum": 0.0}
               for task in TASKS}
        for name in predictors
    }
    warmup_until = warmup_fraction * num_slots *         config.slot_duration_us

    def observe(task):
        if task.task_type not in TASKS:
            return
        scoring = simulation.engine.now >= warmup_until
        for name, predictor in predictors.items():
            predicted = predictor.predict_task(task)
            if predicted is None:
                continue
            if scoring:
                bucket = scores[name][task.task_type]
                bucket["total"] += 1
                if task.runtime_us > predicted:
                    bucket["miss"] += 1
                else:
                    bucket["error_sum"] += predicted - task.runtime_us
            predictor.observe_task(task)

    simulation.pool.task_observer = observe
    simulation.run(num_slots)
    return scores


def run(num_slots: int = None, seed: int = 31,
        scenarios=((1, "none"), (2, "none"), (1, "redis"), (2, "redis"),
                   (1, "tpcc"), (2, "tpcc"))) -> dict:
    """Score the three model families across the Fig. 14 scenarios."""
    if num_slots is None:
        num_slots = scaled_slots(2500)
    training_slots = scaled_slots(700, minimum=300)
    results = {}
    for num_cells, workload in scenarios:
        config = _pool(num_cells)
        dataset = collect_offline_dataset(config, num_slots=training_slots,
                                          seed=seed)
        predictors = {}
        for name, factory in MODEL_FACTORIES.items():
            predictor = ConcordiaPredictor(model_factory=factory,
                                           rng=np.random.default_rng(seed))
            predictor.fit_offline(dataset, task_types=TASKS)
            predictors[name] = predictor
        scores = _collect_online(config, workload, num_slots, seed,
                                 predictors)
        for name, per_task in scores.items():
            for task, bucket in per_task.items():
                if bucket["total"] == 0:
                    continue
                held = bucket["total"] - bucket["miss"]
                results[(num_cells, workload, name, task)] = {
                    "miss_pct": 100.0 * bucket["miss"] / bucket["total"],
                    "avg_error_us": bucket["error_sum"] / max(held, 1),
                    "samples": bucket["total"],
                }
    return results


def run_full_dag(num_slots: int = None, seed: int = 31,
                 scenarios=((1, "none"), (2, "redis")),
                 jobs: int = None) -> dict:
    """The 'Full DAG Quantile DT' bars: slot-deadline misses under the
    Concordia scheduler, which compensates per-task mispredictions."""
    if num_slots is None:
        num_slots = scaled_slots(6000)
    specs = [
        make_spec(_pool(num_cells), "concordia", workload=workload,
                  load_fraction=0.6, num_slots=num_slots, seed=seed)
        for num_cells, workload in scenarios
    ]
    results = {}
    for (num_cells, workload), result in zip(
            scenarios, run_spec_batch(specs, jobs=jobs)):
        results[(num_cells, workload)] = {
            "miss_pct": 100.0 * result.latency.miss_fraction,
            "p99999_us": result.latency.p99999_us,
        }
    return results


def main(num_slots: int = None) -> str:
    results = run(num_slots)
    out = []
    for task in TASKS:
        rows = []
        for (cells, workload, model, task_key), entry in sorted(
                results.items(), key=lambda kv: (kv[0][2], kv[0][0],
                                                 kv[0][1])):
            if task_key is not task:
                continue
            rows.append([
                model, f"{cells} cell(s)", workload,
                f"{entry['miss_pct']:.3f}%",
                f"{entry['avg_error_us']:.0f}",
            ])
        out.append(format_table(
            ["model", "cells", "workload", "deadlines missed",
             "avg WCET error (us)"],
            rows, title=f"Figure 14 / A.2 - prediction accuracy for "
                        f"{task.value}"))
    dag = run_full_dag(num_slots)
    rows = [
        [f"{cells} cell(s)", workload, f"{entry['miss_pct']:.4f}%",
         f"{entry['p99999_us']:.0f}"]
        for (cells, workload), entry in dag.items()
    ]
    out.append(format_table(
        ["cells", "workload", "slot deadlines missed", "p99.999 (us)"],
        rows, title="Figure 14a - Full DAG under the Concordia scheduler"))
    return "\n\n".join(out)


if __name__ == "__main__":
    print(main())

"""Per-figure/table experiment drivers (see DESIGN.md experiment index).

Each module reproduces one table or figure of the paper and exposes
``run(...)`` (structured results) and ``main(...)`` (a printable,
paper-style report).  Slot budgets scale with the ``REPRO_SCALE``
environment variable.
"""

from . import (  # noqa: F401
    dag_structure,
    fig03_traffic,
    fig04_motivation,
    fig06_ldpc,
    fig07_leaves,
    fig08_reclaim,
    fig09_cache,
    fig10_sched_latency,
    fig11_tail_latency,
    fig12_cores,
    fig13_pwcet,
    fig14_prediction,
    fig15_overhead,
    longrun,
    sensitivity,
    tables,
)

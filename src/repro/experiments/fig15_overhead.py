"""Figure 15: Concordia scheduler characteristics.

* Fig. 15a — execution time of the Concordia scheduler (one decision)
  and WCET predictor (one slot's predictions), for 1..7 cells.  The
  paper measures <2 µs per scheduling decision and 4→24 µs of
  prediction per TTI, both growing linearly with the number of cells.
  Here we measure the wall-clock time of our Python implementations —
  absolute numbers are interpreter-bound, but the *linear shape* is the
  reproduced claim.
* Fig. 15b — sweeping the DAG deadline parameter (1.6..2.0 ms for the
  20 MHz config at 25 % load): a shorter deadline lowers the tail
  latency at the cost of fewer reclaimed cores.
"""

from __future__ import annotations

from ..ran.config import PoolConfig, cell_20mhz_fdd, pool_20mhz_7cells
from .common import format_table, make_policy, run_simulation, scaled_slots

__all__ = ["run_overhead", "run_deadline_sweep", "main"]


def run_overhead(num_slots: int = None, seed: int = 7,
                 cell_counts=(1, 2, 3, 5, 7)) -> dict:
    """Fig. 15a: per-call wall time of scheduler and predictor."""
    if num_slots is None:
        num_slots = scaled_slots(1500)
    results = {}
    for num_cells in cell_counts:
        cells = tuple(cell_20mhz_fdd(f"c{i}") for i in range(num_cells))
        config = PoolConfig(cells=cells, num_cores=8, deadline_us=2000.0)
        policy = make_policy("concordia", config)
        from ..sim.runner import Simulation
        simulation = Simulation(config, policy, workload="none",
                                load_fraction=0.6, seed=seed)
        result = simulation.run(num_slots)
        # Read the overhead counters back through the telemetry
        # snapshot (the same numbers a cached result would carry).
        counters = result.telemetry["counters"]
        decisions = max(1, counters["scheduler/scheduling_calls"])
        predictions = max(1, counters["scheduler/prediction_calls"])
        results[num_cells] = {
            "scheduler_us": counters["scheduler/scheduling_wall_s"]
            / decisions * 1e6,
            "predictor_us": counters["scheduler/prediction_wall_s"]
            / predictions * 1e6,
        }
    return results


def run_deadline_sweep(num_slots: int = None, seed: int = 7,
                       deadlines=(1600.0, 1700.0, 1800.0, 1900.0,
                                  2000.0)) -> dict:
    """Fig. 15b: TTI deadline vs tail latency and reclaimed cores."""
    if num_slots is None:
        num_slots = scaled_slots(6000)
    results = {}
    for deadline in deadlines:
        config = pool_20mhz_7cells(deadline_us=deadline)
        result = run_simulation(config, "concordia", workload="redis",
                                load_fraction=0.25, num_slots=num_slots,
                                seed=seed)
        results[deadline] = {
            "p99999_us": result.latency.p99999_us,
            "reclaimed": result.reclaimed_fraction,
            "miss_fraction": result.latency.miss_fraction,
        }
    return results


def main(num_slots: int = None) -> str:
    overhead = run_overhead(None if num_slots is None else num_slots)
    rows = [
        [cells, f"{entry['scheduler_us']:.1f}",
         f"{entry['predictor_us']:.1f}"]
        for cells, entry in sorted(overhead.items())
    ]
    out = format_table(
        ["# cells", "scheduler (us/decision)", "predictor (us/TTI)"],
        rows,
        title="Figure 15a - Concordia processing overhead "
              "(Python wall time; paper reports <2us / 4-24us in C)")
    sweep = run_deadline_sweep(None if num_slots is None else num_slots)
    rows = [
        [f"{deadline:.0f}", f"{entry['p99999_us']:.0f}",
         f"{entry['reclaimed'] * 100:.0f}%"]
        for deadline, entry in sorted(sweep.items())
    ]
    out += "\n\n" + format_table(
        ["TTI deadline (us)", "p99.999 latency (us)", "reclaimed CPU"],
        rows,
        title="Figure 15b - deadline parameter tradeoff "
              "(20MHz @ 25% load)")
    return out


if __name__ == "__main__":
    print(main())

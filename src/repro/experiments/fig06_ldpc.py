"""Figure 6: LDPC decoding runtime characteristics.

Fig. 6a — violin plots of decode runtime vs number of codeblocks for
1, 4 and 6 CPU cores: linear in codeblocks, with up to ~25 % extra cost
when the work spreads across cores (memory stalls).
Fig. 6b — memory stalls per cycle vs codeblocks and core count.
"""

from __future__ import annotations

import numpy as np

from ..analysis.stats import violin_summary
from ..ran.tasks import CostModel, TaskInstance, TaskType
from .common import format_table, scaled_slots

__all__ = ["run", "main"]


def _decode_task(model: CostModel, codeblocks: int,
                 snr_margin: float = 3.0) -> TaskInstance:
    base = model.base_cost_us(
        TaskType.LDPC_DECODE, prbs=273, antennas=4, total_layers=4,
        slot_bytes=codeblocks * 1056.0, slot_codeblocks=codeblocks,
        task_codeblocks=codeblocks, snr_margin_db=snr_margin,
        code_rate=0.7,
    )
    return TaskInstance(task_id=0, task_type=TaskType.LDPC_DECODE,
                        cell_name="c", features=np.zeros(16),
                        base_cost_us=base, snr_margin_db=snr_margin)


def run(samples_per_point: int = None, seed: int = 0) -> dict:
    """Sample decode runtimes for the Fig. 6 grid."""
    if samples_per_point is None:
        samples_per_point = scaled_slots(4000, minimum=500)
    model = CostModel(rng=np.random.default_rng(seed))
    codeblock_counts = (3, 6, 9, 12, 15)
    core_counts = (1, 4, 6)
    runtimes = {}
    stalls = {}
    for cores in core_counts:
        for cbs in codeblock_counts:
            task = _decode_task(model, cbs)
            samples = [model.sample_runtime(task, active_cores=cores)
                       for __ in range(samples_per_point)]
            runtimes[(cores, cbs)] = violin_summary(samples)
            stalls[(cores, cbs)] = model.memory_stalls_per_cycle(cbs, cores)
    return {
        "codeblock_counts": codeblock_counts,
        "core_counts": core_counts,
        "runtimes": runtimes,
        "stalls": stalls,
    }


def main(samples_per_point: int = None) -> str:
    results = run(samples_per_point)
    rows = []
    for cbs in results["codeblock_counts"]:
        row = [str(cbs)]
        for cores in results["core_counts"]:
            summary = results["runtimes"][(cores, cbs)]
            row.append(f"{summary.q50:.0f} ({summary.q05:.0f}-"
                       f"{summary.q95:.0f})")
        rows.append(row)
    out = format_table(
        ["#codeblocks", "1 core (us)", "4 cores (us)", "6 cores (us)"],
        rows, title="Figure 6a - LDPC decode runtime median (p5-p95)")
    stall_rows = []
    for cbs in results["codeblock_counts"]:
        stall_rows.append([str(cbs)] + [
            f"{results['stalls'][(cores, cbs)]:.3f}"
            for cores in results["core_counts"]
        ])
    out += "\n\n" + format_table(
        ["#codeblocks", "1 core", "4 cores", "6 cores"], stall_rows,
        title="Figure 6b - memory stalls per cycle (model proxy)")
    return out


if __name__ == "__main__":
    print(main())

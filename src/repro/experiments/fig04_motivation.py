"""Figure 4: the motivation measurements.

* Fig. 4a — average CPU utilization of the minimum-size vRAN pool for
  three deployments (UL-only 3 cells, TDD 1 cell, TDD 2 cells) is at
  most ~42 %, i.e. most cycles are idle even at peak traffic.
* Fig. 4b — with the default yield-based sharing (vanilla FlexRAN),
  collocating Nginx or Redis blows the 99.99 % slot-processing latency
  past the deadline, while the isolated pool meets it.
"""

from __future__ import annotations

from dataclasses import replace

from ..ran.config import PoolConfig, cell_100mhz_tdd
from .common import format_table, run_simulation, scaled_slots

__all__ = ["run_utilization", "run_interference", "main",
           "UL_ONLY_3CELLS", "TDD_1CELL", "TDD_2CELLS"]


def _ul_only_cell(name: str):
    """An uplink-only measurement cell (the paper's 'UL only' row)."""
    cell = cell_100mhz_tdd(name)
    # All-uplink TDD pattern models the UL-only workload.
    from ..ran.config import SlotType
    return replace(cell, tdd_pattern=(SlotType.UPLINK,))


#: Fig. 4a scenarios: (label, pool config, paper's min cores, paper util %).
UL_ONLY_3CELLS = (
    "UL only (3 cells)",
    PoolConfig(cells=tuple(_ul_only_cell(f"ul-{i}") for i in range(3)),
               num_cores=4, deadline_us=1500.0),
    42.0,
)
TDD_1CELL = (
    "TDD (1 cell)",
    PoolConfig(cells=(cell_100mhz_tdd("tdd-0"),), num_cores=5,
               deadline_us=1500.0),
    38.0,
)
TDD_2CELLS = (
    "TDD (2 cells)",
    PoolConfig(cells=tuple(cell_100mhz_tdd(f"tdd-{i}") for i in range(2)),
               num_cores=12, deadline_us=1500.0),
    33.0,
)


def run_utilization(num_slots: int = None, seed: int = 3) -> list:
    """Fig. 4a: utilization of the dedicated pool at peak traffic."""
    if num_slots is None:
        num_slots = scaled_slots(3000)
    rows = []
    for label, config, paper_util in (UL_ONLY_3CELLS, TDD_1CELL,
                                      TDD_2CELLS):
        result = run_simulation(config, "dedicated", workload="none",
                                load_fraction=1.0, num_slots=num_slots,
                                seed=seed)
        rows.append({
            "scenario": label,
            "num_cores": config.num_cores,
            "utilization": result.vran_utilization,
            "paper_utilization": paper_util / 100.0,
            "deadline_met": result.latency.miss_fraction < 1e-3,
        })
    return rows


def run_interference(num_slots: int = None, seed: int = 3) -> list:
    """Fig. 4b: 99.99 % latency of the yield-sharing baseline."""
    if num_slots is None:
        num_slots = scaled_slots(12_000)
    rows = []
    for label, config, __ in (UL_ONLY_3CELLS, TDD_1CELL, TDD_2CELLS):
        row = {"scenario": label, "deadline_us": config.deadline_us}
        for workload in ("none", "nginx", "redis"):
            result = run_simulation(config, "flexran", workload=workload,
                                    load_fraction=0.6,
                                    num_slots=num_slots, seed=seed)
            row[workload] = result.latency.p9999_us
        rows.append(row)
    return rows


def main(num_slots: int = None) -> str:
    util = run_utilization(None if num_slots is None else num_slots)
    util_rows = [
        [r["scenario"], r["num_cores"], f"{r['utilization'] * 100:.0f}%",
         f"{r['paper_utilization'] * 100:.0f}%"]
        for r in util
    ]
    out = format_table(
        ["config", "# cores", "avg CPU util (measured)", "paper"],
        util_rows, title="Figure 4a - vRAN CPU utilization at peak traffic")
    interference = run_interference(
        None if num_slots is None else num_slots)
    int_rows = [
        [r["scenario"], f"{r['deadline_us']:.0f}",
         f"{r['none']:.0f}", f"{r['nginx']:.0f}", f"{r['redis']:.0f}"]
        for r in interference
    ]
    out += "\n\n" + format_table(
        ["config", "deadline (us)", "isolated p99.99", "nginx p99.99",
         "redis p99.99"],
        int_rows,
        title="Figure 4b - slot deadline violations under collocation "
              "(vanilla FlexRAN)")
    return out


if __name__ == "__main__":
    print(main())

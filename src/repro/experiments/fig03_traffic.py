"""Figure 3: LTE cell traffic characteristics.

Reproduces the CDF of per-TTI transfer sizes for one cell and for a
3-cell aggregate (Fig. 3a) and the burstiness facts of §2.2: a single
cell is idle ~75 % of slots, the 3-cell aggregate ~20-45 %, the median
aggregate transfer is ~0.2 KB, and the tail is ~10× the median.
"""

from __future__ import annotations

import numpy as np

from ..analysis.stats import percentile_summary
from ..ran.traffic import lte_cell_traffic
from .common import format_table, scaled_slots

__all__ = ["run", "main"]


def run(num_slots: int = None, seed: int = 0) -> dict:
    """Generate the traces and compute the Fig. 3 statistics."""
    if num_slots is None:
        num_slots = scaled_slots(60_000, minimum=10_000)
    cells = [lte_cell_traffic(seed=seed + i).trace(num_slots)
             for i in range(3)]
    single = cells[0]
    aggregate = np.sum(cells, axis=0)

    def cdf_points(trace):
        busy = trace[trace > 0]
        return percentile_summary(busy / 1024.0,
                                  percentiles=(25, 50, 75, 90, 95, 99))

    return {
        "num_slots": num_slots,
        "single_idle_fraction": float((single == 0).mean()),
        "aggregate_idle_fraction": float((aggregate == 0).mean()),
        "single_cdf_kb": cdf_points(single),
        "aggregate_cdf_kb": cdf_points(aggregate),
        "aggregate_median_kb": float(np.median(aggregate) / 1024.0),
        "aggregate_p95_over_median": float(
            np.percentile(aggregate[aggregate > 0], 95)
            / np.median(aggregate[aggregate > 0])
        ),
    }


def main(num_slots: int = None) -> str:
    results = run(num_slots)
    rows = [
        ["single cell idle fraction", f"{results['single_idle_fraction']:.3f}",
         "0.75"],
        ["3-cell aggregate idle fraction",
         f"{results['aggregate_idle_fraction']:.3f}", "~0.20-0.45"],
        ["3-cell aggregate median (KB, all slots)",
         f"{results['aggregate_median_kb']:.2f}", "~0.2"],
        ["3-cell busy p95 / median",
         f"{results['aggregate_p95_over_median']:.1f}", ">= ~5-10"],
    ]
    table = format_table(["metric", "measured", "paper"], rows,
                         title="Figure 3 - LTE traffic characteristics")
    cdf_rows = [
        [f"p{p}", f"{results['single_cdf_kb'][f'p{p}']:.2f}",
         f"{results['aggregate_cdf_kb'][f'p{p}']:.2f}"]
        for p in (25, 50, 75, 90, 95, 99)
    ]
    table += "\n\n" + format_table(
        ["percentile", "1 cell (KB)", "3 cells (KB)"], cdf_rows,
        title="Fig. 3a CDF of busy-slot transfer sizes")
    return table


if __name__ == "__main__":
    print(main())

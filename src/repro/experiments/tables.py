"""Tables 1-5: configuration validation, task-cost breakdown, and the
hardware-accelerator extension measurements.

* Tables 1/2 are configuration constants (validated against the code).
* Table 5 — share of processing time per task type (decode >60 % of
  uplink, encode >40 % of downlink, etc.).
* Table 3 — with FPGA LDPC offload: minimum cores and average CPU
  utilization for 1-3 × 100 MHz TDD cells at peak traffic.
* Table 4 — average processing time of an uplink/downlink slot
  including the offload waits vs the CPU-only (non-offloaded) part.
"""

from __future__ import annotations

from collections import defaultdict

from ..accel.offload import (
    Accelerator,
    AcceleratorConfig,
    attach_accelerator,
    pool_100mhz_accel,
)
from ..baselines.flexran import DedicatedScheduler
from ..ran.config import pool_100mhz_2cells, pool_20mhz_7cells
from ..ran.tasks import DL_TASK_TYPES, UL_TASK_TYPES, TaskType
from ..sim.runner import Simulation
from .common import format_table, scaled_slots

__all__ = ["run_table5", "run_table3", "run_table4", "main"]


def run_table5(num_slots: int = None, seed: int = 5) -> dict:
    """Table 5: per-task share of UL/DL processing time at high load."""
    if num_slots is None:
        num_slots = scaled_slots(2500)
    config = pool_100mhz_2cells(num_cores=8)
    simulation = Simulation(config, DedicatedScheduler(), workload="none",
                            load_fraction=1.0, seed=seed)
    totals = defaultdict(float)
    simulation.pool.task_observer = lambda task: totals.__setitem__(
        task.task_type, totals[task.task_type] + task.runtime_us)
    simulation.run(num_slots)
    ul_total = sum(totals[t] for t in UL_TASK_TYPES)
    dl_total = sum(totals[t] for t in DL_TASK_TYPES)
    return {
        "uplink_shares": {t.value: totals[t] / ul_total
                          for t in UL_TASK_TYPES},
        "downlink_shares": {t.value: totals[t] / dl_total
                            for t in DL_TASK_TYPES},
    }


def run_table3(num_slots: int = None, seed: int = 5,
               cell_counts=(1, 2, 3), max_cores: int = 6) -> dict:
    """Table 3: min cores + utilization with FPGA LDPC acceleration."""
    if num_slots is None:
        num_slots = scaled_slots(3000)
    results = {}
    for num_cells in cell_counts:
        chosen = None
        for cores in range(1, max_cores + 1):
            config = pool_100mhz_accel(num_cells=num_cells,
                                       num_cores=cores)
            simulation = Simulation(config, DedicatedScheduler(),
                                    workload="none", load_fraction=1.0,
                                    seed=seed)
            # The FPGA is provisioned with pipelines for the cell count
            # (the paper's DE5-Net serves all cells of the testbed).
            accel_config = AcceleratorConfig(pipelines=2 * num_cells)
            attach_accelerator(simulation.pool,
                               Accelerator(simulation.engine, accel_config))
            result = simulation.run(num_slots)
            if result.latency.miss_fraction < 1e-3:
                chosen = (cores, result.vran_utilization)
                break
        if chosen is None:
            chosen = (max_cores, float("nan"))
        results[num_cells] = {
            "min_cores": chosen[0],
            "utilization": chosen[1],
        }
    return results


def run_table4(num_slots: int = None, seed: int = 5) -> dict:
    """Table 4: UL/DL slot times, offloaded vs non-offloaded parts.

    Single accelerated cell, single CPU core.  'Total' is the DAG
    completion latency (includes waiting on the FPGA); 'non-offloaded'
    is the CPU time of tasks that stayed on the core.
    """
    if num_slots is None:
        num_slots = scaled_slots(3000)
    config = pool_100mhz_accel(num_cells=1, num_cores=1,
                               deadline_us=4000.0)
    simulation = Simulation(config, DedicatedScheduler(), workload="none",
                            load_fraction=1.0, seed=seed)
    attach_accelerator(simulation.pool, Accelerator(simulation.engine))
    cpu_time = defaultdict(float)
    cpu_count = defaultdict(int)
    totals = defaultdict(list)

    def observe(task):
        key = "uplink" if task.dag.uplink else "downlink"
        if task.task_type not in (TaskType.LDPC_DECODE,
                                  TaskType.LDPC_ENCODE):
            cpu_time[key] += task.runtime_us
        dag = task.dag
        if dag.tasks_remaining == 0 and dag.latency_us is not None:
            totals[key].append(dag.latency_us)

    simulation.pool.task_observer = observe
    simulation.run(num_slots)
    # Count busy (non-idle) slots per direction for the averages.
    slots = {key: len(values) for key, values in totals.items()}
    return {
        key: {
            "avg_nonoffloaded_us": cpu_time[key] / max(1, slots[key]),
            "avg_total_us": sum(totals[key]) / max(1, slots[key]),
        }
        for key in ("uplink", "downlink")
    }


def main(num_slots: int = None) -> str:
    pool20, pool100 = pool_20mhz_7cells(), pool_100mhz_2cells()
    rows = [
        ["100MHz", len(pool100.cells), f"{pool100.num_cores}",
         f"{pool100.deadline_us:.0f}"],
        ["20MHz", len(pool20.cells), f"{pool20.num_cores}",
         f"{pool20.deadline_us:.0f}"],
    ]
    out = format_table(["bandwidth", "# cells", "# cores",
                        "deadline (us)"], rows,
                       title="Tables 1/2 - evaluated cell configurations")

    table5 = run_table5(num_slots)
    rows = [[name, f"{share * 100:.1f}%"]
            for name, share in sorted(table5["uplink_shares"].items(),
                                      key=lambda kv: -kv[1])]
    out += "\n\n" + format_table(
        ["uplink task", "share of UL time"], rows,
        title="Table 5 - uplink processing breakdown "
              "(paper: decode >60%, chanest >8%, equalization >5%, "
              "demod >6%)")
    rows = [[name, f"{share * 100:.1f}%"]
            for name, share in sorted(table5["downlink_shares"].items(),
                                      key=lambda kv: -kv[1])]
    out += "\n\n" + format_table(
        ["downlink task", "share of DL time"], rows,
        title="Table 5 - downlink processing breakdown "
              "(paper: encode >40%, precoding >15%, modulation >10%)")

    table3 = run_table3(num_slots)
    rows = [[cells, entry["min_cores"],
             f"{entry['utilization'] * 100:.1f}%"]
            for cells, entry in sorted(table3.items())]
    out += "\n\n" + format_table(
        ["# cells", "min CPU cores", "avg CPU utilization"], rows,
        title="Table 3 - FPGA LDPC acceleration "
              "(paper: 1/3/4 cores at 58/47/59% util)")

    table4 = run_table4(num_slots)
    rows = [
        [direction.capitalize(),
         f"{entry['avg_nonoffloaded_us']:.0f}",
         f"{entry['avg_total_us']:.0f}",
         f"{entry['avg_total_us'] / max(entry['avg_nonoffloaded_us'], 1e-9):.1f}x"]
        for direction, entry in table4.items()
    ]
    out += "\n\n" + format_table(
        ["direction", "non-offloaded CPU (us)", "total slot (us)",
         "ratio"],
        rows, title="Table 4 - slot times with FPGA offload, 1 core "
                    "(paper: UL 515/1414 ~2.7x, DL 196/366 ~1.9x)")
    return out


if __name__ == "__main__":
    print(main())

"""Long-run reliability validation (paper §6 methodology).

The paper validates 99.999 % reliability with 8-hour Mix-workload runs
(1.1-2.0 × 10⁸ scheduling events) and reports "no performance or
reliability differences ... between the long and the short tests".
This driver runs the same validation at a configurable scale: it
simulates the Mix workload against Concordia in windows, reports the
running miss count, and checks stationarity (no drift between the
first and second half of the run).
"""

from __future__ import annotations

from ..ran.config import pool_20mhz_7cells
from .common import get_predictor, make_policy, scaled_slots

__all__ = ["run", "main"]


def run(num_slots: int = None, num_windows: int = 4, seed: int = 19,
        load_fraction: float = 0.5) -> dict:
    """Windowed long-run validation.

    Returns per-window miss statistics plus the aggregate. Windows are
    independent seeded runs (the simulator is stationary, so windowing
    parallels the paper's continuous 8-hour run while bounding memory).
    """
    from ..sim.runner import Simulation

    if num_slots is None:
        num_slots = scaled_slots(10_000)
    config = pool_20mhz_7cells()
    predictor = get_predictor(config)
    windows = []
    total_slots = 0
    total_misses = 0
    worst_latency = 0.0
    for window in range(num_windows):
        policy = make_policy("concordia", config, predictor=predictor)
        simulation = Simulation(config, policy, workload="mix",
                                load_fraction=load_fraction,
                                seed=seed + window)
        result = simulation.run(num_slots)
        summary = result.latency
        windows.append({
            "window": window,
            "slots": summary.count,
            "misses": result.metrics.slot_deadlines_missed,
            "p99999_us": summary.p99999_us,
            "max_us": summary.max_us,
            "scheduling_events": result.scheduling_events,
        })
        total_slots += summary.count
        total_misses += result.metrics.slot_deadlines_missed
        worst_latency = max(worst_latency, summary.max_us)
    half = num_windows // 2
    first = sum(w["misses"] for w in windows[:half])
    second = sum(w["misses"] for w in windows[half:])
    return {
        "windows": windows,
        "total_slots": total_slots,
        "total_misses": total_misses,
        "miss_fraction": total_misses / max(total_slots, 1),
        "worst_latency_us": worst_latency,
        "deadline_us": config.deadline_us,
        "first_half_misses": first,
        "second_half_misses": second,
        "meets_five_nines": total_misses / max(total_slots, 1) <= 1e-5,
    }


def main(num_slots: int = None) -> str:
    results = run(num_slots)
    lines = [
        "Long-run reliability validation (Concordia + Mix workload)",
        f"total slot DAGs: {results['total_slots']:,}  misses: "
        f"{results['total_misses']}  "
        f"(fraction {results['miss_fraction']:.2e})",
        f"worst latency: {results['worst_latency_us']:.0f} us "
        f"(deadline {results['deadline_us']:.0f})",
        f"first/second half misses: {results['first_half_misses']} / "
        f"{results['second_half_misses']} (stationarity check)",
        f"meets 99.999%: {'yes' if results['meets_five_nines'] else 'NO'}",
    ]
    for window in results["windows"]:
        lines.append(
            f"  window {window['window']}: {window['slots']:,} slots, "
            f"{window['misses']} misses, p99.999="
            f"{window['p99999_us']:.0f} us, "
            f"{window['scheduling_events']:,} sched events"
        )
    return "\n".join(lines)


if __name__ == "__main__":
    print(main())

"""Sensitivity analysis: are the conclusions robust to model constants?

The reproduction rests on calibrated stochastic models (task-runtime
noise, kernel-stall probability, cache-pressure constants).  This
driver perturbs each knob around its calibrated value and re-measures
the paper's two headline quantities — Concordia's deadline reliability
and the Concordia-vs-FlexRAN tail gap — to show the *conclusions* are
not artifacts of specific constants.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from ..baselines.flexran import FlexRanScheduler
from ..core.scheduler import ConcordiaScheduler
from ..ran.config import pool_20mhz_7cells
from ..sim.osmodel import (
    COLLOCATED_BUCKETS,
    LatencyBucket,
    WakeupLatencyModel,
)
from ..sim.runner import Simulation
from .common import format_table, get_predictor, scaled_slots

__all__ = ["run", "main", "KNOBS"]

#: Perturbation factors applied to each knob.
FACTORS = (0.5, 1.0, 2.0)

KNOBS = ("runtime_noise", "kernel_stall_prob", "cache_pressure")


def _scaled_buckets(factor: float):
    """Scale the probability of the >400 µs kernel-stall buckets."""
    buckets = []
    moved = 0.0
    for bucket in COLLOCATED_BUCKETS:
        if bucket.low_us >= 400.0:
            scaled = bucket.probability * factor
            moved += bucket.probability - scaled
            buckets.append(LatencyBucket(scaled, bucket.low_us,
                                         bucket.high_us))
        else:
            buckets.append(bucket)
    # Re-deposit the moved mass in the first (fast) bucket to keep the
    # mixture normalized.
    first = buckets[0]
    buckets[0] = LatencyBucket(first.probability + moved, first.low_us,
                               first.high_us)
    return tuple(buckets)


def _run_pair(knob: str, factor: float, num_slots: int, seed: int) -> dict:
    """Concordia + FlexRAN under one perturbed model."""
    config = pool_20mhz_7cells()
    predictor = get_predictor(config)
    out = {}
    for policy_name in ("concordia", "flexran"):
        policy = ConcordiaScheduler(predictor) if policy_name == "concordia" \
            else FlexRanScheduler()
        simulation = Simulation(config, policy, workload="redis",
                                load_fraction=0.5, seed=seed)
        if knob == "runtime_noise":
            simulation.cost_model.noise_sigma *= factor
        elif knob == "kernel_stall_prob":
            simulation.pool.os_model = WakeupLatencyModel(
                rng=np.random.default_rng(seed + 1),
                collocated_buckets=_scaled_buckets(factor),
            )
        elif knob == "cache_pressure":
            base = simulation.pool.cache_model.pressure
            simulation.pool.cache_model.set_pressure(
                min(1.0, base * factor))
            # Freeze the host's pressure sync so the perturbation holds.
            simulation.host.cache_model = None
        else:
            raise ValueError(f"unknown knob {knob}")
        result = simulation.run(num_slots)
        out[policy_name] = result
    return out


def run(num_slots: int = None, seed: int = 13) -> dict:
    if num_slots is None:
        num_slots = scaled_slots(4000)
    results = {}
    for knob in KNOBS:
        for factor in FACTORS:
            pair = _run_pair(knob, factor, num_slots, seed)
            concordia = pair["concordia"].latency
            flexran = pair["flexran"].latency
            results[(knob, factor)] = {
                "concordia_miss": concordia.miss_fraction,
                "concordia_p99999_us": concordia.p99999_us,
                "flexran_miss": flexran.miss_fraction,
                "flexran_p99999_us": flexran.p99999_us,
                "tail_gap": flexran.p99999_us / max(concordia.p99999_us,
                                                    1e-9),
                "reclaimed": pair["concordia"].reclaimed_fraction,
            }
    return results


def main(num_slots: int = None) -> str:
    results = run(num_slots)
    rows = []
    for (knob, factor), entry in sorted(results.items()):
        rows.append([
            knob, f"x{factor}",
            f"{entry['concordia_miss']:.1e}",
            f"{entry['flexran_miss']:.1e}",
            f"{entry['tail_gap']:.1f}x",
            f"{entry['reclaimed'] * 100:.0f}%",
        ])
    return format_table(
        ["model knob", "scale", "Concordia miss", "FlexRAN miss",
         "FlexRAN/Concordia p99.999", "Concordia reclaim"],
        rows,
        title="Sensitivity: headline conclusions under perturbed model "
              "constants (20MHz + Redis @ 50% load)")


if __name__ == "__main__":
    print(main())

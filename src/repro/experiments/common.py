"""Shared infrastructure for the per-figure experiment drivers.

Every experiment in :mod:`repro.experiments` reproduces one table or
figure from the paper.  They share:

* a predictor cache (offline training is expensive and reusable) —
  process-local, and persisted through :mod:`repro.exec`'s on-disk
  cache when one is active so parallel workers and later runs reload
  instead of re-training;
* policy factories by name;
* a slot-budget scale — set the ``REPRO_SCALE`` environment variable to
  run longer (e.g. ``REPRO_SCALE=10`` for tighter tail percentiles) or
  shorter experiments than the defaults;
* spec-batch execution (:func:`make_spec` / :func:`run_spec_batch`):
  drivers submit their simulation grids to :func:`repro.exec.run_batch`
  and parallelize via ``--jobs`` / ``REPRO_JOBS``;
* plain-text table rendering for the benchmark reports.
"""

from __future__ import annotations

import math
import os
from typing import Optional, Sequence

from ..core.predictor import ConcordiaPredictor
from ..core.training import train_predictor
from ..exec.cache import active_cache
from ..exec.fingerprint import model_fingerprint
from ..exec.spec import (
    SimSpec,
    SpecError,
    execute_spec,
    pool_config_to_dict,
    predictor_cache_key,
    spec_key,
)
from ..ran.config import PoolConfig
from ..scenario import Scenario, build_policy, build_simulation
from ..sim.runner import SimulationResult

__all__ = [
    "scaled_slots",
    "repro_scale",
    "get_predictor",
    "make_policy",
    "make_spec",
    "run_simulation",
    "run_spec_batch",
    "format_table",
]

_PREDICTOR_CACHE: dict = {}

#: Default slots used for offline profiling when training predictors.
TRAINING_SLOTS = 800


def repro_scale() -> float:
    """The validated ``REPRO_SCALE`` multiplier (default 1.0)."""
    raw = os.environ.get("REPRO_SCALE")
    if raw is None:
        return 1.0
    try:
        scale = float(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_SCALE must be a positive number, got {raw!r}"
        ) from None
    if not math.isfinite(scale) or scale <= 0:
        raise ValueError(
            f"REPRO_SCALE must be a positive number, got {raw!r}")
    return scale


def scaled_slots(default: int, minimum: int = 200) -> int:
    """Apply the REPRO_SCALE environment multiplier to a slot budget."""
    return max(minimum, int(default * repro_scale()))


def _config_key(config: PoolConfig) -> tuple:
    return (
        tuple((c.name, c.bandwidth_mhz, c.duplex.value, c.numerology)
              for c in config.cells),
        config.num_cores,
    )


def _training_slots(num_slots: Optional[int]) -> int:
    return num_slots if num_slots is not None else \
        scaled_slots(TRAINING_SLOTS, minimum=300)


def get_predictor(config: PoolConfig, seed: int = 42,
                  num_slots: Optional[int] = None) -> ConcordiaPredictor:
    """Train (or fetch from cache) the offline predictor for a config.

    Keyed explicitly on (config, seed, training slots) — two different
    training budgets never alias.  When a result cache is active
    (``REPRO_CACHE=1`` or a batch run), the trained model is pickled
    to disk so other worker processes and later sessions reload it
    instead of re-training.
    """
    slots = _training_slots(num_slots)
    key = (_config_key(config), seed, slots)
    if key not in _PREDICTOR_CACHE:
        cache = active_cache()
        cache_path = None
        if cache is not None:
            cache_path = cache.predictor_path(
                predictor_cache_key(config, seed, slots,
                                    model_fingerprint()))
        _PREDICTOR_CACHE[key] = train_predictor(
            config, num_slots=slots, seed=seed, cache_path=cache_path)
    return _PREDICTOR_CACHE[key]


def make_policy(name: str, config: PoolConfig, seed: int = 42, **kwargs):
    """Instantiate a scheduling policy by name.

    Thin wrapper over :func:`repro.scenario.build_policy` kept for the
    experiment drivers; the scenario layer owns the name → class map.
    """
    return build_policy(name, config, seed=seed, **kwargs)


def make_spec(
    config: PoolConfig,
    policy_name: str,
    workload: str = "none",
    load_fraction: float = 0.5,
    num_slots: int = 2000,
    seed: int = 7,
    policy_kwargs: Optional[dict] = None,
    **sim_kwargs,
) -> SimSpec:
    """Declarative :class:`SimSpec` for one ``run_simulation`` call.

    Raises :class:`SpecError` when the call cannot be expressed
    declaratively (e.g. a live predictor object in ``policy_kwargs``).
    The predictor-training budget is resolved *now*, so the spec is
    hermetic with respect to ``REPRO_SCALE`` at submission time.
    """
    training_slots = None
    policy_kwargs = dict(policy_kwargs or {})
    if policy_name == "concordia" and "predictor" not in policy_kwargs:
        training_slots = _training_slots(None)
    return SimSpec(
        config=pool_config_to_dict(config),
        policy=policy_name,
        workload=workload,
        load_fraction=load_fraction,
        num_slots=num_slots,
        seed=seed,
        policy_kwargs=policy_kwargs,
        sim_kwargs=sim_kwargs,
        training_slots=training_slots,
        training_seed=42,
    )


def run_simulation(
    config: PoolConfig,
    policy_name: str,
    workload: str = "none",
    load_fraction: float = 0.5,
    num_slots: int = 2000,
    seed: int = 7,
    policy_kwargs: Optional[dict] = None,
    use_cache: Optional[bool] = None,
    **sim_kwargs,
) -> SimulationResult:
    """One full experiment run with a named policy.

    When a result cache is active (``REPRO_CACHE=1``, a ``repro
    sweep``, or an :func:`repro.exec.cache.activated_cache` scope), the
    call is routed through it: a hit returns the stored result without
    simulating, a miss executes hermetically and stores the artifact.
    Cached results carry ``metrics=None``/``pool=None`` — callers that
    consume those live objects must pass ``use_cache=False``.
    Calls that cannot be expressed as a spec (live objects in
    ``policy_kwargs``, ``record_tasks=True``) silently bypass the
    cache.
    """
    cache = None
    if use_cache is not False and not sim_kwargs.get("record_tasks"):
        cache = active_cache()
    if cache is not None:
        try:
            spec = make_spec(config, policy_name, workload=workload,
                             load_fraction=load_fraction,
                             num_slots=num_slots, seed=seed,
                             policy_kwargs=policy_kwargs, **sim_kwargs)
        except SpecError:
            spec = None
        if spec is not None:
            key = spec_key(spec, model_fingerprint())
            artifact = cache.get(key)
            if artifact is not None:
                try:
                    return SimulationResult.from_dict(artifact["result"])
                except ValueError:
                    # Result-schema bump since the artifact was written:
                    # treat as a miss and re-execute rather than crash.
                    artifact = None
            payload = execute_spec(spec)
            cache.put(key, {
                "schema": 1,
                "key": key,
                "fingerprint": model_fingerprint(),
                "spec": spec.to_dict(),
                "result": payload,
                "meta": {},
            })
            return SimulationResult.from_dict(payload)

    from ..exec.spec import _scenario_kwargs

    scenario = Scenario(
        pool=config,
        policy=policy_name,
        policy_params={},
        workload=workload,
        load_fraction=load_fraction,
        seed=seed,
        **_scenario_kwargs(sim_kwargs),
    )
    policy_kwargs = dict(policy_kwargs or {})
    predictor = policy_kwargs.pop("predictor", None)
    scenario.policy_params = policy_kwargs
    simulation = build_simulation(scenario, predictor=predictor,
                                  policy_seed=42)
    return simulation.run(num_slots)


def run_spec_batch(specs: Sequence[SimSpec], jobs: Optional[int] = None,
                   **batch_kwargs) -> list:
    """Execute a driver's spec grid; returns ``SimulationResult``s.

    ``jobs=None`` honours ``REPRO_JOBS`` (default 1 = serial, in
    submission order).  Raises if any job failed — drivers want all
    their grid points.
    """
    from ..exec.batch import run_batch

    report = run_batch(specs, jobs=jobs, **batch_kwargs)
    return report.results(strict=True)


def format_table(headers: list, rows: list, title: str = "") -> str:
    """Render an aligned plain-text table."""
    columns = [headers] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in columns)
              for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in columns[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)

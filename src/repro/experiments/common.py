"""Shared infrastructure for the per-figure experiment drivers.

Every experiment in :mod:`repro.experiments` reproduces one table or
figure from the paper.  They share:

* a predictor cache (offline training is expensive and reusable);
* policy factories by name;
* a slot-budget scale — set the ``REPRO_SCALE`` environment variable to
  run longer (e.g. ``REPRO_SCALE=10`` for tighter tail percentiles) or
  shorter experiments than the defaults;
* plain-text table rendering for the benchmark reports.
"""

from __future__ import annotations

import os
from typing import Optional

from ..baselines.flexran import DedicatedScheduler, FlexRanScheduler
from ..baselines.shenango import ShenangoScheduler
from ..baselines.static import StaticPartitionScheduler
from ..baselines.utilization import UtilizationScheduler
from ..core.predictor import ConcordiaPredictor
from ..core.scheduler import ConcordiaScheduler
from ..core.training import train_predictor
from ..ran.config import PoolConfig
from ..sim.runner import Simulation, SimulationResult

__all__ = [
    "scaled_slots",
    "get_predictor",
    "make_policy",
    "run_simulation",
    "format_table",
]

_PREDICTOR_CACHE: dict = {}

#: Default slots used for offline profiling when training predictors.
TRAINING_SLOTS = 800


def scaled_slots(default: int, minimum: int = 200) -> int:
    """Apply the REPRO_SCALE environment multiplier to a slot budget."""
    scale = float(os.environ.get("REPRO_SCALE", "1.0"))
    return max(minimum, int(default * scale))


def _config_key(config: PoolConfig) -> tuple:
    return (
        tuple((c.name, c.bandwidth_mhz, c.duplex.value, c.numerology)
              for c in config.cells),
        config.num_cores,
    )


def get_predictor(config: PoolConfig, seed: int = 42,
                  num_slots: Optional[int] = None) -> ConcordiaPredictor:
    """Train (or fetch from cache) the offline predictor for a config."""
    key = (_config_key(config), seed)
    if key not in _PREDICTOR_CACHE:
        slots = num_slots if num_slots is not None else \
            scaled_slots(TRAINING_SLOTS, minimum=300)
        _PREDICTOR_CACHE[key] = train_predictor(config, num_slots=slots,
                                                seed=seed)
    return _PREDICTOR_CACHE[key]


def make_policy(name: str, config: PoolConfig, seed: int = 42, **kwargs):
    """Instantiate a scheduling policy by name."""
    if name == "concordia":
        predictor = kwargs.pop("predictor", None)
        if predictor is None:
            predictor = get_predictor(config, seed=seed)
        return ConcordiaScheduler(predictor, **kwargs)
    if name == "concordia-noml":
        return ConcordiaScheduler(predictor=None, **kwargs)
    if name == "flexran":
        return FlexRanScheduler()
    if name == "dedicated":
        return DedicatedScheduler()
    if name == "shenango":
        return ShenangoScheduler(**kwargs)
    if name == "static":
        kwargs.setdefault("reserved_cores", max(1, config.num_cores // 2))
        return StaticPartitionScheduler(**kwargs)
    if name == "utilization":
        kwargs.setdefault("slot_duration_us", config.slot_duration_us)
        return UtilizationScheduler(**kwargs)
    raise ValueError(f"unknown policy {name!r}")


def run_simulation(
    config: PoolConfig,
    policy_name: str,
    workload: str = "none",
    load_fraction: float = 0.5,
    num_slots: int = 2000,
    seed: int = 7,
    policy_kwargs: Optional[dict] = None,
    **sim_kwargs,
) -> SimulationResult:
    """One full experiment run with a named policy."""
    policy = make_policy(policy_name, config, seed=42,
                         **(policy_kwargs or {}))
    simulation = Simulation(config, policy, workload=workload,
                            load_fraction=load_fraction, seed=seed,
                            **sim_kwargs)
    return simulation.run(num_slots)


def format_table(headers: list, rows: list, title: str = "") -> str:
    """Render an aligned plain-text table."""
    columns = [headers] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in columns)
              for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in columns[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)

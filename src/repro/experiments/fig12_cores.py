"""Figure 12: effect of vRAN pool size on Concordia's tail latency.

With a continuously running Mix workload (Nginx + Redis + TPCC), the
20 MHz configuration meets 99.999 % with 8 cores, while the 100 MHz
configuration needs one extra core (9) to recover 99.999 % from
99.99 %: more cores give the 20 µs compensation loop spare capacity
when an already-scheduled core is slow to wake.
"""

from __future__ import annotations

from ..ran.config import pool_100mhz_2cells, pool_20mhz_7cells
from .common import format_table, run_simulation, scaled_slots

__all__ = ["run", "main"]


def run(num_slots: int = None, load_fraction: float = 0.6,
        seed: int = 7) -> dict:
    results = {}
    for label, factory, slots_default in (
        ("20MHz", pool_20mhz_7cells, 8000),
        ("100MHz", pool_100mhz_2cells, 16000),
    ):
        slots = num_slots if num_slots is not None else \
            scaled_slots(slots_default)
        for cores in (8, 9):
            config = factory(num_cores=cores)
            result = run_simulation(config, "concordia", workload="mix",
                                    load_fraction=load_fraction,
                                    num_slots=slots, seed=seed)
            summary = result.latency
            results[(label, cores)] = {
                "p9999_us": summary.p9999_us,
                "p99999_us": summary.p99999_us,
                "deadline_us": summary.deadline_us,
                "miss_fraction": summary.miss_fraction,
                "meets_five_nines": summary.meets_five_nines,
            }
    return results


def main(num_slots: int = None) -> str:
    results = run(num_slots)
    out = []
    for label in ("20MHz", "100MHz"):
        rows = []
        for cores in (8, 9):
            entry = results[(label, cores)]
            rows.append([
                f"{cores} cores",
                f"{entry['p9999_us']:.0f}",
                f"{entry['p99999_us']:.0f}",
                "yes" if entry["meets_five_nines"] else "NO",
            ])
        deadline = results[(label, 8)]["deadline_us"]
        out.append(format_table(
            ["pool size", "p99.99 (us)", "p99.999 (us)", "meets 99.999%"],
            rows,
            title=f"Figure 12 - Concordia with Mix workload, {label} "
                  f"(deadline {deadline:.0f} us)"))
    return "\n\n".join(out)


if __name__ == "__main__":
    print(main())

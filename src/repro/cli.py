"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run``     — one simulation (policy x workload x load), JSON/text out;
* ``sweep``   — a grid of simulations through the parallel batch
  runner and its persistent result cache (``--jobs N``,
  ``--no-cache``, ``--cache-dir``);
* ``train``   — run the offline phase and report the fitted models;
* ``figure``  — regenerate one of the paper's tables/figures;
* ``trace``   — run one simulation with the event bus on and export a
  Chrome ``trace_event`` JSON (chrome://tracing / Perfetto) plus flat
  metric dumps;
* ``postmortem`` — run one simulation and audit its worst slot:
  which of wakeup latency, WCET under-prediction or cross-cell
  queueing dominated the (near-)miss;
* ``fleet``   — run a metro deployment (N cells sharded K ways)
  through the fleet planner and its persistent worker pool
  (``--jobs J``), with an optional serial byte-identity check
  (``--verify-serial``);
* ``bench``   — hot-path throughput benchmark / CI guard / profiler
  (see :mod:`repro.bench`);
* ``list``    — enumerate available policies, workloads and figures.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from . import bench
from .experiments import (
    dag_structure,
    fig03_traffic,
    fig04_motivation,
    fig06_ldpc,
    fig07_leaves,
    fig08_reclaim,
    fig09_cache,
    fig10_sched_latency,
    fig11_tail_latency,
    fig12_cores,
    fig13_pwcet,
    fig14_prediction,
    fig15_overhead,
    longrun,
    sensitivity,
    tables,
)
from .scenario import NAMED_POOLS, POLICY_NAMES
from .workloads.catalog import SCENARIOS

__all__ = ["main", "build_parser"]

POLICIES = POLICY_NAMES

CONFIGS = NAMED_POOLS

FIGURES = {
    "fig1": dag_structure.main,
    "fig3": fig03_traffic.main,
    "fig4": fig04_motivation.main,
    "fig6": fig06_ldpc.main,
    "fig7": fig07_leaves.main,
    "fig8": fig08_reclaim.main,
    "fig9": fig09_cache.main,
    "fig10": fig10_sched_latency.main,
    "fig11": fig11_tail_latency.main,
    "fig12": fig12_cores.main,
    "fig13": fig13_pwcet.main,
    "fig14": fig14_prediction.main,
    "fig15": fig15_overhead.main,
    "tables": tables.main,
    "longrun": longrun.main,
    "sensitivity": sensitivity.main,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Concordia (SIGCOMM 2021) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_cmd = sub.add_parser("run", help="run one simulation")
    run_cmd.add_argument("--config", choices=sorted(CONFIGS),
                         default="20mhz")
    run_cmd.add_argument("--policy", choices=POLICIES, default="concordia")
    run_cmd.add_argument("--workload", choices=SCENARIOS, default="none")
    run_cmd.add_argument("--load", type=float, default=0.5,
                         help="cell load fraction in [0, 1]")
    run_cmd.add_argument("--slots", type=int, default=4000)
    run_cmd.add_argument("--seed", type=int, default=7)
    run_cmd.add_argument("--cores", type=int, default=None,
                         help="override the pool's core count")
    run_cmd.add_argument("--mac", action="store_true",
                         help="use the MAC-layer allocation pipeline")
    run_cmd.add_argument("--harq", action="store_true",
                         help="model HARQ retransmissions on the uplink")
    run_cmd.add_argument("--json", action="store_true",
                         help="emit machine-readable JSON")

    sweep_cmd = sub.add_parser(
        "sweep",
        help="run a simulation grid through the parallel batch runner")
    sweep_cmd.add_argument("--config", choices=("20mhz", "100mhz", "both"),
                           default="both")
    sweep_cmd.add_argument("--policy", choices=POLICIES,
                           default="concordia")
    sweep_cmd.add_argument("--workload", choices=SCENARIOS, default="mix")
    sweep_cmd.add_argument("--loads", default="0.05,0.25,0.5,0.75,1.0",
                           help="comma-separated cell load fractions")
    sweep_cmd.add_argument("--slots", type=int, default=None,
                           help="slots per run (default: the "
                                "figure-8 budgets, REPRO_SCALE-scaled)")
    sweep_cmd.add_argument("--seeds", default="7",
                           help="comma-separated simulation seeds")
    sweep_cmd.add_argument("--cores", type=int, default=None,
                           help="override the pool's core count")
    sweep_cmd.add_argument("--jobs", type=int, default=None,
                           help="worker processes (default: REPRO_JOBS "
                                "or 1 = serial)")
    sweep_cmd.add_argument("--no-cache", action="store_true",
                           help="bypass the persistent result cache")
    sweep_cmd.add_argument("--cache-dir", default=None,
                           help="result cache directory "
                                "(default: REPRO_CACHE_DIR or "
                                "results/cache)")
    sweep_cmd.add_argument("--timeout", type=float, default=None,
                           help="per-job timeout in seconds "
                                "(parallel mode only)")
    sweep_cmd.add_argument("--retries", type=int, default=1,
                           help="retry budget per crashed job")
    sweep_cmd.add_argument("--engine", choices=("event", "array"),
                           default="event",
                           help="slot engine: classic event heap or "
                                "the certified array-timeline kernel")
    sweep_cmd.add_argument("--json", action="store_true",
                           help="emit machine-readable JSON")

    train_cmd = sub.add_parser("train", help="run the offline phase")
    train_cmd.add_argument("--config", choices=sorted(CONFIGS),
                           default="20mhz")
    train_cmd.add_argument("--slots", type=int, default=800)
    train_cmd.add_argument("--seed", type=int, default=42)

    figure_cmd = sub.add_parser("figure",
                                help="regenerate a paper table/figure")
    figure_cmd.add_argument("name", choices=sorted(FIGURES))

    def add_sim_options(cmd) -> None:
        cmd.add_argument("--config", choices=sorted(CONFIGS),
                         default="20mhz")
        cmd.add_argument("--policy", choices=POLICIES,
                         default="concordia-noml")
        cmd.add_argument("--workload", choices=SCENARIOS, default="none")
        cmd.add_argument("--load", type=float, default=0.5,
                         help="cell load fraction in [0, 1]")
        cmd.add_argument("--slots", type=int, default=400)
        cmd.add_argument("--seed", type=int, default=7)
        cmd.add_argument("--cores", type=int, default=None,
                         help="override the pool's core count")

    trace_cmd = sub.add_parser(
        "trace",
        help="record one simulation and export a Chrome trace")
    add_sim_options(trace_cmd)
    trace_cmd.add_argument("--out", default="results/trace.json",
                           help="Chrome trace_event output path")
    trace_cmd.add_argument("--metrics-out", default=None,
                           help="also dump the telemetry registry "
                                "(.json or .csv, by extension)")

    pm_cmd = sub.add_parser(
        "postmortem",
        help="audit the worst slot of one recorded simulation")
    add_sim_options(pm_cmd)
    pm_cmd.add_argument("--dag", type=int, default=None,
                        help="audit this DAG id instead of the worst")
    pm_cmd.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON")

    fleet_cmd = sub.add_parser(
        "fleet",
        help="run a sharded metro fleet through the planner")
    fleet_cmd.add_argument("--cells", type=int, required=True,
                           help="total cells in the metro deployment")
    fleet_cmd.add_argument("--shards", type=int, default=1,
                           help="per-server cell-shards (1..cells)")
    fleet_cmd.add_argument("--jobs", type=int, default=1,
                           help="persistent worker processes "
                                "(1 = in-process serial)")
    fleet_cmd.add_argument("--slots", type=int, default=400)
    fleet_cmd.add_argument("--kind", choices=("20mhz", "100mhz"),
                           default="20mhz",
                           help="reference cell kind (Table 1/2)")
    fleet_cmd.add_argument("--policy", choices=POLICIES,
                           default="concordia-noml")
    fleet_cmd.add_argument("--workload", choices=SCENARIOS,
                           default="none")
    fleet_cmd.add_argument("--load", type=float, default=0.5,
                           help="cell load fraction in [0, 1]")
    fleet_cmd.add_argument("--seed", type=int, default=0)
    fleet_cmd.add_argument("--cores-per-cell", type=float, default=None,
                           help="override the kind's provisioning ratio")
    fleet_cmd.add_argument("--engine", choices=("event", "array"),
                           default="event",
                           help="slot engine for every shard simulation")
    fleet_cmd.add_argument("--reconfig", metavar="SCRIPT",
                           help="JSON reconfig timeline (worker "
                                "add/remove, cell detach/attach, "
                                "mid-run migrate between shards)")
    fleet_cmd.add_argument("--verify-serial", action="store_true",
                           help="re-run unsharded+serial and require "
                                "byte-identical per-cell digests")
    fleet_cmd.add_argument("--json", action="store_true",
                           help="emit the full fleet report as JSON")

    bench_cmd = sub.add_parser(
        "bench",
        help="hot-path throughput benchmark, CI guard and profiler")
    bench.add_bench_arguments(bench_cmd)

    sub.add_parser("list", help="list policies, workloads and figures")
    return parser


def _scenario_from_args(args, **overrides):
    """Build the Scenario described by one CLI invocation.

    The pool stays a symbolic named reference (``{"name": "20mhz"}``)
    so a serialized result records the deployment the way the user
    asked for it.
    """
    from .scenario import Scenario

    pool = {"name": args.config}
    if args.cores is not None:
        pool["num_cores"] = args.cores
    return Scenario(
        pool=pool,
        policy=args.policy,
        workload=args.workload,
        load_fraction=args.load,
        seed=args.seed,
        **overrides,
    )


def _cmd_run(args) -> int:
    from .scenario import build_simulation

    scenario = _scenario_from_args(
        args,
        allocation="mac" if args.mac else "iid",
        harq=args.harq,
    )
    simulation = build_simulation(scenario)
    result = simulation.run(args.slots)
    latency = result.latency
    payload = {
        "config": args.config,
        "policy": args.policy,
        "workload": args.workload,
        "load": args.load,
        "slots": args.slots,
        "latency_us": {
            "mean": latency.mean_us,
            "p99": latency.p99_us,
            "p99.99": latency.p9999_us,
            "p99.999": latency.p99999_us,
            "max": latency.max_us,
            "deadline": latency.deadline_us,
        },
        "miss_fraction": latency.miss_fraction,
        "reclaimed_fraction": result.reclaimed_fraction,
        "idle_upper_bound": result.idle_upper_bound,
        "scheduling_events": result.scheduling_events,
        "workload_rates_per_s": result.workload_rates_per_s,
        "harq": result.harq,
    }
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(f"{args.policy} + {args.workload} on {args.config} "
              f"@ {args.load * 100:.0f}% load ({args.slots} slots)")
        print(f"  latency mean/p99.99/p99.999: {latency.mean_us:.0f} / "
              f"{latency.p9999_us:.0f} / {latency.p99999_us:.0f} us "
              f"(deadline {latency.deadline_us:.0f})")
        print(f"  deadline misses: {latency.miss_fraction:.2e}")
        print(f"  reclaimed CPU:   {result.reclaimed_fraction * 100:.1f}% "
              f"(upper bound {result.idle_upper_bound * 100:.1f}%)")
        for name, rate in result.workload_rates_per_s.items():
            print(f"  {name}: {rate:,.0f} ops/s")
    return 0


def _cmd_sweep(args) -> int:
    from .exec.batch import run_batch
    from .exec.cache import ResultCache, default_cache_dir
    from .experiments.common import make_spec, scaled_slots

    try:
        loads = [float(v) for v in args.loads.split(",") if v.strip()]
        seeds = [int(v) for v in args.seeds.split(",") if v.strip()]
    except ValueError:
        print("error: --loads/--seeds must be comma-separated numbers",
              file=sys.stderr)
        return 2
    config_names = (sorted(CONFIGS) if args.config == "both"
                    else [args.config])
    specs, meta = [], []
    for name in config_names:
        factory = CONFIGS[name]
        config = factory() if args.cores is None else \
            factory(num_cores=args.cores)
        slots = args.slots if args.slots is not None else \
            scaled_slots(2500 if name == "20mhz" else 5000)
        for seed in seeds:
            for load in loads:
                specs.append(make_spec(config, args.policy,
                                       workload=args.workload,
                                       load_fraction=load,
                                       num_slots=slots, seed=seed,
                                       engine_mode=args.engine))
                meta.append({"config": name, "load": load, "seed": seed,
                             "slots": slots})

    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir if args.cache_dir is not None
                            else default_cache_dir())

    def progress(event) -> None:
        if args.json:
            return
        status = event["status"]
        line = (f"[{event['done']}/{event['total']}] {status:<7s} "
                f"{event['label']}")
        if status not in ("cached",):
            line += f"  ({event['wall_s']:.1f}s)"
        if event["error"]:
            line += f"  {event['error']}"
        print(line, file=sys.stderr)

    report = run_batch(specs, jobs=args.jobs, cache=cache,
                       use_cache=not args.no_cache,
                       timeout_s=args.timeout, retries=args.retries,
                       progress=progress)

    rows = []
    for entry, outcome in zip(meta, report.outcomes):
        row = dict(entry)
        row["status"] = outcome.status
        row["wall_s"] = round(outcome.wall_s, 3)
        if outcome.succeeded:
            result = outcome.result
            row["p99999_us"] = result["latency"]["p99999_us"]
            row["miss_fraction"] = result["latency"]["miss_fraction"]
            row["reclaimed_fraction"] = result["reclaimed_fraction"]
        else:
            row["error"] = outcome.error
        rows.append(row)

    if args.json:
        print(json.dumps({
            "summary": {
                "jobs": report.jobs,
                "total": len(report.outcomes),
                "executed": report.executed,
                "cached": report.cached,
                "failed": report.failed,
                "retried": report.retried,
                "batch_wall_s": report.batch_wall_s,
                "total_job_wall_s": report.total_job_wall_s,
                "speedup": report.speedup,
                "fingerprint": report.fingerprint,
            },
            "results": rows,
        }, indent=2))
    else:
        print(report.summary())
        for row in rows:
            if row["status"] in ("ok", "cached"):
                print(f"  {row['config']} load={row['load']:.2f} "
                      f"seed={row['seed']}: "
                      f"p99.999={row['p99999_us']:.0f}us "
                      f"miss={row['miss_fraction']:.2e} "
                      f"reclaimed={row['reclaimed_fraction'] * 100:.1f}% "
                      f"[{row['status']}]")
            else:
                print(f"  {row['config']} load={row['load']:.2f} "
                      f"seed={row['seed']}: {row['status']} "
                      f"— {row.get('error')}")
    return 0 if report.failed == 0 else 1


def _cmd_train(args) -> int:
    from .core.training import train_predictor

    config = CONFIGS[args.config]()
    predictor = train_predictor(config, num_slots=args.slots,
                                seed=args.seed)
    print(f"trained {len(predictor.models)} task models "
          f"({args.slots} profiling slots)")
    for task_type, model in sorted(predictor.models.items(),
                                   key=lambda kv: kv[0].value):
        selected = predictor.selected_features[task_type]
        leaves = getattr(getattr(model, "tree", None), "num_leaves", "-")
        print(f"  {task_type.value:20s} features={len(selected)} "
              f"leaves={leaves}")
    return 0


def _cmd_figure(args) -> int:
    print(FIGURES[args.name]())
    return 0


def _recorded_simulation(args):
    """Run one simulation with the event bus enabled; returns
    (result, bus)."""
    from .obs.events import EventBus
    from .scenario import build_simulation

    bus = EventBus()
    simulation = build_simulation(_scenario_from_args(args), event_bus=bus)
    result = simulation.run(args.slots)
    return result, bus


def _cmd_trace(args) -> int:
    import os

    from .obs.export import (write_chrome_trace, write_metrics_csv,
                             write_metrics_json)

    result, bus = _recorded_simulation(args)
    out_dir = os.path.dirname(args.out)
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
    write_chrome_trace(args.out, bus.events)
    print(f"{len(bus.events)} events ({bus.dropped} dropped) -> "
          f"{args.out}")
    print("open in chrome://tracing or https://ui.perfetto.dev")
    if args.metrics_out:
        writer = write_metrics_csv if \
            args.metrics_out.endswith(".csv") else write_metrics_json
        writer(args.metrics_out, result.telemetry)
        print(f"telemetry -> {args.metrics_out}")
    latency = result.latency
    print(f"  p99.99={latency.p9999_us:.0f}us "
          f"miss={latency.miss_fraction:.2e} "
          f"reclaimed={result.reclaimed_fraction * 100:.1f}%")
    return 0


def _cmd_postmortem(args) -> int:
    from .obs.postmortem import analyze_miss

    result, bus = _recorded_simulation(args)
    report = analyze_miss(bus.events, dag_id=args.dag)
    if args.json:
        print(json.dumps({
            "dag_id": report.dag_id,
            "cell": report.cell,
            "latency_us": report.latency_us,
            "deadline_us": report.deadline_us - report.release_us,
            "missed": report.missed,
            "tardiness_us": report.tardiness_us,
            "tasks": report.tasks,
            "contributions_us": report.contributions,
            "dominant_cause": report.dominant_cause,
            "miss_fraction": result.latency.miss_fraction,
        }, indent=2))
    else:
        print(report.render())
        print(f"run: {result.latency.count} slots, "
              f"miss fraction {result.latency.miss_fraction:.2e}")
    return 0


def _cmd_fleet(args) -> int:
    from .fleet import FleetScenario, Planner
    from .scenario import load_reconfig_script

    reconfig = ()
    if args.reconfig:
        reconfig = load_reconfig_script(args.reconfig)

    fleet = FleetScenario(
        cells=args.cells,
        shards=args.shards,
        cell_kind=args.kind,
        cores_per_cell=args.cores_per_cell,
        policy=args.policy,
        workload=args.workload,
        load_fraction=args.load,
        seed=args.seed,
        num_slots=args.slots,
        reconfig=reconfig,
        engine_mode=args.engine,
    )

    def progress(event) -> None:
        if args.json:
            return
        line = (f"[{event['done']}/{event['total']}] "
                f"{event['kind']:<8s} shard {event['shard']}")
        if "worker" in event:
            line += f"  worker={event['worker']}"
        if "wall_s" in event:
            line += f"  ({event['wall_s']:.1f}s)"
        if event.get("error"):
            line += f"  {event['error']}"
        print(line, file=sys.stderr)

    report = Planner(fleet, jobs=args.jobs, progress=progress).run()

    verified = None
    if args.verify_serial:
        # The determinism contract: an unsharded serial run of the same
        # metro must sample every cell byte-identically.
        baseline_fleet = FleetScenario(
            cells=args.cells, shards=1, cell_kind=args.kind,
            cores_per_cell=args.cores_per_cell, policy=args.policy,
            workload=args.workload, load_fraction=args.load,
            seed=args.seed, num_slots=args.slots)
        baseline = Planner(baseline_fleet, jobs=1).run()
        mismatched = sorted(
            name for name, digest in report.cell_digests.items()
            if baseline.cell_digests.get(name) != digest)
        missing = sorted(set(baseline.cell_digests)
                         ^ set(report.cell_digests))
        verified = not mismatched and not missing
        if not verified:
            print(f"verify-serial FAILED: {len(mismatched)} cell "
                  f"digest(s) differ, {len(missing)} cell(s) missing: "
                  f"{(mismatched + missing)[:5]}", file=sys.stderr)

    if args.json:
        payload = report.to_dict()
        if verified is not None:
            payload["verified_against_serial"] = verified
        print(json.dumps(payload, indent=2))
    else:
        print(report.render())
        if verified:
            print(f"verify-serial OK: {len(report.cell_digests)} "
                  f"cell digests byte-identical to the unsharded "
                  f"serial run")
    if verified is False:
        return 1
    return 0 if report.ok else 1


def _cmd_list(args) -> int:
    print("policies: ", ", ".join(POLICIES))
    print("workloads:", ", ".join(SCENARIOS))
    print("configs:  ", ", ".join(sorted(CONFIGS)))
    print("figures:  ", ", ".join(sorted(FIGURES)))
    return 0


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "sweep": _cmd_sweep,
        "train": _cmd_train,
        "figure": _cmd_figure,
        "trace": _cmd_trace,
        "postmortem": _cmd_postmortem,
        "fleet": _cmd_fleet,
        "bench": bench.run_bench,
        "list": _cmd_list,
    }
    try:
        return handlers[args.command](args)
    except ValueError as exc:
        # Clean CLI surface for validation errors (malformed
        # REPRO_JOBS/REPRO_SCALE, bad option combinations, ...).
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

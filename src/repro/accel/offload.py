"""Hardware-accelerator offload extension (paper §7, Tables 3 and 4).

The paper extends its testbed with a Terasic DE5-Net FPGA that offloads
LDPC encoding/decoding, and observes that vRAN pool cores remain under
60 % utilized even at peak traffic because (i) TDD leaves the cores
idle during downlink-heavy periods and (ii) worker threads block while
waiting for offloaded results.

This module models the accelerator as a FIFO-served coprocessor:
offloaded task types never occupy a CPU worker; an offloaded task costs
a PCIe round-trip plus per-codeblock accelerator processing, and its
successors are released back into the CPU pool when the result returns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..ran.config import CellConfig, Duplex, PoolConfig
from ..ran.tasks import TaskInstance, TaskType

__all__ = ["AcceleratorConfig", "Accelerator", "attach_accelerator",
           "cell_100mhz_tdd_accel", "pool_100mhz_accel"]


@dataclass(frozen=True)
class AcceleratorConfig:
    """Timing model of the FPGA LDPC offload."""

    offloaded_types: frozenset = frozenset(
        {TaskType.LDPC_DECODE, TaskType.LDPC_ENCODE}
    )
    #: PCIe/DMA round-trip per offload request (µs).
    roundtrip_us: float = 20.0
    #: FPGA per-codeblock processing time (µs).  Offloading saves CPU
    #: cycles and energy, not necessarily latency: the paper's Table 4
    #: shows the total slot time dominated by waits on the FPGA.
    decode_us_per_cb: float = 25.0
    encode_us_per_cb: float = 2.0
    #: Number of independent accelerator pipelines.
    pipelines: int = 2

    def service_time_us(self, task: TaskInstance) -> float:
        cbs = max(1.0, task.feature("task_codeblocks"))
        if task.task_type is TaskType.LDPC_DECODE:
            return self.roundtrip_us + self.decode_us_per_cb * cbs
        return self.roundtrip_us + self.encode_us_per_cb * cbs


class Accelerator:
    """FIFO-served coprocessor executing offloaded task types.

    Attach to a pool with :func:`attach_accelerator`; the pool then
    routes ready tasks of the offloaded types here instead of to the
    EDF queue, and this class hands completions back through the pool's
    normal bookkeeping (successor release, DAG completion, metrics).
    """

    def __init__(self, engine, config: Optional[AcceleratorConfig] = None) -> None:
        self.engine = engine
        self.config = config if config is not None else AcceleratorConfig()
        self.pool = None  # set by attach_accelerator
        self._queue: list[TaskInstance] = []
        self._busy_pipelines = 0
        self.tasks_served = 0
        self.busy_time_us = 0.0

    @property
    def offloaded_types(self):
        return self.config.offloaded_types

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    def submit(self, task: TaskInstance) -> None:
        """Accept a ready offloaded task from the pool."""
        self._queue.append(task)
        self._try_serve()

    def _try_serve(self) -> None:
        while self._queue and self._busy_pipelines < self.config.pipelines:
            task = self._queue.pop(0)
            self._busy_pipelines += 1
            service = self.config.service_time_us(task)
            task.start_time = self.engine.now
            task.runtime_us = service
            self.busy_time_us += service
            self.engine.schedule_after(
                service, lambda t=task: self._complete(t)
            )

    def _complete(self, task: TaskInstance) -> None:
        self._busy_pipelines -= 1
        self.tasks_served += 1
        self.pool.complete_offloaded(task)
        self._try_serve()


def attach_accelerator(pool, accelerator: Accelerator) -> Accelerator:
    """Wire an accelerator into a pool (both directions)."""
    pool.accelerator = accelerator
    accelerator.pool = pool
    return accelerator


def cell_100mhz_tdd_accel(name: str = "cell100a") -> CellConfig:
    """Table 3's accelerated cell: 1.6 Gbps DL / 150 Mbps UL peak."""
    return CellConfig(
        name=name,
        bandwidth_mhz=100.0,
        duplex=Duplex.TDD,
        numerology=1,
        peak_dl_mbps=1600.0,
        peak_ul_mbps=150.0,
        avg_dl_mbps=800.0,
        avg_ul_mbps=75.0,
        num_antennas=4,
        max_layers=4,
    )


def pool_100mhz_accel(num_cells: int, num_cores: int,
                      deadline_us: float = 1500.0) -> PoolConfig:
    """Accelerated 100 MHz TDD pool used for Table 3 sweeps."""
    cells = tuple(cell_100mhz_tdd_accel(f"cell100a-{i}")
                  for i in range(num_cells))
    return PoolConfig(cells=cells, num_cores=num_cores,
                      deadline_us=deadline_us)

"""Hardware-accelerator offload extension (paper §7)."""

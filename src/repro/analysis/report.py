"""Structured result export: JSON / CSV writers for simulation results.

The experiment drivers print human tables; downstream analysis (plots,
regressions across commits, comparisons between parameter sweeps) wants
machine-readable records.  These helpers flatten
:class:`repro.sim.runner.SimulationResult` objects and sweep
dictionaries into rows.
"""

from __future__ import annotations

import csv
import json
from typing import Iterable

__all__ = ["result_to_record", "write_records_csv", "write_records_json",
           "sweep_to_records"]


def result_to_record(result, **extra) -> dict:
    """Flatten one SimulationResult into a JSON/CSV-friendly dict."""
    latency = result.latency
    record = {
        "policy": result.policy_name,
        "workload": result.workload_name,
        "load_fraction": result.load_fraction,
        "num_slots": result.num_slots,
        "duration_us": result.duration_us,
        "dag_count": latency.count,
        "latency_mean_us": latency.mean_us,
        "latency_p50_us": latency.p50_us,
        "latency_p99_us": latency.p99_us,
        "latency_p9999_us": latency.p9999_us,
        "latency_p99999_us": latency.p99999_us,
        "latency_max_us": latency.max_us,
        "deadline_us": latency.deadline_us,
        "miss_fraction": latency.miss_fraction,
        "meets_four_nines": latency.meets_four_nines,
        "meets_five_nines": latency.meets_five_nines,
        "reclaimed_fraction": result.reclaimed_fraction,
        "idle_upper_bound": result.idle_upper_bound,
        "vran_utilization": result.vran_utilization,
        "scheduling_events": result.scheduling_events,
        "preemptions_per_core_ms": result.preemptions_per_core_ms,
        "mean_stall_increase": result.mean_stall_increase,
    }
    for name, rate in result.workload_rates_per_s.items():
        record[f"rate_{name}_per_s"] = rate
    record.update(extra)
    return record


def sweep_to_records(results: Iterable, labels: Iterable[dict]) -> list:
    """Zip SimulationResults with per-run label dicts into records."""
    records = []
    for result, label in zip(results, labels):
        records.append(result_to_record(result, **label))
    return records


def write_records_json(records: list, path) -> None:
    """Dump records as a JSON array."""
    with open(path, "w") as handle:
        json.dump(list(records), handle, indent=1, default=str)


def write_records_csv(records: list, path) -> None:
    """Dump records as CSV; the header is the union of all keys."""
    records = list(records)
    if not records:
        raise ValueError("no records to write")
    fieldnames = []
    for record in records:
        for key in record:
            if key not in fieldnames:
                fieldnames.append(key)
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        for record in records:
            writer.writerow(record)

"""Statistics helpers (CDFs, KS test, Wasserstein distance), ASCII
plotting, structured result export and bootstrap A/B comparison."""

from .comparison import (
    TailComparison,
    bootstrap_percentile_ci,
    compare_runs,
    compare_tails,
)
from .plotting import bar_chart, histogram_chart, line_chart
from .report import (
    result_to_record,
    sweep_to_records,
    write_records_csv,
    write_records_json,
)
from .stats import (
    ViolinSummary,
    empirical_cdf,
    ks_two_sample,
    percentile_summary,
    violin_summary,
    wasserstein_distance,
)

__all__ = [
    "TailComparison",
    "ViolinSummary",
    "bar_chart",
    "bootstrap_percentile_ci",
    "compare_runs",
    "compare_tails",
    "empirical_cdf",
    "histogram_chart",
    "ks_two_sample",
    "line_chart",
    "percentile_summary",
    "result_to_record",
    "sweep_to_records",
    "violin_summary",
    "wasserstein_distance",
    "write_records_csv",
    "write_records_json",
]

"""Statistics helpers used across experiments.

Implements the tools the paper uses to argue about runtime
distributions: empirical CDFs, the two-sample Kolmogorov-Smirnov test
(§4.1's evidence that collocated runtimes come from a different
distribution) and the 1-D Wasserstein distance (§4.2's measure for
finding the most distorted leaf nodes).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "empirical_cdf",
    "ks_two_sample",
    "wasserstein_distance",
    "percentile_summary",
    "ViolinSummary",
    "violin_summary",
]


def empirical_cdf(samples: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Return (sorted values, CDF levels) for plotting/printing."""
    values = np.sort(np.asarray(samples, dtype=np.float64))
    if len(values) == 0:
        raise ValueError("empty sample")
    levels = np.arange(1, len(values) + 1) / len(values)
    return values, levels


def ks_two_sample(a: np.ndarray, b: np.ndarray) -> tuple[float, float]:
    """Two-sample Kolmogorov-Smirnov statistic and asymptotic p-value.

    Implemented directly (the asymptotic Kolmogorov distribution) so the
    library does not depend on scipy internals for a core result.
    """
    a = np.sort(np.asarray(a, dtype=np.float64))
    b = np.sort(np.asarray(b, dtype=np.float64))
    n, m = len(a), len(b)
    if n == 0 or m == 0:
        raise ValueError("both samples must be non-empty")
    grid = np.concatenate([a, b])
    cdf_a = np.searchsorted(a, grid, side="right") / n
    cdf_b = np.searchsorted(b, grid, side="right") / m
    statistic = float(np.max(np.abs(cdf_a - cdf_b)))
    effective = math.sqrt(n * m / (n + m))
    lam = (effective + 0.12 + 0.11 / effective) * statistic
    # Asymptotic Kolmogorov survival function (Massey 1951).
    p_value = 2.0 * sum(
        (-1.0) ** (k - 1) * math.exp(-2.0 * (k * lam) ** 2)
        for k in range(1, 101)
    )
    return statistic, float(min(max(p_value, 0.0), 1.0))


def wasserstein_distance(a: np.ndarray, b: np.ndarray) -> float:
    """1-D earth-mover distance between two empirical distributions."""
    a = np.sort(np.asarray(a, dtype=np.float64))
    b = np.sort(np.asarray(b, dtype=np.float64))
    if len(a) == 0 or len(b) == 0:
        raise ValueError("both samples must be non-empty")
    # Integrate |F_a - F_b| over the merged support.
    grid = np.sort(np.concatenate([a, b]))
    cdf_a = np.searchsorted(a, grid, side="right") / len(a)
    cdf_b = np.searchsorted(b, grid, side="right") / len(b)
    deltas = np.diff(grid)
    return float(np.sum(np.abs(cdf_a[:-1] - cdf_b[:-1]) * deltas))


def percentile_summary(samples, percentiles=(50, 95, 99, 99.99, 99.999)) -> dict:
    """Named percentiles of a sample."""
    arr = np.asarray(list(samples), dtype=np.float64)
    if len(arr) == 0:
        raise ValueError("empty sample")
    return {f"p{p}": float(np.percentile(arr, p)) for p in percentiles}


@dataclass(frozen=True)
class ViolinSummary:
    """Compact description of one violin (Fig. 6a / Fig. 7a style)."""

    count: int
    mean: float
    std: float
    q05: float
    q50: float
    q95: float
    maximum: float


def violin_summary(samples) -> ViolinSummary:
    arr = np.asarray(list(samples), dtype=np.float64)
    if len(arr) == 0:
        raise ValueError("empty sample")
    return ViolinSummary(
        count=len(arr),
        mean=float(arr.mean()),
        std=float(arr.std()),
        q05=float(np.percentile(arr, 5)),
        q50=float(np.percentile(arr, 50)),
        q95=float(np.percentile(arr, 95)),
        maximum=float(arr.max()),
    )

"""A/B comparison of simulation runs with bootstrap uncertainty.

Comparing two schedulers (or two parameterizations) on tail statistics
is noisy: the 99.99th percentile of a finite run has real sampling
error.  These helpers quantify it:

* :func:`bootstrap_percentile_ci` — confidence interval of a percentile
  by resampling;
* :func:`compare_tails` — is A's tail percentile credibly lower than
  B's? (bootstrap difference test);
* :func:`compare_runs` — a full scorecard for two
  :class:`~repro.sim.runner.SimulationResult` objects.

Used when tuning model constants or validating that a code change did
not regress the reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["bootstrap_percentile_ci", "compare_tails", "compare_runs",
           "TailComparison"]


def bootstrap_percentile_ci(
    samples,
    percentile: float,
    confidence: float = 0.95,
    iterations: int = 400,
    rng: Optional[np.random.Generator] = None,
) -> tuple[float, float]:
    """Bootstrap CI for a percentile of an empirical sample."""
    samples = np.asarray(list(samples), dtype=np.float64)
    if samples.size < 2:
        raise ValueError("need at least two samples")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    rng = rng if rng is not None else np.random.default_rng(0)
    estimates = np.empty(iterations)
    n = samples.size
    for i in range(iterations):
        resample = samples[rng.integers(0, n, n)]
        estimates[i] = np.percentile(resample, percentile)
    alpha = (1.0 - confidence) / 2.0
    return (float(np.quantile(estimates, alpha)),
            float(np.quantile(estimates, 1.0 - alpha)))


@dataclass(frozen=True)
class TailComparison:
    """Outcome of a bootstrap tail-difference test."""

    percentile: float
    a_value: float
    b_value: float
    difference: float  # a - b
    p_a_below_b: float  # bootstrap probability that A's tail < B's

    @property
    def a_credibly_lower(self) -> bool:
        return self.p_a_below_b >= 0.95

    @property
    def b_credibly_lower(self) -> bool:
        return self.p_a_below_b <= 0.05


def compare_tails(
    samples_a,
    samples_b,
    percentile: float = 99.0,
    iterations: int = 400,
    rng: Optional[np.random.Generator] = None,
) -> TailComparison:
    """Bootstrap comparison of one percentile between two samples."""
    a = np.asarray(list(samples_a), dtype=np.float64)
    b = np.asarray(list(samples_b), dtype=np.float64)
    if a.size < 2 or b.size < 2:
        raise ValueError("both samples need at least two values")
    rng = rng if rng is not None else np.random.default_rng(1)
    below = 0
    for __ in range(iterations):
        pa = np.percentile(a[rng.integers(0, a.size, a.size)], percentile)
        pb = np.percentile(b[rng.integers(0, b.size, b.size)], percentile)
        below += pa < pb
    return TailComparison(
        percentile=percentile,
        a_value=float(np.percentile(a, percentile)),
        b_value=float(np.percentile(b, percentile)),
        difference=float(np.percentile(a, percentile)
                         - np.percentile(b, percentile)),
        p_a_below_b=below / iterations,
    )


def compare_runs(result_a, result_b, percentile: float = 99.9,
                 iterations: int = 300,
                 rng: Optional[np.random.Generator] = None) -> dict:
    """Scorecard comparing two SimulationResults (A vs B)."""
    tail = compare_tails(result_a.metrics.slot_latencies,
                         result_b.metrics.slot_latencies,
                         percentile=percentile, iterations=iterations,
                         rng=rng)
    return {
        "tail": tail,
        "miss_fraction": (result_a.latency.miss_fraction,
                          result_b.latency.miss_fraction),
        "reclaimed": (result_a.reclaimed_fraction,
                      result_b.reclaimed_fraction),
        "scheduling_events": (result_a.scheduling_events,
                              result_b.scheduling_events),
        "reclaim_advantage_a": result_a.reclaimed_fraction
        - result_b.reclaimed_fraction,
    }

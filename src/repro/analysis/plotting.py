"""Terminal-friendly ASCII plotting helpers.

The repository is offline-first: instead of matplotlib figures, the
experiment drivers and examples render series as compact ASCII charts
that survive logs, CI output and result files.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["bar_chart", "line_chart", "histogram_chart"]

_BAR = "#"


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    title: str = "",
    unit: str = "",
) -> str:
    """Horizontal bar chart, one row per label."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if not labels:
        raise ValueError("nothing to plot")
    peak = max(max(values), 1e-12)
    label_width = max(len(str(label)) for label in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        length = int(round(width * value / peak)) if value > 0 else 0
        lines.append(
            f"{str(label).ljust(label_width)} |{_BAR * length:<{width}}| "
            f"{value:,.4g}{unit}"
        )
    return "\n".join(lines)


def line_chart(
    xs: Sequence[float],
    ys: Sequence[float],
    height: int = 10,
    width: int = 60,
    title: str = "",
) -> str:
    """Scatter-style line chart on a character grid."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must align")
    if len(xs) < 2:
        raise ValueError("need at least two points")
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    x_span = xs.max() - xs.min() or 1.0
    y_span = ys.max() - ys.min() or 1.0
    grid = [[" "] * width for __ in range(height)]
    for x, y in zip(xs, ys):
        col = int((x - xs.min()) / x_span * (width - 1))
        row = height - 1 - int((y - ys.min()) / y_span * (height - 1))
        grid[row][col] = "*"
    lines = [title] if title else []
    for index, row in enumerate(grid):
        tick = ys.max() - index * y_span / (height - 1)
        lines.append(f"{tick:10.3g} |{''.join(row)}")
    lines.append(" " * 11 + "+" + "-" * width)
    lines.append(f"{'':11s}{xs.min():<10.3g}{'':>{max(0, width - 20)}}"
                 f"{xs.max():>10.3g}")
    return "\n".join(lines)


def histogram_chart(
    samples: Sequence[float],
    bins: int = 12,
    width: int = 40,
    title: str = "",
    log_counts: bool = False,
) -> str:
    """Vertical-bucket histogram with per-bin bars."""
    data = np.asarray(list(samples), dtype=float)
    if data.size == 0:
        raise ValueError("nothing to plot")
    counts, edges = np.histogram(data, bins=bins)
    display = np.log10(counts + 1) if log_counts else counts
    peak = max(display.max(), 1e-12)
    lines = [title] if title else []
    for count, value, lo, hi in zip(counts, display, edges[:-1], edges[1:]):
        length = int(round(width * value / peak))
        lines.append(f"[{lo:10.3g}, {hi:10.3g}) "
                     f"|{_BAR * length:<{width}}| {count}")
    return "\n".join(lines)

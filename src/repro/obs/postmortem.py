"""Deadline-miss post-mortems: name the dominant cause of a late slot.

Automates the paper's §6.2 audit.  When a slot (DAG) misses — or merely
comes close to — its deadline, the recorded event stream contains
everything needed to apportion blame between the three failure modes
the paper discusses:

* **wakeup latency** — tasks sat ready while the cores signalled for
  them were stuck behind non-preemptible kernel sections (§2.3, the
  tail FlexRAN cannot contain);
* **WCET under-prediction** — tasks ran longer than the quantile-tree
  predicted, so the federated reservation was too small (§4);
* **queueing** — tasks waited behind work from other cells with every
  reserved core busy (the sharing cost of a consolidated pool).

The analyzer walks the missed DAG's task wait intervals (each task's
``task_done`` event carries its enqueue/start/finish times), overlaps
them with in-flight wakeups, and sums prediction overshoot on its
executed tasks.  The largest contribution names the dominant cause —
mirroring how the authors debugged FlexRAN's tail with per-task
timelines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from .events import TaskEvent, WakeupEvent

__all__ = ["PostMortem", "analyze_miss"]

#: Cause labels, in report order.
CAUSE_WAKEUP = "wakeup latency"
CAUSE_WCET = "wcet under-prediction"
CAUSE_QUEUEING = "queueing behind another cell"


@dataclass(frozen=True)
class PostMortem:
    """Apportioned lateness of one DAG (all figures in µs)."""

    dag_id: int
    cell: str
    release_us: float
    completion_us: float
    deadline_us: float
    wakeup_us: float
    underprediction_us: float
    queueing_us: float
    tasks: int

    @property
    def latency_us(self) -> float:
        return self.completion_us - self.release_us

    @property
    def missed(self) -> bool:
        return self.completion_us > self.deadline_us

    @property
    def tardiness_us(self) -> float:
        return max(0.0, self.completion_us - self.deadline_us)

    @property
    def contributions(self) -> dict:
        return {
            CAUSE_WAKEUP: self.wakeup_us,
            CAUSE_WCET: self.underprediction_us,
            CAUSE_QUEUEING: self.queueing_us,
        }

    @property
    def dominant_cause(self) -> str:
        return max(self.contributions.items(), key=lambda kv: kv[1])[0]

    def render(self) -> str:
        state = (f"MISSED by {self.tardiness_us:.0f} us"
                 if self.missed else "met")
        lines = [
            f"dag {self.dag_id} ({self.cell}): latency "
            f"{self.latency_us:.0f} us vs deadline "
            f"{self.deadline_us - self.release_us:.0f} us — {state}",
            f"  tasks analyzed: {self.tasks}",
        ]
        for cause, amount in sorted(self.contributions.items(),
                                    key=lambda kv: -kv[1]):
            marker = " <== dominant" if cause == self.dominant_cause \
                else ""
            lines.append(f"  {cause:<28s} {amount:9.1f} us{marker}")
        return "\n".join(lines)


def _interval_overlap(a0: float, a1: float, b0: float, b1: float) -> float:
    return max(0.0, min(a1, b1) - max(a0, b0))


def analyze_miss(events: Iterable,
                 dag_id: Optional[int] = None) -> PostMortem:
    """Post-mortem of ``dag_id`` (default: the worst recorded DAG).

    "Worst" is the DAG with the largest completion-past-deadline (ties
    broken toward the largest latency), so on a run with no misses the
    analyzer still audits the closest call.
    """
    events = list(events)
    releases: dict = {}
    completions: dict = {}
    for event in events:
        if isinstance(event, TaskEvent):
            if event.kind == "dag_release":
                releases[event.dag_id] = event
            elif event.kind == "dag_complete":
                completions[event.dag_id] = event
    if not completions:
        raise ValueError("no completed DAGs in the event stream")

    if dag_id is None:
        def badness(item):
            dag, complete = item
            release = releases.get(dag)
            if release is None:
                return (float("-inf"), float("-inf"))
            return (complete.ts_us - complete.deadline_us,
                    complete.ts_us - release.ts_us)
        dag_id = max(completions.items(), key=badness)[0]
    if dag_id not in completions or dag_id not in releases:
        raise ValueError(f"dag {dag_id} not fully recorded")

    release = releases[dag_id]
    complete = completions[dag_id]
    span0, span1 = release.ts_us, complete.ts_us

    # In-flight wakeup windows overlapping the DAG's span: time during
    # which a signalled core had not yet come up.
    wakeup_windows = [
        (e.ts_us, e.ts_us + e.latency_us)
        for e in events
        if isinstance(e, WakeupEvent) and e.kind == "wakeup"
        and _interval_overlap(e.ts_us, e.ts_us + e.latency_us,
                              span0, span1) > 0.0
    ]

    wakeup_us = 0.0
    queueing_us = 0.0
    underprediction_us = 0.0
    tasks = 0
    for event in events:
        if not isinstance(event, TaskEvent) or event.dag_id != dag_id \
                or event.kind != "task_done":
            continue
        tasks += 1
        if event.predicted_us is not None:
            underprediction_us += max(
                0.0, event.runtime_us - event.predicted_us)
        wait0, wait1 = event.enqueue_us, event.start_us
        if wait1 <= wait0 or wait0 < 0.0:
            continue
        # Wait time covered by a wakeup in flight is the OS tail's
        # fault; the remainder is queueing behind other work.
        covered = 0.0
        for w0, w1 in wakeup_windows:
            covered += _interval_overlap(wait0, wait1, w0, w1)
        covered = min(covered, wait1 - wait0)
        wakeup_us += covered
        queueing_us += (wait1 - wait0) - covered

    # float() everywhere: event fields may carry numpy scalars, which
    # would make the report non-JSON-serializable.
    return PostMortem(
        dag_id=int(dag_id),
        cell=release.cell,
        release_us=float(span0),
        completion_us=float(span1),
        deadline_us=float(complete.deadline_us),
        wakeup_us=float(wakeup_us),
        underprediction_us=float(underprediction_us),
        queueing_us=float(queueing_us),
        tasks=tasks,
    )

"""Named counters, gauges and fixed-bucket histograms.

One :class:`MetricsRegistry` per measurement domain: ``sim.metrics``
keeps the pool's scheduling/slot counters in one, the Concordia
scheduler keeps its wall-clock overhead accounting in another, and a
simulation merges both into the ``telemetry`` dict of its result
payload.  The registry snapshot is plain JSON, so cached sweep results
(:mod:`repro.exec`) carry their telemetry and the figure drivers read
counters back from cache hits instead of re-simulating.

Instruments are deliberately bare — a mutable ``value`` (or bucket
counts) plus inc/set/observe — so hot paths can bind the instrument
once and update an attribute, never paying a name lookup per event.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional, Sequence

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """Monotonic accumulator (ints or float totals, e.g. seconds)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: float = 0) -> None:
        self.name = name
        self.value = value

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount


class Gauge:
    """Last-written value (e.g. currently reserved cores)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: float = 0) -> None:
        self.name = name
        self.value = value

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Fixed-bucket histogram (upper edges; last may be ``inf``).

    Tracks per-bucket counts plus count/sum/max so means survive the
    JSON round-trip even though raw samples are not stored.
    """

    __slots__ = ("name", "edges", "counts", "count", "sum", "max")

    def __init__(self, name: str, edges: Sequence[float],
                 counts: Optional[Sequence[int]] = None,
                 count: int = 0, total: float = 0.0,
                 maximum: float = 0.0) -> None:
        if not edges:
            raise ValueError("histogram needs at least one bucket edge")
        if list(edges) != sorted(edges):
            raise ValueError("bucket edges must be sorted")
        self.name = name
        self.edges = tuple(float(e) for e in edges)
        self.counts = list(counts) if counts is not None else \
            [0] * len(self.edges)
        if len(self.counts) != len(self.edges):
            raise ValueError("counts/edges length mismatch")
        self.count = count
        self.sum = total
        self.max = maximum

    def observe(self, value: float) -> None:
        if math.isnan(value):
            raise ValueError(f"histogram {self.name}: NaN observation")
        for index, edge in enumerate(self.edges):
            if value < edge:
                self.counts[index] += 1
                break
        else:
            self.counts[-1] += 1  # above every finite edge
        self.count += 1
        self.sum += value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def labelled_counts(self) -> Dict[str, int]:
        """``{"lo-hi": n, ..., ">last": n}`` in bucket order."""
        labels = {}
        lo = 0.0
        for edge, count in zip(self.edges, self.counts):
            if math.isinf(edge):
                labels[f">{lo:g}"] = count
            else:
                labels[f"{lo:g}-{edge:g}"] = count
                lo = edge
        return labels


class MetricsRegistry:
    """Flat namespace of instruments, snapshot-able to plain JSON."""

    __slots__ = ("_instruments",)

    def __init__(self) -> None:
        self._instruments: dict = {}

    def _register(self, instrument):
        existing = self._instruments.get(instrument.name)
        if existing is not None:
            if type(existing) is not type(instrument):
                raise ValueError(
                    f"{instrument.name!r} already registered as "
                    f"{type(existing).__name__}")
            return existing
        self._instruments[instrument.name] = instrument
        return instrument

    def counter(self, name: str) -> Counter:
        return self._register(Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._register(Gauge(name))

    def histogram(self, name: str, edges: Sequence[float]) -> Histogram:
        return self._register(Histogram(name, edges))

    def get(self, name: str):
        """The instrument registered under ``name`` (KeyError if none)."""
        return self._instruments[name]

    def value(self, name: str, default: float = 0.0) -> float:
        """Scalar value of a counter/gauge; ``default`` when absent."""
        instrument = self._instruments.get(name)
        if instrument is None:
            return default
        if isinstance(instrument, Histogram):
            raise TypeError(f"{name!r} is a histogram; use get()")
        return instrument.value

    def names(self) -> Iterable[str]:
        return sorted(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    # -- snapshots -----------------------------------------------------------

    def as_dict(self) -> dict:
        """JSON-able snapshot (the ``telemetry`` payload format)."""
        counters, gauges, histograms = {}, {}, {}
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if isinstance(instrument, Counter):
                counters[name] = instrument.value
            elif isinstance(instrument, Gauge):
                gauges[name] = instrument.value
            else:
                histograms[name] = {
                    "edges": ["inf" if math.isinf(e) else e
                              for e in instrument.edges],
                    "counts": list(instrument.counts),
                    "count": instrument.count,
                    "sum": instrument.sum,
                    "max": instrument.max,
                }
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}

    @classmethod
    def from_dict(cls, payload: dict) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`as_dict` (cache round-trip)."""
        registry = cls()
        for name, value in payload.get("counters", {}).items():
            registry._register(Counter(name, value))
        for name, value in payload.get("gauges", {}).items():
            registry._register(Gauge(name, value))
        for name, data in payload.get("histograms", {}).items():
            edges = [float("inf") if e == "inf" else float(e)
                     for e in data["edges"]]
            registry._register(Histogram(
                name, edges, counts=data["counts"], count=data["count"],
                total=data["sum"], maximum=data["max"]))
        return registry

    def merged_with(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """New registry holding both instrument sets (names must not
        collide across different instrument types)."""
        merged = MetricsRegistry.from_dict(self.as_dict())
        for name in other.names():
            instrument = other.get(name)
            if name in merged._instruments:
                raise ValueError(f"duplicate instrument {name!r}")
            merged._instruments[name] = instrument
        return merged

"""Exporters: Chrome ``trace_event`` JSON and flat metric dumps.

The Chrome trace format (one JSON object with a ``traceEvents`` list)
loads directly in ``chrome://tracing`` and Perfetto.  We lay the
simulation out as two processes:

* **pid 1 — "cores"**: one track (tid) per pool core.  Task executions
  are matched ``B``/``E`` duration pairs; wakeup signals are instant
  events on the core's track; the pool-wide reserved-core count is a
  ``C`` counter series.
* **pid 2 — "dags"**: one track per DAG (slot), carrying the DAG's
  release→completion span plus instant markers for task enqueues, so a
  missed slot's queueing is visible at a glance.

A task's ``B``/``E`` pair and its enqueue instant are all synthesized
from the single ``task_done`` event the pool records at completion
(``start_us``/``enqueue_us`` fields) — the bus keeps one record per
task for overhead reasons, the trace still shows the full lifecycle.

Only events from a :class:`repro.obs.events.EventBus` are consumed —
the exporter is a pure function of the recorded event list, so it
works identically on live buses and on replayed/filtered ones.
"""

from __future__ import annotations

import csv
import json
from typing import Iterable, Optional

from .events import CoreEvent, TaskEvent, WakeupEvent
from .registry import MetricsRegistry

__all__ = [
    "chrome_trace",
    "metrics_rows",
    "write_chrome_trace",
    "write_metrics_csv",
    "write_metrics_json",
]

_PID_CORES = 1
_PID_DAGS = 2


def _meta(pid: int, tid: Optional[int], name: str, what: str) -> dict:
    event = {"ph": "M", "name": what, "pid": pid,
             "args": {"name": name}}
    if tid is not None:
        event["tid"] = tid
    return event


def chrome_trace(events: Iterable) -> dict:
    """Render recorded events as a Chrome ``trace_event`` document.

    Durations use matched ``B``/``E`` pairs; a task that never finished
    (simulation ended mid-flight) is dropped rather than left open, so
    every ``B`` has its ``E``.
    """
    trace: list = []
    cores_seen: set = set()
    dags_seen: set = set()
    open_dags: dict = {}  # dag_id -> B event index

    # Input order only matters for B/E index matching (a DAG's release
    # must be seen before its completion); sort by ts to accept
    # arbitrarily ordered/filtered event lists.
    for event in sorted(events, key=lambda e: e.ts_us):
        ts = event.ts_us
        if isinstance(event, TaskEvent):
            dag_tid = event.dag_id
            if event.kind == "dag_release":
                dags_seen.add(dag_tid)
                open_dags[event.dag_id] = len(trace)
                trace.append({
                    "name": f"dag {event.dag_id} ({event.cell} "
                            f"slot {event.task_id})",
                    "cat": "dag", "ph": "B", "ts": ts,
                    "pid": _PID_DAGS, "tid": dag_tid,
                    "args": {"deadline_us": event.deadline_us},
                })
            elif event.kind == "dag_complete":
                start = open_dags.pop(event.dag_id, None)
                if start is not None:
                    trace.append({
                        "name": trace[start]["name"],
                        "cat": "dag", "ph": "E", "ts": ts,
                        "pid": _PID_DAGS, "tid": dag_tid,
                        "args": {"latency_us": event.runtime_us,
                                 "missed": bool(
                                     event.deadline_us
                                     and ts > event.deadline_us)},
                    })
            elif event.kind == "task_done":
                # One recorded event, three trace entries: the enqueue
                # instant on the DAG track plus the B/E execution pair
                # on the core track (the final sort restores ts order).
                dags_seen.add(dag_tid)
                cores_seen.add(event.core)
                name = f"{event.task_type}@dag{event.dag_id}"
                trace.append({
                    "name": f"enqueue {event.task_type}",
                    "cat": "queue", "ph": "i", "s": "t",
                    "ts": event.enqueue_us,
                    "pid": _PID_DAGS, "tid": dag_tid,
                    "args": {"task_id": event.task_id},
                })
                trace.append({
                    "name": name, "cat": "task", "ph": "B",
                    "ts": event.start_us,
                    "pid": _PID_CORES, "tid": event.core,
                    "args": {"cell": event.cell,
                             "predicted_us": event.predicted_us},
                })
                trace.append({
                    "name": name, "cat": "task", "ph": "E", "ts": ts,
                    "pid": _PID_CORES, "tid": event.core,
                    "args": {"runtime_us": event.runtime_us,
                             "predicted_us": event.predicted_us},
                })
        elif isinstance(event, WakeupEvent):
            if event.kind != "wakeup":
                continue  # raw OS-model samples duplicate pool signals
            cores_seen.add(event.core)
            trace.append({
                "name": "wakeup", "cat": "sched", "ph": "i", "s": "t",
                "ts": ts, "pid": _PID_CORES, "tid": event.core,
                "args": {"latency_us": event.latency_us,
                         "preempted": event.preempted},
            })
        elif isinstance(event, CoreEvent):
            if event.kind == "core_rotate":
                continue
            if event.kind.startswith("pool."):
                # Elastic reconfiguration: a thread-scoped instant
                # marks the grant/revoke/add/remove in the viewer,
                # followed by the usual reserved-count sample.
                trace.append({
                    "name": event.kind, "cat": "sched", "ph": "i",
                    "s": "t", "ts": ts, "pid": _PID_CORES, "tid": 0,
                    "args": {"core": event.core,
                             "reserved": event.reserved,
                             "target": event.target},
                })
            trace.append({
                "name": "reserved cores", "cat": "sched", "ph": "C",
                "ts": ts, "pid": _PID_CORES, "tid": 0,
                "args": {"reserved": event.reserved},
            })

    # Prune unmatched B entries (DAGs still in flight at simulation
    # end) before sorting — the indices refer to insertion order.
    for index in sorted(open_dags.values(), reverse=True):
        del trace[index]
    # Entries are generated out of timestamp order (a task_done event
    # expands into entries at enqueue/start/finish time), so restore a
    # valid per-track stack order: ties break E-before-B so that
    # back-to-back tasks on one core nest correctly.
    trace.sort(key=lambda e: (e["ts"], 0 if e["ph"] == "E" else 1))

    meta = [_meta(_PID_CORES, None, "cores", "process_name"),
            _meta(_PID_DAGS, None, "dags", "process_name")]
    for core in sorted(cores_seen):
        meta.append(_meta(_PID_CORES, core, f"core {core}",
                          "thread_name"))
    for dag in sorted(dags_seen):
        meta.append(_meta(_PID_DAGS, dag, f"dag {dag}", "thread_name"))
    return {"traceEvents": meta + trace, "displayTimeUnit": "ms"}


def write_chrome_trace(path, events: Iterable) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(events), handle)


# -- metric dumps ------------------------------------------------------------------


def metrics_rows(telemetry) -> list:
    """Flatten a registry (or its snapshot) into ``(name, value)`` rows.

    Histograms expand into ``name{bucket}`` rows plus ``name.count`` /
    ``name.sum`` / ``name.max`` aggregates.
    """
    payload = telemetry.as_dict() if isinstance(telemetry,
                                                MetricsRegistry) \
        else telemetry
    rows = []
    for name, value in payload.get("counters", {}).items():
        rows.append((name, value))
    for name, value in payload.get("gauges", {}).items():
        rows.append((name, value))
    for name, data in payload.get("histograms", {}).items():
        registry = MetricsRegistry.from_dict({"histograms": {name: data}})
        histogram = registry.get(name)
        for label, count in histogram.labelled_counts().items():
            rows.append((f"{name}{{{label}}}", count))
        rows.append((f"{name}.count", data["count"]))
        rows.append((f"{name}.sum", data["sum"]))
        rows.append((f"{name}.max", data["max"]))
    return rows


def write_metrics_json(path, telemetry) -> None:
    payload = telemetry.as_dict() if isinstance(telemetry,
                                                MetricsRegistry) \
        else telemetry
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)


def write_metrics_csv(path, telemetry) -> None:
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["metric", "value"])
        writer.writerows(metrics_rows(telemetry))

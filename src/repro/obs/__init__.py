"""Unified observability: event bus, metrics registry, exporters.

The paper's evaluation is built on instrumentation — Fig. 10 counts
scheduling events, Fig. 15a measures scheduler/predictor overhead, and
§6.2 debugs FlexRAN's tail from per-task timelines.  This package is
the first-class telemetry layer those measurements hang off:

* :mod:`repro.obs.events` — a structured event bus with zero overhead
  when disabled (the default).  ``sim.pool``, ``sim.osmodel``,
  ``core.scheduler`` and ``exec.batch`` emit typed events (task
  lifecycle, core reserve/release/rotate, wakeups, scheduler ticks,
  cache hits/misses) into it.
* :mod:`repro.obs.registry` — named counters/gauges/fixed-bucket
  histograms.  ``sim.metrics`` and the Concordia scheduler keep their
  accounting in registries, and every simulation result carries a
  JSON-able registry snapshot (``result.telemetry``) through the
  ``repro.exec`` cache.
* :mod:`repro.obs.export` — Chrome ``trace_event`` JSON (one track per
  core plus one per DAG; loads in ``chrome://tracing`` / Perfetto) and
  flat JSON/CSV metric dumps.
* :mod:`repro.obs.postmortem` — given a missed slot, names the dominant
  cause: wakeup-latency tail, WCET under-prediction, or queueing behind
  another cell (the §6.2 audit, automated).
"""

from .events import (
    CacheEvent,
    CoreEvent,
    EventBus,
    TaskEvent,
    TickEvent,
    WakeupEvent,
    global_bus,
)
from .export import (
    chrome_trace,
    metrics_rows,
    write_chrome_trace,
    write_metrics_csv,
    write_metrics_json,
)
from .postmortem import PostMortem, analyze_miss
from .registry import Counter, Gauge, Histogram, MetricsRegistry

__all__ = [
    "CacheEvent",
    "CoreEvent",
    "Counter",
    "EventBus",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PostMortem",
    "TaskEvent",
    "TickEvent",
    "WakeupEvent",
    "analyze_miss",
    "chrome_trace",
    "global_bus",
    "metrics_rows",
    "write_chrome_trace",
    "write_metrics_csv",
    "write_metrics_json",
]

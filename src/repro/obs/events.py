"""Structured event bus with zero overhead when disabled.

Instrumented components hold an optional :class:`EventBus` reference
(``None`` by default).  Hot paths guard every emission with a plain
attribute test::

    bus = self.event_bus
    if bus is not None and bus.enabled:
        bus.emit(TaskEvent(...))

so a simulation without a bus pays one pointer comparison per
would-be event — nothing is allocated, formatted or stored.  This is
the Shenango-style "telemetry must not perturb the datapath" rule that
the CI overhead guard enforces (<10 % wall-clock with the bus on, and
no measurable cost with it off).

Events are small ``__slots__`` dataclasses rather than dicts: typed
fields keep emit sites honest and the exporters simple.  The bus is a
bounded buffer (drops are counted, never silently) plus an optional
subscriber list for live consumers such as
:class:`repro.sim.tracing.TraceRecorder`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional

__all__ = [
    "CacheEvent",
    "CoreEvent",
    "EventBus",
    "REC_CACHE",
    "REC_CORE",
    "REC_TASK",
    "REC_TICK",
    "REC_WAKEUP",
    "TaskEvent",
    "TickEvent",
    "WakeupEvent",
    "global_bus",
]


@dataclass(slots=True)
class TaskEvent:
    """Task/DAG lifecycle: kind is one of ``dag_release``,
    ``task_done``, ``dag_complete``.

    A task's whole lifecycle is carried by **one** ``task_done`` event
    recorded at finish time (``ts_us``); ``enqueue_us`` and ``start_us``
    pin down the queueing and execution intervals.  Emitting separate
    enqueue/start/finish events tripled the record rate on the hottest
    path and blew the CI overhead budget; a task that never finished
    (simulation ended mid-flight) simply leaves no event, which is the
    same information the exporter's B/E pruning used to reconstruct.
    """

    ts_us: float
    kind: str
    dag_id: int
    task_id: int = -1
    task_type: str = ""
    cell: str = ""
    core: int = -1
    runtime_us: float = 0.0
    predicted_us: Optional[float] = None
    deadline_us: float = 0.0
    enqueue_us: float = -1.0
    start_us: float = -1.0


@dataclass(slots=True)
class CoreEvent:
    """Core-reservation mechanics: ``core_reserve`` (a worker is
    signalled awake), ``core_release`` (a worker yields) and
    ``core_rotate`` (the 2 ms preferred-order rotation, §5).
    ``reserved`` is the pool's reserved count *after* the transition.

    Elastic reconfiguration adds four kinds: ``pool.core_grant`` /
    ``pool.core_revoke`` (the vRAN↔best-effort ratchet changed the
    effective reserved set; ``core`` carries the *signed delta*, one
    aggregate event per ``_apply_target`` that changed anything) and
    ``pool.worker_add`` / ``pool.worker_remove`` (the physical core
    set grew or shrank; ``core`` is the worker's core id).
    """

    ts_us: float
    kind: str
    core: int
    reserved: int
    target: int


@dataclass(slots=True)
class WakeupEvent:
    """One worker wakeup: signalled at ``ts_us``, the core comes up
    ``latency_us`` later.  ``preempted`` is True when a best-effort
    occupant was actually displaced (see ``Metrics.on_preemption``).
    """

    ts_us: float
    kind: str  # "wakeup" (pool signal) or "wakeup_sample" (OS model)
    latency_us: float
    core: int = -1  # raw OS-model samples have no core attribution
    collocated: bool = False
    preempted: bool = False


@dataclass(slots=True)
class TickEvent:
    """One scheduler decision: the 20 µs tick or a slot-start pass."""

    ts_us: float
    kind: str  # "tick" or "slot_start"
    demand_cores: int
    target_cores: int
    active_dags: int
    critical: bool


@dataclass(slots=True)
class CacheEvent:
    """Result-cache traffic from the batch runner."""

    ts_us: float
    kind: str  # "cache_hit" or "cache_miss"
    key: str
    label: str


#: Record-type indices for :meth:`EventBus.record`.  Hot emit sites
#: pass one of these followed by the event's fields *positionally and
#: completely* — the bus stores the flat argument tuple and only
#: constructs the dataclass when someone reads :attr:`EventBus.events`.
#: Tuples of atomic values are untracked by CPython's cyclic GC after
#: their first collection pass, so a million-event buffer costs the
#: generational collector almost nothing; a buffer of dataclass
#: instances, by contrast, made every gen-2 pass rescan the whole run
#: and pushed the overhead guard past its budget.
REC_TASK = 0
REC_CORE = 1
REC_WAKEUP = 2
REC_TICK = 3
REC_CACHE = 4

_CLASSES = (TaskEvent, CoreEvent, WakeupEvent, TickEvent, CacheEvent)


class EventBus:
    """Bounded event buffer with an explicit enable switch.

    Disabled (the default for :func:`global_bus`) it records nothing;
    emit sites must guard on :attr:`enabled` so disabled runs never
    construct event objects.  ``clock`` supplies timestamps to emitters
    that have no clock of their own (the OS model, the batch runner);
    simulations point it at their engine.
    """

    def __init__(self, capacity: int = 1_000_000,
                 enabled: bool = True) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.enabled = enabled
        self.capacity = capacity
        self.dropped = 0
        self.clock: Callable[[], float] = lambda: 0.0
        self._buffer: list = []
        self._raw = 0  # pending un-materialized records in _buffer
        self._subscribers: list = []

    def __len__(self) -> int:
        return len(self._buffer)

    @property
    def events(self) -> list:
        """Recorded events as objects, materializing lazily in place."""
        buffer = self._buffer
        if self._raw:
            classes = _CLASSES
            for i, rec in enumerate(buffer):
                if type(rec) is tuple:
                    buffer[i] = classes[rec[0]](*rec[1:])
            self._raw = 0
        return buffer

    def emit(self, event) -> None:
        """Record one event (caller has already checked ``enabled``)."""
        if len(self._buffer) < self.capacity:
            self._buffer.append(event)
        else:
            self.dropped += 1
        for subscriber in self._subscribers:
            subscriber(event)

    def record(self, *rec) -> None:
        """Fast path: ``record(REC_*, field0, field1, ...)``.

        Fields are positional in dataclass order (trailing fields with
        defaults may be omitted); the tuple is stored as-is and turned
        into the corresponding event class only when :attr:`events` is
        read.  With live subscribers the event is materialized
        immediately so they see the same objects :meth:`emit` would
        deliver.
        """
        if self._subscribers:
            self.emit(_CLASSES[rec[0]](*rec[1:]))
            return
        if len(self._buffer) < self.capacity:
            self._buffer.append(rec)
            self._raw += 1
        else:
            self.dropped += 1

    def now(self) -> float:
        """Timestamp source for emitters without their own clock."""
        return self.clock()

    # -- consumers -----------------------------------------------------------

    def subscribe(self, fn: Callable) -> None:
        """Register a live consumer; duplicate registration is a no-op."""
        if fn not in self._subscribers:
            self._subscribers.append(fn)

    def unsubscribe(self, fn: Callable) -> None:
        if fn in self._subscribers:
            self._subscribers.remove(fn)

    def of_kind(self, *kinds: str) -> Iterator:
        """Recorded events whose ``kind`` is one of ``kinds``."""
        wanted = frozenset(kinds)
        return (e for e in self.events if e.kind in wanted)

    def clear(self) -> None:
        self._buffer.clear()
        self._raw = 0
        self.dropped = 0


#: Process-wide bus for emitters that outlive any one simulation (the
#: batch runner's cache hits/misses).  Disabled by default; enable it
#: explicitly when auditing a batch.
_GLOBAL = EventBus(enabled=False)


def global_bus() -> EventBus:
    return _GLOBAL

"""Operating-system scheduling-latency model (paper §2.3 and Fig. 10).

When a vRAN worker thread yields its core and is later signalled to wake
up, the Linux kernel introduces a wakeup latency.  Most wakeups resolve
within a few microseconds, but the kernel is not fully preemptible: an
interrupt, RCU callback or a system call issued by a collocated
workload can hold the core in a non-preemptible section, producing rare
latencies of hundreds of microseconds to milliseconds.  The paper's
Fig. 10 histograms (0-1 µs up to 128-255 µs buckets, heavier under
collocation) and §2.3 ("tens of microseconds to tens of milliseconds")
anchor the mixture distributions below.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from .fastrng import FastRng

__all__ = ["WakeupLatencyModel", "LatencyBucket"]


@dataclass(frozen=True)
class LatencyBucket:
    """One component of the wakeup-latency mixture."""

    probability: float
    low_us: float
    high_us: float


#: Isolated vRAN: body of a few µs, tail capped around 200 µs (Fig. 10a).
ISOLATED_BUCKETS: tuple[LatencyBucket, ...] = (
    LatencyBucket(0.82, 0.5, 3.0),
    LatencyBucket(0.12, 3.0, 16.0),
    LatencyBucket(0.05, 16.0, 64.0),
    LatencyBucket(0.0095, 64.0, 128.0),
    LatencyBucket(0.0005, 128.0, 200.0),
)

#: Collocated workloads: heavier tail, plus a rare kernel
#: non-preemptible-section stall in the millisecond range (§2.3).
COLLOCATED_BUCKETS: tuple[LatencyBucket, ...] = (
    LatencyBucket(0.70, 0.5, 4.0),
    LatencyBucket(0.18, 4.0, 16.0),
    LatencyBucket(0.08, 16.0, 64.0),
    LatencyBucket(0.035, 64.0, 128.0),
    LatencyBucket(0.0039, 128.0, 256.0),
    LatencyBucket(0.0008, 400.0, 2000.0),
    LatencyBucket(0.0003, 2000.0, 10000.0),
)


class WakeupLatencyModel:
    """Samples worker wakeup latencies from a calibrated mixture."""

    def __init__(
        self,
        rng: Optional[np.random.Generator] = None,
        isolated_buckets: Sequence[LatencyBucket] = ISOLATED_BUCKETS,
        collocated_buckets: Sequence[LatencyBucket] = COLLOCATED_BUCKETS,
    ) -> None:
        self.rng = FastRng(rng if rng is not None else np.random.default_rng(11))
        self._isolated = self._normalize(isolated_buckets)
        self._collocated = self._normalize(collocated_buckets)
        # Per-mode blocks of presampled latencies, refilled vectorized;
        # consumed back-to-front so sample() is a list pop.
        self._presampled: dict[bool, list[float]] = {False: [], True: []}
        #: Optional repro.obs.events.EventBus; the pool attaches its bus
        #: here so raw latency samples can be audited independently of
        #: the pool-level wakeup events.
        self.event_bus = None

    @staticmethod
    def _normalize(
        buckets: Sequence[LatencyBucket],
    ) -> tuple[np.ndarray, list[LatencyBucket]]:
        probs = np.array([b.probability for b in buckets], dtype=np.float64)
        total = probs.sum()
        if total <= 0:
            raise ValueError("bucket probabilities must sum to a positive value")
        return np.cumsum(probs / total), list(buckets)

    def _refill(self, collocated: bool, n: int = 256) -> list[float]:
        """Presample a block of ``n`` latencies with two vectorized draws."""
        cumulative, buckets = self._collocated if collocated else self._isolated
        lows = np.array([b.low_us for b in buckets])
        spans = np.array([b.high_us - b.low_us for b in buckets])
        gen = self.rng.generator
        idx = np.minimum(
            np.searchsorted(cumulative, gen.random(n), side="right"),
            len(buckets) - 1,
        )
        block = (lows[idx] + spans[idx] * gen.random(n)).tolist()
        self._presampled[collocated] = block
        return block

    def sample(self, collocated: bool) -> float:
        """One wakeup latency in µs (served from a presampled block)."""
        block = self._presampled[collocated]
        if not block:
            block = self._refill(collocated)
        latency = block.pop()
        bus = self.event_bus
        if bus is not None and bus.enabled:
            from ..obs.events import REC_WAKEUP
            bus.record(REC_WAKEUP, bus.now(), "wakeup_sample", latency,
                       -1, collocated, False)
        return latency

    def peek(self, collocated: bool) -> float:
        """The latency the *next* :meth:`sample` call will return.

        Non-consuming: the block is refilled if empty (the same refill
        point ``sample`` would hit, on the model's private stream, so
        peeking never perturbs draw order) but the value stays at the
        tail of the block for ``sample`` to pop.  The vectorized slot
        kernel peeks the boundary wakeup draw while deciding whether a
        slot's closed-form schedule is collision-free; certification
        already guarantees the event bus is disabled, so no bus record
        is skipped by peeking.
        """
        block = self._presampled[collocated]
        if not block:
            block = self._refill(collocated)
        return block[-1]

    def max_latency_us(self, collocated: bool) -> float:
        """Hard upper bound of any latency :meth:`sample` can return.

        The mixture draws uniformly within its buckets, so the bound is
        the largest bucket ceiling (200 µs isolated).  The array-timeline
        kernel uses it in its slot makespan pre-check: a slot is only
        replayed synchronously when even worst-case wakeups plus
        worst-case task runtimes fit inside the slot.
        """
        _, buckets = self._collocated if collocated else self._isolated
        return max(b.high_us for b in buckets)

    def expected_body_us(self, collocated: bool) -> float:
        """Mean latency excluding the rare kernel-stall component.

        The Concordia scheduler uses this as its notion of "a wakeup
        that is taking suspiciously long" when compensating for cores
        that fail to come up (§3).
        """
        cumulative, buckets = self._collocated if collocated else self._isolated
        probs = np.diff(np.concatenate(([0.0], cumulative)))
        mean = 0.0
        mass = 0.0
        for p, bucket in zip(probs, buckets):
            if bucket.high_us > 300.0:
                continue
            mean += p * 0.5 * (bucket.low_us + bucket.high_us)
            mass += p
        return mean / mass if mass > 0 else 5.0

"""Buffered random-variate generation for simulation hot paths.

``numpy.random.Generator`` has ~1 µs of per-call overhead, which
dominates when several variates are drawn for every one of the tens of
millions of task executions in a long run.  ``FastRng`` amortizes that
by drawing blocks of standard variates up front and serving them from
an index.  Determinism is preserved: a given seed produces the same
stream regardless of block size.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["FastRng"]

_BLOCK = 16384


class FastRng:
    """Buffered uniform/normal sampling on top of a NumPy Generator."""

    __slots__ = ("generator", "_uniform", "_ui", "_normal", "_ni")

    def __init__(self, generator: np.random.Generator) -> None:
        self.generator = generator
        self._uniform = generator.random(_BLOCK)
        self._ui = 0
        self._normal = generator.standard_normal(_BLOCK)
        self._ni = 0

    def random(self) -> float:
        """Uniform in [0, 1)."""
        i = self._ui
        if i == _BLOCK:
            self._uniform = self.generator.random(_BLOCK)
            i = 0
        self._ui = i + 1
        return self._uniform[i]

    def uniform(self, low: float, high: float) -> float:
        return low + (high - low) * self.random()

    def standard_normal(self) -> float:
        i = self._ni
        if i == _BLOCK:
            self._normal = self.generator.standard_normal(_BLOCK)
            i = 0
        self._ni = i + 1
        return self._normal[i]

    def normal(self, loc: float, scale: float) -> float:
        return loc + scale * self.standard_normal()

    def exponential(self, scale: float = 1.0) -> float:
        """Exponential variate via inverse transform."""
        return -scale * math.log(1.0 - self.random())

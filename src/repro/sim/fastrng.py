"""Buffered random-variate generation for simulation hot paths.

``numpy.random.Generator`` has ~1 µs of per-call overhead, which
dominates when several variates are drawn for every one of the tens of
millions of task executions in a long run.  ``FastRng`` amortizes that
by drawing blocks of standard variates up front and serving them from
an index.

The variate stream is a deterministic function of ``(seed, block)``.
It is deliberately NOT block-size-invariant: the uniform and normal
presamples partition one underlying bit stream at block boundaries
(both kinds are drawn up front, and raw-``generator`` consumers like
the wakeup model continue from wherever the presampling left the
stream), so a different block size is a different — equally
deterministic — stream.  A call site must therefore pick one block
size and keep it.  The default block reproduces the historical
constant's layout exactly, which is what keeps every golden digest
stable; the regression tests pin that layout.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["FastRng", "DEFAULT_BLOCK"]

#: Historical block size; the default keeps every existing stream (and
#: therefore every golden digest) byte-identical.
DEFAULT_BLOCK = 16384


class FastRng:
    """Buffered uniform/normal sampling on top of a NumPy Generator.

    ``block`` sets the presample width.  Short-lived streams (e.g. the
    wakeup models of attach/detach-spawned cells) can pass a small
    block to avoid drawing 2 x 16384 variates they will never consume.
    """

    __slots__ = ("generator", "_block", "_uniform", "_ui", "_normal", "_ni")

    def __init__(self, generator: np.random.Generator,
                 block: int = DEFAULT_BLOCK) -> None:
        if block < 1:
            raise ValueError(f"block must be >= 1, got {block}")
        self.generator = generator
        self._block = block
        self._uniform = generator.random(block)
        self._ui = 0
        self._normal = generator.standard_normal(block)
        self._ni = 0

    def random(self) -> float:
        """Uniform in [0, 1)."""
        i = self._ui
        if i == self._block:
            self._uniform = self.generator.random(self._block)
            i = 0
        self._ui = i + 1
        return self._uniform[i]

    def uniform(self, low: float, high: float) -> float:
        return low + (high - low) * self.random()

    def standard_normal(self) -> float:
        i = self._ni
        if i == self._block:
            self._normal = self.generator.standard_normal(self._block)
            i = 0
        self._ni = i + 1
        return self._normal[i]

    def normal(self, loc: float, scale: float) -> float:
        return loc + scale * self.standard_normal()

    def exponential(self, scale: float = 1.0) -> float:
        """Exponential variate via inverse transform."""
        return -scale * math.log(1.0 - self.random())

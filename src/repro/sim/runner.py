"""End-to-end simulation harness.

``Simulation`` assembles the full system for one experiment: cells with
traffic generators, the DAG builder and cost model, the vRAN pool with
a scheduling policy, the OS and cache models, and the collocated
best-effort workloads.  ``run(num_slots)`` drives slot boundaries and
returns a :class:`SimulationResult` with everything the paper's figures
report.

What to build is described by a :class:`repro.scenario.Scenario`; the
legacy keyword constructor normalizes its arguments into one, so a
spec, a CLI invocation and a driver all assemble the system the same
way (prefer :func:`repro.scenario.build_simulation` for new code).

RNG-stream map — every stream is a ``SeedSequence`` child of the
scenario seed with a fixed ``spawn_key``, so streams are collision-safe
and independent of construction order:

=====================  ==========================================
spawn_key              purpose
=====================  ==========================================
(0,)                   cost-model scalar fallback draws
(1,)                   profiling-traffic byte draws
(2,)                   i.i.d. UE allocation splitting
(3,)                   OS wakeup-latency model
(4,)                   cache-interference model
(5,)                   workload mix controller
(6, cell, slot, dir)   per-DAG batched sampling (DagBuilder)
(7, cell)              per-cell traffic generators
(8, cell)              per-cell HARQ processes
(9, cell, dir)         per-cell/direction MAC pipelines
=====================  ==========================================

Fleet keying — when ``scenario.cell_id_base`` is set (the pool is one
cell-shard of a :mod:`repro.fleet` metro deployment), ``cell`` above
means the *global* cell id (``cell_id_base + local index``) and the
shared i.i.d. allocation stream ``(2,)`` becomes one counter-keyed
stream ``(2, cell)`` per cell.  Every per-cell stream then depends
only on ``(fleet seed, global cell id)``, never on which shard the
cell landed in, which is what makes per-cell sampling byte-identical
across arbitrary shardings.  The pool-level streams (0, 1, 3, 4, 5)
are keyed ``(k, cell_id_base)`` so distinct shards draw distinct
scheduling-side randomness.
"""

from __future__ import annotations

import math
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..ran.config import PoolConfig, SlotType
from ..ran.dag import (DagBuilder, dag_kind_key, plan_task_rows,
                       topology_for_key)
from ..ran.harq import HarqConfig, HarqManager, _PendingRetransmission
from ..ran.mac import MacCell
from ..ran.tasks import CostModel, TaskType, prbs_for_bandwidth
from ..ran.traffic import CellTraffic
from ..ran.ue import MCS_TABLE, SlotLoad, UeAllocation, bytes_to_allocations
from ..workloads.base import WorkloadHost
from ..workloads.catalog import MixController, make_workload
from .cache import CacheInterferenceModel
from .engine import Engine
from .metrics import LatencySummary, Metrics
from .osmodel import WakeupLatencyModel
from .policy import SchedulerPolicy
from .pool import VranPool

__all__ = ["RESULT_SCHEMAS", "Simulation", "SimulationResult"]

#: Result-payload schemas :meth:`SimulationResult.from_dict` can load.
#: Schema 1 predates the scenario layer (no ``scenario`` key); schema 2
#: embeds the serialized scenario that produced the result.
RESULT_SCHEMAS = (1, 2)

#: Fraction of a direction's traffic carried in a TDD special slot.
SPECIAL_SLOT_DL_SCALE = 0.5
SPECIAL_SLOT_UL_SCALE = 0.3

#: Target DAG-job count per window ``build_many`` batch.  The default
#: window width is this divided by the pool's jobs-per-slot (cells x
#: directions): wide enough to amortize the numpy fixed cost of a
#: batch, small enough that a window's prebuilt SlotLoads and task
#: instances stay cache-resident.  Measured on the bench workloads, a
#: ~64-job batch is the sweet spot at both ends — a 7-cell pool at
#: load 0.5 prefers short (4-slot) windows, a single idle cell prefers
#: long (32-slot) ones.
DEFAULT_WINDOW_JOBS = 64

#: Floor for the default window width in slots.
MIN_SLOT_WINDOW = 4


def _slot_directions(cell, slot_index: int) -> tuple:
    """(uplink, traffic-scale) pairs fired by ``cell`` in this slot.

    Must mirror the direction logic of ``_loads_for_slot`` exactly —
    the slot-window kernel uses it to count how many traffic draws each
    per-(cell, direction) generator will consume across a window.
    """
    slot_type = cell.slot_type(slot_index)
    if slot_type is SlotType.FULL_DUPLEX:
        return ((True, 1.0), (False, 1.0))
    if slot_type is SlotType.UPLINK:
        return ((True, 1.0),)
    if slot_type is SlotType.DOWNLINK:
        return ((False, 1.0),)
    if slot_type is SlotType.SPECIAL:
        return ((True, SPECIAL_SLOT_UL_SCALE),
                (False, SPECIAL_SLOT_DL_SCALE))
    return ()


@dataclass
class SimulationResult:
    """Everything measured in one simulation run."""

    policy_name: str
    workload_name: str
    load_fraction: float
    num_slots: int
    duration_us: float
    latency: LatencySummary
    reclaimed_fraction: float
    idle_upper_bound: float
    vran_utilization: float
    scheduling_events: int
    wakeup_histogram: dict
    workload_ops: dict
    workload_rates_per_s: dict
    preemptions_per_core_ms: float
    mean_stall_increase: float
    metrics: Metrics = field(repr=False)
    pool: VranPool = field(repr=False)
    #: HARQ statistics (only when the simulation ran with harq=True).
    harq: Optional[dict] = None
    #: JSON-able registry snapshot (repro.obs): event counters, the
    #: wakeup-latency histogram, core-time gauges and scheduler
    #: overhead counters.  Unlike ``metrics``/``pool`` this survives
    #: the repro.exec result cache.
    telemetry: dict = field(default_factory=dict, repr=False)
    #: Serialized :class:`repro.scenario.Scenario` that produced this
    #: result (schema-2 payloads; None when loaded from schema 1).
    scenario: Optional[dict] = None

    @property
    def meets_five_nines(self) -> bool:
        return self.latency.meets_five_nines

    def to_dict(self) -> dict:
        """JSON-able payload for the on-disk result cache.

        Captures every scalar series the figure drivers consume; the
        live ``metrics``/``pool`` objects are deliberately dropped —
        a result rebuilt by :meth:`from_dict` carries None for both,
        and callers that need them must bypass the cache
        (``run_simulation(..., use_cache=False)``).
        """
        latency = self.latency
        return {
            "schema": 2,
            "policy_name": self.policy_name,
            "workload_name": self.workload_name,
            "load_fraction": self.load_fraction,
            "num_slots": self.num_slots,
            "duration_us": self.duration_us,
            "latency": {
                "count": latency.count,
                "mean_us": latency.mean_us,
                "p50_us": latency.p50_us,
                "p99_us": latency.p99_us,
                "p9999_us": latency.p9999_us,
                "p99999_us": latency.p99999_us,
                "max_us": latency.max_us,
                "deadline_us": latency.deadline_us,
                "miss_fraction": latency.miss_fraction,
            },
            "reclaimed_fraction": self.reclaimed_fraction,
            "idle_upper_bound": self.idle_upper_bound,
            "vran_utilization": self.vran_utilization,
            "scheduling_events": self.scheduling_events,
            "wakeup_histogram": dict(self.wakeup_histogram),
            "workload_ops": dict(self.workload_ops),
            "workload_rates_per_s": dict(self.workload_rates_per_s),
            "preemptions_per_core_ms": self.preemptions_per_core_ms,
            "mean_stall_increase": self.mean_stall_increase,
            "harq": self.harq,
            "telemetry": self.telemetry,
            "scenario": self.scenario,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SimulationResult":
        """Rebuild a result from :meth:`to_dict` (metrics/pool = None).

        Accepts every schema in :data:`RESULT_SCHEMAS`; anything else
        (including newer schemas written by a later version) raises
        ``ValueError`` so callers such as the exec result cache can
        treat the payload as a miss instead of misreading it.
        """
        if payload.get("schema") not in RESULT_SCHEMAS:
            raise ValueError(
                f"unsupported result schema {payload.get('schema')!r}")
        return cls(
            policy_name=payload["policy_name"],
            workload_name=payload["workload_name"],
            load_fraction=payload["load_fraction"],
            num_slots=payload["num_slots"],
            duration_us=payload["duration_us"],
            latency=LatencySummary(**payload["latency"]),
            reclaimed_fraction=payload["reclaimed_fraction"],
            idle_upper_bound=payload["idle_upper_bound"],
            vran_utilization=payload["vran_utilization"],
            scheduling_events=payload["scheduling_events"],
            wakeup_histogram=dict(payload["wakeup_histogram"]),
            workload_ops=dict(payload["workload_ops"]),
            workload_rates_per_s=dict(payload["workload_rates_per_s"]),
            preemptions_per_core_ms=payload["preemptions_per_core_ms"],
            mean_stall_increase=payload["mean_stall_increase"],
            metrics=None,
            pool=None,
            harq=payload["harq"],
            telemetry=dict(payload.get("telemetry", {})),
            scenario=payload.get("scenario"),
        )


def _stream_rng(seed: int, *spawn_key: int) -> np.random.Generator:
    """Independent generator for one RNG stream of a simulation.

    Streams are ``SeedSequence`` children of the scenario seed with an
    explicit ``spawn_key`` (see the module docstring for the map), so
    every stream is collision-safe, reproducible, and independent of
    how many other streams exist or the order they are created in —
    adding a cell or an optional subsystem never shifts another
    stream's draws.
    """
    return np.random.default_rng(
        np.random.SeedSequence(entropy=seed, spawn_key=spawn_key))


class Simulation:
    """One configured experiment: pool + policy + traffic + workloads.

    Prefer :func:`repro.scenario.build_simulation`; the keyword
    constructor is kept for existing call sites and normalizes its
    arguments into a :class:`~repro.scenario.Scenario` so both paths
    assemble the identical object graph.
    """

    def __init__(
        self,
        pool_config: PoolConfig,
        policy: SchedulerPolicy,
        workload: str = "none",
        load_fraction: float = 0.5,
        seed: int = 0,
        profiling_traffic: bool = False,
        mix_interval_us: tuple[float, float] = (0.5e6, 2.0e6),
        record_tasks: bool = False,
        allocation_mode: str = "iid",
        harq: bool = False,
        event_bus=None,
        scenario=None,
    ) -> None:
        # Lazy: repro.scenario imports this module for build_simulation.
        from ..scenario.scenario import Scenario

        if scenario is None:
            if allocation_mode not in ("iid", "mac"):
                raise ValueError("allocation_mode must be 'iid' or 'mac'")
            scenario = Scenario(
                pool=pool_config,
                policy=getattr(policy, "name", "custom"),
                workload=workload,
                load_fraction=load_fraction,
                seed=seed,
                traffic="profiling" if profiling_traffic else "model",
                allocation=allocation_mode,
                harq=harq,
                mix_interval_us=mix_interval_us,
                record_tasks=record_tasks,
            )
        self.scenario = scenario
        self.allocation_mode = scenario.allocation
        self.pool_config = pool_config
        self.policy = policy
        self.workload_name = scenario.workload
        self.load_fraction = scenario.load_fraction
        self.profiling_traffic = scenario.profiling_traffic
        seed = scenario.seed
        workload = scenario.workload
        load_fraction = scenario.load_fraction
        allocation_mode = scenario.allocation
        mix_interval_us = scenario.mix_interval_us
        record_tasks = scenario.record_tasks
        harq = scenario.harq
        # Fleet keying (see module docstring): a cell-shard keys every
        # per-cell stream by the global cell id and pool-level streams
        # by the shard's base, so cell-level sampling is independent of
        # how the metro deployment was sharded.
        base = scenario.cell_id_base
        self._cell_id_base = 0 if base is None else base
        fleet = base is not None
        pool_key = (base,) if fleet else ()
        self._rng_cost = _stream_rng(seed, 0, *pool_key)
        self._rng_traffic = _stream_rng(seed, 1, *pool_key)
        self._rng_os = _stream_rng(seed, 3, *pool_key)
        self._rng_cache = _stream_rng(seed, 4, *pool_key)
        self._rng_mix = _stream_rng(seed, 5, *pool_key)
        if fleet:
            # One counter-keyed allocation stream per cell: within a
            # cell the draw order (slot, then direction) is fixed, so
            # the stream never observes other cells' draws.
            self._rng_alloc = None
            self._rng_alloc_cells = [
                _stream_rng(seed, 2, base + index)
                for index in range(len(pool_config.cells))
            ]
        else:
            self._rng_alloc = _stream_rng(seed, 2)
            self._rng_alloc_cells = None

        self.engine = Engine()
        self.cost_model = CostModel(rng=self._rng_cost)
        self.builder = DagBuilder(
            self.cost_model, rng=self._rng_alloc,
            seed_seq=np.random.SeedSequence(entropy=seed, spawn_key=(6,)))
        self.metrics = Metrics(pool_config.num_cores)
        self.metrics.record_tasks = record_tasks
        cache_model = CacheInterferenceModel(rng=self._rng_cache)
        self.event_bus = event_bus
        self.pool = VranPool(
            engine=self.engine,
            config=pool_config,
            policy=policy,
            cost_model=self.cost_model,
            os_model=WakeupLatencyModel(rng=self._rng_os),
            cache_model=cache_model,
            metrics=self.metrics,
            event_bus=event_bus,
        )
        # Completed DAGs hand their task instances back to the
        # builder's pool (lazily scavenged at the next slot boundary;
        # the pool disables recycling while a task_observer holds
        # references past DAG completion).
        self.pool.dag_recycler = self.builder.recycle_dag
        self.host = WorkloadHost(make_workload(workload),
                                 cache_model=cache_model)
        self.pool.set_available_listener(self.host.on_available_change)
        self.pool.set_best_effort_occupancy(self.host.has_active_occupant)
        if workload == "mix":
            MixController(
                self.engine, self.host,
                min_interval_us=mix_interval_us[0],
                max_interval_us=mix_interval_us[1],
                rng=self._rng_mix,
            )
        cell_base = self._cell_id_base
        self.traffic = [
            CellTraffic.for_cell(
                cell, load_fraction,
                rng=_stream_rng(seed, 7, cell_base + index),
            )
            for index, cell in enumerate(pool_config.cells)
        ]
        # Optional HARQ loop: failed uplink transport blocks come back
        # as retransmissions a few slots later.
        self._harq: dict = {}
        if harq:
            for index in range(len(pool_config.cells)):
                self._harq[index] = HarqManager(
                    rng=_stream_rng(seed, 8, cell_base + index))
        # Optional MAC-layer allocation pipeline (buffer-driven PF
        # scheduling instead of i.i.d. byte splitting).
        self._mac: dict = {}
        if allocation_mode == "mac":
            for index, cell in enumerate(pool_config.cells):
                for uplink in (True, False):
                    rate = (cell.avg_ul_mbps if uplink
                            else cell.avg_dl_mbps) * 1e6 * load_fraction
                    if cell.duplex.value == "tdd":
                        share = cell.direction_share(uplink)
                        if share > 0:
                            rate /= share
                    self._mac[(index, uplink)] = MacCell(
                        cell,
                        num_ues=cell.max_ues_per_slot,
                        total_rate_bps=rate,
                        rng=_stream_rng(seed, 9, cell_base + index,
                                        int(uplink)),
                    )
        #: Optional hook receiving each slot's freshly built DAG batch
        #: (after sampling, before release to the pool).  The fleet
        #: layer attaches a demand recorder here to compute per-cell
        #: sampling digests and federated core-demand rollups.
        self.demand_observer = None
        # Mutable cell membership (elastic reconfiguration).  These
        # parallel lists are the slot pipeline's source of truth —
        # ``pool_config`` stays the frozen as-built description.
        # Index i of _cell_list/_cell_gids/traffic/_rng_alloc_cells/
        # _harq all refer to the same attached cell.
        self._cell_list = list(pool_config.cells)
        self._cell_gids = list(
            range(cell_base, cell_base + len(pool_config.cells)))
        #: Snapshots stashed by a timeline ``detach_cell``, keyed by
        #: cell name, for a later ``attach_cell`` (outage scripting).
        self.detached_cells: dict = {}
        # Migration-cost model state: cells whose freshly built DAGs
        # are buffered until a hold slot (state-transfer delay), and
        # cells whose WCET predictions are inflated while the
        # destination's predictor warms up.
        self._held_cells: dict = {}
        self._backlog: list = []
        self._warm_cells: dict = {}
        #: Slot indices the window kernel must not pre-draw across
        #: (reconfiguration barriers).
        self._window_barriers: set = set()
        self._reconfig_queue: list = []
        self._started = False
        self._run_start = 0.0
        self._end_time = 0.0
        self._num_slots = 0
        self._slot_index = 0
        self._slots_remaining = 0
        self._slot_event = None
        self._slot_us = pool_config.slot_duration_us
        #: Slot-window batch kernel (ROADMAP item 1): number of future
        #: slots whose traffic/HARQ occupancy is pre-drawn and whose
        #: DAGs are prebuilt in one ``build_many`` pass.  0 disables
        #: the kernel and falls back to per-slot construction.  The
        #: kernel only engages for model traffic with i.i.d. allocation
        #: (see :meth:`_fill_window` for why those are the exact
        #: configurations whose draw order it can reproduce ahead of
        #: time); ``kernel_stats`` reports engagement either way.
        self.slot_window = max(
            MIN_SLOT_WINDOW,
            DEFAULT_WINDOW_JOBS // max(1, 2 * len(pool_config.cells)))
        self._use_window = False
        self._win_dags: deque = deque()
        self._win_idle: deque = deque()
        #: Per-slot :class:`repro.sim.arraykernel.SlotPlan` (or None),
        #: kept in lockstep with ``_win_dags``; built at window-fill
        #: time so the boundary hot path only checks dynamic gates.
        self._win_plans: deque = deque()
        #: Per-slot job list for slots whose DAGs were *not* built at
        #: fill time (plan-direct fill): the boundary either commits
        #: the slot in closed form without ever building its DAGs, or
        #: materializes them from the jobs with a byte-identical
        #: counter-keyed rebuild.  None for materialized slots.
        self._win_jobs: deque = deque()
        self._use_vector_plans = False
        # kind_key -> (decode indices, memory-bound flags): the task
        # *type* sequence is fully determined by the kind key, so this
        # per-row metadata is shared by every DAG of a kind.
        self._plan_kind_meta: dict = {}
        # (uplink, id(cell)) -> (cell, tuple of idle-DAG base costs);
        # idle rows are load-independent so the batch output is
        # reusable, and the held reference keeps the id stable.
        self._idle_base_cache: dict = {}
        self.kernel_stats = {
            "slots": 0,          # slot boundaries fired
            "window_slots": 0,   # slots served by the window kernel
            "idle_slots": 0,     # of those, slots with zero bytes
            "windows": 0,        # build_many pre-pass invocations
            "array_slots": 0,    # slots replayed by the array kernel
            "vector_slots": 0,   # of those, closed-form vector commits
        }
        #: Wall-clock phase accounting for ``repro bench --profile``.
        self.fill_wall_s = 0.0
        self.summary_wall_s = 0.0
        #: Array-timeline engine (ISSUE 9): "array" replays certified
        #: slots synchronously inside the boundary callback, bypassing
        #: the event heap; "event" (the default) is the legacy
        #: per-event path.  Slots the kernel cannot certify fall back
        #: to the event path mid-run, so results are byte-identical
        #: either way (see repro.sim.arraykernel).
        self.engine_mode = getattr(scenario, "engine_mode", "event")
        self._array_kernel = None
        self._use_array = False
        if self.engine_mode == "array":
            # Lazy import: the kernel is opt-in and the hot default
            # path should not pay for it.
            from .arraykernel import ArraySlotKernel

            self._array_kernel = ArraySlotKernel(self)

    # -- traffic ----------------------------------------------------------------

    def _draw_bytes(self, cell_index: int, uplink: bool,
                    scale: float = 1.0) -> int:
        cell = self._cell_list[cell_index]
        if self.profiling_traffic:
            # Offline profiling sweeps the input space uniformly
            # (paper §4.2: parameters varied every TTI).
            if self._rng_traffic.random() < 0.1:
                return 0
            peak = cell.peak_bytes_per_slot(uplink)
            return int(self._rng_traffic.uniform(0, peak) * scale)
        generator = self.traffic[cell_index]
        source = generator.uplink if uplink else generator.downlink
        return int(source.next_slot() * scale)

    def _loads_for_slot(self, cell_index: int, slot_index: int) -> list:
        cell = self._cell_list[cell_index]
        loads = []
        for uplink, scale in _slot_directions(cell, slot_index):
            if self.allocation_mode == "mac":
                allocations = self._mac[(cell_index, uplink)].step()
            else:
                total = self._draw_bytes(cell_index, uplink, scale)
                alloc_rng = (self._rng_alloc
                             if self._rng_alloc_cells is None
                             else self._rng_alloc_cells[cell_index])
                allocations = bytes_to_allocations(
                    total, alloc_rng,
                    max_ues=cell.max_ues_per_slot,
                    max_layers=cell.max_layers,
                )
            if uplink and cell_index in self._harq:
                allocations = self._harq[cell_index].process_slot(
                    slot_index, allocations)
            loads.append(SlotLoad(
                cell_name=cell.name,
                slot_index=slot_index,
                uplink=uplink,
                allocations=allocations,
            ))
        return loads

    # -- slot driving --------------------------------------------------------------

    def _fill_window(self) -> None:
        """Pre-draw traffic and prebuild DAGs for the coming window.

        Byte-identity invariants (what makes this a kernel and not a
        model change):

        * each per-(cell, direction) traffic generator owns a private
          stream consumed in slot order, so one batched
          ``next_slots(n)`` call replays exactly the draws the per-slot
          path would make;
        * the shared i.i.d. allocation stream is consumed slot-major,
          cell-major, direction-minor — the same total order the
          per-slot path uses (fleet shards use per-cell streams, which
          only need the per-cell slot order);
        * HARQ draws depend only on the cell's own stream and the
          allocation features, never on execution outcomes, so the
          retransmission loop can run in the pre-pass;
        * release timestamps replay the engine's recurring-timer float
          accumulation (``t += slot_us``), so deadlines are bit-equal;
        * per-DAG sampling streams are counter-keyed by
          (cell, slot, direction), so batching slots into one
          ``build_many`` cannot reorder any draw.

        MAC allocation (feedback through HARQ buffers) and profiling
        traffic (one shared stream with data-dependent draw counts)
        break the first two invariants; for those the kernel disables
        itself and the per-slot path runs (see ``run``).
        """
        wall_start = time.perf_counter()
        count = self._slots_remaining
        if count > self.slot_window:
            count = self.slot_window
        start_slot = self._slot_index
        # Never pre-draw across a reconfiguration barrier: cell
        # membership (and hence the draw plan) may change there.  The
        # clamp only narrows window widths — each generator still
        # consumes its draws in exact slot order — so digests are
        # unaffected; with an empty timeline there are no barriers and
        # the widths are exactly the legacy ones.
        for barrier in self._window_barriers:
            if start_slot < barrier < start_slot + count:
                count = barrier - start_slot
        cells = self._cell_list
        # Direction plan per cell and slot, then one batched traffic
        # draw per (cell, direction) generator covering the window.
        plans = []
        draws = []
        for cell_index, cell in enumerate(cells):
            plan = [_slot_directions(cell, start_slot + rel)
                    for rel in range(count)]
            plans.append(plan)
            generator = self.traffic[cell_index]
            per_dir = {}
            for uplink in (True, False):
                needed = sum(1 for dirs in plan for u, _ in dirs
                             if u == uplink)
                if needed:
                    source = (generator.uplink if uplink
                              else generator.downlink)
                    per_dir[uplink] = iter(
                        source.next_slots(needed).tolist())
            draws.append(per_dir)
        jobs = []
        job_counts = []
        idle_flags = []
        gids = self._cell_gids
        harq = self._harq
        alloc_cells = self._rng_alloc_cells
        shared_alloc = self._rng_alloc
        deadline_us = self.pool_config.deadline_us
        slot_us = self._slot_us
        release = self.engine.now
        slot_meta = []
        for rel in range(count):
            slot_index = start_slot + rel
            deadline = release + deadline_us
            slot_meta.append((release, deadline))
            n_jobs = 0
            idle = True
            for cell_index, cell in enumerate(cells):
                per_dir = draws[cell_index]
                alloc_rng = (shared_alloc if alloc_cells is None
                             else alloc_cells[cell_index])
                for uplink, scale in plans[cell_index][rel]:
                    total = int(next(per_dir[uplink]) * scale)
                    allocations = bytes_to_allocations(
                        total, alloc_rng,
                        max_ues=cell.max_ues_per_slot,
                        max_layers=cell.max_layers,
                    )
                    if uplink and cell_index in harq:
                        allocations = harq[cell_index].process_slot(
                            slot_index, allocations)
                    if allocations:
                        idle = False
                    jobs.append((SlotLoad(cell_name=cell.name,
                                          slot_index=slot_index,
                                          uplink=uplink,
                                          allocations=allocations),
                                 cell, release, deadline,
                                 gids[cell_index]))
                    n_jobs += 1
            job_counts.append(n_jobs)
            idle_flags.append(idle)
            release += slot_us
        if (self._use_vector_plans and self.demand_observer is None
                and self._array_kernel.lazy_ok()):
            # Plan-direct fill: certify from cost rows, defer (most)
            # DAG construction to the slots that actually need it.
            self._plan_window(jobs, job_counts, idle_flags, slot_meta,
                              slot_us)
        else:
            # One vectorized cost/feature pass over the whole
            # *window's* DAGs (the per-slot path batches only within a
            # slot).
            dags = self.builder.build_many(jobs)
            win_dags = self._win_dags
            win_idle = self._win_idle
            win_plans = self._win_plans
            win_jobs = self._win_jobs
            build_plan = (self._array_kernel.build_plan
                          if self._use_vector_plans else None)
            pos = 0
            for (n_jobs, idle, meta) in zip(job_counts, idle_flags,
                                            slot_meta):
                slot_dags = dags[pos:pos + n_jobs]
                win_dags.append(slot_dags)
                win_idle.append(idle)
                win_jobs.append(None)
                if build_plan is not None:
                    win_plans.append(
                        build_plan(slot_dags, meta[0], meta[1], slot_us))
                else:
                    win_plans.append(None)
                pos += n_jobs
        stats = self.kernel_stats
        stats["windows"] += 1
        stats["window_slots"] += count
        self.fill_wall_s += time.perf_counter() - wall_start

    def _plan_window(self, jobs: list, job_counts: list,
                     idle_flags: list, slot_meta: list,
                     slot_us: float) -> None:
        """Plan-direct window fill: build plans, not DAGs.

        For each slot whose static vector gates hold, only a
        :class:`repro.sim.arraykernel.SlotPlan` is computed — from the
        same cost rows, base-cost batch and per-DAG stochastic draws a
        real build would use (``plan_task_rows`` mirrors the builders
        parameter-for-parameter, and every DAG's RNG stream is
        counter-keyed, so a deferred ``build_many`` of the same jobs
        reproduces the exact task fields later if the boundary has to
        fall back).  Slots that fail the static gates — or contain a
        DAG kind with no registered topology template yet (templates
        only ever come from real DAGs) — are materialized here in one
        batched build, exactly like the non-lazy fill.
        """
        kernel = self._array_kernel
        builder = self.builder
        # One base-cost batch over every task row of the window,
        # mirroring build_many's batch bit-for-bit (the ops are
        # elementwise, so batch composition cannot perturb values).
        # Idle DAGs dominate low-load runs and their rows (and hence
        # base costs) depend only on (direction, cell config), so their
        # bases are served from a per-runner cache after the first
        # planned window touches the (direction, cell) pair.
        idle_bases = self._idle_base_cache
        rows_per_job: list = []
        job_bases: list = []
        kinds = []
        flat_rows: list = []
        consts = []
        counts = []
        for load, cell, _release, _deadline, _gid in jobs:
            kinds.append(dag_kind_key(load))
            if load.idle:
                cached = idle_bases.get((load.uplink, id(cell)))
                if cached is not None:
                    rows_per_job.append(None)
                    job_bases.append(cached[1])
                    continue
            rows = plan_task_rows(load, cell)
            rows_per_job.append(rows)
            job_bases.append(None)
            counts.append(len(rows))
            prbs = prbs_for_bandwidth(cell.bandwidth_mhz,
                                      cell.numerology)
            consts.append((float(prbs), float(cell.num_antennas),
                           float(load.total_bytes)))
            flat_rows.extend(rows)
        if flat_rows:
            (types, cbs, tbytes, margins, rates, shares,
             layers_col) = zip(*flat_rows)
            const_arr = np.repeat(np.array(consts), np.array(counts),
                                  axis=0)
            costs = builder.cost_model.base_costs_batch(
                np.array([t.type_code for t in types]),
                prbs=const_arr[:, 0],
                antennas=const_arr[:, 1],
                slot_bytes=const_arr[:, 2],
                task_codeblocks=np.array(cbs, dtype=np.float64),
                task_bytes=np.array(tbytes),
                snr_margin_db=np.array(margins),
                code_rate=np.array(rates),
                prb_share=np.array(shares),
                layers=np.array(layers_col, dtype=np.float64),
            ).tolist()
        else:
            costs = []
        decode_type = TaskType.LDPC_DECODE
        build_plan_static = kernel.build_plan_static
        kind_meta = self._plan_kind_meta
        n_total = len(jobs)
        # Pass A (flat, job order): resolve every job's base costs from
        # the window batch, filling the idle cache as pairs first
        # appear.
        task_idx = 0
        for jj in range(n_total):
            if job_bases[jj] is None:
                rows = rows_per_job[jj]
                n = len(rows)
                job_base = costs[task_idx:task_idx + n]
                task_idx += n
                load = jobs[jj][0]
                if load.idle:
                    cell = jobs[jj][1]
                    # The held cell reference pins the id.
                    idle_bases[(load.uplink, id(cell))] = \
                        (cell, tuple(job_base))
                job_bases[jj] = job_base
        # Pass B: resolve topologies per slot; collect the stochastic
        # draw requests of every plannable slot's DAGs in job order
        # (each DAG draws from its own counter-keyed stream, so the
        # materialized slots skipped here lose nothing).
        slot_topos: list = []
        metas: list = [None] * n_total
        reqs: list = []
        job_idx = 0
        for n_jobs in job_counts:
            topos: Optional[list] = []
            for j in range(n_jobs):
                topo = topology_for_key(kinds[job_idx + j])
                if topo is None:
                    topos = None
                    break
                topos.append(topo)
            slot_topos.append(topos)
            if topos is not None:
                for j in range(n_jobs):
                    jj = job_idx + j
                    load = jobs[jj][0]
                    kind = kinds[jj]
                    meta = kind_meta.get(kind)
                    if meta is None:
                        rows = rows_per_job[jj]
                        if rows is None:
                            rows = plan_task_rows(load, jobs[jj][1])
                        meta = ([i for i, row in enumerate(rows)
                                 if row[0] is decode_type],
                                [row[0].is_memory_bound for row in rows])
                        kind_meta[kind] = meta
                    metas[jj] = meta
                    reqs.append((len(job_bases[jj]), meta[0],
                                 jobs[jj][4], load.slot_index,
                                 load.uplink))
            job_idx += n_jobs
        # One batched draw pass over every planned DAG of the window.
        all_mults = builder.plan_stoch_window(reqs)
        # Pass C: assemble and gate one plan per plannable slot.
        entries: list = []      # (plan, slot_jobs) or None (materialize)
        mat_jobs: list = []
        mat_slots: list = []    # (slot position, n_jobs) of materialized
        job_idx = 0
        moff = 0
        for si, n_jobs in enumerate(job_counts):
            topos = slot_topos[si]
            plan = None
            if topos is not None:
                bases: list = []
                membound: list = []
                m_end = moff
                for j in range(n_jobs):
                    jj = job_idx + j
                    job_base = job_bases[jj]
                    bases.extend(job_base)
                    membound.extend(metas[jj][1])
                    m_end += len(job_base)
                release, deadline = slot_meta[si]
                plan = build_plan_static(
                    tuple(kinds[job_idx:job_idx + n_jobs]), topos,
                    bases, all_mults[moff:m_end], membound,
                    release, deadline, slot_us)
                moff = m_end
            slot_jobs = jobs[job_idx:job_idx + n_jobs]
            if plan is not None and plan.ok:
                entries.append((plan, slot_jobs))
            else:
                entries.append(None)
                mat_jobs.extend(slot_jobs)
                mat_slots.append((si, n_jobs))
            job_idx += n_jobs
        # One batched build for every slot that needs real DAGs (the
        # per-DAG streams make the split from the lazy slots draw-safe).
        built = builder.build_many(mat_jobs) if mat_jobs else []
        mat_map = {}
        pos = 0
        for si, n_jobs in mat_slots:
            mat_map[si] = built[pos:pos + n_jobs]
            pos += n_jobs
        win_dags = self._win_dags
        win_idle = self._win_idle
        win_plans = self._win_plans
        win_jobs = self._win_jobs
        build_plan = kernel.build_plan
        for si, entry in enumerate(entries):
            win_idle.append(idle_flags[si])
            if entry is not None:
                plan, slot_jobs = entry
                win_dags.append(None)
                win_jobs.append(slot_jobs)
                win_plans.append(plan)
            else:
                slot_dags = mat_map[si]
                release, deadline = slot_meta[si]
                win_dags.append(slot_dags)
                win_jobs.append(None)
                # Registers any new topology templates as a side
                # effect, unlocking the lazy path for later windows.
                win_plans.append(
                    build_plan(slot_dags, release, deadline, slot_us))

    def _on_slot_boundary(self) -> None:
        if self._reconfig_queue:
            queue = self._reconfig_queue
            if queue[0].at_slot <= self._slot_index:
                self._apply_due_reconfig()
        stats = self.kernel_stats
        stats["slots"] += 1
        if self._use_window:
            if not self._win_dags:
                self._fill_window()
            dags = self._win_dags.popleft()
            plan = self._win_plans.popleft()
            jobs = self._win_jobs.popleft()
            if self._win_idle.popleft():
                stats["idle_slots"] += 1
        else:
            plan = None
            jobs = None
            now = self.engine.now
            deadline = now + self.pool_config.deadline_us
            jobs = []
            gids = self._cell_gids
            for cell_index, cell in enumerate(self._cell_list):
                for load in self._loads_for_slot(cell_index,
                                                 self._slot_index):
                    jobs.append((load, cell, now, deadline,
                                 gids[cell_index]))
            # One vectorized cost/feature pass over the whole slot's
            # DAGs (builder batches the numpy work; RNG streams stay
            # per-DAG).
            dags = self.builder.build_many(jobs)
        if self.demand_observer is not None:
            if dags is None:
                dags = self.builder.build_many(jobs)
            self.demand_observer(dags)
        if self._held_cells or self._backlog:
            if dags is None:
                dags = self.builder.build_many(jobs)
            dags = self._apply_migration_holds(dags)
            plan = None  # the hold changed the slot's DAG list
        if self._warm_cells:
            if dags is None:
                dags = self.builder.build_many(jobs)
            self._apply_predictor_warmup(dags)
            plan = None  # inflated WCETs invalidate the plan's fold
        self._slot_index += 1
        self._slots_remaining -= 1
        pool = self.pool
        if self._slots_remaining == 0:
            if self._slot_event is not None:
                # Last requested slot: stop the periodic source so the
                # drain window does not release extra TTIs.
                self._slot_event.cancel()
                self._slot_event = None
            pool._quiet_until = math.inf
        else:
            # The pool is guaranteed no new work until the next
            # boundary — the tick-batching fast path keys off this.
            pool._quiet_until = self.engine.now + self._slot_us
        kernel = self._array_kernel
        if kernel is not None and self._use_array:
            if dags is None and kernel.try_vector(plan):
                stats["array_slots"] += 1
                return
            if dags is None:
                # Dynamic rejection of a lazily planned slot: build the
                # DAGs now (byte-identical counter-keyed rebuild) and
                # take the ordinary replay/fallback path.
                dags = self.builder.build_many(jobs)
            if kernel.replay(dags, plan):
                stats["array_slots"] += 1
                return
            pool.release_slot(dags)
            # A boundary-coincident tick parked by a previous replay
            # fires right after the boundary on the event path.
            kernel.after_fallback_release()
            return
        if dags is None:
            dags = self.builder.build_many(jobs)
        pool.release_slot(dags)

    # -- reconfiguration (elastic runtime) ---------------------------------------

    def _apply_due_reconfig(self) -> None:
        """Apply every timeline event due at the current slot boundary."""
        queue = self._reconfig_queue
        while queue and queue[0].at_slot <= self._slot_index:
            event = queue.pop(0)
            action = event.action
            if action == "add_worker":
                for _ in range(event.count):
                    self.pool.add_worker()
            elif action == "remove_worker":
                for _ in range(event.count):
                    self.pool.remove_worker()
            elif action == "detach_cell":
                self.detached_cells[event.cell] = self.detach_cell(event.cell)
            elif action == "attach_cell":
                try:
                    snapshot = self.detached_cells.pop(event.cell)
                except KeyError:
                    raise ValueError(
                        f"attach_cell {event.cell!r}: no detached "
                        f"snapshot of that name") from None
                self.attach_cell(
                    snapshot,
                    transfer_slots=event.transfer_slots,
                    warmup_slots=event.warmup_slots,
                    warmup_factor=event.warmup_factor,
                )
            else:  # pragma: no cover - migrate rejected in start()
                raise ValueError(f"unexpected timeline action {action!r}")

    def _apply_migration_holds(self, dags: list) -> list:
        """State-transfer delay: buffer held cells' DAGs, release late.

        A freshly attached cell's DAGs are built and demand-observed on
        schedule (so per-cell sampling digests are unchanged by the
        migration) but withheld from the pool for ``transfer_slots``
        boundaries, then released with their *original* deadlines — the
        bounded deadline-miss transient of the migration-cost model.
        """
        slot = self._slot_index
        held = self._held_cells
        for name in [n for n, until in held.items() if until <= slot]:
            del held[name]
        if self._backlog:
            still = []
            released = []
            for name, dag in self._backlog:
                if name in held:
                    still.append((name, dag))
                else:
                    released.append(dag)
            self._backlog = still
            if released:
                dags = released + dags
        if held:
            keep = []
            backlog = self._backlog
            for dag in dags:
                if dag.cell_name in held:
                    backlog.append((dag.cell_name, dag))
                else:
                    keep.append(dag)
            dags = keep
        return dags

    def _apply_predictor_warmup(self, dags: list) -> None:
        """Predictor warm-up: inflate a migrated cell's WCET predictions.

        For ``warmup_slots`` after the transfer the destination's
        predictor has no history for the cell, modelled as conservative
        over-estimation: the scheduling policy multiplies its per-task
        WCET predictions by ``dag.wcet_inflation``.  Sampling streams
        and ground-truth runtimes are untouched, so demand digests are
        unaffected.
        """
        slot = self._slot_index
        warm = self._warm_cells
        for name in [n for n, (until, _) in warm.items() if until <= slot]:
            del warm[name]
        if not warm:
            return
        for dag in dags:
            entry = warm.get(dag.cell_name)
            if entry is not None:
                dag.wcet_inflation = entry[1]

    def detach_cell(self, name: str) -> dict:
        """Quiesce cell ``name`` at a slot boundary; return its snapshot.

        The snapshot is plain data (JSON-able apart from the numpy
        BitGenerator state dicts) carrying everything another
        :class:`Simulation` needs to resume the cell mid-run with
        byte-identical sampling: the cell config, global cell id, the
        exact traffic/allocation/HARQ generator states and the pending
        HARQ retransmissions.  Must be called at a slot boundary the
        window kernel was told about (a timeline event's slot, or
        :meth:`add_window_barrier` before the run) so no draws for the
        cell have been made beyond the current slot.
        """
        if self.profiling_traffic:
            raise ValueError(
                "detach_cell requires model traffic (profiling mode "
                "draws from one shared stream)")
        if self.allocation_mode == "mac":
            raise ValueError(
                "detach_cell requires i.i.d. allocation (MAC pipelines "
                "hold non-portable buffer state)")
        if self._win_dags:
            raise ValueError(
                "detach_cell mid-window: the detach slot must be a "
                "window barrier (timeline events register theirs; "
                "planners call add_window_barrier before the run)")
        if self._array_kernel is not None:
            # The snapshot boundary must see fully applied metrics.
            self._array_kernel.flush_pending()
        for index, cell in enumerate(self._cell_list):
            if cell.name == name:
                break
        else:
            raise ValueError(f"no attached cell named {name!r}")
        # Lazy: repro.scenario imports this module for build_simulation.
        from ..scenario.scenario import cell_config_to_dict

        del self._cell_list[index]
        gid = self._cell_gids.pop(index)
        traffic = self.traffic.pop(index)
        alloc_state = None
        if self._rng_alloc_cells is not None:
            alloc_state = self._rng_alloc_cells.pop(index).bit_generator.state
        harq = self._harq.pop(index, None)
        # Re-index the HARQ dict: entries above the removed cell shift
        # down with their cells.
        self._harq = {(i if i < index else i - 1): manager
                      for i, manager in self._harq.items()}
        self._held_cells.pop(name, None)
        self._warm_cells.pop(name, None)
        if self._backlog:
            self._backlog = [(n, d) for n, d in self._backlog if n != name]
        snapshot = {
            "schema": 1,
            "cell": cell_config_to_dict(cell),
            "global_id": gid,
            "seed": self.scenario.seed,
            "load_fraction": self.load_fraction,
            "slot_index": self._slot_index,
            "harq_enabled": harq is not None,
            "traffic": {
                "uplink": {
                    "rng_state": traffic.uplink.rng.bit_generator.state,
                    "active": bool(traffic.uplink._active),
                },
                "downlink": {
                    "rng_state": traffic.downlink.rng.bit_generator.state,
                    "active": bool(traffic.downlink._active),
                },
            },
        }
        if alloc_state is not None:
            snapshot["alloc_rng_state"] = alloc_state
        if harq is not None:
            snapshot["harq"] = {
                "rng_state": harq.rng.bit_generator.state,
                "config": {
                    "rtt_slots": harq.config.rtt_slots,
                    "max_attempts": harq.config.max_attempts,
                    "combining_gain_db": harq.config.combining_gain_db,
                },
                "pending": [
                    {
                        "due_slot": p.due_slot,
                        "attempt": p.attempt,
                        "ue_id": p.allocation.ue_id,
                        "tbs_bytes": p.allocation.tbs_bytes,
                        "mcs_index": p.allocation.mcs.index,
                        "layers": p.allocation.layers,
                        "snr_db": p.allocation.snr_db,
                    }
                    for p in harq._pending
                ],
                "transport_blocks": harq.transport_blocks,
                "retransmissions": harq.retransmissions,
                "failures": harq.failures,
                "residual_losses": harq.residual_losses,
            }
        return snapshot

    def attach_cell(self, snapshot: dict, *, transfer_slots: int = 0,
                    warmup_slots: int = 0,
                    warmup_factor: float = 1.5) -> None:
        """Resume a detached cell from its snapshot, in this simulation.

        The cell's generators are rebuilt from the (seed, global id)
        stream map and then overwritten with the snapshot's exact
        states, so its sampling continues byte-identically no matter
        which simulation it lands in — the portability invariant behind
        fleet migration.  ``transfer_slots``/``warmup_slots`` apply the
        migration-cost model (state-transfer hold, then predictor
        warm-up by ``warmup_factor``); zero (the default) attaches with
        no transient.
        """
        if snapshot.get("schema") != 1:
            raise ValueError(
                f"unsupported cell snapshot schema "
                f"{snapshot.get('schema')!r}")
        if snapshot["seed"] != self.scenario.seed:
            raise ValueError(
                f"cell snapshot seed {snapshot['seed']} != scenario "
                f"seed {self.scenario.seed}; portable state requires "
                f"the same stream map")
        if snapshot["slot_index"] > self._slot_index:
            raise ValueError(
                f"cell snapshot from slot {snapshot['slot_index']} is "
                f"ahead of this simulation (slot {self._slot_index})")
        if self._win_dags:
            raise ValueError(
                "attach_cell mid-window: the attach slot must be a "
                "window barrier (timeline events register theirs; "
                "planners call add_window_barrier before the run)")
        if self._array_kernel is not None:
            self._array_kernel.flush_pending()
        # Lazy: repro.scenario imports this module for build_simulation.
        from ..scenario.scenario import cell_config_from_dict

        cell = cell_config_from_dict(snapshot["cell"])
        if any(c.name == cell.name for c in self._cell_list):
            raise ValueError(f"cell {cell.name!r} is already attached")
        gid = snapshot["global_id"]
        seed = snapshot["seed"]
        traffic = CellTraffic.for_cell(
            cell, snapshot["load_fraction"], rng=_stream_rng(seed, 7, gid))
        for direction, source in (("uplink", traffic.uplink),
                                  ("downlink", traffic.downlink)):
            state = snapshot["traffic"][direction]
            source.rng.bit_generator.state = state["rng_state"]
            source._active = state["active"]
        if self._rng_alloc_cells is not None:
            if "alloc_rng_state" not in snapshot:
                raise ValueError(
                    "cell snapshot lacks a per-cell allocation stream; "
                    "it was detached from a non-fleet simulation")
            alloc_rng = _stream_rng(seed, 2, gid)
            alloc_rng.bit_generator.state = snapshot["alloc_rng_state"]
            self._rng_alloc_cells.append(alloc_rng)
        index = len(self._cell_list)
        self._cell_list.append(cell)
        self._cell_gids.append(gid)
        self.traffic.append(traffic)
        if snapshot["harq_enabled"]:
            payload = snapshot["harq"]
            manager = HarqManager(
                config=HarqConfig(**payload["config"]),
                rng=_stream_rng(seed, 8, gid))
            manager.rng.bit_generator.state = payload["rng_state"]
            manager._pending = [
                _PendingRetransmission(
                    due_slot=p["due_slot"],
                    allocation=UeAllocation(
                        ue_id=p["ue_id"],
                        tbs_bytes=p["tbs_bytes"],
                        mcs=MCS_TABLE[p["mcs_index"]],
                        layers=p["layers"],
                        snr_db=p["snr_db"],
                    ),
                    attempt=p["attempt"],
                )
                for p in payload["pending"]
            ]
            manager.transport_blocks = payload["transport_blocks"]
            manager.retransmissions = payload["retransmissions"]
            manager.failures = payload["failures"]
            manager.residual_losses = payload["residual_losses"]
            self._harq[index] = manager
        if transfer_slots > 0:
            self._held_cells[cell.name] = self._slot_index + transfer_slots
        if warmup_slots > 0:
            self._warm_cells[cell.name] = (
                self._slot_index + transfer_slots + warmup_slots,
                float(warmup_factor),
            )

    # -- the run loop ------------------------------------------------------------

    def start(self, num_slots: int) -> None:
        """Begin a segmented run of ``num_slots`` TTIs.

        ``start`` / :meth:`run_to_barrier` / :meth:`run_to_end` /
        :meth:`finish` decompose :meth:`run` so an external driver (the
        fleet planner's lockstep migration) can pause every simulation
        at the same slot boundary, move cells between them, and resume
        — with the composition byte-identical to one ``run`` call.
        """
        if num_slots <= 0:
            raise ValueError("num_slots must be positive")
        if self._started:
            raise ValueError("simulation already started")
        self._started = True
        timeline = sorted(self.scenario.reconfig, key=lambda e: e.at_slot)
        for event in timeline:
            if event.action == "migrate":
                raise ValueError(
                    "migrate is a fleet-planner verb; a single "
                    "simulation's timeline uses detach_cell/attach_cell")
            if not 0 <= event.at_slot < num_slots:
                raise ValueError(
                    f"reconfig at_slot {event.at_slot} outside "
                    f"[0, {num_slots})")
            if event.action in ("detach_cell", "attach_cell"):
                self._window_barriers.add(event.at_slot)
        self._reconfig_queue = timeline
        start = self.engine.now
        self._run_start = start
        self._num_slots = num_slots
        self._slots_remaining = num_slots
        self._use_window = (
            self.slot_window > 0
            and not self.profiling_traffic
            and self.allocation_mode != "mac"
        )
        # The array kernel self-disables for configurations whose slot
        # interiors are observable or whose builds feed back into the
        # timeline (mirrors the window kernel's gating, plus reconfig:
        # worker add/remove and cell detach/attach change pool
        # structure mid-run).  Everything event-dependent — observers,
        # bus, pressure, quiescence — is re-checked live per slot.
        self._use_array = (
            self._array_kernel is not None
            and not self.profiling_traffic
            and self.allocation_mode != "mac"
            and self.workload_name == "none"
            and not self.scenario.reconfig
        )
        # Vector plans only pay off when the policy supports the
        # closed-form commit; without it every plan would be dead
        # weight on the window fill.
        self._use_vector_plans = (
            self._use_array
            and self.policy.vector_params() is not None
        )
        self._slot_event = self.engine.schedule_every(
            self._slot_us, self._on_slot_boundary, start=start)
        self._end_time = start + num_slots * self._slot_us

    def add_window_barrier(self, slot: int) -> None:
        """Forbid the window kernel from pre-drawing across ``slot``.

        External drivers (the fleet planner) must register every slot
        they will pause at *before* running, so cell membership can
        change there without any generator having drawn past it.
        Narrowing window widths never changes draw *order*, so digests
        are unaffected.
        """
        self._window_barriers.add(int(slot))

    def run_to_barrier(self, slot: int) -> None:
        """Run until slots ``0..slot-1`` are built, poised at ``slot``.

        The target time replays the engine's recurring-timer float
        accumulation (``t += slot_us``) so it is bit-equal to the
        boundary's firing time regardless of the slot duration's binary
        representation.
        """
        if not self._started:
            raise ValueError("start() the simulation first")
        if not 1 <= slot <= self._num_slots:
            raise ValueError(
                f"barrier slot {slot} outside [1, {self._num_slots}]")
        target = self._run_start
        for _ in range(slot - 1):
            target += self._slot_us
        self.engine.run_until(target)

    def run_to_end(self) -> None:
        """Run the remaining slots of a started simulation."""
        if not self._started:
            raise ValueError("start() the simulation first")
        self.engine.run_until(self._end_time)

    def finish(self) -> SimulationResult:
        """Drain in-flight DAGs, finalize metrics, build the result."""
        if self._array_kernel is not None:
            # Deferred vector-slot metrics precede any finalization.
            self._array_kernel.flush_pending()
        # Drain: let in-flight DAGs finish (bounded by 4 deadlines).
        drain_limit = self._end_time + 4 * self.pool_config.deadline_us
        while self.pool.active_dags and self.engine.now < drain_limit:
            if not self.engine.step():
                break
        self.metrics.finalize(self.engine.now)
        self.host.finalize(self.engine.now)
        return self._build_result(self._num_slots)

    def run(self, num_slots: int) -> SimulationResult:
        """Simulate ``num_slots`` TTIs plus a drain period."""
        self.start(num_slots)
        self.run_to_end()
        return self.finish()

    def _build_result(self, num_slots: int) -> SimulationResult:
        duration_us = self.metrics.duration_us
        duration_ms = duration_us / 1000.0
        preempt_rate = (
            self.metrics.best_effort_preemptions
            / max(duration_ms, 1e-9)
            / self.pool_config.num_cores
        )
        ops = self.host.results(preemptions_per_core_ms=preempt_rate)
        rates = {name: value / (duration_us / 1e6)
                 for name, value in ops.items()}
        wall_start = time.perf_counter()
        latency = self.metrics.latency_summary(self.pool_config.deadline_us)
        self.summary_wall_s += time.perf_counter() - wall_start
        return SimulationResult(
            policy_name=self.policy.name,
            workload_name=self.workload_name,
            load_fraction=self.load_fraction,
            num_slots=num_slots,
            duration_us=duration_us,
            latency=latency,
            reclaimed_fraction=self.metrics.reclaimed_fraction,
            idle_upper_bound=self.metrics.idle_fraction_upper_bound,
            vran_utilization=self.metrics.vran_utilization,
            scheduling_events=self.metrics.scheduling_events,
            wakeup_histogram=self.metrics.wakeup_histogram(),
            workload_ops=ops,
            workload_rates_per_s=rates,
            preemptions_per_core_ms=preempt_rate,
            mean_stall_increase=self.pool.cache_model.mean_stall_increase,
            metrics=self.metrics,
            pool=self.pool,
            harq=self._harq_stats(),
            telemetry=self._telemetry(),
            scenario=self.scenario.to_dict(),
        )

    def _telemetry(self) -> dict:
        """Merge the Metrics registry with the policy's own registry.

        Policies without an ``obs_registry`` (the baselines) contribute
        nothing; name spaces are disjoint ("scheduler/" vs "sched/",
        "slots/", "coretime/") so a plain dict merge suffices.
        """
        telemetry = self.metrics.snapshot()
        policy_registry = getattr(self.policy, "obs_registry", None)
        if policy_registry is not None:
            extra = policy_registry.as_dict()
            for section in ("counters", "gauges", "histograms"):
                telemetry.setdefault(section, {}).update(
                    extra.get(section, {}))
        return telemetry

    def _harq_stats(self) -> Optional[dict]:
        if not self._harq:
            return None
        managers = self._harq.values()
        blocks = sum(m.transport_blocks for m in managers)
        return {
            "transport_blocks": blocks,
            "retransmissions": sum(m.retransmissions for m in managers),
            "block_error_rate": sum(m.failures for m in managers)
            / max(1, blocks),
            "residual_loss_rate": sum(m.residual_losses for m in managers)
            / max(1, blocks),
        }

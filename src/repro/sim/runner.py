"""End-to-end simulation harness.

``Simulation`` assembles the full system for one experiment: cells with
traffic generators, the DAG builder and cost model, the vRAN pool with
a scheduling policy, the OS and cache models, and the collocated
best-effort workloads.  ``run(num_slots)`` drives slot boundaries and
returns a :class:`SimulationResult` with everything the paper's figures
report.

What to build is described by a :class:`repro.scenario.Scenario`; the
legacy keyword constructor normalizes its arguments into one, so a
spec, a CLI invocation and a driver all assemble the system the same
way (prefer :func:`repro.scenario.build_simulation` for new code).

RNG-stream map — every stream is a ``SeedSequence`` child of the
scenario seed with a fixed ``spawn_key``, so streams are collision-safe
and independent of construction order:

=====================  ==========================================
spawn_key              purpose
=====================  ==========================================
(0,)                   cost-model scalar fallback draws
(1,)                   profiling-traffic byte draws
(2,)                   i.i.d. UE allocation splitting
(3,)                   OS wakeup-latency model
(4,)                   cache-interference model
(5,)                   workload mix controller
(6, cell, slot, dir)   per-DAG batched sampling (DagBuilder)
(7, cell)              per-cell traffic generators
(8, cell)              per-cell HARQ processes
(9, cell, dir)         per-cell/direction MAC pipelines
=====================  ==========================================

Fleet keying — when ``scenario.cell_id_base`` is set (the pool is one
cell-shard of a :mod:`repro.fleet` metro deployment), ``cell`` above
means the *global* cell id (``cell_id_base + local index``) and the
shared i.i.d. allocation stream ``(2,)`` becomes one counter-keyed
stream ``(2, cell)`` per cell.  Every per-cell stream then depends
only on ``(fleet seed, global cell id)``, never on which shard the
cell landed in, which is what makes per-cell sampling byte-identical
across arbitrary shardings.  The pool-level streams (0, 1, 3, 4, 5)
are keyed ``(k, cell_id_base)`` so distinct shards draw distinct
scheduling-side randomness.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..ran.config import PoolConfig, SlotType
from ..ran.dag import DagBuilder
from ..ran.harq import HarqManager
from ..ran.mac import MacCell
from ..ran.tasks import CostModel
from ..ran.traffic import CellTraffic
from ..ran.ue import SlotLoad, bytes_to_allocations
from ..workloads.base import WorkloadHost
from ..workloads.catalog import MixController, make_workload
from .cache import CacheInterferenceModel
from .engine import Engine
from .metrics import LatencySummary, Metrics
from .osmodel import WakeupLatencyModel
from .policy import SchedulerPolicy
from .pool import VranPool

__all__ = ["RESULT_SCHEMAS", "Simulation", "SimulationResult"]

#: Result-payload schemas :meth:`SimulationResult.from_dict` can load.
#: Schema 1 predates the scenario layer (no ``scenario`` key); schema 2
#: embeds the serialized scenario that produced the result.
RESULT_SCHEMAS = (1, 2)

#: Fraction of a direction's traffic carried in a TDD special slot.
SPECIAL_SLOT_DL_SCALE = 0.5
SPECIAL_SLOT_UL_SCALE = 0.3

#: Target DAG-job count per window ``build_many`` batch.  The default
#: window width is this divided by the pool's jobs-per-slot (cells x
#: directions): wide enough to amortize the numpy fixed cost of a
#: batch, small enough that a window's prebuilt SlotLoads and task
#: instances stay cache-resident.  Measured on the bench workloads, a
#: ~64-job batch is the sweet spot at both ends — a 7-cell pool at
#: load 0.5 prefers short (4-slot) windows, a single idle cell prefers
#: long (32-slot) ones.
DEFAULT_WINDOW_JOBS = 64

#: Floor for the default window width in slots.
MIN_SLOT_WINDOW = 4


def _slot_directions(cell, slot_index: int) -> tuple:
    """(uplink, traffic-scale) pairs fired by ``cell`` in this slot.

    Must mirror the direction logic of ``_loads_for_slot`` exactly —
    the slot-window kernel uses it to count how many traffic draws each
    per-(cell, direction) generator will consume across a window.
    """
    slot_type = cell.slot_type(slot_index)
    if slot_type is SlotType.FULL_DUPLEX:
        return ((True, 1.0), (False, 1.0))
    if slot_type is SlotType.UPLINK:
        return ((True, 1.0),)
    if slot_type is SlotType.DOWNLINK:
        return ((False, 1.0),)
    if slot_type is SlotType.SPECIAL:
        return ((True, SPECIAL_SLOT_UL_SCALE),
                (False, SPECIAL_SLOT_DL_SCALE))
    return ()


@dataclass
class SimulationResult:
    """Everything measured in one simulation run."""

    policy_name: str
    workload_name: str
    load_fraction: float
    num_slots: int
    duration_us: float
    latency: LatencySummary
    reclaimed_fraction: float
    idle_upper_bound: float
    vran_utilization: float
    scheduling_events: int
    wakeup_histogram: dict
    workload_ops: dict
    workload_rates_per_s: dict
    preemptions_per_core_ms: float
    mean_stall_increase: float
    metrics: Metrics = field(repr=False)
    pool: VranPool = field(repr=False)
    #: HARQ statistics (only when the simulation ran with harq=True).
    harq: Optional[dict] = None
    #: JSON-able registry snapshot (repro.obs): event counters, the
    #: wakeup-latency histogram, core-time gauges and scheduler
    #: overhead counters.  Unlike ``metrics``/``pool`` this survives
    #: the repro.exec result cache.
    telemetry: dict = field(default_factory=dict, repr=False)
    #: Serialized :class:`repro.scenario.Scenario` that produced this
    #: result (schema-2 payloads; None when loaded from schema 1).
    scenario: Optional[dict] = None

    @property
    def meets_five_nines(self) -> bool:
        return self.latency.meets_five_nines

    def to_dict(self) -> dict:
        """JSON-able payload for the on-disk result cache.

        Captures every scalar series the figure drivers consume; the
        live ``metrics``/``pool`` objects are deliberately dropped —
        a result rebuilt by :meth:`from_dict` carries None for both,
        and callers that need them must bypass the cache
        (``run_simulation(..., use_cache=False)``).
        """
        latency = self.latency
        return {
            "schema": 2,
            "policy_name": self.policy_name,
            "workload_name": self.workload_name,
            "load_fraction": self.load_fraction,
            "num_slots": self.num_slots,
            "duration_us": self.duration_us,
            "latency": {
                "count": latency.count,
                "mean_us": latency.mean_us,
                "p50_us": latency.p50_us,
                "p99_us": latency.p99_us,
                "p9999_us": latency.p9999_us,
                "p99999_us": latency.p99999_us,
                "max_us": latency.max_us,
                "deadline_us": latency.deadline_us,
                "miss_fraction": latency.miss_fraction,
            },
            "reclaimed_fraction": self.reclaimed_fraction,
            "idle_upper_bound": self.idle_upper_bound,
            "vran_utilization": self.vran_utilization,
            "scheduling_events": self.scheduling_events,
            "wakeup_histogram": dict(self.wakeup_histogram),
            "workload_ops": dict(self.workload_ops),
            "workload_rates_per_s": dict(self.workload_rates_per_s),
            "preemptions_per_core_ms": self.preemptions_per_core_ms,
            "mean_stall_increase": self.mean_stall_increase,
            "harq": self.harq,
            "telemetry": self.telemetry,
            "scenario": self.scenario,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SimulationResult":
        """Rebuild a result from :meth:`to_dict` (metrics/pool = None).

        Accepts every schema in :data:`RESULT_SCHEMAS`; anything else
        (including newer schemas written by a later version) raises
        ``ValueError`` so callers such as the exec result cache can
        treat the payload as a miss instead of misreading it.
        """
        if payload.get("schema") not in RESULT_SCHEMAS:
            raise ValueError(
                f"unsupported result schema {payload.get('schema')!r}")
        return cls(
            policy_name=payload["policy_name"],
            workload_name=payload["workload_name"],
            load_fraction=payload["load_fraction"],
            num_slots=payload["num_slots"],
            duration_us=payload["duration_us"],
            latency=LatencySummary(**payload["latency"]),
            reclaimed_fraction=payload["reclaimed_fraction"],
            idle_upper_bound=payload["idle_upper_bound"],
            vran_utilization=payload["vran_utilization"],
            scheduling_events=payload["scheduling_events"],
            wakeup_histogram=dict(payload["wakeup_histogram"]),
            workload_ops=dict(payload["workload_ops"]),
            workload_rates_per_s=dict(payload["workload_rates_per_s"]),
            preemptions_per_core_ms=payload["preemptions_per_core_ms"],
            mean_stall_increase=payload["mean_stall_increase"],
            metrics=None,
            pool=None,
            harq=payload["harq"],
            telemetry=dict(payload.get("telemetry", {})),
            scenario=payload.get("scenario"),
        )


def _stream_rng(seed: int, *spawn_key: int) -> np.random.Generator:
    """Independent generator for one RNG stream of a simulation.

    Streams are ``SeedSequence`` children of the scenario seed with an
    explicit ``spawn_key`` (see the module docstring for the map), so
    every stream is collision-safe, reproducible, and independent of
    how many other streams exist or the order they are created in —
    adding a cell or an optional subsystem never shifts another
    stream's draws.
    """
    return np.random.default_rng(
        np.random.SeedSequence(entropy=seed, spawn_key=spawn_key))


class Simulation:
    """One configured experiment: pool + policy + traffic + workloads.

    Prefer :func:`repro.scenario.build_simulation`; the keyword
    constructor is kept for existing call sites and normalizes its
    arguments into a :class:`~repro.scenario.Scenario` so both paths
    assemble the identical object graph.
    """

    def __init__(
        self,
        pool_config: PoolConfig,
        policy: SchedulerPolicy,
        workload: str = "none",
        load_fraction: float = 0.5,
        seed: int = 0,
        profiling_traffic: bool = False,
        mix_interval_us: tuple[float, float] = (0.5e6, 2.0e6),
        record_tasks: bool = False,
        allocation_mode: str = "iid",
        harq: bool = False,
        event_bus=None,
        scenario=None,
    ) -> None:
        # Lazy: repro.scenario imports this module for build_simulation.
        from ..scenario.scenario import Scenario

        if scenario is None:
            if allocation_mode not in ("iid", "mac"):
                raise ValueError("allocation_mode must be 'iid' or 'mac'")
            scenario = Scenario(
                pool=pool_config,
                policy=getattr(policy, "name", "custom"),
                workload=workload,
                load_fraction=load_fraction,
                seed=seed,
                traffic="profiling" if profiling_traffic else "model",
                allocation=allocation_mode,
                harq=harq,
                mix_interval_us=mix_interval_us,
                record_tasks=record_tasks,
            )
        self.scenario = scenario
        self.allocation_mode = scenario.allocation
        self.pool_config = pool_config
        self.policy = policy
        self.workload_name = scenario.workload
        self.load_fraction = scenario.load_fraction
        self.profiling_traffic = scenario.profiling_traffic
        seed = scenario.seed
        workload = scenario.workload
        load_fraction = scenario.load_fraction
        allocation_mode = scenario.allocation
        mix_interval_us = scenario.mix_interval_us
        record_tasks = scenario.record_tasks
        harq = scenario.harq
        # Fleet keying (see module docstring): a cell-shard keys every
        # per-cell stream by the global cell id and pool-level streams
        # by the shard's base, so cell-level sampling is independent of
        # how the metro deployment was sharded.
        base = scenario.cell_id_base
        self._cell_id_base = 0 if base is None else base
        fleet = base is not None
        pool_key = (base,) if fleet else ()
        self._rng_cost = _stream_rng(seed, 0, *pool_key)
        self._rng_traffic = _stream_rng(seed, 1, *pool_key)
        self._rng_os = _stream_rng(seed, 3, *pool_key)
        self._rng_cache = _stream_rng(seed, 4, *pool_key)
        self._rng_mix = _stream_rng(seed, 5, *pool_key)
        if fleet:
            # One counter-keyed allocation stream per cell: within a
            # cell the draw order (slot, then direction) is fixed, so
            # the stream never observes other cells' draws.
            self._rng_alloc = None
            self._rng_alloc_cells = [
                _stream_rng(seed, 2, base + index)
                for index in range(len(pool_config.cells))
            ]
        else:
            self._rng_alloc = _stream_rng(seed, 2)
            self._rng_alloc_cells = None

        self.engine = Engine()
        self.cost_model = CostModel(rng=self._rng_cost)
        self.builder = DagBuilder(
            self.cost_model, rng=self._rng_alloc,
            seed_seq=np.random.SeedSequence(entropy=seed, spawn_key=(6,)))
        self.metrics = Metrics(pool_config.num_cores)
        self.metrics.record_tasks = record_tasks
        cache_model = CacheInterferenceModel(rng=self._rng_cache)
        self.event_bus = event_bus
        self.pool = VranPool(
            engine=self.engine,
            config=pool_config,
            policy=policy,
            cost_model=self.cost_model,
            os_model=WakeupLatencyModel(rng=self._rng_os),
            cache_model=cache_model,
            metrics=self.metrics,
            event_bus=event_bus,
        )
        # Completed DAGs hand their task instances back to the
        # builder's pool (lazily scavenged at the next slot boundary;
        # the pool disables recycling while a task_observer holds
        # references past DAG completion).
        self.pool.dag_recycler = self.builder.recycle_dag
        self.host = WorkloadHost(make_workload(workload),
                                 cache_model=cache_model)
        self.pool.set_available_listener(self.host.on_available_change)
        self.pool.set_best_effort_occupancy(self.host.has_active_occupant)
        if workload == "mix":
            MixController(
                self.engine, self.host,
                min_interval_us=mix_interval_us[0],
                max_interval_us=mix_interval_us[1],
                rng=self._rng_mix,
            )
        cell_base = self._cell_id_base
        self.traffic = [
            CellTraffic.for_cell(
                cell, load_fraction,
                rng=_stream_rng(seed, 7, cell_base + index),
            )
            for index, cell in enumerate(pool_config.cells)
        ]
        # Optional HARQ loop: failed uplink transport blocks come back
        # as retransmissions a few slots later.
        self._harq: dict = {}
        if harq:
            for index in range(len(pool_config.cells)):
                self._harq[index] = HarqManager(
                    rng=_stream_rng(seed, 8, cell_base + index))
        # Optional MAC-layer allocation pipeline (buffer-driven PF
        # scheduling instead of i.i.d. byte splitting).
        self._mac: dict = {}
        if allocation_mode == "mac":
            for index, cell in enumerate(pool_config.cells):
                for uplink in (True, False):
                    rate = (cell.avg_ul_mbps if uplink
                            else cell.avg_dl_mbps) * 1e6 * load_fraction
                    if cell.duplex.value == "tdd":
                        share = cell.direction_share(uplink)
                        if share > 0:
                            rate /= share
                    self._mac[(index, uplink)] = MacCell(
                        cell,
                        num_ues=cell.max_ues_per_slot,
                        total_rate_bps=rate,
                        rng=_stream_rng(seed, 9, cell_base + index,
                                        int(uplink)),
                    )
        #: Optional hook receiving each slot's freshly built DAG batch
        #: (after sampling, before release to the pool).  The fleet
        #: layer attaches a demand recorder here to compute per-cell
        #: sampling digests and federated core-demand rollups.
        self.demand_observer = None
        self._slot_index = 0
        self._slots_remaining = 0
        self._slot_event = None
        self._slot_us = pool_config.slot_duration_us
        #: Slot-window batch kernel (ROADMAP item 1): number of future
        #: slots whose traffic/HARQ occupancy is pre-drawn and whose
        #: DAGs are prebuilt in one ``build_many`` pass.  0 disables
        #: the kernel and falls back to per-slot construction.  The
        #: kernel only engages for model traffic with i.i.d. allocation
        #: (see :meth:`_fill_window` for why those are the exact
        #: configurations whose draw order it can reproduce ahead of
        #: time); ``kernel_stats`` reports engagement either way.
        self.slot_window = max(
            MIN_SLOT_WINDOW,
            DEFAULT_WINDOW_JOBS // max(1, 2 * len(pool_config.cells)))
        self._use_window = False
        self._win_dags: deque = deque()
        self._win_idle: deque = deque()
        self.kernel_stats = {
            "slots": 0,          # slot boundaries fired
            "window_slots": 0,   # slots served by the window kernel
            "idle_slots": 0,     # of those, slots with zero bytes
            "windows": 0,        # build_many pre-pass invocations
        }

    # -- traffic ----------------------------------------------------------------

    def _draw_bytes(self, cell_index: int, uplink: bool,
                    scale: float = 1.0) -> int:
        cell = self.pool_config.cells[cell_index]
        if self.profiling_traffic:
            # Offline profiling sweeps the input space uniformly
            # (paper §4.2: parameters varied every TTI).
            if self._rng_traffic.random() < 0.1:
                return 0
            peak = cell.peak_bytes_per_slot(uplink)
            return int(self._rng_traffic.uniform(0, peak) * scale)
        generator = self.traffic[cell_index]
        source = generator.uplink if uplink else generator.downlink
        return int(source.next_slot() * scale)

    def _loads_for_slot(self, cell_index: int, slot_index: int) -> list:
        cell = self.pool_config.cells[cell_index]
        loads = []
        for uplink, scale in _slot_directions(cell, slot_index):
            if self.allocation_mode == "mac":
                allocations = self._mac[(cell_index, uplink)].step()
            else:
                total = self._draw_bytes(cell_index, uplink, scale)
                alloc_rng = (self._rng_alloc
                             if self._rng_alloc_cells is None
                             else self._rng_alloc_cells[cell_index])
                allocations = bytes_to_allocations(
                    total, alloc_rng,
                    max_ues=cell.max_ues_per_slot,
                    max_layers=cell.max_layers,
                )
            if uplink and cell_index in self._harq:
                allocations = self._harq[cell_index].process_slot(
                    slot_index, allocations)
            loads.append(SlotLoad(
                cell_name=cell.name,
                slot_index=slot_index,
                uplink=uplink,
                allocations=allocations,
            ))
        return loads

    # -- slot driving --------------------------------------------------------------

    def _fill_window(self) -> None:
        """Pre-draw traffic and prebuild DAGs for the coming window.

        Byte-identity invariants (what makes this a kernel and not a
        model change):

        * each per-(cell, direction) traffic generator owns a private
          stream consumed in slot order, so one batched
          ``next_slots(n)`` call replays exactly the draws the per-slot
          path would make;
        * the shared i.i.d. allocation stream is consumed slot-major,
          cell-major, direction-minor — the same total order the
          per-slot path uses (fleet shards use per-cell streams, which
          only need the per-cell slot order);
        * HARQ draws depend only on the cell's own stream and the
          allocation features, never on execution outcomes, so the
          retransmission loop can run in the pre-pass;
        * release timestamps replay the engine's recurring-timer float
          accumulation (``t += slot_us``), so deadlines are bit-equal;
        * per-DAG sampling streams are counter-keyed by
          (cell, slot, direction), so batching slots into one
          ``build_many`` cannot reorder any draw.

        MAC allocation (feedback through HARQ buffers) and profiling
        traffic (one shared stream with data-dependent draw counts)
        break the first two invariants; for those the kernel disables
        itself and the per-slot path runs (see ``run``).
        """
        count = self._slots_remaining
        if count > self.slot_window:
            count = self.slot_window
        cells = self.pool_config.cells
        start_slot = self._slot_index
        # Direction plan per cell and slot, then one batched traffic
        # draw per (cell, direction) generator covering the window.
        plans = []
        draws = []
        for cell_index, cell in enumerate(cells):
            plan = [_slot_directions(cell, start_slot + rel)
                    for rel in range(count)]
            plans.append(plan)
            generator = self.traffic[cell_index]
            per_dir = {}
            for uplink in (True, False):
                needed = sum(1 for dirs in plan for u, _ in dirs
                             if u == uplink)
                if needed:
                    source = (generator.uplink if uplink
                              else generator.downlink)
                    per_dir[uplink] = iter(
                        source.next_slots(needed).tolist())
            draws.append(per_dir)
        jobs = []
        job_counts = []
        idle_flags = []
        cell_base = self._cell_id_base
        harq = self._harq
        alloc_cells = self._rng_alloc_cells
        shared_alloc = self._rng_alloc
        deadline_us = self.pool_config.deadline_us
        slot_us = self._slot_us
        release = self.engine.now
        for rel in range(count):
            slot_index = start_slot + rel
            deadline = release + deadline_us
            n_jobs = 0
            idle = True
            for cell_index, cell in enumerate(cells):
                per_dir = draws[cell_index]
                alloc_rng = (shared_alloc if alloc_cells is None
                             else alloc_cells[cell_index])
                for uplink, scale in plans[cell_index][rel]:
                    total = int(next(per_dir[uplink]) * scale)
                    allocations = bytes_to_allocations(
                        total, alloc_rng,
                        max_ues=cell.max_ues_per_slot,
                        max_layers=cell.max_layers,
                    )
                    if uplink and cell_index in harq:
                        allocations = harq[cell_index].process_slot(
                            slot_index, allocations)
                    if allocations:
                        idle = False
                    jobs.append((SlotLoad(cell_name=cell.name,
                                          slot_index=slot_index,
                                          uplink=uplink,
                                          allocations=allocations),
                                 cell, release, deadline,
                                 cell_base + cell_index))
                    n_jobs += 1
            job_counts.append(n_jobs)
            idle_flags.append(idle)
            release += slot_us
        # One vectorized cost/feature pass over the whole *window's*
        # DAGs (the per-slot path batches only within a slot).
        dags = self.builder.build_many(jobs)
        win_dags = self._win_dags
        win_idle = self._win_idle
        pos = 0
        for n_jobs, idle in zip(job_counts, idle_flags):
            win_dags.append(dags[pos:pos + n_jobs])
            win_idle.append(idle)
            pos += n_jobs
        stats = self.kernel_stats
        stats["windows"] += 1
        stats["window_slots"] += count

    def _on_slot_boundary(self) -> None:
        stats = self.kernel_stats
        stats["slots"] += 1
        if self._use_window:
            if not self._win_dags:
                self._fill_window()
            dags = self._win_dags.popleft()
            if self._win_idle.popleft():
                stats["idle_slots"] += 1
        else:
            now = self.engine.now
            deadline = now + self.pool_config.deadline_us
            jobs = []
            cell_base = self._cell_id_base
            for cell_index, cell in enumerate(self.pool_config.cells):
                for load in self._loads_for_slot(cell_index,
                                                 self._slot_index):
                    jobs.append((load, cell, now, deadline,
                                 cell_base + cell_index))
            # One vectorized cost/feature pass over the whole slot's
            # DAGs (builder batches the numpy work; RNG streams stay
            # per-DAG).
            dags = self.builder.build_many(jobs)
        if self.demand_observer is not None:
            self.demand_observer(dags)
        self._slot_index += 1
        self._slots_remaining -= 1
        pool = self.pool
        if self._slots_remaining == 0:
            if self._slot_event is not None:
                # Last requested slot: stop the periodic source so the
                # drain window does not release extra TTIs.
                self._slot_event.cancel()
                self._slot_event = None
            pool._quiet_until = math.inf
        else:
            # The pool is guaranteed no new work until the next
            # boundary — the tick-batching fast path keys off this.
            pool._quiet_until = self.engine.now + self._slot_us
        pool.release_slot(dags)

    def run(self, num_slots: int) -> SimulationResult:
        """Simulate ``num_slots`` TTIs plus a drain period."""
        if num_slots <= 0:
            raise ValueError("num_slots must be positive")
        slot_us = self.pool_config.slot_duration_us
        start = self.engine.now
        self._slots_remaining = num_slots
        self._use_window = (
            self.slot_window > 0
            and not self.profiling_traffic
            and self.allocation_mode != "mac"
        )
        self._slot_event = self.engine.schedule_every(
            slot_us, self._on_slot_boundary, start=start)
        end = start + num_slots * slot_us
        self.engine.run_until(end)
        # Drain: let in-flight DAGs finish (bounded by 4 deadlines).
        drain_limit = end + 4 * self.pool_config.deadline_us
        while self.pool.active_dags and self.engine.now < drain_limit:
            if not self.engine.step():
                break
        self.metrics.finalize(self.engine.now)
        self.host.finalize(self.engine.now)
        return self._build_result(num_slots)

    def _build_result(self, num_slots: int) -> SimulationResult:
        duration_us = self.metrics.duration_us
        duration_ms = duration_us / 1000.0
        preempt_rate = (
            self.metrics.best_effort_preemptions
            / max(duration_ms, 1e-9)
            / self.pool_config.num_cores
        )
        ops = self.host.results(preemptions_per_core_ms=preempt_rate)
        rates = {name: value / (duration_us / 1e6)
                 for name, value in ops.items()}
        return SimulationResult(
            policy_name=self.policy.name,
            workload_name=self.workload_name,
            load_fraction=self.load_fraction,
            num_slots=num_slots,
            duration_us=duration_us,
            latency=self.metrics.latency_summary(self.pool_config.deadline_us),
            reclaimed_fraction=self.metrics.reclaimed_fraction,
            idle_upper_bound=self.metrics.idle_fraction_upper_bound,
            vran_utilization=self.metrics.vran_utilization,
            scheduling_events=self.metrics.scheduling_events,
            wakeup_histogram=self.metrics.wakeup_histogram(),
            workload_ops=ops,
            workload_rates_per_s=rates,
            preemptions_per_core_ms=preempt_rate,
            mean_stall_increase=self.pool.cache_model.mean_stall_increase,
            metrics=self.metrics,
            pool=self.pool,
            harq=self._harq_stats(),
            telemetry=self._telemetry(),
            scenario=self.scenario.to_dict(),
        )

    def _telemetry(self) -> dict:
        """Merge the Metrics registry with the policy's own registry.

        Policies without an ``obs_registry`` (the baselines) contribute
        nothing; name spaces are disjoint ("scheduler/" vs "sched/",
        "slots/", "coretime/") so a plain dict merge suffices.
        """
        telemetry = self.metrics.snapshot()
        policy_registry = getattr(self.policy, "obs_registry", None)
        if policy_registry is not None:
            extra = policy_registry.as_dict()
            for section in ("counters", "gauges", "histograms"):
                telemetry.setdefault(section, {}).update(
                    extra.get(section, {}))
        return telemetry

    def _harq_stats(self) -> Optional[dict]:
        if not self._harq:
            return None
        managers = self._harq.values()
        blocks = sum(m.transport_blocks for m in managers)
        return {
            "transport_blocks": blocks,
            "retransmissions": sum(m.retransmissions for m in managers),
            "block_error_rate": sum(m.failures for m in managers)
            / max(1, blocks),
            "residual_loss_rate": sum(m.residual_losses for m in managers)
            / max(1, blocks),
        }

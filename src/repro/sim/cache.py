"""Cache-interference model (paper §2.3, §4.1, Fig. 7b and Fig. 9).

Collocated best-effort workloads pollute the last-level cache shared
with the vRAN pool cores, inflating signal-processing runtimes and —
more importantly for reliability — making their distributions
heavier-tailed (the paper's KS tests show the collocated runtime
distributions are statistically distinct from the isolated ones).

The model has two drivers:

* **pressure** — how aggressively the active best-effort workloads use
  the memory hierarchy (a per-workload constant; e.g. MLPerf training
  streams far more data than Nginx serving small files);
* **churn** — how often the vRAN acquires/releases cores.  Every
  hand-off costs the vRAN its warm working set; this is why vanilla
  FlexRAN (frequent yields) sees ~25 % extra stall cycles per
  instruction while Concordia (proactive, stable reservations) stays
  below 2 % (Fig. 9).

Churn is tracked as an exponentially-weighted rate of scheduling events
per millisecond, updated by the pool.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from .fastrng import FastRng

__all__ = ["CacheInterferenceModel"]

#: Scheduling-event rate (events/ms) at which churn saturates.  Vanilla
#: FlexRAN at a moderate load produces ~10-15 acquire/release events per
#: millisecond; Concordia's proactive reservations produce a few.
_CHURN_SATURATION_PER_MS = 15.0

#: EWMA time constant for the churn estimate (µs).
_CHURN_TAU_US = 5000.0


class CacheInterferenceModel:
    """Tracks collocation pressure/churn and samples runtime inflation."""

    def __init__(self, rng: Optional[np.random.Generator] = None) -> None:
        self.rng = FastRng(rng if rng is not None else np.random.default_rng(13))
        self.pressure = 0.0  # set by the active best-effort workloads
        self._churn_rate_per_ms = 0.0
        self._last_event_us: Optional[float] = None
        # Same-timestamp memo for churn_factor: a dispatch round starts
        # several tasks at one engine time, and the EWMA only moves on
        # record_scheduling_event, so the decayed value is constant
        # in between.
        # (two scalar fields, not a tuple: the memo is checked once per
        # task start and the tuple pack/unpack was measurable)
        self._churn_memo_now = -1.0
        self._churn_memo_val = 0.0
        # Running statistics for the Fig. 9 perf-counter proxies.
        self._stall_samples = 0
        self._stall_sum = 0.0

    # -- state updates -------------------------------------------------------

    def set_pressure(self, pressure: float) -> None:
        """Cache pressure in [0, 1] exerted by active workloads."""
        self.pressure = min(1.0, max(0.0, pressure))

    def record_scheduling_event(self, now_us: float) -> None:
        """Fold one core acquire/release into the churn EWMA."""
        if self._last_event_us is None:
            self._last_event_us = now_us
            self._churn_rate_per_ms = 1.0 / (_CHURN_TAU_US / 1000.0)
            self._churn_memo_now = -1.0
            return
        dt = max(now_us - self._last_event_us, 1e-6)
        decay = math.exp(-dt / _CHURN_TAU_US)
        instantaneous = 1000.0 / dt  # events per ms implied by this gap
        self._churn_rate_per_ms = (
            decay * self._churn_rate_per_ms + (1.0 - decay) * instantaneous
        )
        self._last_event_us = now_us
        self._churn_memo_now = -1.0

    def decayed_churn(self, now_us: float) -> float:
        """Churn EWMA decayed to ``now_us`` without adding an event."""
        if self._last_event_us is None:
            return 0.0
        dt = max(now_us - self._last_event_us, 0.0)
        return self._churn_rate_per_ms * math.exp(-dt / _CHURN_TAU_US)

    def churn_factor(self, now_us: float) -> float:
        """Normalized churn in [0, 1]."""
        if self._churn_memo_now == now_us:
            return self._churn_memo_val
        value = min(1.0,
                    self.decayed_churn(now_us) / _CHURN_SATURATION_PER_MS)
        self._churn_memo_now = now_us
        self._churn_memo_val = value
        return value

    # -- interference sampling -------------------------------------------------

    def stall_increase(self, now_us: float) -> float:
        """Fractional increase in stall cycles per instruction (Fig. 9).

        Superlinear in churn: a pool that constantly hands cores back
        and forth never keeps a warm working set, while a handful of
        hand-offs per millisecond barely register (FlexRAN ≈ +25 % vs
        Concordia < +2 % in the paper's Redis experiment).
        """
        churn = self.churn_factor(now_us)
        return 0.55 * self.pressure * churn * churn

    def sample_multipliers(self, now_us: float) -> tuple[float, float]:
        """(mean multiplier, tail multiplier) for one task execution.

        The mean multiplier converts extra stalls into runtime; the tail
        multiplier is 1.0 except for rare cache-thrash spikes whose
        probability grows with pressure and churn (heavier-tailed
        distributions of Fig. 7b).
        """
        return self.multipliers_for(
            now_us, self.rng.random(), float(self.rng.uniform(1.5, 2.5))
        )

    def multipliers_for(self, now_us: float, u: float,
                        tail_value: float) -> tuple[float, float]:
        """Like :meth:`sample_multipliers` but with presampled randomness.

        ``u`` is a uniform [0, 1) trigger and ``tail_value`` the tail
        magnitude, both drawn ahead of time (vectorized per DAG by
        :meth:`repro.ran.tasks.CostModel.sample_runtimes`).  Comparing
        the presampled uniform against the *state-dependent* tail
        probability here yields the same distribution as drawing at
        execution time, while computing churn only once per call.
        """
        # Inline of churn_factor()/decayed_churn(): this runs once per
        # task start, and the two-call chain plus max() showed up in
        # the Fig. 15a hot-path profile.  Values are identical.
        if self._churn_memo_now == now_us:
            churn = self._churn_memo_val
        else:
            last = self._last_event_us
            if last is None:
                churn = 0.0
            else:
                dt = now_us - last
                if dt < 0.0:
                    dt = 0.0
                decayed = self._churn_rate_per_ms * math.exp(
                    -dt / _CHURN_TAU_US)
                churn = decayed / _CHURN_SATURATION_PER_MS
                if churn > 1.0:
                    churn = 1.0
            self._churn_memo_now = now_us
            self._churn_memo_val = churn
        stall = 0.55 * self.pressure * churn * churn  # == stall_increase
        self._stall_samples += 1
        self._stall_sum += stall
        mean_multiplier = 1.0 + 0.6 * stall
        tail_prob = 0.0002 + 0.004 * self.pressure * (0.1 + 0.9 * churn * churn)
        if self.pressure > 0 and u < tail_prob:
            tail = tail_value
        else:
            tail = 1.0
        return mean_multiplier, tail

    def record_neutral_samples(self, count: int) -> None:
        """Fold ``count`` zero-pressure stall samples into the averages.

        A certified slot replayed in closed form would have called
        :meth:`multipliers_for` once per task start, each contributing
        a ``stall`` of exactly 0.0 (certification requires zero
        pressure).  Only the sample count moves — ``_stall_sum += 0.0``
        is a float identity — so the vectorized kernel records the
        samples in one call and ``mean_stall_increase`` stays
        bit-identical to the event path.
        """
        self._stall_samples += count

    # -- reporting ---------------------------------------------------------------

    @property
    def mean_stall_increase(self) -> float:
        """Average stall-cycle increase over all sampled task executions."""
        if self._stall_samples == 0:
            return 0.0
        return self._stall_sum / self._stall_samples

    def l1_miss_increase(self) -> float:
        """Proxy for Fig. 9's L1-misses-per-instruction increase."""
        return 0.6 * self.mean_stall_increase

    def llc_load_increase(self) -> float:
        """Proxy for Fig. 9's LLC-loads-per-instruction increase."""
        return 0.8 * self.mean_stall_increase

"""Scheduler-policy interface shared by Concordia and all baselines.

A policy observes pool events (slot releases, task enqueue/finish) and —
optionally — a periodic tick, and steers the pool by calling
``pool.request_cores(n)``.  The pool owns the mechanics (waking and
yielding workers, EDF dispatch); policies own the decision of *how many*
cores the vRAN holds at any instant.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..ran.tasks import TaskInstance
    from .pool import VranPool

__all__ = ["SchedulerPolicy"]


class SchedulerPolicy(abc.ABC):
    """Base class for vRAN pool core-allocation policies."""

    #: Human-readable policy name used in reports.
    name: str = "abstract"

    #: Period of :meth:`on_tick`; None disables the tick.
    tick_interval_us: Optional[float] = None

    #: Whether the pool rotates which physical cores it prefers (§5).
    rotate_cores: bool = False

    #: Queue-affinity modelling (FlexRAN's per-worker priority queues,
    #: Fig. 2): when True, a task that arrives with no spinning worker
    #: available is bound to the worker woken for it and cannot be
    #: stolen by other workers.  A wakeup stuck behind a non-preemptible
    #: kernel section therefore stalls that task for the full latency —
    #: the §2.3 failure mode Concordia's 20 µs compensation avoids.
    pin_tasks_to_wakeups: bool = False

    def __init__(self) -> None:
        self.pool: Optional["VranPool"] = None

    def attach(self, pool: "VranPool") -> None:
        """Bind the policy to its pool; called once by the pool."""
        self.pool = pool

    # -- event hooks (default: no-op) ---------------------------------------

    def on_slot_start(self, dags: list, now: float) -> None:
        """Called at a slot boundary with the DAGs about to be released."""

    def on_task_enqueued(self, task: "TaskInstance") -> None:
        """Called after a task becomes ready and enters the EDF queue."""

    def on_task_started(self, task: "TaskInstance") -> None:
        """Called when a worker begins executing a task."""

    def on_task_finished(self, task: "TaskInstance") -> None:
        """Called after a task execution completes."""

    def on_tick(self, now: float) -> None:
        """Periodic hook, fired every :attr:`tick_interval_us`."""

    def idle_tick_bound(self, now: float) -> Optional[float]:
        """Latest time (inclusive) through which ticks are no-ops.

        Called by the pool's quiescent-gap fast-forward right after
        :meth:`on_tick`, only when the pool itself is provably idle.
        Return None (the default) to veto batching; returning a time T
        certifies that, absent any other event, every tick at
        ``now < t <= T`` would neither change core targets nor any
        other observable state.  Policies that opt in must also
        implement :meth:`on_ticks_skipped` to replay whatever
        accounting those ticks would have done.
        """
        return None

    def on_ticks_skipped(self, count: int, last_time: float) -> None:
        """Replay accounting for ``count`` batched no-op ticks.

        ``last_time`` is the time of the last skipped tick; the next
        live tick fires one period after it.
        """

    # -- array-timeline engine certification --------------------------------

    def array_certify(self) -> bool:
        """Whether the array-timeline kernel may replay the next slot.

        Called at a slot boundary (before the slot's DAGs are released)
        when the pool is otherwise quiescent.  Returning True certifies
        that the policy carries no cross-slot state the kernel's
        synchronous replay could mis-order (no live reclaim ratchet, no
        in-flight DAG bookkeeping).  The default is False: only
        policies that have audited their tick/ratchet machinery against
        the replay contract opt in.
        """
        return False

    def certify_tick_run(self, start: float, end: float,
                         count: int) -> bool:
        """Try to compress ``count`` ticks in ``(start, end]`` at once.

        Called by the array kernel between micro-events while DAGs are
        in flight (so :meth:`idle_tick_bound` does not apply).  Return
        True after replaying the ticks' net accounting effect
        (scheduling-call counters, reclaim-window updates) in closed
        form; return False to make the kernel fire each tick through
        :meth:`on_tick` individually.  The default never compresses.
        """
        return False

    # -- vectorized certified-slot kernel ------------------------------------

    def vector_params(self) -> Optional[dict]:
        """Static parameters for the closed-form certified-slot kernel.

        Returning a dict of ``tick_us`` / ``release_hold_us`` /
        ``wakeup_overdue_us`` / ``wcet_margin`` certifies that, for a
        quiescent boundary this policy would certify anyway, the
        policy's entire per-slot behaviour is the canonical
        wake-once/serial-FIFO/yield-once trace the vectorized kernel
        computes in closed form (see repro.sim.arraykernel).  The
        default None keeps the per-event emulation.
        """
        return None

    def vector_ready(self) -> bool:
        """Per-boundary re-check that the policy state is in the unique
        quiescent configuration the closed form starts from."""
        return False

    def vector_commit(self, n_ticks: int, last_tick_us: float) -> None:
        """Apply one vectorized slot's net effect on policy state.

        ``n_ticks`` grid ticks fired inside the slot and the last one
        was at ``last_tick_us``; the policy replays exactly the counter
        and reclaim-window state the per-event path would have left.
        """

    # -- predictions -----------------------------------------------------------

    def wcet(self, task: "TaskInstance") -> float:
        """Predicted WCET used for pacing decisions.

        Policies without a predictor fall back to an inflated base cost;
        Concordia overrides this with its quantile-tree prediction.
        """
        if task.predicted_wcet_us is not None:
            return task.predicted_wcet_us
        return task.base_cost_us * 1.3

"""Simulation substrate: event engine, CPU pool, OS and cache models."""

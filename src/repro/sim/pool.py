"""The vRAN pool: worker threads, EDF task queue, core reservation.

This is the simulated analogue of FlexRAN's queue-based worker-thread
model (paper §2.1, Fig. 2): a bank of CPU cores, each pinned to a
worker thread that pulls the earliest-deadline task from a shared
priority queue.  A worker whose core is *reserved* either runs a task
or busy-spins; a worker that has *yielded* frees its core for
best-effort workloads and must be signalled (paying an OS wakeup
latency) before it can process tasks again.

The pool exposes ``request_cores(n)`` to its scheduling policy and
handles all mechanics: EDF dispatch, DAG bookkeeping, wakeups, yields,
core rotation and metrics.
"""

from __future__ import annotations

import enum
import heapq
import itertools
import math
from functools import partial
from typing import Optional

import numpy as np

from ..obs.events import REC_CORE, REC_TASK, REC_WAKEUP
from ..ran.config import PoolConfig
from ..ran.dag import DagInstance
from ..ran.tasks import CostModel, TaskInstance
from .cache import CacheInterferenceModel
from .engine import Engine
from .metrics import Metrics
from .osmodel import WakeupLatencyModel
from .policy import SchedulerPolicy

__all__ = ["WorkerState", "Worker", "VranPool"]


class WorkerState(enum.Enum):
    YIELDED = "yielded"  # core belongs to best-effort workloads
    WAKING = "waking"  # signalled; wakeup latency in flight
    SPINNING = "spinning"  # reserved and polling the queue
    RUNNING = "running"  # executing a signal-processing task


class Worker:
    """One worker thread pinned to one CPU core."""

    __slots__ = ("core_id", "state", "current_task", "wake_signaled_at",
                 "pinned_task", "finish_timer", "wake_timer", "order_pos",
                 "retiring")

    def __init__(self, core_id: int) -> None:
        self.core_id = core_id
        self.state = WorkerState.SPINNING
        #: Set by :meth:`VranPool.remove_worker` on a busy worker:
        #: drain the in-flight wakeup/task, then leave the pool.
        self.retiring = False
        self.current_task: Optional[TaskInstance] = None
        self.wake_signaled_at: Optional[float] = None
        #: Task bound to this worker's queue while it wakes up
        #: (per-worker queue affinity; see SchedulerPolicy docs).
        self.pinned_task: Optional[TaskInstance] = None
        #: Reusable engine timers (one heap entry each, re-keyed per
        #: firing): task completion and wakeup completion.  A worker
        #: runs at most one task and one wakeup at a time, so a single
        #: entry per event kind covers the worker's whole lifetime.
        self.finish_timer = None
        self.wake_timer = None
        #: Position of this worker in the pool's rotated preference
        #: order; keys the spinning/yielded free-bitmaps.
        self.order_pos = core_id


class VranPool:
    """Simulated vRAN pool with pluggable core-allocation policy."""

    def __init__(
        self,
        engine: Engine,
        config: PoolConfig,
        policy: SchedulerPolicy,
        cost_model: CostModel,
        os_model: Optional[WakeupLatencyModel] = None,
        cache_model: Optional[CacheInterferenceModel] = None,
        metrics: Optional[Metrics] = None,
        rng: Optional[np.random.Generator] = None,
        event_bus=None,
    ) -> None:
        self.engine = engine
        self.config = config
        self.policy = policy
        self.cost_model = cost_model
        self.rng = rng if rng is not None else np.random.default_rng(3)
        self.os_model = os_model if os_model is not None else \
            WakeupLatencyModel(rng=self.rng)
        self.cache_model = cache_model if cache_model is not None else \
            CacheInterferenceModel(rng=self.rng)
        self.metrics = metrics if metrics is not None else \
            Metrics(config.num_cores)

        #: Physical core count, mutable via add_worker/remove_worker
        #: (elastic reconfiguration); ``config.num_cores`` keeps the
        #: provisioned value the pool was built with.
        self._num_cores = config.num_cores
        self._next_core_id = config.num_cores
        self.workers = [Worker(i) for i in range(config.num_cores)]
        for worker in self.workers:
            worker.finish_timer = engine.timer(
                partial(self._finish, worker))
            worker.wake_timer = engine.timer(partial(self._awake, worker))
        self._order = list(self.workers)  # rotated preference order
        # Incremental state counters (hot path; avoid O(cores) scans).
        self._reserved = config.num_cores
        self._running = 0
        self._waking = 0
        self._spinning = config.num_cores
        self._pinned = 0
        # Free-list bitmaps keyed by preference-order position: bit i
        # set <=> self._order[i] is SPINNING (resp. YIELDED).  Lowest
        # set bit = most-preferred free worker, so EDF dispatch and
        # wakeup selection are O(1) per task instead of an O(cores)
        # scan; highest set bit serves _apply_target's release path,
        # which scans the order backwards.
        self._spin_bits = (1 << config.num_cores) - 1
        self._yield_bits = 0
        self._ready: list[tuple[float, int, TaskInstance]] = []
        self._seq = itertools.count()
        self.target_cores = config.num_cores
        self.active_dags: list[DagInstance] = []
        self._rotation_offset = 0
        self._available_listener = None  # WorkloadHost hook
        #: Optional repro.obs.events.EventBus; None (the default) keeps
        #: the hot paths at a single pointer comparison per event site.
        self.event_bus = event_bus
        if event_bus is not None:
            event_bus.clock = lambda: engine.now
            os_model = self.os_model
            if getattr(os_model, "event_bus", None) is None:
                os_model.event_bus = event_bus
        #: Callable answering "is a best-effort occupant on the yielded
        #: cores right now?" — set by the simulation harness so wakeups
        #: that displace real work count as preemptions while wakeups of
        #: idle cores do not.
        self._occupancy_provider = None
        #: Optional callback fired with each completed TaskInstance
        #: (used by offline profiling to collect training datasets).
        self.task_observer = None
        #: Optional callback fired with each completed DagInstance so
        #: its task objects can be recycled (repro.ran.dag.DagBuilder's
        #: instance pool).  Recycling is skipped while a task_observer
        #: is attached: observers may retain task references past the
        #: DAG's lifetime (profiling/training/tracing), and pooled
        #: tasks must never outlive their DAG.
        self.dag_recycler = None
        #: Optional hardware accelerator (repro.accel) that executes
        #: offloaded task types instead of the CPU workers (§7).
        self.accelerator = None
        #: Promise from the slot driver: no new DAGs will be released
        #: before this time (the next slot boundary).  -inf (the
        #: default, kept by standalone pools) disables the quiescent
        #: tick fast-forward in :meth:`_tick`.
        self._quiet_until = -math.inf
        #: Scheduler ticks consumed by the batched fast-forward instead
        #: of individual heap events, and how many batches did it.
        self.ticks_batched = 0
        self.tick_batches = 0
        #: Bumped whenever the physical worker *set* changes
        #: (add_worker/_retire) — never by rotation, which only reorders
        #: ``_order``.  The array kernel keys its lifetime pool of
        #: virtual timers off this instead of re-scanning (or worse,
        #: re-allocating) per slot.
        self.workers_epoch = 0

        self.metrics.on_reserved_change(engine.now, config.num_cores)
        policy.attach(self)
        # Periodic sources use recurring timers: one reused heap entry
        # each instead of a push/pop + closure per firing.
        if policy.tick_interval_us is not None:
            self._tick_event = engine.schedule_every(
                policy.tick_interval_us, self._tick
            )
        else:
            self._tick_event = None
        if policy.rotate_cores:
            self._rotate_event = engine.schedule_every(
                config.core_rotation_us, self._rotate
            )
        else:
            self._rotate_event = None

    # -- derived state -----------------------------------------------------

    @property
    def num_cores(self) -> int:
        return self._num_cores

    @property
    def now(self) -> float:
        return self.engine.now

    @property
    def reserved_count(self) -> int:
        return self._reserved

    @property
    def running_count(self) -> int:
        return self._running

    @property
    def ready_count(self) -> int:
        return len(self._ready)

    @property
    def pinned_count(self) -> int:
        """Ready tasks bound to still-waking workers (queue affinity)."""
        return self._pinned

    @property
    def collocation_active(self) -> bool:
        return self.cache_model.pressure > 0.0

    def overdue_waking(self, threshold_us: float) -> int:
        """Workers signalled more than ``threshold_us`` ago but still down."""
        if self._waking == 0:
            return 0
        now = self.now
        return sum(
            1
            for w in self.workers
            if w.state is WorkerState.WAKING
            and w.wake_signaled_at is not None
            and now - w.wake_signaled_at > threshold_us
        )

    def oldest_ready_wait_us(self) -> float:
        """Queueing delay of the oldest waiting task (0 when none wait).

        Includes tasks pinned to still-waking workers: they sit in a
        per-worker queue, but they are queued all the same.
        """
        oldest: Optional[float] = None
        if self._ready:
            oldest = self._ready[0][2].enqueue_time
        if self._pinned:
            for worker in self.workers:
                task = worker.pinned_task
                if task is not None and task.enqueue_time is not None:
                    if oldest is None or task.enqueue_time < oldest:
                        oldest = task.enqueue_time
        if oldest is None:
            return 0.0
        return self.now - oldest

    def set_available_listener(self, listener) -> None:
        """Register a callback fired as ``listener(now, available_cores)``."""
        self._available_listener = listener
        listener(self.now, self.num_cores - self.reserved_count)

    def set_best_effort_occupancy(self, provider) -> None:
        """Register ``provider() -> bool``: is best-effort work actually
        occupying the yielded cores?  Without a provider no best-effort
        workloads are modelled, so no wakeup counts as a preemption."""
        self._occupancy_provider = provider

    # -- DAG lifecycle --------------------------------------------------------

    def release_slot(self, dags: list[DagInstance]) -> None:
        """Release the DAGs of a new slot into the pool."""
        bus = self.event_bus
        if bus is not None and bus.enabled:
            for dag in dags:
                # task_id carries the slot index on dag_* events.
                bus.record(REC_TASK, self.now, "dag_release", dag.dag_id,
                           dag.slot_index, "", dag.cell_name, -1, 0.0,
                           None, dag.deadline_us)
        self.policy.on_slot_start(dags, self.now)
        for dag in dags:
            self.active_dags.append(dag)
            for task in dag.entry_tasks():
                self._enqueue(task)
        running_before = self._running
        self._dispatch()
        if self._running != running_before:
            self.metrics.on_running_change(self.now, self._running)

    def _enqueue(self, task: TaskInstance) -> None:
        # No event here: the task's single "task_done" record (emitted
        # at completion) carries enqueue_time, so the hot path stays at
        # one record per task.
        task.enqueue_time = self.engine._now
        if self.accelerator is not None and \
                task.task_type in self.accelerator.offloaded_types:
            # Offloaded tasks bypass the EDF queue (and therefore the
            # policy's enqueue hook): the CPU scheduler treats them as
            # external latency.  Their work still counts via the
            # slot-start registration and the finish hook.
            self.accelerator.submit(task)
            return
        if self.policy.pin_tasks_to_wakeups and self._pin_to_wakeup(task):
            self.policy.on_task_enqueued(task)
            return
        heapq.heappush(self._ready, (task.deadline_us, next(self._seq), task))
        self.policy.on_task_enqueued(task)

    def _pin_to_wakeup(self, task: TaskInstance) -> bool:
        """Bind ``task`` to a freshly woken worker's queue if no core is
        free to take it right now (per-worker queue affinity)."""
        if self._spinning:
            return False  # someone can take it immediately
        bits = self._yield_bits
        if not bits:
            return False
        worker = self._order[(bits & -bits).bit_length() - 1]
        worker.pinned_task = task
        self._pinned += 1
        self._wake(worker)
        return True

    def _dispatch(self) -> None:
        """Hand ready tasks to spinning workers (EDF order).

        Each iteration pairs the earliest-deadline task with the
        most-preferred spinning worker (lowest set bit of the spinning
        bitmap), so dispatch is O(1) per started task.  The body of
        :meth:`_start` is inlined here — this loop starts every
        non-pinned task in the simulation, and the call itself was
        measurable; keep the two in sync (``_awake`` still uses
        ``_start`` for pinned tasks).
        """
        ready = self._ready
        order = self._order
        pop = heapq.heappop
        now = self.engine._now
        running_state = WorkerState.RUNNING
        cache_model = self.cache_model
        sample_runtime = self.cost_model.sample_runtime
        on_task_started = self.policy.on_task_started
        while ready:
            bits = self._spin_bits
            if not bits:
                break
            __, __, task = pop(ready)
            worker = order[(bits & -bits).bit_length() - 1]
            worker.state = running_state
            self._running += 1
            self._spinning -= 1
            self._spin_bits = bits & ~(bits & -bits)
            worker.current_task = task
            task.start_time = now
            if task.cache_u is not None:
                mean_mult, tail_mult = cache_model.multipliers_for(
                    now, task.cache_u, task.cache_tail
                )
            else:
                mean_mult, tail_mult = cache_model.sample_multipliers(now)
            runtime = sample_runtime(task, self._running, mean_mult,
                                     tail_mult)
            task.runtime_us = runtime
            on_task_started(task)
            worker.finish_timer.arm(runtime)

    # -- task execution ----------------------------------------------------------

    def _start(self, worker: Worker, task: TaskInstance) -> None:
        now = self.engine._now
        worker.state = WorkerState.RUNNING
        self._running += 1
        self._spinning -= 1
        self._spin_bits &= ~(1 << worker.order_pos)
        worker.current_task = task
        task.start_time = now
        # Per-task randomness is presampled at DAG build (stoch_mult,
        # cache_u/cache_tail); only state-dependent factors — active
        # cores and the cache model's churn/pressure — are applied here.
        if task.cache_u is not None:
            mean_mult, tail_mult = self.cache_model.multipliers_for(
                now, task.cache_u, task.cache_tail
            )
        else:
            mean_mult, tail_mult = self.cache_model.sample_multipliers(now)
        # Positional call: keyword binding costs on a per-task call.
        runtime = self.cost_model.sample_runtime(
            task, self._running, mean_mult, tail_mult)
        task.runtime_us = runtime
        self.policy.on_task_started(task)
        # One reusable heap entry per worker (engine Timer): no Event,
        # entry list or closure allocation on the per-task hot path.
        worker.finish_timer.arm(runtime)

    def _finish(self, worker: Worker) -> None:
        now = self.engine._now
        task = worker.current_task
        worker.current_task = None
        worker.state = WorkerState.SPINNING
        self._running -= 1
        self._spinning += 1
        self._spin_bits |= 1 << worker.order_pos
        if worker.retiring:
            # Drain-then-retire (elastic remove_worker): the drained
            # task completes normally, then the core leaves the pool
            # before it can pick up new work.
            self._complete_task(task, now, core=worker.core_id)
            self.policy.on_task_finished(task)
            self._retire(worker)
            if self._ready:
                self._dispatch()
            self.metrics.on_running_change(now, self._running)
            if self._reserved != self.target_cores:
                self._apply_target()
            return
        # Inline of _complete_task + _enqueue for the common
        # configuration — no accelerator, no observers, no event bus,
        # no wakeup pinning.  This runs once per completed task (the
        # single hottest call site in the simulator); the slow path
        # below it stays the source of truth for the rare hooks.
        bus = self.event_bus
        if (self.accelerator is None and self.task_observer is None
                and not self.metrics.record_tasks
                and not self.policy.pin_tasks_to_wakeups
                and (bus is None or not bus.enabled)):
            task.finish_time = now
            dag = task.dag
            dag.tasks_remaining -= 1
            if dag.tasks_remaining == 0:
                dag.completion_us = now
                release = dag.release_us
                self.metrics.on_slot_complete(
                    now - release, dag.deadline_us - release)
                try:
                    self.active_dags.remove(dag)
                except ValueError:
                    pass
                if self.dag_recycler is not None:
                    self.dag_recycler(dag)
            ready = self._ready
            seq = self._seq
            push = heapq.heappush
            on_task_enqueued = self.policy.on_task_enqueued
            for successor in task.successors:
                successor.predecessors_remaining -= 1
                if successor.predecessors_remaining == 0:
                    successor.enqueue_time = now
                    push(ready, (successor.deadline_us, next(seq),
                                 successor))
                    on_task_enqueued(successor)
        else:
            self._complete_task(task, now, core=worker.core_id)
        self.policy.on_task_finished(task)
        if self._ready:
            self._dispatch()
        # Coalesced running-cores sample: _finish and any same-timestamp
        # re-dispatch it triggers emit ONE metrics update with the final
        # running count instead of one per intermediate state (inline of
        # metrics.on_running_change).
        metrics = self.metrics
        dt = now - metrics._last_change_us
        if dt > 0:
            metrics.reserved_core_time_us += dt * metrics._reserved_cores
            metrics.busy_core_time_us += dt * metrics._running_cores
            metrics._last_change_us = now
        metrics._running_cores = self._running
        if self._reserved != self.target_cores:
            self._apply_target()

    def complete_offloaded(self, task: TaskInstance) -> None:
        """Accelerator hand-back: run the shared completion bookkeeping.

        Offloaded tasks never held a CPU worker, so only DAG/successor
        state is updated; successors released here re-enter the EDF
        queue for the CPU workers (or go back to the accelerator).
        """
        now = self.now
        self._complete_task(task, now)
        self.policy.on_task_finished(task)
        running_before = self._running
        self._dispatch()
        if self._running != running_before:
            self.metrics.on_running_change(now, self._running)
        self._apply_target()

    def _complete_task(self, task: TaskInstance, now: float,
                       core: int = -1) -> None:
        task.finish_time = now
        dag = task.dag
        dag.tasks_remaining -= 1
        metrics = self.metrics
        if metrics.record_tasks:
            metrics.on_task_complete(
                task.task_type.value, task.predicted_wcet_us, task.runtime_us
            )
        bus = self.event_bus
        if bus is not None and bus.enabled:
            # One record per task, at finish: enqueue/start/finish as
            # three events tripled the hottest emission rate and blew
            # the CI overhead budget.  core is -1 for offloaded tasks.
            bus.record(REC_TASK, now, "task_done", dag.dag_id,
                       task.task_id, task.task_type.value,
                       task.cell_name, core, task.runtime_us,
                       task.predicted_wcet_us, 0.0,
                       task.enqueue_time, task.start_time)
        if dag.tasks_remaining == 0:
            dag.completion_us = now
            if bus is not None and bus.enabled:
                bus.record(REC_TASK, now, "dag_complete", dag.dag_id,
                           dag.slot_index, "", dag.cell_name, -1,
                           dag.latency_us, None, dag.deadline_us)
            self.metrics.on_slot_complete(
                dag.latency_us, dag.deadline_us - dag.release_us
            )
            try:
                self.active_dags.remove(dag)
            except ValueError:
                pass
            # Hand the completed DAG back to its builder's instance
            # pool.  Reset is lazy (at re-acquisition), so hooks that
            # run after this — the policy's finish hook reading
            # task.dag, the successors loop below — still see intact
            # fields; by the next slot boundary nothing references
            # this DAG's tasks any more.
            if self.dag_recycler is not None and self.task_observer is None:
                self.dag_recycler(dag)
        # Observers run after the DAG bookkeeping so they can see
        # completion state (e.g. dag.latency_us on the final task).
        if self.task_observer is not None:
            self.task_observer(task)
        for successor in task.successors:
            successor.predecessors_remaining -= 1
            if successor.predecessors_remaining == 0:
                self._enqueue(successor)

    # -- core allocation ------------------------------------------------------------

    def request_cores(self, n: int) -> None:
        """Policy entry point: reserve exactly ``n`` cores (best effort).

        Running workers are never preempted mid-task; if the target drops
        below the running count the extra cores are released as their
        tasks finish.
        """
        self.target_cores = max(0, min(self.num_cores, int(n)))
        self._apply_target()

    def _apply_target(self) -> None:
        reserved = self._reserved
        if reserved == self.target_cores:
            return
        if reserved < self.target_cores:
            # Wake the most-preferred yielded workers (lowest set bits).
            deficit = self.target_cores - reserved
            order = self._order
            while deficit and self._yield_bits:
                bits = self._yield_bits
                self._wake(order[(bits & -bits).bit_length() - 1])
                deficit -= 1
        else:
            # Release idle (spinning) workers only, least-preferred
            # (highest set bit) first — mirrors the old reverse scan.
            excess = reserved - self.target_cores
            order = self._order
            while excess and self._spin_bits:
                self._yield(order[self._spin_bits.bit_length() - 1])
                excess -= 1
        # One aggregate grant/revoke record per effective change, on
        # top of the per-core reserve/release events: postmortems
        # correlate misses with reclaim *decisions*, not single cores.
        # The ``core`` field carries the signed core-count delta.
        bus = self.event_bus
        if bus is not None and bus.enabled and self._reserved != reserved:
            kind = ("pool.core_grant" if self._reserved > reserved
                    else "pool.core_revoke")
            bus.record(REC_CORE, self.now, kind, self._reserved - reserved,
                       self._reserved, self.target_cores)

    # -- elastic capacity -----------------------------------------------------------
    # Distinct from the request_cores ratchet above: these change how
    # many physical cores the pool *has*, not how the existing cores
    # are split between vRAN and best-effort.

    def add_worker(self, core_id: Optional[int] = None) -> int:
        """Grow the physical core set by one worker, mid-run.

        The new worker joins YIELDED — its core belongs to best-effort
        until the policy raises its target — at the end of the current
        preference order.  Returns the new worker's core id.
        """
        if core_id is None:
            core_id = self._next_core_id
        elif any(w.core_id == core_id for w in self.workers):
            raise ValueError(f"core_id {core_id} already in the pool")
        self._next_core_id = max(self._next_core_id, core_id + 1)
        worker = Worker(core_id)
        worker.state = WorkerState.YIELDED
        worker.finish_timer = self.engine.timer(partial(self._finish, worker))
        worker.wake_timer = self.engine.timer(partial(self._awake, worker))
        self.workers.append(worker)
        self.workers_epoch += 1
        pos = len(self._order)
        worker.order_pos = pos
        self._order.append(worker)
        self._yield_bits |= 1 << pos
        self._num_cores += 1
        now = self.now
        self.metrics.on_capacity_change(now, self._num_cores)
        bus = self.event_bus
        if bus is not None and bus.enabled:
            bus.record(REC_CORE, now, "pool.worker_add", worker.core_id,
                       self._reserved, self.target_cores)
        self._notify_available()
        if self._reserved != self.target_cores:
            self._apply_target()
        return worker.core_id

    def remove_worker(self, core_id: Optional[int] = None) -> int:
        """Shrink the physical core set by one worker.

        An idle (yielded or spinning) worker retires immediately; a
        busy (waking or running) worker is *drained* — marked retiring
        and retired the moment its in-flight wakeup or task completes,
        never preempted mid-task.  Without an explicit ``core_id`` the
        least-preferred idle worker is chosen.  Returns the core id of
        the (eventually) retired worker.
        """
        if self._num_cores <= 1:
            raise ValueError("cannot remove the last worker")
        worker = self._pick_removal(core_id)
        if worker.state in (WorkerState.YIELDED, WorkerState.SPINNING):
            self._retire(worker)
        else:
            worker.retiring = True
        return worker.core_id

    def _pick_removal(self, core_id: Optional[int]) -> Worker:
        if core_id is not None:
            for worker in self.workers:
                if worker.core_id == core_id:
                    if worker.retiring:
                        raise ValueError(
                            f"core {core_id} is already retiring")
                    return worker
            raise ValueError(f"no such core: {core_id}")
        # Least-preferred first; cheapest state first (yielded cores
        # are already outside the vRAN set, spinning ones need no
        # drain).  Retiring workers are never in the bitmaps.
        order = self._order
        if self._yield_bits:
            return order[self._yield_bits.bit_length() - 1]
        if self._spin_bits:
            return order[self._spin_bits.bit_length() - 1]
        for worker in reversed(order):
            if not worker.retiring:
                return worker
        raise ValueError("every remaining worker is already retiring")

    def _retire(self, worker: Worker) -> None:
        """Remove ``worker`` from the pool; resize dispatch structures."""
        state = worker.state
        worker.retiring = False
        worker.finish_timer.cancel()
        worker.wake_timer.cancel()
        self.workers.remove(worker)
        self.workers_epoch += 1
        self._order.remove(worker)
        reserved_changed = False
        if state is WorkerState.SPINNING:
            self._reserved -= 1
            self._spinning -= 1
            reserved_changed = True
        elif state is WorkerState.WAKING:
            self._reserved -= 1
            self._waking -= 1
            reserved_changed = True
        self._num_cores -= 1
        if self.target_cores > self._num_cores:
            self.target_cores = self._num_cores
        self._rebuild_bitmaps()
        now = self.now
        self.metrics.on_capacity_change(now, self._num_cores)
        if reserved_changed:
            self.cache_model.record_scheduling_event(now)
            self.metrics.on_reserved_change(now, self._reserved)
        bus = self.event_bus
        if bus is not None and bus.enabled:
            bus.record(REC_CORE, now, "pool.worker_remove", worker.core_id,
                       self._reserved, self.target_cores)
        self._notify_available()

    def _rebuild_bitmaps(self) -> None:
        """Recompute order positions and free bitmaps from ``_order``."""
        spin_bits = 0
        yield_bits = 0
        spinning = WorkerState.SPINNING
        yielded = WorkerState.YIELDED
        for pos, worker in enumerate(self._order):
            worker.order_pos = pos
            if worker.state is spinning:
                spin_bits |= 1 << pos
            elif worker.state is yielded:
                yield_bits |= 1 << pos
        self._spin_bits = spin_bits
        self._yield_bits = yield_bits

    def _wake(self, worker: Worker) -> None:
        worker.state = WorkerState.WAKING
        self._reserved += 1
        self._waking += 1
        self._yield_bits &= ~(1 << worker.order_pos)
        worker.wake_signaled_at = self.now
        latency = self.os_model.sample(self.collocation_active)
        self.metrics.on_wakeup(latency)
        # A wakeup is only a *preemption* when a best-effort occupant is
        # actually displaced from the reclaimed cores.
        preempted = (self._occupancy_provider is not None
                     and self._occupancy_provider())
        if preempted:
            self.metrics.on_preemption()
        self.cache_model.record_scheduling_event(self.now)
        self.metrics.on_reserved_change(self.now, self.reserved_count)
        bus = self.event_bus
        if bus is not None and bus.enabled:
            bus.record(REC_WAKEUP, self.now, "wakeup", latency,
                       worker.core_id, self.collocation_active, preempted)
            bus.record(REC_CORE, self.now, "core_reserve",
                       worker.core_id, self.reserved_count,
                       self.target_cores)
        self._notify_available()
        worker.wake_timer.arm(latency)

    def _awake(self, worker: Worker) -> None:
        if worker.state is not WorkerState.WAKING:
            return
        worker.state = WorkerState.SPINNING
        self._waking -= 1
        self._spinning += 1
        self._spin_bits |= 1 << worker.order_pos
        worker.wake_signaled_at = None
        pinned = worker.pinned_task
        if pinned is not None:
            worker.pinned_task = None
            self._pinned -= 1
            if pinned.start_time is None:
                self._start(worker, pinned)
                self.metrics.on_running_change(self.now, self._running)
                return
        if worker.retiring:
            # Drained its in-flight wakeup with no pinned work to
            # honour: retire now (elastic remove_worker).
            self._retire(worker)
            if self._reserved != self.target_cores:
                self._apply_target()
            return
        running_before = self._running
        self._dispatch()
        if self._running != running_before:
            self.metrics.on_running_change(self.now, self._running)
        # The target may have dropped while this core was waking up.
        if self.reserved_count > self.target_cores and \
                worker.state is WorkerState.SPINNING:
            self._yield(worker)

    def _yield(self, worker: Worker) -> None:
        worker.state = WorkerState.YIELDED
        self._reserved -= 1
        self._spinning -= 1
        self._spin_bits &= ~(1 << worker.order_pos)
        self._yield_bits |= 1 << worker.order_pos
        self.metrics.on_yield()
        self.cache_model.record_scheduling_event(self.now)
        self.metrics.on_reserved_change(self.now, self.reserved_count)
        bus = self.event_bus
        if bus is not None and bus.enabled:
            bus.record(REC_CORE, self.now, "core_release",
                       worker.core_id, self.reserved_count,
                       self.target_cores)
        self._notify_available()

    def _notify_available(self) -> None:
        if self._available_listener is not None:
            self._available_listener(self.now,
                                     self.num_cores - self.reserved_count)

    # -- periodic machinery -----------------------------------------------------------
    # The scheduler tick and core rotation are recurring engine timers
    # (Engine.schedule_every): the engine re-keys and reuses a single
    # heap entry per source instead of a push/pop + closure per firing.

    def _tick(self) -> None:
        engine = self.engine
        self.policy.on_tick(engine._now)
        # Quiescent-gap fast-forward: when the pool provably has
        # nothing to do until the next slot boundary and the policy
        # certifies its upcoming ticks are no-ops (idle_tick_bound),
        # consume those ticks in one batch by re-keying the recurring
        # tick entry to the last no-op time instead of firing a heap
        # event per tick.  Every clamp below guards an observable:
        #   * pool quiescence — a tick with work pending can dispatch;
        #   * accelerator/bus/observer attached — ticks have side
        #     channels we cannot replay in batch;
        #   * _quiet_until — the slot driver may release new DAGs at
        #     the boundary, and the tick right after must run live;
        #   * peek_time — any other event may change pool state, so
        #     never skip past one;
        #   * engine._run_end — never move the entry past the horizon
        #     run_until is enforcing (and stay disabled in step()).
        if (self.active_dags or self._waking or self._ready
                or self._pinned):
            return
        if self.accelerator is not None or self.task_observer is not None:
            return
        bus = self.event_bus
        if bus is not None and bus.enabled:
            return
        bound = self.policy.idle_tick_bound(engine._now)
        if bound is None:
            return
        quiet = self._quiet_until
        run_end = engine._run_end
        nxt = engine.peek_time()
        period = self.policy.tick_interval_us
        t = engine._now + period
        skipped = 0
        last = 0.0
        while (t <= bound and t <= run_end and t < quiet
               and (nxt is None or t < nxt)):
            last = t
            skipped += 1
            t += period
        if skipped:
            self.policy.on_ticks_skipped(skipped, last)
            # The engine re-keys this entry to last + period when this
            # firing returns, exactly where the live path would be.
            self._tick_event.rekey(last)
            self.ticks_batched += skipped
            self.tick_batches += 1

    def _rotate(self) -> None:
        """Rotate preferred core order every 2 ms (§5)."""
        self._rotation_offset = (self._rotation_offset + 1) % self.num_cores
        offset = self._rotation_offset
        workers = self.workers
        n = self.num_cores
        self._order = [workers[(i + offset) % n] for i in range(n)]
        # Rebuild the position-keyed free bitmaps (rotation is rare —
        # every 2 ms — so an O(cores) rebuild here keeps the per-task
        # paths O(1)).
        self._rebuild_bitmaps()
        bus = self.event_bus
        if bus is not None and bus.enabled:
            bus.record(REC_CORE, self.now, "core_rotate",
                       self._order[0].core_id, self.reserved_count,
                       self.target_cores)

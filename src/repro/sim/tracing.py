"""Execution tracing: per-task timelines for debugging and analysis.

Attach a :class:`TraceRecorder` to a simulation to capture every task's
(enqueue, start, finish) triple plus scheduling events, then render an
ASCII Gantt chart of a slot or export the trace as JSON/CSV.  Used by
the deep-dive debugging workflow (why did *this* slot miss its
deadline?) that mirrors how the paper's authors audited FlexRAN.
"""

from __future__ import annotations

import csv
import json
from dataclasses import asdict, dataclass
from typing import Optional

__all__ = ["TaskTrace", "TraceRecorder", "render_gantt"]


@dataclass(frozen=True)
class TaskTrace:
    """One task execution record."""

    dag_id: int
    cell: str
    task_type: str
    enqueue_us: float
    start_us: float
    finish_us: float
    runtime_us: float
    predicted_wcet_us: Optional[float]
    uplink: bool
    slot_index: int

    @property
    def wait_us(self) -> float:
        return self.start_us - self.enqueue_us


class TraceRecorder:
    """Collects task traces from a pool via its ``task_observer`` hook."""

    def __init__(self, capacity: int = 200_000) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.tasks: list[TaskTrace] = []
        self.dropped = 0
        self._attached_pool = None
        self._observer = None
        self._previous = None

    def attach(self, simulation) -> "TraceRecorder":
        """Chain onto a Simulation's pool observer (keeps any existing).

        Idempotent: attaching twice to the same simulation is a no-op
        (an earlier revision double-recorded every task).  Attaching to
        a different simulation detaches from the old one first.
        """
        pool = simulation.pool
        if self._attached_pool is pool:
            return self
        if self._attached_pool is not None:
            self.detach()
        previous = pool.task_observer

        def observer(task):
            if previous is not None:
                previous(task)
            self.record(task)

        pool.task_observer = observer
        self._attached_pool = pool
        self._observer = observer
        self._previous = previous
        return self

    def detach(self) -> None:
        """Restore the pool's previous observer chain; no-op if detached."""
        pool = self._attached_pool
        if pool is None:
            return
        # Only unchain if we are still the head; otherwise someone
        # chained after us and we must keep forwarding (record() stays
        # harmless because we null our own state below... but the chain
        # would still call record).  In practice recorders detach in
        # LIFO order; guard against the other case by leaving the chain
        # alone unless we are the head.
        if pool.task_observer is self._observer:
            pool.task_observer = self._previous
        self._attached_pool = None
        self._observer = None
        self._previous = None

    def consume_bus(self, bus) -> "TraceRecorder":
        """Record from an obs event bus instead of the pool hook.

        The recorder subscribes as a live consumer; each ``task_done``
        event already carries the task's (enqueue, start, finish)
        triple, so no reassembly state is needed — which makes the
        recorder usable on replayed event streams.  ``uplink`` is not
        carried on the bus and is reported as ``False``.
        """
        bus.subscribe(self._on_bus_event)
        self._slot_of_dag: dict = {}
        return self

    def _on_bus_event(self, event) -> None:
        kind = getattr(event, "kind", None)
        if kind == "dag_release":
            # task_id carries the slot index on dag_* events.
            self._slot_of_dag[event.dag_id] = event.task_id
        elif kind == "task_done":
            if len(self.tasks) >= self.capacity:
                self.dropped += 1
                return
            self.tasks.append(TaskTrace(
                dag_id=event.dag_id,
                cell=event.cell,
                task_type=event.task_type,
                enqueue_us=event.enqueue_us,
                start_us=event.start_us,
                finish_us=event.ts_us,
                runtime_us=event.runtime_us,
                predicted_wcet_us=event.predicted_us,
                uplink=False,
                slot_index=self._slot_of_dag.get(event.dag_id, -1),
            ))

    def record(self, task) -> None:
        if len(self.tasks) >= self.capacity:
            self.dropped += 1
            return
        self.tasks.append(TaskTrace(
            dag_id=task.dag.dag_id,
            cell=task.cell_name,
            task_type=task.task_type.value,
            enqueue_us=task.enqueue_time,
            start_us=task.start_time,
            finish_us=task.finish_time,
            runtime_us=task.runtime_us,
            predicted_wcet_us=task.predicted_wcet_us,
            uplink=task.dag.uplink,
            slot_index=task.dag.slot_index,
        ))

    # -- queries -------------------------------------------------------------

    def for_dag(self, dag_id: int) -> list:
        return [t for t in self.tasks if t.dag_id == dag_id]

    def slowest_dags(self, top: int = 5) -> list:
        """DAG ids ranked by completion span (release→finish proxy)."""
        spans: dict[int, list[float]] = {}
        for trace in self.tasks:
            bucket = spans.setdefault(trace.dag_id, [float("inf"), 0.0])
            bucket[0] = min(bucket[0], trace.enqueue_us)
            bucket[1] = max(bucket[1], trace.finish_us)
        ranked = sorted(spans.items(), key=lambda kv: kv[1][1] - kv[1][0],
                        reverse=True)
        return [dag_id for dag_id, __ in ranked[:top]]

    # -- export ----------------------------------------------------------------

    def to_json(self, path) -> None:
        with open(path, "w") as handle:
            json.dump([asdict(t) for t in self.tasks], handle, indent=1)

    def to_csv(self, path) -> None:
        if not self.tasks:
            raise ValueError("empty trace")
        with open(path, "w", newline="") as handle:
            writer = csv.DictWriter(handle,
                                    fieldnames=list(asdict(
                                        self.tasks[0]).keys()))
            writer.writeheader()
            for trace in self.tasks:
                writer.writerow(asdict(trace))


def render_gantt(traces: list, width: int = 72,
                 title: str = "") -> str:
    """ASCII Gantt chart of one DAG's task executions.

    Rows are tasks in start order; ``.`` marks queueing time, ``#``
    marks execution.
    """
    if not traces:
        raise ValueError("nothing to render")
    t0 = min(t.enqueue_us for t in traces)
    t1 = max(t.finish_us for t in traces)
    span = max(t1 - t0, 1e-9)
    scale = (width - 1) / span
    lines = [title] if title else []
    lines.append(f"span {t0:.0f}-{t1:.0f} us ({span:.0f} us total)")
    label_width = max(len(t.task_type) for t in traces)
    for trace in sorted(traces, key=lambda t: (t.start_us, t.finish_us)):
        row = [" "] * width
        q0 = int((trace.enqueue_us - t0) * scale)
        s0 = int((trace.start_us - t0) * scale)
        f0 = max(int((trace.finish_us - t0) * scale), s0 + 1)
        for i in range(q0, min(s0, width)):
            row[i] = "."
        for i in range(s0, min(f0, width)):
            row[i] = "#"
        lines.append(f"{trace.task_type.ljust(label_width)} |"
                     f"{''.join(row)}| {trace.runtime_us:6.1f} us"
                     + (f" (wait {trace.wait_us:.1f})"
                        if trace.wait_us > 1.0 else ""))
    return "\n".join(lines)

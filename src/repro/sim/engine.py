"""Discrete-event simulation engine with microsecond resolution.

The engine is the foundation of the whole reproduction: every other
subsystem (vRAN pool, OS model, schedulers, workloads) advances time by
scheduling callbacks on a single shared event heap.

Time is a float measured in microseconds since simulation start.  Events
scheduled for the same instant fire in FIFO order of scheduling
(deterministic tiebreak via a monotonically increasing sequence number),
which makes simulations fully reproducible for a fixed RNG seed.

Heap entries are plain ``[time, seq, callback, tag]`` lists rather
than objects: tuple-style comparison on (time, seq) stays in C, which
matters because a busy pool schedules hundreds of thousands of events
per simulated second.  The ``tag`` slot discriminates entry kinds:

* ``None`` — one-shot event (:meth:`Engine.schedule_at` / ``_after``);
* a ``float`` — the period of a recurring source
  (:meth:`Engine.schedule_every`): after each firing the engine re-keys
  the same entry and pushes it back instead of allocating a fresh
  entry, sequence handle and closure per period;
* a :class:`Timer` — a *reusable one-shot*: the entry is detached
  before its callback runs so the callback (or anyone else) can re-arm
  the very same entry for a new deadline.  This is how the pool's
  workers schedule task completions without a per-task allocation.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, Optional

__all__ = ["Event", "Timer", "Engine", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised on invalid use of the simulation engine."""


#: Sentinel stored in the callback slot of a finished one-shot entry so
#: a late ``cancel()`` does not corrupt the live-event counter.
_DONE = object()


class Event:
    """Handle to a scheduled callback; supports cancellation.

    Cancelled events stay in the heap but are skipped when popped
    (lazy deletion): cancelling is O(1).  Cancelling a recurring event
    (:meth:`Engine.schedule_every`) stops all future firings.
    """

    __slots__ = ("_engine", "_entry")

    def __init__(self, engine: "Engine", entry: list) -> None:
        self._engine = engine
        self._entry = entry

    @property
    def time(self) -> float:
        return self._entry[0]

    @property
    def cancelled(self) -> bool:
        return self._entry[2] is None

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        entry = self._entry
        callback = entry[2]
        if callback is None or callback is _DONE:
            return  # already cancelled / already fired: no-op
        entry[2] = None
        entry[3] = None
        self._engine._live -= 1

    def rekey(self, time: float) -> None:
        """Move a *recurring* entry's base time from inside its callback.

        After the callback returns, the engine re-keys the entry to
        ``time + period`` — so a periodic source that has proven its
        next N firings are no-ops (the pool's quiescent tick
        fast-forward) can skip them without cancelling and
        re-allocating its entry.  Only meaningful mid-firing, on a
        :meth:`Engine.schedule_every` event; the new base must not be
        in the past.
        """
        entry = self._entry
        if type(entry[3]) is not float:
            raise SimulationError("rekey() applies to recurring events only")
        if entry[2] is None:
            raise SimulationError("cannot rekey a cancelled event")
        if time < self._engine._now:
            raise SimulationError(
                f"cannot rekey event into the past: {time} < {self._engine._now}"
            )
        entry[0] = time


class Timer:
    """Reusable one-shot timer: one heap entry, re-keyed on every arm.

    ``schedule_after`` pays for a fresh entry list, an :class:`Event`
    handle and (typically) a closure per call.  A :class:`Timer` binds
    its callback once at construction and reuses a single heap entry
    for every firing — the ``schedule_every`` trick applied to
    non-periodic events whose callback and owner are stable, such as a
    worker's task-completion event (~one per executed task, the hottest
    event source in the simulator).

    A timer is either *armed* (queued for one future firing) or idle.
    Arming an armed timer is an error; re-arming from inside the
    timer's own callback is the intended use.  :meth:`cancel` is O(1)
    (lazy deletion, like :meth:`Event.cancel`); a timer whose stale
    cancelled entry is still queued transparently starts a fresh entry
    on the next :meth:`arm`.
    """

    __slots__ = ("_engine", "_callback", "_entry", "_in_heap")

    def __init__(self, engine: "Engine", callback: Callable[[], None]) -> None:
        self._engine = engine
        self._callback = callback
        self._entry: list = [0.0, 0, None, self]
        self._in_heap = False

    @property
    def armed(self) -> bool:
        return self._entry[2] is not None

    @property
    def time(self) -> float:
        """Deadline of the pending firing (meaningless when idle)."""
        return self._entry[0]

    def arm(self, delay: float) -> None:
        """Fire the callback ``delay`` µs from now (one shot)."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        entry = self._entry
        if entry[2] is not None:
            raise SimulationError("timer is already armed")
        if self._in_heap:
            # A cancel() left the dead entry queued (lazy deletion).
            # Orphan it — tag None makes it an ordinary cancelled
            # one-shot, skipped on pop — and start a fresh entry.
            entry[3] = None
            entry = self._entry = [0.0, 0, None, self]
        engine = self._engine
        engine._seq += 1
        entry[0] = engine._now + delay
        entry[1] = engine._seq
        entry[2] = self._callback
        heapq.heappush(engine._heap, entry)
        engine._live += 1
        self._in_heap = True

    def cancel(self) -> None:
        """Cancel the pending firing; no-op when idle."""
        entry = self._entry
        if entry[2] is None:
            return
        entry[2] = None
        self._engine._live -= 1


class Engine:
    """Minimal but fast event-heap simulation core.

    Usage::

        eng = Engine()
        eng.schedule_at(10.0, lambda: print(eng.now))
        eng.schedule_every(20.0, tick)   # one reused heap entry
        timer = eng.timer(on_done)       # reusable one-shot entry
        timer.arm(5.0)
        eng.run_until(100.0)
    """

    def __init__(self) -> None:
        self._heap: list[list] = []
        self._seq = 0
        self._now = 0.0
        self._running = False
        #: Live (scheduled, non-cancelled) events; maintained on
        #: schedule/cancel/pop so :meth:`pending_count` is O(1).
        self._live = 0
        self.events_processed = 0
        #: End of the active :meth:`run_until` horizon; -inf outside a
        #: run (``step()``/drain loops), which keeps horizon-bounded
        #: fast-forward optimizations (pool tick batching) disabled
        #: there — they must never move an event past a horizon the
        #: engine is not enforcing.
        self._run_end = -math.inf

    @property
    def now(self) -> float:
        """Current simulation time in microseconds."""
        return self._now

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute simulation time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event in the past: {time} < {self._now}"
            )
        self._seq += 1
        entry = [time, self._seq, callback, None]
        heapq.heappush(self._heap, entry)
        self._live += 1
        return Event(self, entry)

    def schedule_after(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` after a relative ``delay`` (µs, >= 0)."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.schedule_at(self._now + delay, callback)

    def schedule_every(
        self,
        period: float,
        callback: Callable[[], None],
        start: Optional[float] = None,
    ) -> Event:
        """Fire ``callback`` every ``period`` µs with one reused heap entry.

        The first firing is at ``start`` (absolute; defaults to
        ``now + period``) and subsequent firings follow at fixed-rate
        ``period`` intervals with no drift.  Unlike re-arming with
        :meth:`schedule_after` from inside the callback, a periodic
        source allocates its entry, handle and closure exactly once:
        after each firing the engine re-keys the same entry and pushes
        it back.  Cancelling the returned :class:`Event` stops all
        future firings — including when the callback cancels its own
        timer mid-firing.
        """
        if period <= 0:
            raise SimulationError(f"period must be positive: {period}")
        first = self._now + period if start is None else start
        if first < self._now:
            raise SimulationError(
                f"cannot schedule event in the past: {first} < {self._now}"
            )
        self._seq += 1
        entry = [first, self._seq, callback, period]
        heapq.heappush(self._heap, entry)
        self._live += 1
        return Event(self, entry)

    def timer(self, callback: Callable[[], None]) -> Timer:
        """Create an idle :class:`Timer` bound to ``callback``.

        The timer owns one reusable heap entry; :meth:`Timer.arm`
        schedules the next firing without allocating.
        """
        return Timer(self, callback)

    def _fire(self, entry: list) -> None:
        """Run one popped live entry and retire/re-arm it afterwards."""
        self._now = entry[0]
        self.events_processed += 1
        tag = entry[3]
        if tag is None:
            entry[2]()
            if entry[2] is not None:
                # None here means the callback cancelled its own entry
                # mid-firing; cancel() already decremented _live.
                entry[2] = _DONE
                self._live -= 1
        elif type(tag) is float:
            entry[2]()
            if entry[2] is not None:
                # Periodic source: re-key and reuse the same entry.
                self._seq += 1
                entry[0] += tag
                entry[1] = self._seq
                heapq.heappush(self._heap, entry)
        else:
            # Reusable Timer: detach the entry *before* the callback so
            # the callback can re-arm the very same entry.
            callback = entry[2]
            tag._in_heap = False
            entry[2] = None
            self._live -= 1
            callback()

    def _discard(self, entry: list) -> None:
        """Account for a popped dead (cancelled) entry."""
        tag = entry[3]
        if tag is not None and type(tag) is not float:
            tag._in_heap = False

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or None if the heap is empty."""
        heap = self._heap
        while heap and heap[0][2] is None:
            self._discard(heapq.heappop(heap))
        return heap[0][0] if heap else None

    def step(self) -> bool:
        """Process the next event.  Returns False when no events remain."""
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            if entry[2] is None:
                self._discard(entry)
                continue
            self._fire(entry)
            return True
        return False

    def run_until(self, end_time: float) -> None:
        """Run all events with ``time <= end_time``; leave ``now`` there.

        Events scheduled exactly at ``end_time`` are processed.  The clock
        is advanced to ``end_time`` even if the heap drains earlier.
        """
        if self._running:
            raise SimulationError("engine is not reentrant")
        self._running = True
        self._run_end = end_time
        heap = self._heap
        pop = heapq.heappop
        push = heapq.heappush
        # Telemetry counter kept in a local and folded back once: an
        # instance-attribute increment per event is measurable at the
        # event rates of Fig. 11 runs.
        processed = 0
        try:
            while heap:
                entry = heap[0]
                if entry[0] > end_time:
                    break
                pop(heap)
                callback = entry[2]
                tag = entry[3]
                if callback is None:
                    if tag is not None and type(tag) is not float:
                        tag._in_heap = False
                    continue
                self._now = entry[0]
                processed += 1
                if tag is None:
                    callback()
                    if entry[2] is not None:
                        # None here means the callback cancelled its own
                        # entry mid-firing; cancel() already decremented.
                        entry[2] = _DONE
                        self._live -= 1
                elif type(tag) is float:
                    callback()
                    if entry[2] is not None:
                        # Periodic source: re-key and reuse the same entry.
                        self._seq += 1
                        entry[0] += tag
                        entry[1] = self._seq
                        push(heap, entry)
                else:
                    # Reusable Timer: detach before firing so the
                    # callback can re-arm the same entry.
                    tag._in_heap = False
                    entry[2] = None
                    self._live -= 1
                    callback()
        finally:
            self._running = False
            self._run_end = -math.inf
            self.events_processed += processed
        if end_time > self._now:
            self._now = end_time

    def run(self) -> None:
        """Run until the event heap is exhausted."""
        if self._running:
            raise SimulationError("engine is not reentrant")
        self._running = True
        try:
            while self.step():
                pass
        finally:
            self._running = False

    def pending_count(self) -> int:
        """Number of live (non-cancelled) events still queued.  O(1):
        a counter is maintained on schedule, cancel and pop."""
        return self._live

"""Discrete-event simulation engine with microsecond resolution.

The engine is the foundation of the whole reproduction: every other
subsystem (vRAN pool, OS model, schedulers, workloads) advances time by
scheduling callbacks on a single shared event heap.

Time is a float measured in microseconds since simulation start.  Events
scheduled for the same instant fire in FIFO order of scheduling
(deterministic tiebreak via a monotonically increasing sequence number),
which makes simulations fully reproducible for a fixed RNG seed.

Heap entries are plain ``[time, seq, callback]`` lists rather than
objects: tuple-style comparison on (time, seq) stays in C, which matters
because a busy pool schedules hundreds of thousands of events per
simulated second.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional

__all__ = ["Event", "Engine", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised on invalid use of the simulation engine."""


class Event:
    """Handle to a scheduled callback; supports cancellation.

    Cancelled events stay in the heap but are skipped when popped
    (lazy deletion): cancelling is O(1).
    """

    __slots__ = ("_entry",)

    def __init__(self, entry: list) -> None:
        self._entry = entry

    @property
    def time(self) -> float:
        return self._entry[0]

    @property
    def cancelled(self) -> bool:
        return self._entry[2] is None

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        self._entry[2] = None


class Engine:
    """Minimal but fast event-heap simulation core.

    Usage::

        eng = Engine()
        eng.schedule_at(10.0, lambda: print(eng.now))
        eng.run_until(100.0)
    """

    def __init__(self) -> None:
        self._heap: list[list] = []
        self._seq = 0
        self._now = 0.0
        self._running = False
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulation time in microseconds."""
        return self._now

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute simulation time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event in the past: {time} < {self._now}"
            )
        self._seq += 1
        entry = [time, self._seq, callback]
        heapq.heappush(self._heap, entry)
        return Event(entry)

    def schedule_after(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` after a relative ``delay`` (µs, >= 0)."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.schedule_at(self._now + delay, callback)

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or None if the heap is empty."""
        heap = self._heap
        while heap and heap[0][2] is None:
            heapq.heappop(heap)
        return heap[0][0] if heap else None

    def step(self) -> bool:
        """Process the next event.  Returns False when no events remain."""
        heap = self._heap
        while heap:
            time, __, callback = heapq.heappop(heap)
            if callback is None:
                continue
            self._now = time
            self.events_processed += 1
            callback()
            return True
        return False

    def run_until(self, end_time: float) -> None:
        """Run all events with ``time <= end_time``; leave ``now`` there.

        Events scheduled exactly at ``end_time`` are processed.  The clock
        is advanced to ``end_time`` even if the heap drains earlier.
        """
        if self._running:
            raise SimulationError("engine is not reentrant")
        self._running = True
        heap = self._heap
        pop = heapq.heappop
        try:
            while heap:
                entry = heap[0]
                if entry[0] > end_time:
                    break
                pop(heap)
                callback = entry[2]
                if callback is None:
                    continue
                self._now = entry[0]
                self.events_processed += 1
                callback()
        finally:
            self._running = False
        if end_time > self._now:
            self._now = end_time

    def run(self) -> None:
        """Run until the event heap is exhausted."""
        if self._running:
            raise SimulationError("engine is not reentrant")
        self._running = True
        try:
            while self.step():
                pass
        finally:
            self._running = False

    def pending_count(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for entry in self._heap if entry[2] is not None)

"""Discrete-event simulation engine with microsecond resolution.

The engine is the foundation of the whole reproduction: every other
subsystem (vRAN pool, OS model, schedulers, workloads) advances time by
scheduling callbacks on a single shared event heap.

Time is a float measured in microseconds since simulation start.  Events
scheduled for the same instant fire in FIFO order of scheduling
(deterministic tiebreak via a monotonically increasing sequence number),
which makes simulations fully reproducible for a fixed RNG seed.

Heap entries are plain ``[time, seq, callback, period]`` lists rather
than objects: tuple-style comparison on (time, seq) stays in C, which
matters because a busy pool schedules hundreds of thousands of events
per simulated second.  ``period`` is None for one-shot events; periodic
sources (:meth:`Engine.schedule_every`) reuse their single heap entry
across firings — the entry is re-keyed and pushed back instead of
allocating a fresh entry, sequence handle and closure per period.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional

__all__ = ["Event", "Engine", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised on invalid use of the simulation engine."""


#: Sentinel stored in the callback slot of a finished one-shot entry so
#: a late ``cancel()`` does not corrupt the live-event counter.
_DONE = object()


class Event:
    """Handle to a scheduled callback; supports cancellation.

    Cancelled events stay in the heap but are skipped when popped
    (lazy deletion): cancelling is O(1).  Cancelling a recurring event
    (:meth:`Engine.schedule_every`) stops all future firings.
    """

    __slots__ = ("_engine", "_entry")

    def __init__(self, engine: "Engine", entry: list) -> None:
        self._engine = engine
        self._entry = entry

    @property
    def time(self) -> float:
        return self._entry[0]

    @property
    def cancelled(self) -> bool:
        return self._entry[2] is None

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        entry = self._entry
        callback = entry[2]
        if callback is None or callback is _DONE:
            return  # already cancelled / already fired: no-op
        entry[2] = None
        entry[3] = None
        self._engine._live -= 1


class Engine:
    """Minimal but fast event-heap simulation core.

    Usage::

        eng = Engine()
        eng.schedule_at(10.0, lambda: print(eng.now))
        eng.schedule_every(20.0, tick)   # one reused heap entry
        eng.run_until(100.0)
    """

    def __init__(self) -> None:
        self._heap: list[list] = []
        self._seq = 0
        self._now = 0.0
        self._running = False
        #: Live (scheduled, non-cancelled) events; maintained on
        #: schedule/cancel/pop so :meth:`pending_count` is O(1).
        self._live = 0
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulation time in microseconds."""
        return self._now

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute simulation time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event in the past: {time} < {self._now}"
            )
        self._seq += 1
        entry = [time, self._seq, callback, None]
        heapq.heappush(self._heap, entry)
        self._live += 1
        return Event(self, entry)

    def schedule_after(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` after a relative ``delay`` (µs, >= 0)."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.schedule_at(self._now + delay, callback)

    def schedule_every(
        self,
        period: float,
        callback: Callable[[], None],
        start: Optional[float] = None,
    ) -> Event:
        """Fire ``callback`` every ``period`` µs with one reused heap entry.

        The first firing is at ``start`` (absolute; defaults to
        ``now + period``) and subsequent firings follow at fixed-rate
        ``period`` intervals with no drift.  Unlike re-arming with
        :meth:`schedule_after` from inside the callback, a periodic
        source allocates its entry, handle and closure exactly once:
        after each firing the engine re-keys the same entry and pushes
        it back.  Cancelling the returned :class:`Event` stops all
        future firings — including when the callback cancels its own
        timer mid-firing.
        """
        if period <= 0:
            raise SimulationError(f"period must be positive: {period}")
        first = self._now + period if start is None else start
        if first < self._now:
            raise SimulationError(
                f"cannot schedule event in the past: {first} < {self._now}"
            )
        self._seq += 1
        entry = [first, self._seq, callback, period]
        heapq.heappush(self._heap, entry)
        self._live += 1
        return Event(self, entry)

    def _retire(self, entry: list) -> None:
        """Account for a just-fired entry: re-arm periodic, retire one-shot."""
        if entry[3] is not None and entry[2] is not None:
            self._seq += 1
            entry[0] += entry[3]
            entry[1] = self._seq
            heapq.heappush(self._heap, entry)
        elif entry[2] is not None:
            # entry[2] is None when the callback cancelled its own
            # entry mid-firing — cancel() already decremented _live.
            entry[2] = _DONE
            self._live -= 1

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or None if the heap is empty."""
        heap = self._heap
        while heap and heap[0][2] is None:
            heapq.heappop(heap)
        return heap[0][0] if heap else None

    def step(self) -> bool:
        """Process the next event.  Returns False when no events remain."""
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            callback = entry[2]
            if callback is None:
                continue
            self._now = entry[0]
            self.events_processed += 1
            callback()
            self._retire(entry)
            return True
        return False

    def run_until(self, end_time: float) -> None:
        """Run all events with ``time <= end_time``; leave ``now`` there.

        Events scheduled exactly at ``end_time`` are processed.  The clock
        is advanced to ``end_time`` even if the heap drains earlier.
        """
        if self._running:
            raise SimulationError("engine is not reentrant")
        self._running = True
        heap = self._heap
        pop = heapq.heappop
        push = heapq.heappush
        try:
            while heap:
                entry = heap[0]
                if entry[0] > end_time:
                    break
                pop(heap)
                callback = entry[2]
                if callback is None:
                    continue
                self._now = entry[0]
                self.events_processed += 1
                callback()
                period = entry[3]
                if period is not None and entry[2] is not None:
                    # Periodic source: re-key and reuse the same entry.
                    self._seq += 1
                    entry[0] += period
                    entry[1] = self._seq
                    push(heap, entry)
                elif entry[2] is not None:
                    # None here means the callback cancelled its own
                    # entry mid-firing; cancel() already decremented.
                    entry[2] = _DONE
                    self._live -= 1
        finally:
            self._running = False
        if end_time > self._now:
            self._now = end_time

    def run(self) -> None:
        """Run until the event heap is exhausted."""
        if self._running:
            raise SimulationError("engine is not reentrant")
        self._running = True
        try:
            while self.step():
                pass
        finally:
            self._running = False

    def pending_count(self) -> int:
        """Number of live (non-cancelled) events still queued.  O(1):
        a counter is maintained on schedule, cancel and pop."""
        return self._live

"""Array-timeline engine: certified synchronous slot replay.

The event engine spends most of a light slot on heap traffic: every
task completion, wakeup and 20 µs scheduler tick is a push/pop on the
global event heap even though, for the overwhelming majority of slots,
nothing outside the pool can observe the slot's interior.  This kernel
replays such a slot *inside the slot-boundary callback*: worker timers
are swapped for local virtual timers, the recurring scheduler tick is
emulated arithmetically, and the real pool/policy/metrics/OS-model
methods are invoked in exactly the (time, seq) order the event heap
would have produced.  Because the replay calls the same code in the
same order at the same simulated times, results are byte-identical to
the event engine by construction — the heap is bypassed, never the
model.

Certification contract (all must hold, checked per slot at the
boundary; any failure falls back to ``pool.release_slot`` for that
slot only):

* the policy certifies (:meth:`SchedulerPolicy.array_certify`) — the
  Concordia scheduler does so iff no DAG state is in flight; policies
  with wakeup pinning never certify;
* the pool is quiescent: no active DAGs, ready tasks, pinned tasks or
  in-flight wakeups (which also rules out retiring workers);
* no side channels: no accelerator, task observer, per-task recording
  or enabled event bus — their hooks observe interior event order;
* the workload host is passive (zero cache pressure; the runner
  additionally gates on ``workload == "none"`` so no host-scheduled
  engine events can interleave with the replayed interior);
* the engine's ``run_until`` horizon covers the whole slot — a replay
  must never run events past a horizon the engine is not enforcing;
* the worst-case makespan fits in the slot: one maximal wakeup latency
  plus the sum over released tasks of the pressure-0 runtime ceiling
  ``max(0.3, base_cost · stoch_mult · 1.25)`` must not reach the next
  boundary.  EDF dispatch is work-conserving, so after the (at most
  one) initial wakeup window some core is busy until the last finish;
  the serialized sum therefore bounds the makespan for any worker
  count.

Interior ordering invariants the replay reproduces:

* virtual timer arms consume a local sequence counter exactly where
  ``Timer.arm`` would consume an engine sequence number, so equal-time
  firings tie-break identically;
* the tick stream's position/sequence is tracked so a tick landing on
  a timer's firing time fires on the correct side of it;
* runs of ticks with no micro-event in between are compressed through
  :meth:`SchedulerPolicy.certify_tick_run` when the policy can prove
  them identical, and fired one-by-one otherwise;
* after the last completion the pool's quiescent-gap tick batching is
  emulated with the exact ``_tick`` loop (same bound/horizon/peek
  clamps, same ``on_ticks_skipped`` replay);
* a tick falling exactly on the next boundary is deferred (the event
  engine fires it *after* the boundary callback): the kernel parks the
  recurring entry one period later and replays the boundary tick
  first thing next slot — or, on fallback, fires ``policy.on_tick``
  right after ``release_slot`` and refreshes the entry's sequence to
  match the event engine's re-key order.

Core rotation entries stay in the real heap and fire after the replay
returns; rotation only permutes the worker preference order, and no
digest-relevant observable depends on worker identity (runtimes depend
on the running *count*, wakeup latencies come from a shared stream in
arrival order), so replay and event mode stay byte-identical across
rotations that land inside a replayed slot.
"""

from __future__ import annotations

import math
import time
from functools import partial
from heapq import heappop, heappush
from typing import Optional

from ..ran.dag import topology_for_kind

__all__ = ["ArraySlotKernel", "SlotPlan"]

#: Certified slots must stay far from the boundary where the summed
#: per-DAG utilization could round ``ceil`` up past one core: the
#: vectorized closed form assumes the Concordia demand is exactly one
#: core while any DAG is alive.  0.45 of the post-slot slack leaves a
#: >2x cushion on top of the explicit fsum inflation below.
_VECTOR_UTIL_FRACTION = 0.45

#: Relative inflation applied to the fsum of predicted work so the
#: bound provably dominates the scheduler's left-folded sums at any
#: summation order (fsum is correctly rounded; the fold's error is
#: well below 1e-7 relative at these magnitudes).
_PRED_SUM_INFLATION = 1.0000001

#: Safety margin (µs) on the makespan pre-check: completion times are
#: accumulated as ``now + delay`` per event, so a bound that only just
#: fits could differ from the serialized sum by rounding.  One whole
#: microsecond dwarfs any float error at slot magnitudes.
_MAKESPAN_MARGIN_US = 1.0

#: Upper bound of the multi-core memory-stall penalty
#: (``repro.ran.tasks._MAX_CORE_PENALTY``) applied in the makespan
#: pre-check regardless of how many cores end up active.
_STALL_CEIL = 1.25


class _VirtualTimer:
    """Drop-in for an engine ``Timer`` during a replay.

    Same ``arm``/``cancel``/``armed`` surface, but entries go to the
    kernel's local heap with a local sequence number instead of the
    engine's.  The kernel detaches the entry before firing so the
    callback can re-arm, mirroring ``Engine._fire``.
    """

    __slots__ = ("_kernel", "_callback", "_entry")

    def __init__(self, kernel: "ArraySlotKernel", callback) -> None:
        self._kernel = kernel
        self._callback = callback
        self._entry = None

    @property
    def armed(self) -> bool:
        entry = self._entry
        return entry is not None and entry[2] is not None

    def arm(self, delay: float) -> None:
        if self.armed:
            raise RuntimeError("virtual timer is already armed")
        kernel = self._kernel
        kernel._vseq += 1
        entry = [kernel.engine._now + delay, kernel._vseq, self]
        self._entry = entry
        heappush(kernel._heap, entry)

    def cancel(self) -> None:
        entry = self._entry
        if entry is not None:
            entry[2] = None


class SlotPlan:
    """Static per-slot precompute for the vectorized certified kernel.

    Built off the boundary hot path (at window-fill time) by
    :meth:`ArraySlotKernel.build_plan`.  ``ceiling_sum`` is the
    certification fold reused by the heap replay's budget check even
    when ``ok`` is False; the remaining fields describe the closed-form
    schedule and are only populated when the static vector gates hold.
    """

    __slots__ = ("ok", "ceiling_sum", "runtimes", "completion",
                 "n_tasks", "release_us", "deadline_us")


class ArraySlotKernel:
    """Replays certified slots synchronously for one ``Simulation``."""

    def __init__(self, sim) -> None:
        self.sim = sim
        self.engine = sim.engine
        self.pool = sim.pool
        self._heap: list[list] = []
        self._vseq = 0
        # (worker, virtual finish, virtual wake, real finish, real wake)
        # tuples; rebuilt only when the pool's worker list changes.
        self._vtimers: list[tuple] = []
        #: A scheduler tick coincides with the next slot boundary; the
        #: event engine fires it right *after* the boundary callback,
        #: so the kernel replays it at the top of the next slot.
        self._pending_boundary_tick = False
        # max_latency_us recomputes a bucket max per call; the isolated
        # mixture is fixed for the pool's lifetime.
        self._wake_bound_us = sim.pool.os_model.max_latency_us(False)
        #: Micro-events (task/wakeup timer firings) replayed off the
        #: local heap instead of the engine heap.
        self.micro_events = 0
        #: Scheduler ticks consumed arithmetically by the replay
        #: (live-fired, compressed, vector-gridded and batch-emulated
        #: alike).
        self.ticks_emulated = 0
        #: Wall-clock phase accounting for ``repro bench --profile``.
        self.vector_wall_s = 0.0
        self.heap_wall_s = 0.0
        self.gate_wall_s = 0.0
        # Cached SchedulerPolicy.vector_params() (constant per policy).
        self._vp: Optional[dict] = None
        # tuple(kind_key per dag) -> (exec order, completion order).
        self._order_cache: dict = {}
        # Epoch of pool.workers the virtual-timer pool was built for.
        self._vtimers_epoch = -1
        # Deferred metrics from vectorized slots: flushed (in original
        # chronological order) before any live metrics call can
        # interleave — i.e. before a heap replay or event-path
        # fallback, and at end of run.
        self._pend_wakeups: list = []
        self._pend_lat: list = []
        self._pend_dl: list = []
        self._pend_res: list = []
        self._pend_busy: list = []
        self._pend_core_now = 0.0

    # -- certification -----------------------------------------------------

    def _gate_budget(self, now: float, slot_end: float) -> Optional[float]:
        """Structural certification gates; the runtime budget or None.

        Everything from the module-docstring contract except the
        per-task ceiling fold, which the caller runs against the
        returned budget (or reuses a precomputed :class:`SlotPlan`
        ceiling sum).
        """
        pool = self.pool
        if not pool.policy.array_certify():
            return None
        if pool.active_dags or pool._ready or pool._waking or pool._pinned:
            return None
        if pool.accelerator is not None or pool.task_observer is not None:
            return None
        if pool.metrics.record_tasks:
            return None
        bus = pool.event_bus
        if bus is not None and bus.enabled:
            return None
        if pool.cache_model.pressure != 0.0:
            return None
        if self.engine._run_end < slot_end:
            return None
        # Worst-case makespan: one wakeup window plus the serialized
        # pressure-0 runtime ceilings (see module docstring).
        return slot_end - now - _MAKESPAN_MARGIN_US - self._wake_bound_us

    def lazy_ok(self) -> bool:
        """Whether window fill may defer DAG materialization.

        Mirrors the *stable* side-channel gates of :meth:`_gate_budget`
        (everything except per-boundary quiescence): when any of these
        trips, the boundary would reject every slot anyway and lazily
        planned slots would each pay a per-slot materialization instead
        of the window-batched build.
        """
        pool = self.pool
        if pool.accelerator is not None or pool.task_observer is not None:
            return False
        if pool.metrics.record_tasks:
            return False
        bus = pool.event_bus
        if bus is not None and bus.enabled:
            return False
        if pool.cache_model.pressure != 0.0:
            return False
        return True

    def _ceilings_fit(self, dags: list, budget: float) -> bool:
        total = 0.0
        for dag in dags:
            for task in dag.tasks:
                mult = task.stoch_mult
                if mult is None:
                    return False  # presampling disabled; not certified
                ceiling = task.base_cost_us * mult
                if task.memory_bound:
                    ceiling *= _STALL_CEIL
                total += ceiling if ceiling > 0.3 else 0.3
                if total > budget:
                    return False
        return True

    # -- slot plans (static topology/cost precompute) ----------------------

    def _vector_params(self) -> Optional[dict]:
        vp = self._vp
        if vp is None:
            vp = self._vp = self.pool.policy.vector_params()
        return vp

    def _merged_order(self, dags: list) -> tuple:
        """(flat execution order, completion order) for one slot's DAGs.

        Simulates the pool's merged EDF queue for the certified case —
        uniform deadlines, a single serving core, entry tasks pushed
        dag-by-dag at release — over the per-kind topology templates.
        With equal deadlines the EDF key ``(deadline, seq)`` reduces to
        FIFO by push sequence, so the order depends only on the tuple
        of DAG kinds and is cached on it.  Flat indices are dag-major
        in ``dag.tasks`` order; the completion order is sorted
        ``(last execution position, dag index)`` pairs.
        """
        key = tuple(dag.kind_key for dag in dags)
        cached = self._order_cache.get(key)
        if cached is not None:
            return cached
        return self._merged_order_for(
            key, [topology_for_kind(dag) for dag in dags])

    def _merged_order_for(self, key: tuple, topos: list) -> tuple:
        """:meth:`_merged_order` body, from topology templates alone."""
        cached = self._order_cache.get(key)
        if cached is not None:
            return cached
        offsets = []
        owner: list[int] = []
        preds: list[int] = []
        succs: list[tuple] = []
        total = 0
        for di, topo in enumerate(topos):
            offsets.append(total)
            owner.extend([di] * topo.num_tasks)
            preds.extend(topo.pred_counts)
            for successor_ids in topo.successors:
                succs.append(tuple(total + s for s in successor_ids))
            total += topo.num_tasks
        # Push entry tasks exactly as release_slot would: dag order,
        # then per-dag entry order, consuming one sequence number each.
        heap: list[tuple] = []
        seq = 0
        for di, topo in enumerate(topos):
            base = offsets[di]
            for i in topo.entry_indices:
                heappush(heap, (seq, base + i))
                seq += 1
        order: list[int] = []
        while heap:
            _, flat = heappop(heap)
            order.append(flat)
            for fs in succs[flat]:
                preds[fs] -= 1
                if preds[fs] == 0:
                    heappush(heap, (seq, fs))
                    seq += 1
        last_pos = [0] * len(topos)
        for pos, flat in enumerate(order):
            last_pos[owner[flat]] = pos
        completion = tuple(sorted(
            (last_pos[di], di) for di in range(len(topos))))
        cached = (tuple(order), completion)
        self._order_cache[key] = cached
        return cached

    def build_plan(self, dags: list, release_us: float,
                   deadline_us: float, slot_us: float) -> "SlotPlan":
        """Precompute one slot's certification fold and vector schedule.

        Called by the runner at window-fill time, off the boundary hot
        path.  The returned plan always carries the certification
        ceiling sum when presampling is on (reused by :meth:`replay`
        even when the closed form is rejected); ``plan.ok`` is True
        only when the static vector gates hold:

        * every DAG is kind-keyed with the slot's uniform release and
          deadline and strictly positive base costs (so EDF reduces to
          FIFO and each Concordia DAG state keeps positive work);
        * the inflated predicted-work bound keeps the summed DAG
          utilization at most :data:`_VECTOR_UTIL_FRACTION` of the
          post-slot slack — the demand stays exactly one core — and
          leaves more than a tick period of slack over the critical
          path, so no tick can enter the critical-stage escalation.

        The remaining conditions (pool/policy quiescence, wakeup
        timing, tick-grid collisions) are per-boundary and are checked
        dynamically by :meth:`_vector_replay`.
        """
        plan = SlotPlan()
        plan.release_us = release_us
        plan.deadline_us = deadline_us
        plan.ok = False
        plan.ceiling_sum = None
        plan.runtimes = None
        plan.completion = None
        plan.n_tasks = 0
        total = 0.0
        runtimes_flat: list[float] = []
        bases: list[float] = []
        vec_ok = True
        for dag in dags:
            if (dag.kind_key is None or dag.release_us != release_us
                    or dag.deadline_us != deadline_us):
                vec_ok = False
            for task in dag.tasks:
                mult = task.stoch_mult
                if mult is None:
                    return plan  # no ceiling sum: replay re-folds & rejects
                base = task.base_cost_us
                runtime = ceiling = base * mult
                if task.memory_bound:
                    ceiling *= _STALL_CEIL
                # Same left fold as _ceilings_fit (dag-major, tasks
                # order): the early-exit fold and this full fold agree
                # because the addends are positive and the partial sums
                # monotone.
                total += ceiling if ceiling > 0.3 else 0.3
                # Pressure-0 single-core runtime: base · stoch · 1.0 ·
                # 1.0, clamped exactly like CostModel.sample_runtime.
                runtimes_flat.append(runtime if runtime > 0.3 else 0.3)
                bases.append(base)
                if base <= 0.0:
                    vec_ok = False
        plan.ceiling_sum = total
        if not vec_ok:
            return plan
        vp = self._vector_params()
        if vp is None:
            return plan
        margin_slack = deadline_us - (release_us + slot_us)
        if margin_slack <= 0.0:
            return plan
        bound = (_PRED_SUM_INFLATION * vp["wcet_margin"]
                 * math.fsum(bases))
        if bound > _VECTOR_UTIL_FRACTION * margin_slack:
            return plan
        if bound + vp["tick_us"] + _MAKESPAN_MARGIN_US >= margin_slack:
            return plan
        order, completion = self._merged_order(dags)
        plan.runtimes = [runtimes_flat[i] for i in order]
        plan.completion = completion
        plan.n_tasks = len(runtimes_flat)
        plan.ok = True
        return plan

    def build_plan_static(self, key: tuple, topos: list, bases: list,
                          mults: list, membound: list, release_us: float,
                          deadline_us: float,
                          slot_us: float) -> "SlotPlan":
        """Build a slot plan from cost rows alone — no DAG objects.

        ``bases``/``mults``/``membound`` are flat dag-major lists in
        ``dag.tasks`` order (``repro.ran.dag.plan_task_rows`` order);
        ``key`` is the tuple of per-DAG kind keys and ``topos`` their
        registered topology templates.  Applies the same gates and
        folds as :meth:`build_plan` — bit-identical, since the inputs
        equal what the built tasks would carry — plus a static budget
        pre-check (for a certified window the boundary budget depends
        only on the slot length), so a plan that comes back ``ok``
        almost never forces its DAGs to be materialized at the
        boundary.
        """
        plan = SlotPlan()
        plan.release_us = release_us
        plan.deadline_us = deadline_us
        plan.ok = False
        plan.ceiling_sum = None
        plan.runtimes = None
        plan.completion = None
        plan.n_tasks = 0
        total = 0.0
        vec_ok = True
        runtimes_flat: list[float] = []
        for base, mult, is_membound in zip(bases, mults, membound):
            runtime = ceiling = base * mult
            if is_membound:
                ceiling *= _STALL_CEIL
            total += ceiling if ceiling > 0.3 else 0.3
            runtimes_flat.append(runtime if runtime > 0.3 else 0.3)
            if base <= 0.0:
                vec_ok = False
        plan.ceiling_sum = total
        if not vec_ok:
            return plan
        vp = self._vector_params()
        if vp is None:
            return plan
        margin_slack = deadline_us - (release_us + slot_us)
        if margin_slack <= 0.0:
            return plan
        bound = (_PRED_SUM_INFLATION * vp["wcet_margin"]
                 * math.fsum(bases))
        if bound > _VECTOR_UTIL_FRACTION * margin_slack:
            return plan
        if bound + vp["tick_us"] + _MAKESPAN_MARGIN_US >= margin_slack:
            return plan
        if total > slot_us - _MAKESPAN_MARGIN_US - self._wake_bound_us:
            # The boundary budget would (modulo float dust) reject;
            # keep the slot on the materialized path.
            return plan
        order, completion = self._merged_order_for(key, topos)
        plan.runtimes = [runtimes_flat[i] for i in order]
        plan.completion = completion
        plan.n_tasks = len(runtimes_flat)
        plan.ok = True
        return plan

    # -- worker timer swap -------------------------------------------------

    def _swap_timers(self) -> None:
        pool = self.pool
        if self._vtimers_epoch != pool.workers_epoch:
            self._vtimers = [
                (worker,
                 _VirtualTimer(self, partial(pool._finish, worker)),
                 _VirtualTimer(self, partial(pool._awake, worker)),
                 worker.finish_timer, worker.wake_timer)
                for worker in pool.workers
            ]
            self._vtimers_epoch = pool.workers_epoch
        for worker, vfinish, vwake, _, _ in self._vtimers:
            vfinish._entry = None
            vwake._entry = None
            worker.finish_timer = vfinish
            worker.wake_timer = vwake

    def _restore_timers(self) -> None:
        for worker, _, _, finish, wake in self._vtimers:
            worker.finish_timer = finish
            worker.wake_timer = wake

    # -- deferred metrics --------------------------------------------------

    def flush_pending(self) -> None:
        """Apply metrics deferred by vectorized slots.

        Wakeup latencies, slot completions and core-time segments are
        buffered across consecutive vectorized slots and folded into
        the metrics accumulators in their original chronological order.
        Each accumulator is independent, so batching per accumulator
        preserves byte identity; the buffers only ever span vectorized
        slots (the replay flushes before any live metrics path — heap
        replay or event fallback — can interleave, and the runner
        flushes before finalize/detach/attach).
        """
        metrics = self.pool.metrics
        wakeups = self._pend_wakeups
        if wakeups:
            metrics.record_wakeup_batch(wakeups)
            self._pend_wakeups = []
        latencies = self._pend_lat
        if latencies:
            metrics.record_slot_batch(latencies, self._pend_dl)
            self._pend_lat = []
            self._pend_dl = []
        reserved = self._pend_res
        if reserved:
            metrics.record_core_segments(
                self._pend_core_now, reserved, self._pend_busy)
            self._pend_res = []
            self._pend_busy = []

    # -- the replay --------------------------------------------------------

    def try_vector(self, plan: Optional[SlotPlan]) -> bool:
        """Vector-commit a lazily planned slot whose DAGs were not built.

        Called from the boundary for slots the window fill left
        unmaterialized.  False means the caller must materialize the
        slot's DAGs (a counter-keyed rebuild, byte-identical to having
        built them at fill time) and take :meth:`replay`; rejection has
        no side effects, so the subsequent replay sees a pristine
        boundary.  No flush happens here — the follow-up replay or
        event fallback flushes before any live metrics call.
        """
        if plan is None or not plan.ok:
            return False
        wall_start = time.perf_counter()
        now = self.engine._now
        slot_end = now + self.sim._slot_us
        budget = self._gate_budget(now, slot_end)
        if (budget is not None and plan.ceiling_sum <= budget
                and self._vector_replay(None, plan, now, slot_end)):
            self.vector_wall_s += time.perf_counter() - wall_start
            return True
        self.gate_wall_s += time.perf_counter() - wall_start
        return False

    def replay(self, dags: list,
               plan: Optional[SlotPlan] = None) -> bool:
        """Replay one slot synchronously; False means "run the event path".

        Called from the slot-boundary callback with the boundary's
        DAGs, before ``release_slot``.  On True the slot is fully
        processed (release, execution, ticks, completions) and the
        engine clock is back at the boundary time.

        With a precomputed ``plan`` whose static vector gates hold, the
        slot is first offered to :meth:`_vector_replay`, which computes
        the canonical wake-once/serial-FIFO/yield-once trace in closed
        form and defers its metrics into the pending buffers; any
        rejection (static or dynamic) falls through to the per-event
        heap replay, and any path that can touch live metrics flushes
        the buffers first.
        """
        wall_start = time.perf_counter()
        engine = self.engine
        pool = self.pool
        now = engine._now
        slot_end = now + self.sim._slot_us
        budget = self._gate_budget(now, slot_end)
        if budget is None:
            self.flush_pending()  # event fallback fires live metrics
            self.gate_wall_s += time.perf_counter() - wall_start
            return False
        if plan is not None and plan.ceiling_sum is not None:
            # Reuse the window-time fold; equivalent to the early-exit
            # fold because the partial sums are monotone.
            certified = plan.ceiling_sum <= budget
        else:
            certified = self._ceilings_fit(dags, budget)
        if not certified:
            self.flush_pending()
            self.gate_wall_s += time.perf_counter() - wall_start
            return False
        if (plan is not None and plan.ok
                and self._vector_replay(dags, plan, now, slot_end)):
            self.vector_wall_s += time.perf_counter() - wall_start
            return True
        self.flush_pending()  # heap replay calls live metrics below
        policy = pool.policy
        period = policy.tick_interval_us
        tick_event = pool._tick_event
        if tick_event is None:
            tick_time = math.inf
        elif self._pending_boundary_tick:
            tick_time = now  # deferred boundary tick fires first
        else:
            tick_time = tick_event.time
        self._pending_boundary_tick = False
        if tick_event is not None:
            tick_event.cancel()
        heap = self._heap
        heap.clear()
        self._vseq = 0
        tick_vseq = 0  # the parked entry predates every replay arm
        self._swap_timers()
        try:
            pool.release_slot(dags)
            while heap:
                head = heap[0]
                if head[2] is None:
                    heappop(heap)
                    continue
                next_time = head[0]
                if tick_time < next_time or (
                        tick_time == next_time and tick_vseq < head[1]):
                    # A run of ticks strictly precedes the next
                    # micro-event (ticks after the first consume fresh,
                    # larger sequence numbers, so only time gates them).
                    first = last = tick_time
                    count = 1
                    step = first + period
                    while step < next_time:
                        last = step
                        count += 1
                        step += period
                    if policy.certify_tick_run(first, last, count):
                        tick_time = last + period
                        self._vseq += count
                        tick_vseq = self._vseq
                        self.ticks_emulated += count
                        continue
                    # Not provably identical: fire ONE tick live and
                    # re-examine the heap — the tick may arm wakeups
                    # that land before the rest of the run.
                    engine._now = tick_time
                    policy.on_tick(tick_time)
                    tick_time += period
                    self._vseq += 1
                    tick_vseq = self._vseq
                    self.ticks_emulated += 1
                    continue
                entry = heappop(heap)
                timer = entry[2]
                engine._now = entry[0]
                timer._entry = None  # detach so the callback can re-arm
                self.micro_events += 1
                timer._callback()
            # Post-completion: emulate the recurring tick source with
            # the exact quiescent-gap batching of ``VranPool._tick``
            # (its guards hold by construction: no active DAGs, no
            # in-flight wakeups, no side channels).
            quiet = pool._quiet_until
            run_end = engine._run_end
            while tick_time < slot_end:
                engine._now = tick_time
                policy.on_tick(tick_time)
                self._vseq += 1
                tick_vseq = self._vseq
                self.ticks_emulated += 1
                bound = policy.idle_tick_bound(tick_time)
                if bound is not None:
                    nxt = engine.peek_time()
                    step = tick_time + period
                    skipped = 0
                    last = 0.0
                    while (step <= bound and step <= run_end
                           and step < quiet
                           and (nxt is None or step < nxt)):
                        last = step
                        skipped += 1
                        step += period
                    if skipped:
                        policy.on_ticks_skipped(skipped, last)
                        pool.ticks_batched += skipped
                        pool.tick_batches += 1
                        self.ticks_emulated += skipped
                        tick_time = last + period
                        continue
                tick_time += period
        finally:
            self._restore_timers()
            engine._now = now
        if tick_event is not None:
            # Park the recurring tick entry at the stream's next
            # position.  A position exactly on the next boundary must
            # fire *after* that boundary's callback, which a fresh
            # entry (sequence assigned now, before the boundary entry's
            # re-key) cannot do — defer it to the next replay/fallback
            # instead.  The final slot has no next boundary (the
            # driver cancelled the slot event and set quiet = inf), so
            # the entry parks on the boundary position itself.
            if tick_time == slot_end and not math.isinf(pool._quiet_until):
                self._pending_boundary_tick = True
                tick_time += period
            pool._tick_event = engine.schedule_every(
                period, pool._tick, start=tick_time)
        self.heap_wall_s += time.perf_counter() - wall_start
        return True

    # -- the vectorized (closed-form) replay -------------------------------

    def _vector_replay(self, dags: Optional[list], plan: SlotPlan,
                       now: float, slot_end: float) -> bool:
        """Commit one certified slot in closed form; False to fall back.

        Preconditions (established by the caller): the structural
        certification gates hold and ``plan.ok`` is True.  This method
        re-checks everything that can vary per boundary, derives the
        unique trace the per-event path would produce — wake at
        ``now + L``, serial FIFO execution on one core, yield at the
        first tick past the release hold — and applies its net effect
        through the same model objects (policy counters and reclaim
        window via :meth:`SchedulerPolicy.vector_commit`, churn EWMA
        events, OS-model draw, listener callbacks) at the same
        simulated times.  Latency/core-time metrics are deferred to the
        pending buffers.  Any condition whose event-path outcome is not
        provably the closed form (an overdue wakeup, a tick colliding
        with a timer firing, a release hold crossing the boundary)
        rejects, and the heap replay runs the slot instead.
        """
        pool = self.pool
        policy = pool.policy
        engine = self.engine
        # Quiescent start: no cores held over from a previous slot
        # (a fallback slot's release hold can cross the boundary).
        if pool._reserved or pool.target_cores:
            return False
        if not policy.vector_ready():
            return False
        tick_event = pool._tick_event
        if tick_event is None:
            return False
        vp = self._vector_params()
        if vp is None:
            return False
        if plan.release_us != now:
            return False
        if dags is not None:
            # Re-checked dynamically: predictor warmup can inflate
            # WCETs after the window (and its plans) were built.  A
            # lazily planned slot (dags None) never saw warmup — the
            # runner materializes the whole window while warmup holds.
            for dag in dags:
                if dag.wcet_inflation != 1.0:
                    return False
        # Wakeup: peek the latency the (single) _wake would draw, then
        # the serial FIFO finish fold — one spinning core, each task
        # starts the instant its predecessor run finishes, so the fold
        # is the exact per-event `now + delay` accumulation.
        os_model = pool.os_model
        latency = os_model.peek(False)
        t_awake = now + latency
        finishes: list[float] = []
        f = t_awake
        for runtime in plan.runtimes:
            f += runtime
            finishes.append(f)
        c_max = f
        # One pass over the slot's tick grid (accumulated exactly like
        # the recurring engine entry: start + k·period as a running
        # float sum), checking every per-tick condition in order:
        # * a tick while the wakeup is in flight must not trip the
        #   overdue escalation, and no tick may collide with the wakeup
        #   or a task-finish timer firing time (the closed form does
        #   not model those tie-breaks);
        # * Concordia's reclaim window holds one core for
        #   release_hold_us past the last demand-1 tick (the last grid
        #   tick before c_max, or the release itself); the yield must
        #   land inside this slot, else the state crosses the boundary.
        period = vp["tick_us"]
        overdue_limit = now + vp["wakeup_overdue_us"]
        hold_us = vp["release_hold_us"]
        if self._pending_boundary_tick:
            t = now  # deferred boundary tick fires first
        else:
            t = tick_event.time
        n_grid = 0
        last_tick = t
        t_head = now
        t_yield = None
        fi = 0
        n_finish = len(finishes)
        while t < slot_end:
            n_grid += 1
            last_tick = t
            if t < t_awake:
                if t > overdue_limit:
                    return False
            else:
                if t == t_awake:
                    return False
                # finishes is ascending: advance the merge pointer to
                # the first finish >= t; equality is a collision (this
                # also covers a tick landing exactly on c_max).
                while fi < n_finish and finishes[fi] < t:
                    fi += 1
                if fi < n_finish and finishes[fi] == t:
                    return False
                if t < c_max:
                    t_head = t
                elif t_yield is None and t_head < t - hold_us:
                    t_yield = t
                    # Every remaining condition is settled; the rest of
                    # the grid only advances the running float sum (the
                    # re-park position must accumulate exactly like the
                    # recurring engine entry).
                    t += period
                    while t < slot_end:
                        n_grid += 1
                        last_tick = t
                        t += period
                    break
            t += period
        if not n_grid or t_yield is None:
            return False
        # ---- commit: replay the trace's net effect -------------------
        metrics = pool.metrics
        cache = pool.cache_model
        # _wake at the boundary: consume the peeked OS-latency draw,
        # sample occupancy-preemption, record the churn event, notify
        # the availability listener with one core gone.
        self._pend_wakeups.append(os_model.sample(False))
        occupancy = pool._occupancy_provider
        if occupancy is not None and occupancy():
            metrics.on_preemption()
        cache.record_scheduling_event(now)
        listener = pool._available_listener
        if listener is not None:
            listener(now, pool.num_cores - 1)
        # DAG completions in (last finish position, dag index) order —
        # the order the per-event path observes them.
        recycler = pool.dag_recycler if dags is not None else None
        lat = self._pend_lat
        dls = self._pend_dl
        deadline_lat = plan.deadline_us - now
        for pos, di in plan.completion:
            lat.append(finishes[pos] - now)
            dls.append(deadline_lat)
            if recycler is not None:
                recycler(dags[di])
        # Core-time segments: reserved from wake to yield, busy while a
        # task runs.  The first busy segment starts at t_awake (the
        # pre-wake reserved span is charged at running-change with the
        # old count of zero).
        res = self._pend_res
        busy = self._pend_busy
        res.append(t_awake - now)
        prev = t_awake
        for fi in finishes:
            dt = fi - prev
            res.append(dt)
            busy.append(dt)
            prev = fi
        res.append(t_yield - prev)
        self._pend_core_now = t_yield
        # _yield at the yield tick.
        metrics.on_yield()
        cache.record_scheduling_event(t_yield)
        if listener is not None:
            listener(t_yield, pool.num_cores)
        # One zero-pressure interference sample per task dispatch.
        cache.record_neutral_samples(plan.n_tasks)
        # Policy net effect: per-tick/per-release counters plus the
        # final reclaim-window state.
        policy.vector_commit(n_grid, last_tick)
        # Re-park the recurring tick entry exactly like the heap replay
        # (see that method's comment for the boundary-tick deferral).
        tick_event.cancel()
        self._pending_boundary_tick = False
        if t == slot_end and not math.isinf(pool._quiet_until):
            self._pending_boundary_tick = True
            t += period
        pool._tick_event = engine.schedule_every(
            period, pool._tick, start=t)
        self.micro_events += plan.n_tasks + 1
        self.ticks_emulated += n_grid
        self.sim.kernel_stats["vector_slots"] += 1
        return True

    def after_fallback_release(self) -> None:
        """Replay a deferred boundary tick on the event path.

        When a slot falls back with a boundary-coincident tick parked
        by the previous replay, the event engine would have fired that
        tick immediately after the boundary callback: same time, DAGs
        just released.  ``VranPool._tick`` reduces to ``policy.on_tick``
        there (the pool is never quiescent right after a release), so
        fire that, then refresh the recurring entry's sequence number —
        the event engine re-keys *after* the boundary's arms, so the
        parked entry's stale (older) sequence would tie-break wrongly
        against timers armed this boundary.
        """
        if not self._pending_boundary_tick:
            return
        self._pending_boundary_tick = False
        pool = self.pool
        engine = self.engine
        policy = pool.policy
        policy.on_tick(engine._now)
        self.ticks_emulated += 1
        tick_event = pool._tick_event
        if tick_event is not None:
            next_time = tick_event.time
            tick_event.cancel()
            pool._tick_event = engine.schedule_every(
                policy.tick_interval_us, pool._tick, start=next_time)

"""Array-timeline engine: certified synchronous slot replay.

The event engine spends most of a light slot on heap traffic: every
task completion, wakeup and 20 µs scheduler tick is a push/pop on the
global event heap even though, for the overwhelming majority of slots,
nothing outside the pool can observe the slot's interior.  This kernel
replays such a slot *inside the slot-boundary callback*: worker timers
are swapped for local virtual timers, the recurring scheduler tick is
emulated arithmetically, and the real pool/policy/metrics/OS-model
methods are invoked in exactly the (time, seq) order the event heap
would have produced.  Because the replay calls the same code in the
same order at the same simulated times, results are byte-identical to
the event engine by construction — the heap is bypassed, never the
model.

Certification contract (all must hold, checked per slot at the
boundary; any failure falls back to ``pool.release_slot`` for that
slot only):

* the policy certifies (:meth:`SchedulerPolicy.array_certify`) — the
  Concordia scheduler does so iff no DAG state is in flight; policies
  with wakeup pinning never certify;
* the pool is quiescent: no active DAGs, ready tasks, pinned tasks or
  in-flight wakeups (which also rules out retiring workers);
* no side channels: no accelerator, task observer, per-task recording
  or enabled event bus — their hooks observe interior event order;
* the workload host is passive (zero cache pressure; the runner
  additionally gates on ``workload == "none"`` so no host-scheduled
  engine events can interleave with the replayed interior);
* the engine's ``run_until`` horizon covers the whole slot — a replay
  must never run events past a horizon the engine is not enforcing;
* the worst-case makespan fits in the slot: one maximal wakeup latency
  plus the sum over released tasks of the pressure-0 runtime ceiling
  ``max(0.3, base_cost · stoch_mult · 1.25)`` must not reach the next
  boundary.  EDF dispatch is work-conserving, so after the (at most
  one) initial wakeup window some core is busy until the last finish;
  the serialized sum therefore bounds the makespan for any worker
  count.

Interior ordering invariants the replay reproduces:

* virtual timer arms consume a local sequence counter exactly where
  ``Timer.arm`` would consume an engine sequence number, so equal-time
  firings tie-break identically;
* the tick stream's position/sequence is tracked so a tick landing on
  a timer's firing time fires on the correct side of it;
* runs of ticks with no micro-event in between are compressed through
  :meth:`SchedulerPolicy.certify_tick_run` when the policy can prove
  them identical, and fired one-by-one otherwise;
* after the last completion the pool's quiescent-gap tick batching is
  emulated with the exact ``_tick`` loop (same bound/horizon/peek
  clamps, same ``on_ticks_skipped`` replay);
* a tick falling exactly on the next boundary is deferred (the event
  engine fires it *after* the boundary callback): the kernel parks the
  recurring entry one period later and replays the boundary tick
  first thing next slot — or, on fallback, fires ``policy.on_tick``
  right after ``release_slot`` and refreshes the entry's sequence to
  match the event engine's re-key order.

Core rotation entries stay in the real heap and fire after the replay
returns; rotation only permutes the worker preference order, and no
digest-relevant observable depends on worker identity (runtimes depend
on the running *count*, wakeup latencies come from a shared stream in
arrival order), so replay and event mode stay byte-identical across
rotations that land inside a replayed slot.
"""

from __future__ import annotations

import math
from functools import partial
from heapq import heappop, heappush

__all__ = ["ArraySlotKernel"]

#: Safety margin (µs) on the makespan pre-check: completion times are
#: accumulated as ``now + delay`` per event, so a bound that only just
#: fits could differ from the serialized sum by rounding.  One whole
#: microsecond dwarfs any float error at slot magnitudes.
_MAKESPAN_MARGIN_US = 1.0

#: Upper bound of the multi-core memory-stall penalty
#: (``repro.ran.tasks._MAX_CORE_PENALTY``) applied in the makespan
#: pre-check regardless of how many cores end up active.
_STALL_CEIL = 1.25


class _VirtualTimer:
    """Drop-in for an engine ``Timer`` during a replay.

    Same ``arm``/``cancel``/``armed`` surface, but entries go to the
    kernel's local heap with a local sequence number instead of the
    engine's.  The kernel detaches the entry before firing so the
    callback can re-arm, mirroring ``Engine._fire``.
    """

    __slots__ = ("_kernel", "_callback", "_entry")

    def __init__(self, kernel: "ArraySlotKernel", callback) -> None:
        self._kernel = kernel
        self._callback = callback
        self._entry = None

    @property
    def armed(self) -> bool:
        entry = self._entry
        return entry is not None and entry[2] is not None

    def arm(self, delay: float) -> None:
        if self.armed:
            raise RuntimeError("virtual timer is already armed")
        kernel = self._kernel
        kernel._vseq += 1
        entry = [kernel.engine._now + delay, kernel._vseq, self]
        self._entry = entry
        heappush(kernel._heap, entry)

    def cancel(self) -> None:
        entry = self._entry
        if entry is not None:
            entry[2] = None


class ArraySlotKernel:
    """Replays certified slots synchronously for one ``Simulation``."""

    def __init__(self, sim) -> None:
        self.sim = sim
        self.engine = sim.engine
        self.pool = sim.pool
        self._heap: list[list] = []
        self._vseq = 0
        # (worker, virtual finish, virtual wake, real finish, real wake)
        # tuples; rebuilt only when the pool's worker list changes.
        self._vtimers: list[tuple] = []
        #: A scheduler tick coincides with the next slot boundary; the
        #: event engine fires it right *after* the boundary callback,
        #: so the kernel replays it at the top of the next slot.
        self._pending_boundary_tick = False
        # max_latency_us recomputes a bucket max per call; the isolated
        # mixture is fixed for the pool's lifetime.
        self._wake_bound_us = sim.pool.os_model.max_latency_us(False)
        #: Micro-events (task/wakeup timer firings) replayed off the
        #: local heap instead of the engine heap.
        self.micro_events = 0
        #: Scheduler ticks consumed arithmetically by the replay
        #: (live-fired, compressed, and batch-emulated alike).
        self.ticks_emulated = 0

    # -- certification -----------------------------------------------------

    def _certify(self, dags: list, now: float, slot_end: float) -> bool:
        pool = self.pool
        if not pool.policy.array_certify():
            return False
        if pool.active_dags or pool._ready or pool._waking or pool._pinned:
            return False
        if pool.accelerator is not None or pool.task_observer is not None:
            return False
        if pool.metrics.record_tasks:
            return False
        bus = pool.event_bus
        if bus is not None and bus.enabled:
            return False
        if pool.cache_model.pressure != 0.0:
            return False
        if self.engine._run_end < slot_end:
            return False
        # Worst-case makespan: one wakeup window plus the serialized
        # pressure-0 runtime ceilings (see module docstring).
        budget = (slot_end - now - _MAKESPAN_MARGIN_US
                  - self._wake_bound_us)
        total = 0.0
        for dag in dags:
            for task in dag.tasks:
                mult = task.stoch_mult
                if mult is None:
                    return False  # presampling disabled; not certified
                ceiling = task.base_cost_us * mult
                if task.memory_bound:
                    ceiling *= _STALL_CEIL
                total += ceiling if ceiling > 0.3 else 0.3
                if total > budget:
                    return False
        return True

    # -- worker timer swap -------------------------------------------------

    def _swap_timers(self) -> None:
        vt = self._vtimers
        workers = self.pool.workers
        if len(vt) != len(workers) or any(
                entry[0] is not worker
                for entry, worker in zip(vt, workers)):
            pool = self.pool
            vt = self._vtimers = [
                (worker,
                 _VirtualTimer(self, partial(pool._finish, worker)),
                 _VirtualTimer(self, partial(pool._awake, worker)),
                 worker.finish_timer, worker.wake_timer)
                for worker in workers
            ]
        for worker, vfinish, vwake, _, _ in vt:
            vfinish._entry = None
            vwake._entry = None
            worker.finish_timer = vfinish
            worker.wake_timer = vwake

    def _restore_timers(self) -> None:
        for worker, _, _, finish, wake in self._vtimers:
            worker.finish_timer = finish
            worker.wake_timer = wake

    # -- the replay --------------------------------------------------------

    def replay(self, dags: list) -> bool:
        """Replay one slot synchronously; False means "run the event path".

        Called from the slot-boundary callback with the boundary's
        DAGs, before ``release_slot``.  On True the slot is fully
        processed (release, execution, ticks, completions) and the
        engine clock is back at the boundary time.
        """
        engine = self.engine
        pool = self.pool
        now = engine._now
        slot_end = now + self.sim._slot_us
        if not self._certify(dags, now, slot_end):
            return False
        policy = pool.policy
        period = policy.tick_interval_us
        tick_event = pool._tick_event
        if tick_event is None:
            tick_time = math.inf
        elif self._pending_boundary_tick:
            tick_time = now  # deferred boundary tick fires first
        else:
            tick_time = tick_event.time
        self._pending_boundary_tick = False
        if tick_event is not None:
            tick_event.cancel()
        heap = self._heap
        heap.clear()
        self._vseq = 0
        tick_vseq = 0  # the parked entry predates every replay arm
        self._swap_timers()
        try:
            pool.release_slot(dags)
            while heap:
                head = heap[0]
                if head[2] is None:
                    heappop(heap)
                    continue
                next_time = head[0]
                if tick_time < next_time or (
                        tick_time == next_time and tick_vseq < head[1]):
                    # A run of ticks strictly precedes the next
                    # micro-event (ticks after the first consume fresh,
                    # larger sequence numbers, so only time gates them).
                    first = last = tick_time
                    count = 1
                    step = first + period
                    while step < next_time:
                        last = step
                        count += 1
                        step += period
                    if policy.certify_tick_run(first, last, count):
                        tick_time = last + period
                        self._vseq += count
                        tick_vseq = self._vseq
                        self.ticks_emulated += count
                        continue
                    # Not provably identical: fire ONE tick live and
                    # re-examine the heap — the tick may arm wakeups
                    # that land before the rest of the run.
                    engine._now = tick_time
                    policy.on_tick(tick_time)
                    tick_time += period
                    self._vseq += 1
                    tick_vseq = self._vseq
                    self.ticks_emulated += 1
                    continue
                entry = heappop(heap)
                timer = entry[2]
                engine._now = entry[0]
                timer._entry = None  # detach so the callback can re-arm
                self.micro_events += 1
                timer._callback()
            # Post-completion: emulate the recurring tick source with
            # the exact quiescent-gap batching of ``VranPool._tick``
            # (its guards hold by construction: no active DAGs, no
            # in-flight wakeups, no side channels).
            quiet = pool._quiet_until
            run_end = engine._run_end
            while tick_time < slot_end:
                engine._now = tick_time
                policy.on_tick(tick_time)
                self._vseq += 1
                tick_vseq = self._vseq
                self.ticks_emulated += 1
                bound = policy.idle_tick_bound(tick_time)
                if bound is not None:
                    nxt = engine.peek_time()
                    step = tick_time + period
                    skipped = 0
                    last = 0.0
                    while (step <= bound and step <= run_end
                           and step < quiet
                           and (nxt is None or step < nxt)):
                        last = step
                        skipped += 1
                        step += period
                    if skipped:
                        policy.on_ticks_skipped(skipped, last)
                        pool.ticks_batched += skipped
                        pool.tick_batches += 1
                        self.ticks_emulated += skipped
                        tick_time = last + period
                        continue
                tick_time += period
        finally:
            self._restore_timers()
            engine._now = now
        if tick_event is not None:
            # Park the recurring tick entry at the stream's next
            # position.  A position exactly on the next boundary must
            # fire *after* that boundary's callback, which a fresh
            # entry (sequence assigned now, before the boundary entry's
            # re-key) cannot do — defer it to the next replay/fallback
            # instead.  The final slot has no next boundary (the
            # driver cancelled the slot event and set quiet = inf), so
            # the entry parks on the boundary position itself.
            if tick_time == slot_end and not math.isinf(pool._quiet_until):
                self._pending_boundary_tick = True
                tick_time += period
            pool._tick_event = engine.schedule_every(
                period, pool._tick, start=tick_time)
        return True

    def after_fallback_release(self) -> None:
        """Replay a deferred boundary tick on the event path.

        When a slot falls back with a boundary-coincident tick parked
        by the previous replay, the event engine would have fired that
        tick immediately after the boundary callback: same time, DAGs
        just released.  ``VranPool._tick`` reduces to ``policy.on_tick``
        there (the pool is never quiescent right after a release), so
        fire that, then refresh the recurring entry's sequence number —
        the event engine re-keys *after* the boundary's arms, so the
        parked entry's stale (older) sequence would tie-break wrongly
        against timers armed this boundary.
        """
        if not self._pending_boundary_tick:
            return
        self._pending_boundary_tick = False
        pool = self.pool
        engine = self.engine
        policy = pool.policy
        policy.on_tick(engine._now)
        self.ticks_emulated += 1
        tick_event = pool._tick_event
        if tick_event is not None:
            next_time = tick_event.time
            tick_event.cancel()
            pool._tick_event = engine.schedule_every(
                policy.tick_interval_us, pool._tick, start=next_time)

"""Measurement collectors shared by all experiments.

Tracks everything the paper's evaluation reports:

* per-slot (DAG) processing latencies and deadline outcomes (Fig. 4b,
  11, 12, 15b);
* reserved vs best-effort core-time integrals, i.e. reclaimed CPU
  (Fig. 8a, 13a);
* busy core-time for vRAN CPU-utilization numbers (Fig. 4a, Table 3);
* scheduling (wakeup) events and their latency histogram (Fig. 10);
* best-effort preemption counts used by the workload models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["Metrics", "LatencySummary", "SCHED_LATENCY_BUCKETS_US"]

#: Fig. 10's histogram bucket boundaries (µs).
SCHED_LATENCY_BUCKETS_US = (1.0, 3.0, 7.0, 15.0, 31.0, 63.0, 127.0, 255.0,
                            float("inf"))


@dataclass
class LatencySummary:
    """Percentile summary of slot-processing latencies."""

    count: int
    mean_us: float
    p50_us: float
    p99_us: float
    p9999_us: float
    p99999_us: float
    max_us: float
    deadline_us: float
    miss_fraction: float

    @property
    def meets_four_nines(self) -> bool:
        return self.p9999_us <= self.deadline_us

    @property
    def meets_five_nines(self) -> bool:
        return self.p99999_us <= self.deadline_us


class Metrics:
    """Accumulates simulation measurements; cheap enough for hot paths."""

    def __init__(self, num_cores: int) -> None:
        self.num_cores = num_cores
        self.slot_latencies: list[float] = []
        self.slot_deadlines_missed = 0
        self.slot_count = 0
        # Core-time integrals (core-µs).
        self._reserved_cores = 0
        self._running_cores = 0
        self._last_change_us = 0.0
        self.reserved_core_time_us = 0.0
        self.busy_core_time_us = 0.0
        self.start_time_us = 0.0
        self.end_time_us = 0.0
        # Scheduling events.
        self.wakeup_latencies: list[float] = []
        self.yield_events = 0
        self.best_effort_preemptions = 0
        # Per-task records for predictor evaluation (optional, off by default).
        self.record_tasks = False
        self.task_records: list[tuple] = []

    # -- core-time accounting -------------------------------------------------

    def _advance(self, now_us: float) -> None:
        dt = now_us - self._last_change_us
        if dt > 0:
            self.reserved_core_time_us += dt * self._reserved_cores
            self.busy_core_time_us += dt * self._running_cores
            self._last_change_us = now_us

    def on_reserved_change(self, now_us: float, reserved: int) -> None:
        """Called whenever the number of vRAN-held cores changes."""
        self._advance(now_us)
        self._reserved_cores = reserved

    def on_running_change(self, now_us: float, running: int) -> None:
        """Called whenever the number of cores executing tasks changes."""
        self._advance(now_us)
        self._running_cores = running

    def finalize(self, now_us: float) -> None:
        self._advance(now_us)
        self.end_time_us = now_us

    # -- derived core-time metrics ---------------------------------------------

    @property
    def duration_us(self) -> float:
        """Measured span; falls back to the last accounting event when
        :meth:`finalize` has not been called yet."""
        end = max(self.end_time_us, self._last_change_us)
        return max(end - self.start_time_us, 1e-9)

    @property
    def total_core_time_us(self) -> float:
        return self.duration_us * self.num_cores

    @property
    def reclaimed_fraction(self) -> float:
        """Fraction of pool core-time made available to other workloads."""
        return 1.0 - self.reserved_core_time_us / self.total_core_time_us

    @property
    def best_effort_core_time_us(self) -> float:
        return self.total_core_time_us - self.reserved_core_time_us

    @property
    def vran_utilization(self) -> float:
        """Busy fraction of all pool core-time (Fig. 4a's CPU util)."""
        return self.busy_core_time_us / self.total_core_time_us

    @property
    def idle_fraction_upper_bound(self) -> float:
        """Ideal reclaimable fraction: every non-busy cycle recovered."""
        return 1.0 - self.busy_core_time_us / self.total_core_time_us

    # -- slot latencies -----------------------------------------------------------

    def on_slot_complete(self, latency_us: float, deadline_us: float) -> None:
        self.slot_count += 1
        self.slot_latencies.append(latency_us)
        if latency_us > deadline_us:
            self.slot_deadlines_missed += 1

    def latency_summary(self, deadline_us: float) -> LatencySummary:
        if not self.slot_latencies:
            raise ValueError("no slot latencies recorded")
        arr = np.asarray(self.slot_latencies)
        return LatencySummary(
            count=len(arr),
            mean_us=float(arr.mean()),
            p50_us=float(np.percentile(arr, 50)),
            p99_us=float(np.percentile(arr, 99)),
            p9999_us=float(np.percentile(arr, 99.99)),
            p99999_us=float(np.percentile(arr, 99.999)),
            max_us=float(arr.max()),
            deadline_us=deadline_us,
            miss_fraction=self.slot_deadlines_missed / max(1, self.slot_count),
        )

    # -- scheduling events --------------------------------------------------------

    def on_wakeup(self, latency_us: float) -> None:
        self.wakeup_latencies.append(latency_us)
        self.best_effort_preemptions += 1

    def on_yield(self) -> None:
        self.yield_events += 1

    @property
    def scheduling_events(self) -> int:
        return len(self.wakeup_latencies) + self.yield_events

    def wakeup_histogram(self) -> dict[str, int]:
        """Fig. 10-style histogram of wakeup latencies."""
        counts = {}
        edges = (0.0,) + SCHED_LATENCY_BUCKETS_US
        labels = []
        for lo, hi in zip(edges[:-1], edges[1:]):
            if hi == float("inf"):
                labels.append(f">{int(lo)}")
            else:
                labels.append(f"{int(lo)}-{int(hi)}")
        arr = np.asarray(self.wakeup_latencies) if self.wakeup_latencies else \
            np.empty(0)
        for label, lo, hi in zip(labels, edges[:-1], edges[1:]):
            counts[label] = int(((arr >= lo) & (arr < hi)).sum())
        return counts

    # -- per-task records ----------------------------------------------------------

    def on_task_complete(self, task_type: str, predicted_us: Optional[float],
                         actual_us: float) -> None:
        if self.record_tasks:
            self.task_records.append((task_type, predicted_us, actual_us))

"""Measurement collectors shared by all experiments.

Tracks everything the paper's evaluation reports:

* per-slot (DAG) processing latencies and deadline outcomes (Fig. 4b,
  11, 12, 15b);
* reserved vs best-effort core-time integrals, i.e. reclaimed CPU
  (Fig. 8a, 13a);
* busy core-time for vRAN CPU-utilization numbers (Fig. 4a, Table 3);
* scheduling (wakeup) events and their latency histogram (Fig. 10);
* best-effort preemption counts used by the workload models.

Event counters and the wakeup-latency histogram live in a
:class:`repro.obs.registry.MetricsRegistry` so every simulation result
carries a JSON-able telemetry snapshot (``result.telemetry``) through
the ``repro.exec`` cache; the legacy attribute names remain as
properties over the registered instruments.

Wakeups and best-effort preemptions are *separate* counters: every
signalled core pays a wakeup latency, but a preemption is only
recorded (via :meth:`Metrics.on_preemption`) when a best-effort
occupant was actually displaced.  Counting every wakeup as a
preemption — as an earlier revision did — inflates the Fig. 8b–d
workload efficiency discount on pools with idle reclaimed cores.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..obs.registry import MetricsRegistry

__all__ = ["Metrics", "LatencySummary", "SCHED_LATENCY_BUCKETS_US"]

#: Fig. 10's histogram bucket boundaries (µs).
SCHED_LATENCY_BUCKETS_US = (1.0, 3.0, 7.0, 15.0, 31.0, 63.0, 127.0, 255.0,
                            float("inf"))


@dataclass
class LatencySummary:
    """Percentile summary of slot-processing latencies."""

    count: int
    mean_us: float
    p50_us: float
    p99_us: float
    p9999_us: float
    p99999_us: float
    max_us: float
    deadline_us: float
    miss_fraction: float

    @property
    def meets_four_nines(self) -> bool:
        return self.p9999_us <= self.deadline_us

    @property
    def meets_five_nines(self) -> bool:
        return self.p99999_us <= self.deadline_us


class Metrics:
    """Accumulates simulation measurements; cheap enough for hot paths."""

    def __init__(self, num_cores: int) -> None:
        self.num_cores = num_cores
        self._initial_cores = num_cores
        #: ``(time_us, num_cores)`` steps recorded by elastic
        #: reconfiguration (``VranPool.add_worker``/``remove_worker``).
        #: Empty for the (overwhelmingly common) fixed-capacity run, in
        #: which case the legacy closed-form core-time integral is used
        #: unchanged.
        self._capacity_segments: list[tuple[float, int]] = []
        self.registry = MetricsRegistry()
        self.slot_latencies: list[float] = []
        # Core-time integrals (core-µs).
        self._reserved_cores = 0
        self._running_cores = 0
        self._last_change_us = 0.0
        self.reserved_core_time_us = 0.0
        self.busy_core_time_us = 0.0
        self.start_time_us = 0.0
        self.end_time_us = 0.0
        # Scheduling events.  The instruments are bound once here; hot
        # paths touch ``.value`` directly instead of looking up names.
        self.wakeup_latencies: list[float] = []
        self._slots = self.registry.counter("slots/completed")
        self._misses = self.registry.counter("slots/missed")
        self._wakeups = self.registry.counter("sched/wakeups")
        self._yields = self.registry.counter("sched/yields")
        self._preemptions = self.registry.counter(
            "sched/best_effort_preemptions")
        self._wakeup_hist = self.registry.histogram(
            "sched/wakeup_latency_us", SCHED_LATENCY_BUCKETS_US)
        # Per-task records for predictor evaluation (optional, off by default).
        self.record_tasks = False
        self.task_records: list[tuple] = []

    # -- core-time accounting -------------------------------------------------

    def _advance(self, now_us: float) -> None:
        dt = now_us - self._last_change_us
        if dt > 0:
            self.reserved_core_time_us += dt * self._reserved_cores
            self.busy_core_time_us += dt * self._running_cores
            self._last_change_us = now_us

    def on_reserved_change(self, now_us: float, reserved: int) -> None:
        """Called whenever the number of vRAN-held cores changes."""
        self._advance(now_us)
        self._reserved_cores = reserved

    def on_capacity_change(self, now_us: float, num_cores: int) -> None:
        """Called when the *physical* core count of the pool changes.

        Elastic worker add/remove turns ``total_core_time_us`` into a
        piecewise integral; runs that never reconfigure keep the exact
        legacy ``duration * num_cores`` closed form.
        """
        self._advance(now_us)
        self._capacity_segments.append((now_us, num_cores))
        self.num_cores = num_cores

    def on_running_change(self, now_us: float, running: int) -> None:
        """Called whenever the number of cores executing tasks changes."""
        # Inline of _advance(): one call per task completion.
        dt = now_us - self._last_change_us
        if dt > 0:
            self.reserved_core_time_us += dt * self._reserved_cores
            self.busy_core_time_us += dt * self._running_cores
            self._last_change_us = now_us
        self._running_cores = running

    def finalize(self, now_us: float) -> None:
        self._advance(now_us)
        self.end_time_us = now_us

    # -- derived core-time metrics ---------------------------------------------

    @property
    def duration_us(self) -> float:
        """Measured span; falls back to the last accounting event when
        :meth:`finalize` has not been called yet."""
        end = max(self.end_time_us, self._last_change_us)
        return max(end - self.start_time_us, 1e-9)

    @property
    def total_core_time_us(self) -> float:
        segments = self._capacity_segments
        if not segments:
            return self.duration_us * self.num_cores
        # Piecewise integral over capacity steps (elastic runs only).
        end = max(self.end_time_us, self._last_change_us)
        prev_t = self.start_time_us
        prev_n = self._initial_cores
        total = 0.0
        for t, n in segments:
            t = min(max(t, prev_t), end)
            total += (t - prev_t) * prev_n
            prev_t, prev_n = t, n
        if end > prev_t:
            total += (end - prev_t) * prev_n
        return max(total, 1e-9)

    @property
    def reclaimed_fraction(self) -> float:
        """Fraction of pool core-time made available to other workloads."""
        return 1.0 - self.reserved_core_time_us / self.total_core_time_us

    @property
    def best_effort_core_time_us(self) -> float:
        return self.total_core_time_us - self.reserved_core_time_us

    @property
    def vran_utilization(self) -> float:
        """Busy fraction of all pool core-time (Fig. 4a's CPU util)."""
        return self.busy_core_time_us / self.total_core_time_us

    @property
    def idle_fraction_upper_bound(self) -> float:
        """Ideal reclaimable fraction: every non-busy cycle recovered."""
        return 1.0 - self.busy_core_time_us / self.total_core_time_us

    # -- slot latencies -----------------------------------------------------------

    def on_slot_complete(self, latency_us: float, deadline_us: float) -> None:
        # Single-sample ingest is the batch API with one pair, so the
        # fallback (event) path and the vectorized kernel share one
        # clamping/overflow/miss code path.
        self.record_slot_batch((latency_us,), (deadline_us,))

    def record_slot_batch(self, latencies_us: list,
                          deadlines_us: list) -> None:
        """Bulk :meth:`on_slot_complete` for the array-timeline kernel.

        Order-preserving appends plus one counter update; equivalent to
        calling :meth:`on_slot_complete` once per pair.  Slot-latency
        recording is independent of the core-time integrals, so a
        kernel may defer and flush a slot's completions in one call.
        """
        self.slot_latencies.extend(latencies_us)
        self._slots.value += len(latencies_us)
        misses = 0
        for latency, deadline in zip(latencies_us, deadlines_us):
            if latency > deadline:
                misses += 1
        if misses:
            self._misses.value += misses

    @property
    def slot_count(self) -> int:
        return self._slots.value

    @property
    def slot_deadlines_missed(self) -> int:
        return self._misses.value

    def latency_summary(self, deadline_us: float) -> LatencySummary:
        if not self.slot_latencies:
            raise ValueError("no slot latencies recorded")
        arr = np.asarray(self.slot_latencies)
        return LatencySummary(
            count=len(arr),
            mean_us=float(arr.mean()),
            p50_us=float(np.percentile(arr, 50)),
            p99_us=float(np.percentile(arr, 99)),
            p9999_us=float(np.percentile(arr, 99.99)),
            p99999_us=float(np.percentile(arr, 99.999)),
            max_us=float(arr.max()),
            deadline_us=deadline_us,
            miss_fraction=self.slot_deadlines_missed / max(1, self.slot_count),
        )

    # -- scheduling events --------------------------------------------------------

    def on_wakeup(self, latency_us: float) -> None:
        """A yielded core was signalled; it comes up ``latency_us`` later.

        This is *not* a preemption: the woken core may have been idle.
        The pool reports :meth:`on_preemption` separately when a
        best-effort occupant was actually displaced.
        """
        self.wakeup_latencies.append(latency_us)
        self._wakeups.value += 1
        self._wakeup_hist.observe(latency_us)

    def record_wakeup_batch(self, latencies_us: list) -> None:
        """Bulk :meth:`on_wakeup` for the vectorized slot kernel.

        Byte-identical to calling :meth:`on_wakeup` once per latency:
        histogram bucket counts are exact integers (``searchsorted``
        with right-closed buckets replicates ``Histogram.observe``'s
        "first edge the value is below" scan), while ``sum`` and
        ``max`` are folded sequentially in list order because the
        histogram's running float sum is order-sensitive and lands in
        the digested telemetry snapshot.
        """
        if not latencies_us:
            return
        self.wakeup_latencies.extend(latencies_us)
        self._wakeups.value += len(latencies_us)
        hist = self._wakeup_hist
        arr = np.asarray(latencies_us)
        if np.isnan(arr).any():
            raise ValueError(f"histogram {hist.name}: NaN observation")
        idx = np.minimum(np.searchsorted(hist.edges, arr, side="right"),
                         len(hist.edges) - 1)
        counts = np.bincount(idx, minlength=len(hist.edges))
        for bucket, n in enumerate(counts.tolist()):
            if n:
                hist.counts[bucket] += n
        hist.count += len(latencies_us)
        total = hist.sum
        maximum = hist.max
        for value in latencies_us:
            total += value
            if value > maximum:
                maximum = value
        hist.sum = total
        hist.max = maximum

    def record_core_segments(self, now_us: float, reserved_dts: list,
                             busy_dts: list) -> None:
        """Deferred core-time integral segments from the slot kernel.

        The kernel computes a certified slot's reserve/run/yield
        timeline in closed form, so instead of stepping
        :meth:`on_reserved_change`/:meth:`on_running_change` through
        every transition it hands over the per-segment ``dt`` lists
        (one core held during each).  Sequential ``+=`` folds keep the
        float accumulation order of the event path; ``now_us`` is the
        yield timestamp of the final segment, from which live
        accounting resumes.  Only valid while the live reserved/running
        levels are zero — i.e. between certified slot boundaries —
        which certification guarantees.
        """
        reserved = self.reserved_core_time_us
        for dt in reserved_dts:
            reserved += dt
        self.reserved_core_time_us = reserved
        busy = self.busy_core_time_us
        for dt in busy_dts:
            busy += dt
        self.busy_core_time_us = busy
        if now_us > self._last_change_us:
            self._last_change_us = now_us

    def on_preemption(self) -> None:
        """A wakeup displaced an actual best-effort occupant."""
        self._preemptions.value += 1

    def on_yield(self) -> None:
        self._yields.value += 1

    @property
    def yield_events(self) -> int:
        return self._yields.value

    @property
    def best_effort_preemptions(self) -> int:
        return self._preemptions.value

    @property
    def scheduling_events(self) -> int:
        return self._wakeups.value + self._yields.value

    def wakeup_histogram(self) -> dict[str, int]:
        """Fig. 10-style histogram of wakeup latencies."""
        return self._wakeup_hist.labelled_counts()

    # -- telemetry snapshot -------------------------------------------------------

    def snapshot(self) -> dict:
        """Registry snapshot plus the core-time integral gauges.

        This is the ``telemetry`` dict attached to simulation results;
        it is pure JSON and survives the ``repro.exec`` cache.
        """
        self.registry.gauge("coretime/reserved_us").set(
            self.reserved_core_time_us)
        self.registry.gauge("coretime/busy_us").set(self.busy_core_time_us)
        self.registry.gauge("coretime/duration_us").set(self.duration_us)
        self.registry.gauge("coretime/num_cores").set(self.num_cores)
        return self.registry.as_dict()

    # -- per-task records ----------------------------------------------------------

    def on_task_complete(self, task_type: str, predicted_us: Optional[float],
                         actual_us: float) -> None:
        if self.record_tasks:
            self.task_records.append((task_type, predicted_us, actual_us))

"""Concordia's contribution: WCET prediction and deadline scheduling."""

"""Per-leaf EVT prediction — the variant the paper tried and rejected.

§4.2: "We also experimented with such methods (e.g. [23]) to replace
our online predictor on each leaf node, but they provided similar
accuracy while being more computationally expensive."

:class:`LeafEvtQuantileTree` keeps Concordia's offline quantile tree
but replaces the per-leaf *max-of-ring-buffer* estimate with a
probabilistic WCET: a Gumbel fit over the leaf's buffered samples,
evaluated at a configurable confidence.  The ablation benchmark
(`benchmarks/test_ablations.py`) quantifies the paper's conclusion:
accuracy comparable to the max rule at a strictly higher prediction
cost (a distribution fit instead of an O(1) max lookup).
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from .models import WcetModel, fit_gumbel_moments
from .quantile_tree import QuantileDecisionTree, TreeConfig

__all__ = ["LeafEvtQuantileTree"]


class LeafEvtQuantileTree(WcetModel):
    """Quantile tree with Gumbel-quantile leaf predictions."""

    name = "leaf_evt_tree"

    def __init__(self, config: Optional[TreeConfig] = None,
                 confidence: float = 0.99999,
                 refit_every: int = 200) -> None:
        if not 0.0 < confidence < 1.0:
            raise ValueError("confidence must be in (0, 1)")
        self.tree = QuantileDecisionTree(config)
        self.confidence = confidence
        self.refit_every = refit_every
        self._leaf_params: list = []
        self._since_refit: list = []
        self._global_max = 0.0
        # Cost accounting for the ablation comparison.
        self.fits_performed = 0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LeafEvtQuantileTree":
        self.tree.fit(X, y)
        self._global_max = float(np.asarray(y).max())
        self._leaf_params = [None] * self.tree.num_leaves
        self._since_refit = [0] * self.tree.num_leaves
        for leaf in range(self.tree.num_leaves):
            self._refit_leaf(leaf)
        return self

    def _refit_leaf(self, leaf: int) -> None:
        buffer = self.tree.leaves[leaf]
        if len(buffer) < 8:
            self._leaf_params[leaf] = None
            return
        values = buffer.values()
        # Guard against degenerate (constant) leaves.
        if float(values.std()) < 1e-12:
            self._leaf_params[leaf] = (float(values[0]), 1e-9)
        else:
            self._leaf_params[leaf] = fit_gumbel_moments(values)
        self.fits_performed += 1
        self._since_refit[leaf] = 0

    def predict(self, x: np.ndarray) -> float:
        leaf = self.tree.leaf_index(x)
        params = self._leaf_params[leaf]
        if params is None:
            try:
                return self.tree.leaves[leaf].max()
            except ValueError:
                return self._global_max
        mu, beta = params
        quantile = mu - beta * math.log(-math.log(self.confidence))
        # Never predict below the worst sample actually observed.
        try:
            observed = self.tree.leaves[leaf].max()
        except ValueError:
            observed = 0.0
        return max(quantile, observed)

    def observe(self, x: np.ndarray, runtime: float) -> None:
        leaf = self.tree.observe(x, runtime)
        self._since_refit[leaf] += 1
        if self._since_refit[leaf] >= self.refit_every:
            self._refit_leaf(leaf)

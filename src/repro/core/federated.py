"""Mixed-criticality federated scheduling for parallel DAG tasks.

Concordia adopts the core-allocation rule of Li et al., "Mixed-
criticality federated scheduling for parallel real-time tasks"
(Real-Time Systems, 2017), which the paper references as its scheduling
foundation (§3): given a DAG with total remaining work ``C``, remaining
critical-path length ``L`` and time-to-deadline ``S`` (slack), the
minimum number of dedicated cores that guarantees completion by the
deadline under any greedy (work-conserving) scheduler is::

    n = ceil((C - L) / (S - L))        when S > L

When ``S <= L`` even infinitely many cores cannot help a greedy
scheduler below the critical path, so the DAG enters the *critical
stage* and the scheduler escalates to every available core.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["CoreDemand", "federated_core_demand", "aggregate_demand"]


@dataclass(frozen=True)
class CoreDemand:
    """Core requirement of one DAG at one instant."""

    cores: int
    critical: bool  # True when the DAG entered the critical stage

    def __add__(self, other: "CoreDemand") -> "CoreDemand":
        return CoreDemand(self.cores + other.cores,
                          self.critical or other.critical)


def federated_core_demand(
    total_work_us: float,
    critical_path_us: float,
    slack_us: float,
    critical_margin_us: float = 20.0,
) -> CoreDemand:
    """Cores needed to finish a DAG within its remaining slack.

    ``critical_margin_us`` widens the critical stage: with the Concordia
    scheduler re-evaluating only every 20 µs, a DAG whose slack is
    within one tick of its critical path is already at risk.
    """
    if total_work_us < 0 or critical_path_us < 0:
        raise ValueError("work and critical path must be non-negative")
    if critical_path_us > total_work_us + 1e-9:
        raise ValueError("critical path cannot exceed total work")
    if total_work_us == 0:
        return CoreDemand(0, False)
    if slack_us <= critical_path_us + critical_margin_us:
        return CoreDemand(0, True)  # critical: caller allocates all cores
    parallel_work = total_work_us - critical_path_us
    if parallel_work <= 0:
        return CoreDemand(1, False)
    cores = math.ceil(parallel_work / (slack_us - critical_path_us))
    return CoreDemand(max(1, cores), False)


def aggregate_demand(demands) -> CoreDemand:
    """Total demand over concurrently active DAGs."""
    total = CoreDemand(0, False)
    for demand in demands:
        total = total + demand
    return total

"""Feature selection for WCET models (paper Algorithm 1).

The offline phase selects, per signal-processing task, the subset of
vRAN-state features with the most impact on the task runtime:

1. rank features by **distance correlation** with the runtime
   (Székely-Rizzo; implemented from scratch — the paper used R's
   ``Rfast::dcor``) and keep the top ``N``;
2. prune to ``M`` features with **backwards elimination** on a held-out
   split of an OLS model;
3. union the result with hand-picked, domain-expert features.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

__all__ = [
    "distance_correlation",
    "rank_by_distance_correlation",
    "backwards_elimination",
    "select_features",
]


def _centered_distance_matrix(v: np.ndarray) -> np.ndarray:
    """Double-centered pairwise-distance matrix of a 1-D sample."""
    d = np.abs(v[:, None] - v[None, :])
    row_mean = d.mean(axis=1, keepdims=True)
    col_mean = d.mean(axis=0, keepdims=True)
    return d - row_mean - col_mean + d.mean()


def distance_correlation(
    x: np.ndarray,
    y: np.ndarray,
    max_samples: int = 1500,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Distance correlation between two 1-D samples, in [0, 1].

    The O(n²) statistic is computed on a random subsample when the
    input exceeds ``max_samples`` (500 K offline samples would need a
    2.5×10¹¹-entry matrix otherwise).
    """
    x = np.asarray(x, dtype=np.float64).ravel()
    y = np.asarray(y, dtype=np.float64).ravel()
    if len(x) != len(y):
        raise ValueError("x and y must have the same length")
    if len(x) < 2:
        raise ValueError("need at least two samples")
    if len(x) > max_samples:
        rng = rng if rng is not None else np.random.default_rng(0)
        idx = rng.choice(len(x), size=max_samples, replace=False)
        x, y = x[idx], y[idx]
    a = _centered_distance_matrix(x)
    b = _centered_distance_matrix(y)
    dcov2 = float((a * b).mean())
    dvar_x = float((a * a).mean())
    dvar_y = float((b * b).mean())
    if dvar_x <= 0 or dvar_y <= 0:
        return 0.0
    dcor2 = dcov2 / np.sqrt(dvar_x * dvar_y)
    return float(np.sqrt(max(0.0, dcor2)))


def rank_by_distance_correlation(
    X: np.ndarray,
    y: np.ndarray,
    top_n: int,
    max_samples: int = 1500,
    rng: Optional[np.random.Generator] = None,
) -> list[int]:
    """Indices of the ``top_n`` features most dCor-correlated with y."""
    X = np.asarray(X, dtype=np.float64)
    scores = [
        distance_correlation(X[:, j], y, max_samples=max_samples, rng=rng)
        for j in range(X.shape[1])
    ]
    order = np.argsort(scores)[::-1]
    return [int(j) for j in order[:top_n]]


def _validation_mse(
    X: np.ndarray, y: np.ndarray, columns: Sequence[int],
    split: float = 0.75,
) -> float:
    """Held-out MSE of an OLS model restricted to ``columns``."""
    n = len(y)
    cut = max(1, int(n * split))
    train_x = np.column_stack([X[:cut, list(columns)],
                               np.ones(cut)])
    test_x = np.column_stack([X[cut:, list(columns)],
                              np.ones(n - cut)])
    coeffs, *_ = np.linalg.lstsq(train_x, y[:cut], rcond=None)
    pred = test_x @ coeffs
    return float(np.mean((y[cut:] - pred) ** 2))


def backwards_elimination(
    X: np.ndarray,
    y: np.ndarray,
    candidates: Sequence[int],
    keep_m: int,
) -> list[int]:
    """Greedy backwards elimination down to ``keep_m`` features.

    Repeatedly drops the feature whose removal hurts held-out OLS error
    the least.  Deterministic given its inputs.
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    current = list(candidates)
    if keep_m < 1:
        raise ValueError("keep_m must be >= 1")
    while len(current) > keep_m:
        best_error = None
        best_drop = None
        for drop in current:
            trial = [c for c in current if c != drop]
            error = _validation_mse(X, y, trial)
            if best_error is None or error < best_error:
                best_error = error
                best_drop = drop
        current.remove(best_drop)
    return current


def select_features(
    X: np.ndarray,
    y: np.ndarray,
    handpicked: Sequence[int] = (),
    top_n: int = 8,
    keep_m: int = 5,
    max_samples: int = 1500,
    rng: Optional[np.random.Generator] = None,
) -> list[int]:
    """Algorithm 1's feature pipeline: dCor top-N -> back-elim M -> ∪ hand."""
    ranked = rank_by_distance_correlation(X, y, top_n,
                                          max_samples=max_samples, rng=rng)
    pruned = backwards_elimination(X, y, ranked, min(keep_m, len(ranked)))
    selected = sorted(set(pruned) | set(handpicked))
    return selected

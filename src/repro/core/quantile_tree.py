"""Quantile decision tree for parameterized WCET prediction (paper §4.2).

A CART-style regression tree is grown offline on (features, runtime)
samples collected with the vRAN in isolation, splitting to minimize the
within-leaf variance of runtimes.  Each leaf owns a ring buffer of the
most recent runtime samples; the online phase replaces offline samples
with ones observed under collocation without re-growing the tree
(Algorithms 1 and 2):

* ``observe(x, runtime)`` — training step: route to a leaf, push the
  sample into its buffer;
* ``predict_wcet(x)`` — prediction step: route to a leaf, return the
  maximum of its buffered samples.

The implementation is from scratch on NumPy (the paper used
scikit-learn offline plus generated C online; neither is needed here).
Internal nodes are stored in flat arrays so a prediction is a simple
loop — the predictor runs every TTI and must be cheap (Fig. 15a).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .ring_buffer import RingBuffer

__all__ = ["QuantileDecisionTree", "TreeConfig"]


@dataclass(frozen=True)
class TreeConfig:
    """Growth hyperparameters of the quantile decision tree."""

    max_depth: int = 8
    min_samples_leaf: int = 40
    min_variance_reduction: float = 1e-3  # relative to parent variance
    max_thresholds_per_feature: int = 32
    leaf_buffer_capacity: int = 5000

    def __post_init__(self) -> None:
        if self.max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if self.min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        if self.leaf_buffer_capacity < 1:
            raise ValueError("leaf_buffer_capacity must be >= 1")


class _BuildNode:
    """Temporary node used while growing the tree."""

    __slots__ = ("feature", "threshold", "left", "right", "samples")

    def __init__(self) -> None:
        self.feature: int = -1
        self.threshold: float = 0.0
        self.left: Optional["_BuildNode"] = None
        self.right: Optional["_BuildNode"] = None
        self.samples: Optional[np.ndarray] = None  # leaf runtimes


def _best_split(
    X: np.ndarray, y: np.ndarray, config: TreeConfig
) -> Optional[tuple[int, float, float]]:
    """Find the (feature, threshold) minimizing weighted child variance.

    Returns (feature, threshold, variance_reduction) or None when no
    admissible split improves on the parent's variance.
    """
    n = len(y)
    parent_var = float(y.var())
    if parent_var <= 0 or n < 2 * config.min_samples_leaf:
        return None
    best: Optional[tuple[int, float, float]] = None
    best_score = parent_var
    for feature in range(X.shape[1]):
        column = X[:, feature]
        order = np.argsort(column, kind="stable")
        sorted_x = column[order]
        sorted_y = y[order]
        # Cumulative sums give O(1) variance of each prefix/suffix.
        csum = np.cumsum(sorted_y)
        csum2 = np.cumsum(sorted_y**2)
        total, total2 = csum[-1], csum2[-1]
        # Candidate split positions: between distinct feature values,
        # respecting min_samples_leaf; subsampled for speed.
        lo, hi = config.min_samples_leaf, n - config.min_samples_leaf
        if lo >= hi:
            continue
        positions = np.arange(lo, hi)
        valid = sorted_x[positions] < sorted_x[positions + 1] - 1e-12
        positions = positions[valid]
        if len(positions) == 0:
            continue
        if len(positions) > config.max_thresholds_per_feature:
            idx = np.linspace(0, len(positions) - 1,
                              config.max_thresholds_per_feature).astype(int)
            positions = positions[idx]
        k = positions + 1  # left child sizes
        left_var = csum2[positions] / k - (csum[positions] / k) ** 2
        right_n = n - k
        right_sum = total - csum[positions]
        right_sum2 = total2 - csum2[positions]
        right_var = right_sum2 / right_n - (right_sum / right_n) ** 2
        weighted = (k * left_var + right_n * right_var) / n
        i = int(np.argmin(weighted))
        score = float(weighted[i])
        if score < best_score - config.min_variance_reduction * parent_var:
            best_score = score
            pos = positions[i]
            threshold = 0.5 * (sorted_x[pos] + sorted_x[pos + 1])
            best = (feature, float(threshold), parent_var - score)
    return best


class QuantileDecisionTree:
    """Variance-minimizing CART with per-leaf runtime ring buffers."""

    def __init__(self, config: Optional[TreeConfig] = None) -> None:
        self.config = config if config is not None else TreeConfig()
        # Flat-array representation filled by fit().
        self._feature: np.ndarray = np.empty(0, dtype=np.int32)
        self._threshold: np.ndarray = np.empty(0, dtype=np.float64)
        self._left: np.ndarray = np.empty(0, dtype=np.int32)
        self._right: np.ndarray = np.empty(0, dtype=np.int32)
        self._leaf_id: np.ndarray = np.empty(0, dtype=np.int32)
        self.leaves: list[RingBuffer] = []
        self._fitted = False

    # -- offline phase -------------------------------------------------------

    def fit(self, X: np.ndarray, y: np.ndarray) -> "QuantileDecisionTree":
        """Grow the tree on offline (isolated-vRAN) samples."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2 or y.ndim != 1 or len(X) != len(y):
            raise ValueError("X must be (n, d) and y (n,) with matching n")
        if len(y) == 0:
            raise ValueError("cannot fit on an empty dataset")
        root = self._grow(X, y, depth=0)
        self._flatten(root)
        self._fitted = True
        return self

    def _grow(self, X: np.ndarray, y: np.ndarray, depth: int) -> _BuildNode:
        node = _BuildNode()
        split = None
        if depth < self.config.max_depth:
            split = _best_split(X, y, self.config)
        if split is None:
            node.samples = y
            return node
        feature, threshold, _ = split
        node.feature = feature
        node.threshold = threshold
        mask = X[:, feature] <= threshold
        node.left = self._grow(X[mask], y[mask], depth + 1)
        node.right = self._grow(X[~mask], y[~mask], depth + 1)
        return node

    def _flatten(self, root: _BuildNode) -> None:
        features, thresholds, lefts, rights, leaf_ids = [], [], [], [], []
        self.leaves = []

        def visit(node: _BuildNode) -> int:
            index = len(features)
            features.append(node.feature)
            thresholds.append(node.threshold)
            lefts.append(-1)
            rights.append(-1)
            leaf_ids.append(-1)
            if node.samples is not None:
                buffer = RingBuffer(self.config.leaf_buffer_capacity)
                buffer.extend(node.samples[-self.config.leaf_buffer_capacity:])
                leaf_ids[index] = len(self.leaves)
                self.leaves.append(buffer)
            else:
                lefts[index] = visit(node.left)
                rights[index] = visit(node.right)
            return index

        visit(root)
        self._feature = np.asarray(features, dtype=np.int32)
        self._threshold = np.asarray(thresholds, dtype=np.float64)
        self._left = np.asarray(lefts, dtype=np.int32)
        self._right = np.asarray(rights, dtype=np.int32)
        self._leaf_id = np.asarray(leaf_ids, dtype=np.int32)

    # -- routing ---------------------------------------------------------------

    @property
    def num_leaves(self) -> int:
        return len(self.leaves)

    def leaf_index(self, x) -> int:
        """Index of the leaf that the feature vector ``x`` routes to."""
        if not self._fitted:
            raise RuntimeError("tree is not fitted")
        node = 0
        leaf_id = self._leaf_id
        feature = self._feature
        threshold = self._threshold
        left, right = self._left, self._right
        while leaf_id[node] < 0:
            node = left[node] if x[feature[node]] <= threshold[node] \
                else right[node]
        return int(leaf_id[node])

    def leaf_indices(self, X: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`leaf_index` over rows of ``X``."""
        return np.array([self.leaf_index(row) for row in np.asarray(X)],
                        dtype=np.int64)

    # -- online phase ----------------------------------------------------------

    def observe(self, x, runtime: float) -> int:
        """Online training step: store an observed runtime; returns leaf."""
        leaf = self.leaf_index(x)
        self.leaves[leaf].push(float(runtime))
        return leaf

    def predict_wcet(self, x) -> float:
        """WCET prediction: maximum runtime buffered in the routed leaf."""
        leaf = self.leaf_index(x)
        return self.leaves[leaf].max()

    def predict_quantile(self, x, q: float) -> float:
        leaf = self.leaf_index(x)
        return self.leaves[leaf].quantile(q)

    def reset_online(self) -> None:
        """Drop all buffered samples (start of a fresh online phase)."""
        for leaf in self.leaves:
            leaf.clear()

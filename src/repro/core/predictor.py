"""The Concordia WCET predictor (paper §4).

One prediction model per signal-processing task type.  The offline
phase (``fit_offline``) runs Algorithm 1 on a profiling dataset
collected with the vRAN in isolation: distance-correlation ranking,
backwards elimination, union with hand-picked features, then a quantile
decision tree per task.  At runtime, ``predict_task`` routes a task's
feature vector to a leaf and returns the max of the leaf's ring buffer,
and ``observe_task`` feeds observed runtimes back (Algorithm 2's
training step), letting the leaf buffers absorb collocation-induced
distribution shifts without re-growing the trees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from ..ran.tasks import FEATURE_INDEX, TaskInstance, TaskType
from .features import select_features
from .models import QuantileTreeWCET, WcetModel
from .quantile_tree import TreeConfig

__all__ = ["ConcordiaPredictor", "OfflineDataset", "HANDPICKED_FEATURES"]

#: Domain-expert features always kept per Algorithm 1 (X_t^h): the work
#: size of the task itself, the slot volume and the worst link margin.
HANDPICKED_FEATURES = (
    FEATURE_INDEX["task_codeblocks"],
    FEATURE_INDEX["slot_bytes"],
    FEATURE_INDEX["min_snr_margin_db"],
)


class _QuantileTreeFactory:
    """Default per-task model factory.

    A class (not a lambda) so trained predictors stay picklable for
    the on-disk predictor cache (:mod:`repro.exec`).
    """

    def __init__(self, tree_config: Optional[TreeConfig] = None) -> None:
        self.tree_config = tree_config

    def __call__(self) -> QuantileTreeWCET:
        return QuantileTreeWCET(self.tree_config)


@dataclass
class OfflineDataset:
    """Profiling samples grouped per task type."""

    samples: dict = field(default_factory=dict)  # TaskType -> (list[X], list[y])

    def add(self, task_type: TaskType, features: np.ndarray,
            runtime: float) -> None:
        bucket = self.samples.setdefault(task_type, ([], []))
        bucket[0].append(np.asarray(features, dtype=np.float64))
        bucket[1].append(float(runtime))

    def arrays(self, task_type: TaskType) -> tuple[np.ndarray, np.ndarray]:
        xs, ys = self.samples[task_type]
        return np.vstack(xs), np.asarray(ys, dtype=np.float64)

    def task_types(self) -> list[TaskType]:
        return list(self.samples.keys())

    def __len__(self) -> int:
        return sum(len(ys) for _, ys in self.samples.values())


class ConcordiaPredictor:
    """Per-task-type parameterized WCET prediction."""

    def __init__(
        self,
        model_factory: Optional[Callable[[], WcetModel]] = None,
        tree_config: Optional[TreeConfig] = None,
        handpicked: tuple = HANDPICKED_FEATURES,
        top_n: int = 8,
        keep_m: int = 5,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if model_factory is None:
            model_factory = _QuantileTreeFactory(tree_config)
        self._model_factory = model_factory
        self.handpicked = handpicked
        self.top_n = top_n
        self.keep_m = keep_m
        self.rng = rng if rng is not None else np.random.default_rng(23)
        self.models: dict[TaskType, WcetModel] = {}
        self.selected_features: dict[TaskType, list[int]] = {}
        self.predictions_made = 0
        self.observations_made = 0

    # -- offline phase ---------------------------------------------------------

    def fit_offline(self, dataset: OfflineDataset,
                    min_samples: int = 100,
                    task_types=None) -> "ConcordiaPredictor":
        """Algorithm 1 for each profiled task type.

        ``task_types`` optionally restricts fitting to a subset (e.g.
        when only the coding tasks are being studied).
        """
        for task_type in dataset.task_types():
            if task_types is not None and task_type not in task_types:
                continue
            X, y = dataset.arrays(task_type)
            if len(y) < min_samples:
                continue
            selected = select_features(
                X, y,
                handpicked=self.handpicked,
                top_n=self.top_n,
                keep_m=self.keep_m,
                rng=self.rng,
            )
            model = self._model_factory()
            model.fit(X[:, selected], y)
            self.models[task_type] = model
            self.selected_features[task_type] = selected
        return self

    # -- online phase -------------------------------------------------------------

    def predict_task(self, task: TaskInstance) -> Optional[float]:
        """WCET prediction for a task instance (None when unmodelled)."""
        model = self.models.get(task.task_type)
        if model is None:
            return None
        selected = self.selected_features[task.task_type]
        self.predictions_made += 1
        return model.predict(task.features[selected])

    def observe_task(self, task: TaskInstance) -> None:
        """Feed one observed runtime back into the online buffers."""
        model = self.models.get(task.task_type)
        if model is None or task.runtime_us is None:
            return
        selected = self.selected_features[task.task_type]
        self.observations_made += 1
        model.observe(task.features[selected], task.runtime_us)

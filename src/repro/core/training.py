"""Offline profiling and predictor training (paper §4.2 / §5).

The paper collects 500 K training samples by running synthetic vRAN
workloads in isolation, with transmission parameters varied every TTI.
``collect_offline_dataset`` does the simulated equivalent: it runs the
pool under the fully isolated :class:`DedicatedScheduler` with
uniform-coverage profiling traffic and records every completed task's
feature vector and runtime.  ``train_predictor`` wraps that into the
full offline pipeline (Algorithm 1 feature selection + quantile-tree
fits per task type).
"""

from __future__ import annotations

import os
import pathlib
import pickle
from typing import Callable, Optional

import numpy as np

from ..baselines.flexran import DedicatedScheduler
from ..ran.config import PoolConfig
from ..sim.runner import Simulation
from .models import WcetModel
from .predictor import ConcordiaPredictor, OfflineDataset
from .quantile_tree import TreeConfig

__all__ = ["collect_offline_dataset", "train_predictor"]


def collect_offline_dataset(
    pool_config: PoolConfig,
    num_slots: int = 3000,
    seed: int = 1234,
) -> OfflineDataset:
    """Profile the isolated vRAN and collect (features, runtime) samples."""
    simulation = Simulation(
        pool_config=pool_config,
        policy=DedicatedScheduler(),
        workload="none",
        load_fraction=1.0,
        seed=seed,
        profiling_traffic=True,
    )
    dataset = OfflineDataset()
    simulation.pool.task_observer = lambda task: dataset.add(
        task.task_type, task.features, task.runtime_us
    )
    simulation.run(num_slots)
    return dataset


def train_predictor(
    pool_config: PoolConfig,
    num_slots: int = 3000,
    seed: int = 1234,
    model_factory: Optional[Callable[[], WcetModel]] = None,
    tree_config: Optional[TreeConfig] = None,
    dataset: Optional[OfflineDataset] = None,
    cache_path: Optional["os.PathLike"] = None,
) -> ConcordiaPredictor:
    """Full offline phase: profile (unless given a dataset) and fit.

    When ``cache_path`` is given, a previously trained predictor is
    unpickled from there instead of re-profiling, and a fresh fit is
    pickled back — training is deterministic in (config, slots, seed),
    so the reloaded model is identical to what retraining would yield.
    """
    if cache_path is not None:
        path = pathlib.Path(cache_path)
        if path.exists():
            try:
                with path.open("rb") as handle:
                    return pickle.load(handle)
            except (OSError, pickle.UnpicklingError, EOFError,
                    AttributeError, ImportError):
                pass  # corrupt or stale artifact: retrain below
    if dataset is None:
        dataset = collect_offline_dataset(pool_config, num_slots, seed)
    predictor = ConcordiaPredictor(
        model_factory=model_factory,
        tree_config=tree_config,
        rng=np.random.default_rng(seed),
    )
    predictor.fit_offline(dataset)
    if cache_path is not None:
        path = pathlib.Path(cache_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        try:
            with tmp.open("wb") as handle:
                pickle.dump(predictor, handle)
            os.replace(tmp, path)
        except (OSError, pickle.PicklingError):
            tmp.unlink(missing_ok=True)
    return predictor

"""Fixed-capacity ring buffer of runtime samples with max tracking.

Each leaf of a quantile decision tree owns one of these buffers
(Algorithm 2 of the paper): the online training step pushes observed
runtimes, and the prediction step reads the maximum of the stored
samples as the WCET estimate.

The buffer is implemented over a preallocated NumPy array.  ``max()`` is
cached and recomputed lazily only when the previous maximum is evicted,
so the amortized cost of the push/max cycle stays O(1) — matching the
paper's requirement that the online predictor runs every TTI.
"""

from __future__ import annotations

import numpy as np

__all__ = ["RingBuffer"]


class RingBuffer:
    """Ring buffer of floats with O(1) amortized push and max queries."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._data = np.empty(capacity, dtype=np.float64)
        self._capacity = capacity
        self._size = 0
        self._head = 0  # next write position
        self._max: float | None = None

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        return self._size

    @property
    def full(self) -> bool:
        return self._size == self._capacity

    def push(self, value: float) -> None:
        """Append ``value``, evicting the oldest sample when full.

        NaN is rejected: a stored NaN would silently poison the cached
        maximum (every comparison against NaN is False, so it neither
        becomes the max nor triggers the eviction recompute correctly).
        """
        if value != value:  # NaN check without importing math
            raise ValueError("cannot push NaN into a ring buffer")
        evicting = self._size == self._capacity
        evicted = self._data[self._head] if evicting else None
        self._data[self._head] = value
        self._head = (self._head + 1) % self._capacity
        if not evicting:
            self._size += 1
        if self._max is None or value >= self._max:
            self._max = float(value)
        elif evicting and evicted == self._max:
            # The previous maximum may have been evicted; recompute.
            self._max = float(self._data[: self._size].max())

    def extend(self, values) -> None:
        """Push each value in ``values`` in order."""
        for value in values:
            self.push(float(value))

    def max(self) -> float:
        """Largest stored sample.  Raises ValueError when empty."""
        if self._size == 0:
            raise ValueError("max() of empty ring buffer")
        assert self._max is not None
        return self._max

    def quantile(self, q: float) -> float:
        """q-quantile of the stored samples (linear interpolation)."""
        if self._size == 0:
            raise ValueError("quantile() of empty ring buffer")
        return float(np.quantile(self.values(), q))

    def values(self) -> np.ndarray:
        """Stored samples in insertion order (copy)."""
        if self._size < self._capacity:
            return self._data[: self._size].copy()
        return np.concatenate(
            (self._data[self._head:], self._data[: self._head])
        )

    def clear(self) -> None:
        self._size = 0
        self._head = 0
        self._max = None

    def replace(self, values) -> None:
        """Reset the buffer contents to the trailing window of ``values``.

        Used when switching from offline to online samples: the paper
        replaces the offline samples in each leaf with online ones.
        """
        self.clear()
        self.extend(values)

"""Alternative WCET prediction models (paper §6.3 / §6.4 comparisons).

All models share the :class:`WcetModel` interface so the experiment
harness can swap them freely:

* :class:`LinearRegressionWCET` — OLS mean model plus an online residual
  buffer (the paper's "linear regression" baseline, adapted to online
  samples "like in the quantile decision tree case");
* :class:`GradientBoostingWCET` — from-scratch gradient-boosted
  regression trees plus the same online residual scheme (the paper's
  non-linear baseline);
* :class:`PwcetEVT` — a conventional measurement-based probabilistic
  WCET estimator in the style of Cucu-Grosjean et al. (EVT over block
  maxima, Gumbel fit, one prediction per task regardless of input) used
  for the Fig. 13 comparison;
* :class:`QuantileTreeWCET` — adapter putting the Concordia quantile
  decision tree behind the same interface.
"""

from __future__ import annotations

import abc
import math
from typing import Optional

import numpy as np

from .quantile_tree import QuantileDecisionTree, TreeConfig
from .ring_buffer import RingBuffer

__all__ = [
    "WcetModel",
    "LinearRegressionWCET",
    "GradientBoostingWCET",
    "PwcetEVT",
    "QuantileTreeWCET",
    "fit_gumbel_moments",
]

#: Euler-Mascheroni constant (Gumbel method-of-moments fit).
_EULER_GAMMA = 0.5772156649015329


class WcetModel(abc.ABC):
    """Common interface of all WCET predictors."""

    name: str = "abstract"

    @abc.abstractmethod
    def fit(self, X: np.ndarray, y: np.ndarray) -> "WcetModel":
        """Offline phase: fit on isolated-vRAN samples."""

    @abc.abstractmethod
    def predict(self, x: np.ndarray) -> float:
        """Predict the WCET for one feature vector."""

    @abc.abstractmethod
    def observe(self, x: np.ndarray, runtime: float) -> None:
        """Online phase: fold in one observed runtime."""


#: Standard-normal quantile for the paper's 1-10^-5 prediction interval.
_Z_99999 = 4.264890793922825


class _ResidualTailMixin:
    """Shared online-adaptation scheme: a ring buffer of residuals.

    The regression baselines make *probabilistic* WCET predictions at
    the paper's 0.99999 interval: mean prediction plus z * sigma of the
    recent residuals (a Gaussian tail assumption — which is exactly why
    they miss more deadlines than the quantile tree's distribution-free
    leaf maximum on heavy-tailed runtimes).
    """

    def _init_residuals(self, residuals: np.ndarray, capacity: int) -> None:
        self._residuals = RingBuffer(capacity)
        self._residuals.extend(residuals[-capacity:])

    def _tail(self) -> float:
        if len(self._residuals) < 2:
            return 0.0
        values = self._residuals.values()
        return float(values.mean() + _Z_99999 * values.std())

    def _observe_residual(self, residual: float) -> None:
        self._residuals.push(residual)


class LinearRegressionWCET(WcetModel, _ResidualTailMixin):
    """OLS mean + max-of-recent-residuals tail."""

    name = "linear_regression"

    def __init__(self, residual_capacity: int = 5000) -> None:
        self.residual_capacity = residual_capacity
        self._coeffs: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LinearRegressionWCET":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        design = np.column_stack([X, np.ones(len(X))])
        self._coeffs, *_ = np.linalg.lstsq(design, y, rcond=None)
        residuals = y - design @ self._coeffs
        self._init_residuals(residuals, self.residual_capacity)
        return self

    def _mean(self, x: np.ndarray) -> float:
        if self._coeffs is None:
            raise RuntimeError("model is not fitted")
        return float(np.dot(self._coeffs[:-1], x) + self._coeffs[-1])

    def predict(self, x: np.ndarray) -> float:
        return max(0.0, self._mean(x) + self._tail())

    def observe(self, x: np.ndarray, runtime: float) -> None:
        self._observe_residual(runtime - self._mean(x))


class _MeanTree:
    """Small regression tree with leaf means (GBRT weak learner)."""

    def __init__(self, max_depth: int, min_samples_leaf: int) -> None:
        self._tree = QuantileDecisionTree(
            TreeConfig(
                max_depth=max_depth,
                min_samples_leaf=min_samples_leaf,
                max_thresholds_per_feature=16,
                leaf_buffer_capacity=1,
            )
        )
        self._leaf_means: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "_MeanTree":
        self._tree.fit(X, y)
        sums = np.zeros(self._tree.num_leaves)
        counts = np.zeros(self._tree.num_leaves)
        for row, target in zip(X, y):
            leaf = self._tree.leaf_index(row)
            sums[leaf] += target
            counts[leaf] += 1
        counts[counts == 0] = 1
        self._leaf_means = sums / counts
        return self

    def predict(self, x: np.ndarray) -> float:
        assert self._leaf_means is not None
        return float(self._leaf_means[self._tree.leaf_index(x)])


class GradientBoostingWCET(WcetModel, _ResidualTailMixin):
    """From-scratch gradient-boosted regression trees for the mean,
    with the shared online residual tail."""

    name = "gradient_boosting"

    def __init__(
        self,
        n_stages: int = 40,
        learning_rate: float = 0.15,
        max_depth: int = 3,
        min_samples_leaf: int = 30,
        residual_capacity: int = 5000,
    ) -> None:
        self.n_stages = n_stages
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.residual_capacity = residual_capacity
        self._base: float = 0.0
        self._stages: list[_MeanTree] = []

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GradientBoostingWCET":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if len(y) > 5000:
            # Boosting cost is stages x tree fits; 5K samples are plenty
            # for the mean model (the online residual buffer handles the
            # tail), so subsample deterministically.
            idx = np.random.default_rng(0).choice(len(y), 5000,
                                                  replace=False)
            X, y = X[idx], y[idx]
        self._base = float(y.mean())
        self._stages = []
        pred = np.full(len(y), self._base)
        for _ in range(self.n_stages):
            residual = y - pred
            if float(np.abs(residual).max()) < 1e-9:
                break
            tree = _MeanTree(self.max_depth, self.min_samples_leaf)
            try:
                tree.fit(X, residual)
            except ValueError:
                break
            update = np.array([tree.predict(row) for row in X])
            if float(np.abs(update).max()) < 1e-12:
                break
            pred = pred + self.learning_rate * update
            self._stages.append(tree)
        self._init_residuals(y - pred, self.residual_capacity)
        return self

    def _mean(self, x: np.ndarray) -> float:
        value = self._base
        for stage in self._stages:
            value += self.learning_rate * stage.predict(x)
        return value

    def predict(self, x: np.ndarray) -> float:
        return max(0.0, self._mean(x) + self._tail())

    def observe(self, x: np.ndarray, runtime: float) -> None:
        self._observe_residual(runtime - self._mean(x))


def fit_gumbel_moments(samples: np.ndarray) -> tuple[float, float]:
    """Method-of-moments Gumbel fit: returns (location mu, scale beta)."""
    samples = np.asarray(samples, dtype=np.float64)
    if len(samples) < 2:
        raise ValueError("need at least two samples for a Gumbel fit")
    std = float(samples.std(ddof=1))
    beta = std * math.sqrt(6.0) / math.pi
    mu = float(samples.mean()) - _EULER_GAMMA * beta
    return mu, max(beta, 1e-12)


class PwcetEVT(WcetModel):
    """Conventional probabilistic WCET via extreme value theory.

    Block maxima of the runtime samples are fitted with a Gumbel
    distribution; the WCET is the ``confidence`` quantile.  The model is
    deliberately *not* parameterized by input features — that is the
    point of the Fig. 13 comparison: one pessimistic number per task.
    Online samples are accumulated in a ring buffer and the fit is
    refreshed periodically.
    """

    name = "pwcet_evt"

    def __init__(
        self,
        confidence: float = 0.99999,
        block_size: int = 50,
        online_capacity: int = 5000,
        refit_every: int = 500,
    ) -> None:
        if not 0.0 < confidence < 1.0:
            raise ValueError("confidence must be in (0, 1)")
        self.confidence = confidence
        self.block_size = block_size
        self.online_capacity = online_capacity
        self.refit_every = refit_every
        self._mu = 0.0
        self._beta = 1.0
        self._buffer = RingBuffer(online_capacity)
        self._since_refit = 0
        self._fitted = False

    def _block_maxima(self, samples: np.ndarray) -> np.ndarray:
        n_blocks = len(samples) // self.block_size
        if n_blocks < 2:
            return samples
        trimmed = samples[: n_blocks * self.block_size]
        return trimmed.reshape(n_blocks, self.block_size).max(axis=1)

    def _refit(self, samples: np.ndarray) -> None:
        maxima = self._block_maxima(samples)
        self._mu, self._beta = fit_gumbel_moments(maxima)
        self._fitted = True

    def fit(self, X: np.ndarray, y: np.ndarray) -> "PwcetEVT":
        y = np.asarray(y, dtype=np.float64)
        if len(y) == 0:
            raise ValueError("cannot fit on an empty dataset")
        self._refit(y)
        self._buffer.replace(y)
        return self

    def predict(self, x: np.ndarray = None) -> float:
        if not self._fitted:
            raise RuntimeError("model is not fitted")
        # Gumbel quantile: mu - beta * ln(-ln(q))
        return self._mu - self._beta * math.log(-math.log(self.confidence))

    def observe(self, x: np.ndarray, runtime: float) -> None:
        self._buffer.push(runtime)
        self._since_refit += 1
        if self._since_refit >= self.refit_every and \
                len(self._buffer) >= 2 * self.block_size:
            self._refit(self._buffer.values())
            self._since_refit = 0


class QuantileTreeWCET(WcetModel):
    """Adapter exposing the quantile decision tree as a WcetModel."""

    name = "quantile_tree"

    def __init__(self, config: Optional[TreeConfig] = None) -> None:
        self.tree = QuantileDecisionTree(config)
        self._global_max = 0.0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "QuantileTreeWCET":
        self.tree.fit(X, y)
        self._global_max = float(np.asarray(y).max())
        return self

    def predict(self, x: np.ndarray) -> float:
        try:
            return self.tree.predict_wcet(x)
        except ValueError:
            # Empty leaf buffer (fresh online phase): fall back to the
            # most pessimistic offline observation.
            return self._global_max

    def observe(self, x: np.ndarray, runtime: float) -> None:
        self.tree.observe(x, runtime)

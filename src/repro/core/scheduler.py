"""The Concordia scheduler (paper §3 and §5).

Runs every 20 µs.  At each tick it computes, for every active DAG, the
number of cores required to meet the DAG's deadline given the predicted
remaining work and remaining critical path (mixed-criticality federated
scheduling, Li et al. 2017), sums demands across DAGs, and reserves
exactly that many cores — releasing the rest to best-effort workloads.
Following Li et al., *heavy* DAGs (those needing more than one core)
get dedicated cores, while *light* DAGs (sequentially feasible) are
packed onto shared cores by total utilization.

Two safety mechanisms from the paper are included:

* **critical stage** — when a DAG's slack falls to its critical path,
  every pool core is reserved and best-effort work is evicted;
* **wakeup compensation** — a signalled core that fails to come up
  within a tick (stuck behind a non-preemptible kernel section) is
  compensated by reserving an extra core, which is how Concordia keeps
  99.999 % reliability despite Linux's scheduling-latency tail.

For speed, per-DAG remaining work and critical path are maintained
incrementally: exact recomputation happens on task completion, and the
20 µs tick only decays the cached critical path by elapsed time while
the DAG is executing.  The scheduler also asks the pool to rotate its
preferred core order every 2 ms so unmigratable kernel work gets CPU
time (§5).
"""

from __future__ import annotations

import math
import time
from collections import deque
from typing import Optional

from ..obs.events import REC_TICK
from ..obs.registry import MetricsRegistry
from ..ran.dag import DagInstance, batch_predicted_paths
from ..ran.tasks import TaskInstance
from ..sim.policy import SchedulerPolicy
from .predictor import ConcordiaPredictor

__all__ = ["ConcordiaScheduler"]


class _DagState:
    """Incrementally maintained scheduling state of one active DAG."""

    __slots__ = ("dag", "work_us", "critical_path_us", "computed_at",
                 "running", "frontier", "cores_ratchet", "util_ratchet",
                 "util_ceil", "deadline_us")

    def __init__(self, dag: DagInstance) -> None:
        self.dag = dag
        self.work_us = 0.0
        self.critical_path_us = 0.0
        self.computed_at = dag.release_us
        self.running = 0
        # Federated scheduling dedicates cores to a DAG for its whole
        # execution; releasing early and re-acquiring 20 µs later would
        # thrash the cache.  The ratchets hold each DAG's peak demand
        # until the DAG completes (cores are still freed on completion).
        self.cores_ratchet = 0
        self.util_ratchet = 0.0
        #: Cached ``math.ceil(util_ratchet)``, updated when the ratchet
        #: rises — the heavy/light classification reads it every 20 µs
        #: tick, the ratchet changes orders of magnitude less often.
        self.util_ceil = 0
        #: The DAG's deadline, copied so the tick loop does one
        #: attribute load instead of chasing state.dag.deadline_us.
        self.deadline_us = dag.deadline_us
        # Ready/running tasks -> their longest path to a sink.  The
        # remaining critical path is the max over this frontier, which
        # is O(parallelism) instead of O(V+E) to maintain.
        self.frontier: dict[int, float] = {}


class ConcordiaScheduler(SchedulerPolicy):
    """Userspace deadline scheduler with WCET-driven core reservation."""

    name = "concordia"
    rotate_cores = True

    def __init__(
        self,
        predictor: Optional[ConcordiaPredictor] = None,
        tick_interval_us: float = 20.0,
        wakeup_overdue_us: float = 25.0,
        wcet_fallback_margin: float = 1.3,
        min_standby_cores: int = 0,
        release_hold_us: float = 300.0,
    ) -> None:
        super().__init__()
        self.predictor = predictor
        self.tick_interval_us = tick_interval_us
        self.wakeup_overdue_us = wakeup_overdue_us
        self.wcet_fallback_margin = wcet_fallback_margin
        self.min_standby_cores = min_standby_cores
        #: A core is released only after demand stayed below the reserved
        #: count for this long.  Slot-cycle demand dips (DAGs complete a
        #: few hundred µs before the next TTI) would otherwise yield and
        #: re-acquire every core every slot, thrashing the caches the
        #: proactive design is meant to keep warm (§6.2 / Fig. 9 & 10).
        self.release_hold_us = release_hold_us
        # Aged with popleft() on the 20 µs tick; a plain list's pop(0)
        # is O(n) and showed up in the Fig. 15a profiles.
        self._demand_window: deque[tuple[float, int]] = deque()
        self._states: dict[int, _DagState] = {}
        # Wall-clock overhead accounting (Fig. 15a) lives in a metrics
        # registry so results can export it; the instruments are bound
        # once and bumped via .value on the hot path.
        self.obs_registry = MetricsRegistry()
        self._prediction_wall = self.obs_registry.counter(
            "scheduler/prediction_wall_s")
        self._prediction_calls = self.obs_registry.counter(
            "scheduler/prediction_calls")
        self._scheduling_wall = self.obs_registry.counter(
            "scheduler/scheduling_wall_s")
        self._scheduling_calls = self.obs_registry.counter(
            "scheduler/scheduling_calls")

    # -- predictions -------------------------------------------------------------

    def wcet(self, task: TaskInstance) -> float:
        if task.predicted_wcet_us is not None:
            return task.predicted_wcet_us
        return task.base_cost_us * self.wcet_fallback_margin

    def on_slot_start(self, dags: list, now: float) -> None:
        """Predict every task's WCET and register the new DAGs."""
        start = time.perf_counter()
        predictor = self.predictor
        if predictor is None and dags:
            # No predictor: every task's WCET is base_cost * margin, so
            # the whole slot's predictions and critical paths collapse
            # into one vectorized pass (bit-identical to the scalar
            # loop below — see batch_predicted_paths).
            triples = batch_predicted_paths(dags, self.wcet_fallback_margin)
            for dag, (work, critical, frontier) in zip(dags, triples):
                state = _DagState(dag)
                state.work_us = work
                state.critical_path_us = critical
                state.computed_at = now
                state.frontier = frontier
                self._states[dag.dag_id] = state
                dag.policy_state = state
            self._prediction_wall.value += time.perf_counter() - start
            self._prediction_calls.value += 1
            self._reschedule(now, kind="slot_start")
            return
        for dag in dags:
            state = _DagState(dag)
            # Predictor warm-up after an elastic cell migration: the
            # destination over-estimates the cell's WCETs until its
            # predictor has history (dag.wcet_inflation is 1.0 for
            # every DAG outside a warm-up window).
            inflation = dag.wcet_inflation
            work = 0.0
            for task in dag.tasks:
                predicted = None
                if predictor is not None:
                    predicted = predictor.predict_task(task)
                if predicted is None:
                    predicted = task.base_cost_us * self.wcet_fallback_margin
                if inflation != 1.0:
                    predicted *= inflation
                task.predicted_wcet_us = predicted
                work += predicted
            # One reverse topological sweep fills every task's longest
            # path to a sink; the frontier starts at the entry tasks.
            critical = 0.0
            for task in reversed(dag.tasks):
                tail = 0.0
                for successor in task.successors:
                    if successor.path_us > tail:
                        tail = successor.path_us
                task.path_us = task.predicted_wcet_us + tail
                if task.predecessors_remaining == 0:
                    state.frontier[task.task_id] = task.path_us
                    if task.path_us > critical:
                        critical = task.path_us
            state.work_us = work
            state.critical_path_us = critical
            state.computed_at = now
            self._states[dag.dag_id] = state
            # The per-task hooks read the state off the DAG itself: an
            # attribute load instead of a dict lookup, three times per
            # task.  The dict remains the tick loop's registry.
            dag.policy_state = state
        self._prediction_wall.value += time.perf_counter() - start
        self._prediction_calls.value += 1
        self._reschedule(now, kind="slot_start")

    def on_task_enqueued(self, task: TaskInstance) -> None:
        state = task.dag.policy_state
        if state is None:
            return
        state.frontier[task.task_id] = task.path_us
        if task.path_us > state.critical_path_us:
            state.critical_path_us = task.path_us
            state.computed_at = self.pool.engine._now

    def on_task_started(self, task: TaskInstance) -> None:
        state = task.dag.policy_state
        if state is not None:
            state.running += 1

    def on_task_finished(self, task: TaskInstance) -> None:
        # Online training step (Algorithm 2) plus incremental state update;
        # core allocation itself changes only at the 20 µs tick (§3).
        if self.predictor is not None:
            self.predictor.observe_task(task)
        dag = task.dag
        state = dag.policy_state
        if state is None:
            return
        state.running -= 1
        if dag.tasks_remaining == 0:
            dag.policy_state = None
            del self._states[dag.dag_id]
            return
        work = state.work_us - task.predicted_wcet_us
        state.work_us = work if work > 0.0 else 0.0
        frontier = state.frontier
        frontier.pop(task.task_id, None)
        # Successors enter the frontier via on_task_enqueued (the pool
        # enqueues them before this hook fires), so the max is current.
        # Direct engine-clock read: this hook fires once per completed
        # task, and the pool.now property chain showed up in profiles.
        state.critical_path_us = max(frontier.values()) if frontier else 0.0
        state.computed_at = self.pool.engine._now

    def on_tick(self, now: float) -> None:
        self._reschedule(now)

    # -- quiescent-gap tick batching (pool fast path) ------------------------------

    def idle_tick_bound(self, now: float) -> Optional[float]:
        """Certify upcoming ticks as no-ops while no DAG is active.

        With ``_states`` empty each tick computes zero demand, so the
        only thing that can change the decision is the release-hold
        window: the held maximum drops when its head entry ages out,
        ``release_hold_us`` after the head was recorded.  Ticks at
        ``t <= head_time + release_hold_us`` keep the current target;
        when the window holds no demand at all, every future tick is a
        no-op (bound = inf).  Ticks are only certified when the current
        target is already fully applied — otherwise the next tick's
        ``request_cores`` call is real work.
        """
        if self._states:
            return None
        pool = self.pool
        window = self._demand_window
        held = window[0][1] if window else 0
        target = held if held > self.min_standby_cores \
            else self.min_standby_cores
        if target > pool.num_cores:
            target = pool.num_cores
        if pool.target_cores != target or pool._reserved != target:
            return None
        if held <= 0:
            return math.inf
        return window[0][0] + self.release_hold_us

    def on_ticks_skipped(self, count: int, last_time: float) -> None:
        """Replay the window/telemetry effects of ``count`` no-op ticks.

        Each skipped tick would have run ``_held_demand(t, 0)``: pop
        the trailing zero entry, append ``(t, 0)``.  The net effect
        after the batch is the trailing zero re-stamped at the last
        skipped tick (no head entry can age out before ``last_time`` —
        that is exactly what :meth:`idle_tick_bound` bounds).  The
        scheduling-call counter is digest-relevant telemetry and must
        count skipped ticks as the calls they replace.
        """
        window = self._demand_window
        while window and window[-1][1] <= 0:
            window.pop()
        window.append((last_time, 0))
        self._scheduling_calls.value += count

    # -- array-timeline engine certification ---------------------------------------

    def array_certify(self) -> bool:
        """The array kernel may replay a slot when no DAG is in flight.

        The kernel calls the *real* hooks (``on_slot_start``, the task
        hooks, ``on_tick``/``certify_tick_run``) in exact event order,
        so the only state that must be clean at the boundary is the
        per-DAG registry; the demand window carries over exactly as it
        would across an event-mode boundary.
        """
        return not self._states

    def certify_tick_run(self, first: float, last: float,
                         count: int) -> bool:
        """Compress ``count`` ticks at ``first..last`` in closed form.

        Between two micro-events (task start/finish, wakeup) every
        ``_DagState`` field is frozen; only ``now`` advances.  Under
        the conditions below each tick's :meth:`_reschedule` is then
        provably identical — no ratchet moves, constant demand, no
        ``request_cores`` — so the run's entire effect is one demand-
        window append plus the scheduling-call counter:

        * ``slack - path`` is non-increasing in time, so "not critical
          at the last tick" covers every earlier tick;
        * the per-DAG core demand ``ceil((work-path)/(slack-path))`` is
          non-decreasing in time, so the last tick bounds the run;
        * light-DAG utilization ``work/slack`` is V-shaped (decreasing
          while the decayed path still exceeds remaining work, then
          increasing), so its run maximum is at one of the endpoints.

        Any condition that fails — a ratchet would move, a demand-window
        head would age out, a wakeup is in flight, the target is not
        fully applied — returns False and the kernel fires the ticks
        one by one through :meth:`on_tick`.
        """
        pool = self.pool
        if pool._waking:
            return False
        bus = pool.event_bus
        if bus is not None and bus.enabled:
            return False
        ceil = math.ceil
        tick_us = self.tick_interval_us
        heavy_cores = 0
        light_utilization = 0.0
        for state in self._states.values():
            work_us = state.work_us
            if work_us <= 0.0:
                return False
            path_first = path_last = state.critical_path_us
            if state.running > 0:
                path_first -= first - state.computed_at
                if path_first < 0.0:
                    path_first = 0.0
                path_last -= last - state.computed_at
                if path_last < 0.0:
                    path_last = 0.0
            slack_first = state.deadline_us - first
            slack_last = state.deadline_us - last
            if slack_last - path_last <= tick_us:
                return False  # would enter the critical stage mid-run
            work_first = work_us if work_us > path_first else path_first
            work_last = work_us if work_us > path_last else path_last
            cores_last = ceil((work_last - path_last)
                              / (slack_last - path_last))
            if cores_last > 1:
                cores_first = ceil((work_first - path_first)
                                   / (slack_first - path_first))
                if cores_first <= 1 or cores_last > state.cores_ratchet:
                    return False  # light->heavy flip or ratchet move
            else:
                util_first = work_first / (slack_first
                                           if slack_first > 1e-9 else 1e-9)
                util_last = work_last / (slack_last
                                         if slack_last > 1e-9 else 1e-9)
                peak = util_first if util_first > util_last else util_last
                if peak > state.util_ratchet:
                    return False
            if state.cores_ratchet > state.util_ceil:
                heavy_cores += state.cores_ratchet
            else:
                light_utilization += state.util_ratchet
        demand = heavy_cores + ceil(light_utilization)
        window = self._demand_window
        if window:
            head_time, head_demand = window[0]
            if head_demand > demand:
                if head_time < last - self.release_hold_us:
                    return False  # windowed max would drop mid-run
                held = head_demand
            else:
                held = demand
        else:
            held = demand
        target = min(pool.num_cores, max(held, self.min_standby_cores))
        if target != pool.target_cores or pool._reserved != target:
            return False
        # Net window effect of `count` identical (t, demand) upserts.
        while window and window[-1][1] <= demand:
            window.pop()
        window.append((last, demand))
        self._scheduling_calls.value += count
        return True

    # -- vectorized certified-slot kernel -------------------------------------------

    def vector_params(self) -> Optional[dict]:
        """Closed-form slot parameters (see SchedulerPolicy.vector_params).

        Only the predictor-less, zero-standby configuration qualifies:
        the ML predictor trains on every task completion (a side effect
        the closed form skips), and a standby floor changes the
        wake/yield trace away from the canonical wake-once/yield-once
        shape.  ``pin_tasks_to_wakeups`` is False for Concordia, but the
        guard keeps the contract explicit.
        """
        if (self.predictor is not None or self.min_standby_cores != 0
                or self.pin_tasks_to_wakeups):
            return None
        return {
            "tick_us": self.tick_interval_us,
            "release_hold_us": self.release_hold_us,
            "wakeup_overdue_us": self.wakeup_overdue_us,
            "wcet_margin": self.wcet_fallback_margin,
        }

    def vector_ready(self) -> bool:
        """True iff the scheduler is in the unique post-slot quiescent
        state the closed form starts from: no DAG registry entries and
        a demand window that is empty or a single trailing zero (what a
        fully drained slot — or a fresh run — leaves behind)."""
        if self._states:
            return False
        window = self._demand_window
        return not window or (len(window) == 1 and window[0][1] <= 0)

    def vector_commit(self, n_ticks: int, last_tick_us: float) -> None:
        """Net policy effect of one closed-form slot.

        The event path would have run ``on_slot_start`` once (one
        prediction pass + one reschedule) and ``n_ticks`` tick
        reschedules, ending — as proven by the kernel's gates — with
        every ratchet gone (states deleted at DAG completion) and the
        demand window reduced to the trailing zero stamped at the last
        tick.  The wall-clock counters are intentionally untouched:
        they are stripped from the digest and measure *actual* work.
        """
        self._prediction_calls.value += 1
        self._scheduling_calls.value += n_ticks + 1
        window = self._demand_window
        window.clear()
        window.append((last_tick_us, 0))

    # -- the scheduling decision ---------------------------------------------------

    def _reschedule(self, now: float, kind: str = "tick") -> None:
        pool = self.pool
        start = time.perf_counter()
        heavy_cores = 0
        light_utilization = 0.0
        critical = False
        tick_us = self.tick_interval_us
        ceil = math.ceil
        # This loop runs every 20 µs over every active DAG; branchy
        # if-comparisons replace max() calls and the heavy/light test
        # reads the cached util_ceil.  light_utilization MUST keep
        # accumulating in state-insertion order each tick: float
        # addition is order-sensitive, and a differently-ordered sum
        # could flip a ceil() at an ULP boundary — so the aggregates
        # are *recomputed* per tick (cheaply), not incrementalized.
        for state in self._states.values():
            path = state.critical_path_us
            if state.running > 0:
                path -= now - state.computed_at
                if path < 0.0:
                    path = 0.0
            work = state.work_us
            if work < path:
                work = path
            slack = state.deadline_us - now
            # Inline of core.federated.federated_core_demand (the
            # reference implementation and its rationale live there):
            # allocating a CoreDemand per DAG per 20 µs tick dominated
            # this loop's profile.
            if work != 0.0:
                if slack <= path + tick_us:
                    critical = True
                    break
                cores = ceil((work - path) / (slack - path))
                if cores > 1:
                    if cores > state.cores_ratchet:
                        state.cores_ratchet = cores
                else:
                    # Light DAG: sequentially feasible; packed by
                    # utilization.
                    util = work / (slack if slack > 1e-9 else 1e-9)
                    if util > state.util_ratchet:
                        state.util_ratchet = util
                        state.util_ceil = ceil(util)
            # A DAG holds ONE reservation: the larger of its ratchets.
            # Summing both double-counts a DAG that transitioned
            # heavy->light (the held dedicated cores already cover the
            # light phase), inflating reservations and under-reporting
            # reclaimed CPU in Fig. 8a.
            if state.cores_ratchet > state.util_ceil:
                heavy_cores += state.cores_ratchet
            else:
                light_utilization += state.util_ratchet
        if critical:
            target = pool.num_cores
            self._demand_window.clear()
            demand_cores = pool.num_cores
        else:
            demand_cores = heavy_cores + ceil(light_utilization)
            demand_cores = self._held_demand(now, demand_cores)
            # Compensate for signalled cores stuck in kernel sections
            # (skip the call outright when no worker is waking).
            overdue = pool.overdue_waking(self.wakeup_overdue_us) \
                if pool._waking else 0
            target = min(pool.num_cores,
                         max(demand_cores + overdue, self.min_standby_cores))
        self._scheduling_wall.value += time.perf_counter() - start
        self._scheduling_calls.value += 1
        bus = pool.event_bus
        if bus is not None and bus.enabled:
            bus.record(REC_TICK, now, kind, demand_cores, target,
                       len(self._states), critical)
        # request_cores(target) is a no-op when the target is unchanged
        # and fully applied — the steady state for most 20 µs ticks.
        if target != pool.target_cores or pool._reserved != target:
            pool.request_cores(target)

    def _held_demand(self, now: float, demand: int) -> int:
        """Max demand over the trailing release-hold window.

        Raising the reservation is immediate; lowering it waits until
        the higher demand has aged out of the window.  The window is a
        monotonic deque (entries dominated by a newer >= demand are
        dropped on insert), so the windowed max is ``window[0]`` in
        O(1) amortized instead of a scan per 20 µs tick.
        """
        window = self._demand_window
        while window and window[-1][1] <= demand:
            window.pop()
        window.append((now, demand))
        cutoff = now - self.release_hold_us
        while window[0][0] < cutoff:
            window.popleft()
        return window[0][1]

    # -- overhead reporting -------------------------------------------------------------

    @property
    def prediction_wall_s(self) -> float:
        return self._prediction_wall.value

    @property
    def prediction_calls(self) -> int:
        return self._prediction_calls.value

    @property
    def scheduling_wall_s(self) -> float:
        return self._scheduling_wall.value

    @property
    def scheduling_calls(self) -> int:
        return self._scheduling_calls.value

    @property
    def mean_prediction_us(self) -> float:
        """Mean wall-clock time of one per-slot prediction pass."""
        if self.prediction_calls == 0:
            return 0.0
        return self.prediction_wall_s / self.prediction_calls * 1e6

    @property
    def mean_scheduling_us(self) -> float:
        """Mean wall-clock time of one scheduling decision."""
        if self.scheduling_calls == 0:
            return 0.0
        return self.scheduling_wall_s / self.scheduling_calls * 1e6

"""Assembly: turn a :class:`~repro.scenario.Scenario` into live objects.

This is the single factory through which every entry point — the CLI,
:func:`repro.exec.spec.execute_spec`, the experiment drivers and ad-hoc
scripts — builds a runnable :class:`~repro.sim.runner.Simulation`.
Anything that is *not* plain data (a trained predictor, a pre-built
policy instance, an observability event bus) enters here as an explicit
keyword argument instead of hiding inside the scenario.
"""

from __future__ import annotations

from typing import Optional

from ..baselines.flexran import DedicatedScheduler, FlexRanScheduler
from ..baselines.shenango import ShenangoScheduler
from ..baselines.static import StaticPartitionScheduler
from ..baselines.utilization import UtilizationScheduler
from ..core.scheduler import ConcordiaScheduler
from ..ran.config import PoolConfig
from ..sim.policy import SchedulerPolicy
from ..sim.runner import Simulation
from .scenario import Scenario

__all__ = ["POLICY_NAMES", "build_policy", "build_simulation"]

#: Policy names accepted by :func:`build_policy`.
POLICY_NAMES = ("concordia", "concordia-noml", "flexran", "dedicated",
                "shenango", "utilization", "static")


def build_policy(name: str, config: PoolConfig, seed: int = 42,
                 predictor=None, **kwargs) -> SchedulerPolicy:
    """Instantiate a scheduling policy by name.

    ``predictor`` short-circuits the default offline training for the
    full ``concordia`` policy (callers that train or cache their own
    model pass it here); all other policies ignore it.
    """
    if name == "concordia":
        predictor = kwargs.pop("predictor", predictor)
        if predictor is None:
            # Lazy: experiments.common owns the training/cache plumbing
            # and itself imports this package.
            from ..experiments.common import get_predictor
            predictor = get_predictor(config, seed=seed)
        return ConcordiaScheduler(predictor, **kwargs)
    if name == "concordia-noml":
        return ConcordiaScheduler(predictor=None, **kwargs)
    if name == "flexran":
        return FlexRanScheduler()
    if name == "dedicated":
        return DedicatedScheduler()
    if name == "shenango":
        return ShenangoScheduler(**kwargs)
    if name == "static":
        kwargs.setdefault("reserved_cores", max(1, config.num_cores // 2))
        return StaticPartitionScheduler(**kwargs)
    if name == "utilization":
        kwargs.setdefault("slot_duration_us", config.slot_duration_us)
        return UtilizationScheduler(**kwargs)
    raise ValueError(f"unknown policy {name!r}")


def build_simulation(
    scenario: Scenario,
    *,
    policy: Optional[SchedulerPolicy] = None,
    predictor=None,
    policy_seed: int = 42,
    event_bus=None,
    slot_window: Optional[int] = None,
) -> Simulation:
    """Assemble a runnable :class:`Simulation` from a scenario.

    The pool payload is resolved (:func:`repro.scenario.resolve_pool`),
    the policy is built by name with ``scenario.policy_params`` — or
    taken verbatim when a live ``policy`` instance is supplied — and
    the simulation is wired exactly as ``Simulation``'s legacy keyword
    constructor would, from the scenario alone.

    ``slot_window`` overrides the idle-slot batch kernel's window size
    (``0`` disables the kernel, forcing the per-slot legacy path).  It
    is an execution knob, not part of the scenario: results are
    byte-identical either way, so it stays out of the serialized
    scenario — and out of the result digests.
    """
    config = scenario.pool_config()
    if policy is None:
        policy = build_policy(scenario.policy, config, seed=policy_seed,
                              predictor=predictor,
                              **scenario.policy_params)
    simulation = Simulation(config, policy, scenario=scenario,
                            event_bus=event_bus)
    if slot_window is not None:
        simulation.slot_window = int(slot_window)
    return simulation

"""The serializable description of one simulation: :class:`Scenario`.

A scenario captures *what* to simulate — the pool deployment, the
scheduling policy (by name, with JSON-able parameters), the collocated
workload, the traffic/allocation/HARQ options and the seed — without
holding any live objects.  It is the single source of truth that the
CLI, the declarative exec specs and the experiment drivers all reduce
to before :func:`repro.scenario.build_simulation` assembles the actual
object graph, so the system can no longer be wired three subtly
different ways.

Pools are given either as a :class:`~repro.ran.config.PoolConfig`, as
an inlined cell-list dict (:func:`pool_config_to_dict`), or as a named
deployment reference like ``{"name": "20mhz", "num_cores": 12}``
resolving through :data:`NAMED_POOLS` (the paper's Table 1/2 setups).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Optional, Union

from ..ran.config import (
    CellConfig,
    Duplex,
    PoolConfig,
    SlotType,
    pool_100mhz_2cells,
    pool_20mhz_7cells,
)
from .reconfig import reconfig_from_payload

__all__ = [
    "SCENARIO_SCHEMA",
    "RECONFIG_SCHEMA",
    "NAMED_POOLS",
    "Scenario",
    "cell_config_from_dict",
    "cell_config_to_dict",
    "pool_config_from_dict",
    "pool_config_to_dict",
    "resolve_pool",
]

#: Schema version embedded in serialized scenarios; bump on breaking
#: changes so stale payloads can never be misread.
SCENARIO_SCHEMA = 1

#: Schema used when a scenario carries a reconfig timeline.  Scenarios
#: with an *empty* timeline serialize as plain ``SCENARIO_SCHEMA``
#: payloads, byte-identical to pre-reconfig ones (same rationale as the
#: ``cell_id_base`` omission below).  Schema 2 was never released for
#: scenarios; 3 aligns the scenario and result schema numbering.
RECONFIG_SCHEMA = 3

#: Named pool deployments (paper Table 1/2).  A ``{"name": ..., **kw}``
#: pool reference calls the factory with the remaining keys as
#: overrides (e.g. ``num_cores``, ``deadline_us``).
NAMED_POOLS = {
    "20mhz": pool_20mhz_7cells,
    "100mhz": pool_100mhz_2cells,
}

_ALLOCATION_MODES = ("iid", "mac")
_TRAFFIC_MODES = ("model", "profiling")
_ENGINE_MODES = ("event", "array")


# -- pool configuration (de)serialization -----------------------------------------


def cell_config_to_dict(cell: CellConfig) -> dict:
    """Inline one :class:`CellConfig` as a JSON-able dict.

    Also the cell half of a detached-cell snapshot
    (:meth:`repro.sim.runner.Simulation.detach_cell`): a cell's static
    configuration travels with its portable RNG/HARQ state.
    """
    return {
        "name": cell.name,
        "bandwidth_mhz": cell.bandwidth_mhz,
        "duplex": cell.duplex.value,
        "numerology": cell.numerology,
        "peak_dl_mbps": cell.peak_dl_mbps,
        "peak_ul_mbps": cell.peak_ul_mbps,
        "avg_dl_mbps": cell.avg_dl_mbps,
        "avg_ul_mbps": cell.avg_ul_mbps,
        "max_ues_per_slot": cell.max_ues_per_slot,
        "num_antennas": cell.num_antennas,
        "max_layers": cell.max_layers,
        "tdd_pattern": "".join(s.value for s in cell.tdd_pattern),
    }


def cell_config_from_dict(c: dict) -> CellConfig:
    """Rebuild a :class:`CellConfig` from :func:`cell_config_to_dict`."""
    return CellConfig(
        name=c["name"],
        bandwidth_mhz=c["bandwidth_mhz"],
        duplex=Duplex(c["duplex"]),
        numerology=c["numerology"],
        peak_dl_mbps=c["peak_dl_mbps"],
        peak_ul_mbps=c["peak_ul_mbps"],
        avg_dl_mbps=c["avg_dl_mbps"],
        avg_ul_mbps=c["avg_ul_mbps"],
        max_ues_per_slot=c["max_ues_per_slot"],
        num_antennas=c["num_antennas"],
        max_layers=c["max_layers"],
        tdd_pattern=tuple(SlotType(s) for s in c["tdd_pattern"]),
    )


def pool_config_to_dict(config: PoolConfig) -> dict:
    """Inline a :class:`PoolConfig` as a JSON-able dict."""
    return {
        "cells": [cell_config_to_dict(cell) for cell in config.cells],
        "num_cores": config.num_cores,
        "deadline_us": config.deadline_us,
        "scheduler_tick_us": config.scheduler_tick_us,
        "core_rotation_us": config.core_rotation_us,
    }


def pool_config_from_dict(payload: dict) -> PoolConfig:
    """Rebuild a :class:`PoolConfig` from :func:`pool_config_to_dict`."""
    cells = tuple(cell_config_from_dict(c) for c in payload["cells"])
    return PoolConfig(
        cells=cells,
        num_cores=payload["num_cores"],
        deadline_us=payload["deadline_us"],
        scheduler_tick_us=payload["scheduler_tick_us"],
        core_rotation_us=payload["core_rotation_us"],
    )


def resolve_pool(pool: Union[PoolConfig, dict]) -> PoolConfig:
    """Turn any scenario pool payload into a live :class:`PoolConfig`.

    Accepts a :class:`PoolConfig` (returned as-is), a named reference
    (``{"name": "20mhz", ...factory overrides}``) or an inlined
    cell-list dict (:func:`pool_config_to_dict` form).
    """
    if isinstance(pool, PoolConfig):
        return pool
    if not isinstance(pool, dict):
        raise TypeError(f"pool must be a PoolConfig or dict, got {pool!r}")
    if "name" in pool:
        overrides = {k: v for k, v in pool.items() if k != "name"}
        try:
            factory = NAMED_POOLS[pool["name"]]
        except KeyError:
            raise ValueError(
                f"unknown pool name {pool['name']!r}; "
                f"known: {sorted(NAMED_POOLS)}") from None
        return factory(**overrides)
    if "cells" in pool:
        return pool_config_from_dict(pool)
    raise ValueError("pool dict needs either a 'name' or inlined 'cells'")


# -- the scenario ------------------------------------------------------------------


@dataclass
class Scenario:
    """Everything that determines one simulation, as plain data.

    ``policy_params`` must hold JSON-able values only; live objects
    (a trained predictor, a policy instance) are assembly-time inputs
    of :func:`repro.scenario.build_simulation`, not scenario state.
    """

    pool: Union[PoolConfig, dict]
    policy: str = "concordia-noml"
    policy_params: dict = field(default_factory=dict)
    workload: str = "none"
    load_fraction: float = 0.5
    seed: int = 0
    #: "model" draws from the calibrated per-cell traffic generators;
    #: "profiling" sweeps the input space uniformly (offline phase,
    #: paper §4.2).
    traffic: str = "model"
    #: "iid" splits slot bytes into i.i.d. UE allocations; "mac" runs
    #: the buffer-driven proportional-fair MAC pipeline.
    allocation: str = "iid"
    harq: bool = False
    mix_interval_us: tuple = (0.5e6, 2.0e6)
    record_tasks: bool = False
    #: Fleet sharding: when not ``None``, this pool is one cell-shard
    #: of a metro deployment and its per-cell RNG streams are keyed by
    #: the *global* cell id (``cell_id_base + local index``) instead of
    #: the within-pool index, with per-cell UE-allocation streams —
    #: see :mod:`repro.fleet`.  Cell-level sampling then reproduces
    #: byte-identically no matter how the fleet is sharded.  ``None``
    #: keeps the legacy single-server keying (and digests) unchanged.
    cell_id_base: Optional[int] = None
    #: Declarative reconfiguration timeline: a tuple of
    #: :class:`~repro.scenario.reconfig.ReconfigEvent` (or their dict
    #: form) applied at slot boundaries — worker add/remove and cell
    #: detach/attach within this one simulation.  Empty (the default)
    #: keeps the legacy schema and digests byte-identical; non-empty
    #: scenarios serialize as :data:`RECONFIG_SCHEMA`.
    reconfig: tuple = ()
    #: Simulation engine: "event" runs every task completion and tick
    #: through the discrete-event heap; "array" additionally replays
    #: provably contention-free slots through the lockstep array-timeline
    #: kernel (:mod:`repro.sim.arraykernel`), bypassing the heap while
    #: reproducing the event engine's results byte-identically.  Slots
    #: (or whole runs) that cannot be certified fall back to the event
    #: path, so "array" is always safe to request.
    engine_mode: str = "event"

    def __post_init__(self) -> None:
        if self.allocation not in _ALLOCATION_MODES:
            raise ValueError(
                f"allocation must be one of {_ALLOCATION_MODES}, "
                f"got {self.allocation!r}")
        if self.engine_mode not in _ENGINE_MODES:
            raise ValueError(
                f"engine_mode must be one of {_ENGINE_MODES}, "
                f"got {self.engine_mode!r}")
        if self.traffic not in _TRAFFIC_MODES:
            raise ValueError(
                f"traffic must be one of {_TRAFFIC_MODES}, "
                f"got {self.traffic!r}")
        self.mix_interval_us = tuple(self.mix_interval_us)
        self.reconfig = reconfig_from_payload(self.reconfig)

    @property
    def profiling_traffic(self) -> bool:
        return self.traffic == "profiling"

    def pool_config(self) -> PoolConfig:
        """Resolve the pool payload to a live :class:`PoolConfig`."""
        return resolve_pool(self.pool)

    def to_dict(self) -> dict:
        """JSON-able payload (named pool references stay symbolic)."""
        payload = asdict(self)
        if isinstance(self.pool, PoolConfig):
            payload["pool"] = pool_config_to_dict(self.pool)
        payload["mix_interval_us"] = list(self.mix_interval_us)
        if payload["cell_id_base"] is None:
            # Non-fleet scenarios serialize exactly as they did before
            # the fleet layer existed, keeping cached results and the
            # golden result digests byte-identical.
            del payload["cell_id_base"]
        if payload["engine_mode"] == "event":
            # Same invariant again: event-mode scenarios serialize
            # exactly as they did before the array engine existed.
            del payload["engine_mode"]
        if self.reconfig:
            payload["reconfig"] = [e.to_dict() for e in self.reconfig]
            payload["schema"] = RECONFIG_SCHEMA
        else:
            # Same invariant as cell_id_base: an empty timeline
            # serializes exactly as a pre-reconfig scenario.
            del payload["reconfig"]
            payload["schema"] = SCENARIO_SCHEMA
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "Scenario":
        if payload.get("schema") not in (SCENARIO_SCHEMA, RECONFIG_SCHEMA):
            raise ValueError(
                f"unsupported scenario schema {payload.get('schema')!r}")
        fields_ = {k: v for k, v in payload.items() if k != "schema"}
        return cls(**fields_)

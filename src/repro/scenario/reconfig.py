"""Declarative reconfiguration events: the ``ReconfigEvent`` timeline.

Elastic reconfiguration — growing/shrinking a pool's worker set,
detaching/attaching a cell, migrating a cell between fleet shards — is
scripted as plain data so reconfig scenarios serialize, cache and
replay exactly like static ones.  A timeline is a tuple of
:class:`ReconfigEvent`, ordered by ``at_slot``; every event is applied
*at* that slot boundary, before the slot's DAGs are built.

Actions
-------
``add_worker`` / ``remove_worker``
    Grow/shrink the physical core set of one simulation's
    :class:`~repro.sim.pool.VranPool` by ``count`` workers.  In a
    fleet script, ``shard`` routes the event to one server.
``detach_cell`` / ``attach_cell``
    Quiesce the named cell at the slot boundary and snapshot its
    portable state (outage scripting within one simulation); a later
    ``attach_cell`` of the same name resumes it.
``migrate``
    Fleet-planner verb: move ``cell`` from ``src_shard`` to
    ``dst_shard`` at ``at_slot``, modelling migration cost —
    ``transfer_slots`` of state-transfer delay (the cell's DAGs are
    buffered, released late with their original deadlines → a bounded
    deadline-miss transient) followed by ``warmup_slots`` of predictor
    warm-up (WCET over-estimation by ``warmup_factor``).  ``cell`` may
    be a global cell index (resolved against the fleet's naming) or a
    cell name.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Optional, Union

__all__ = ["RECONFIG_ACTIONS", "ReconfigEvent", "load_reconfig_script",
           "reconfig_from_payload"]

#: Every action a timeline may contain.
RECONFIG_ACTIONS = ("add_worker", "remove_worker", "detach_cell",
                    "attach_cell", "migrate")

_CELL_ACTIONS = ("detach_cell", "attach_cell", "migrate")
_WORKER_ACTIONS = ("add_worker", "remove_worker")


@dataclass(frozen=True)
class ReconfigEvent:
    """One declarative reconfiguration step, applied at a slot boundary."""

    at_slot: int
    action: str
    #: Cell name (or, in fleet scripts, global cell index) for the
    #: cell-level actions; unused by worker actions.
    cell: Optional[Union[str, int]] = None
    #: Worker count for add_worker/remove_worker.
    count: int = 1
    #: Fleet routing for worker/detach/attach actions: which shard the
    #: event applies to (``None`` at simulation level).
    shard: Optional[int] = None
    #: Migration endpoints (migrate only).
    src_shard: Optional[int] = None
    dst_shard: Optional[int] = None
    #: Migration-cost model: slots of state-transfer delay during which
    #: the migrated cell's DAGs are buffered and released late...
    transfer_slots: int = 2
    #: ...then slots of predictor warm-up, during which the destination
    #: over-estimates the cell's WCETs by ``warmup_factor``.
    warmup_slots: int = 8
    warmup_factor: float = 1.5

    def __post_init__(self) -> None:
        if self.action not in RECONFIG_ACTIONS:
            raise ValueError(
                f"unknown reconfig action {self.action!r}; "
                f"known: {RECONFIG_ACTIONS}")
        if int(self.at_slot) != self.at_slot or self.at_slot < 0:
            raise ValueError(
                f"at_slot must be a non-negative integer, got "
                f"{self.at_slot!r}")
        object.__setattr__(self, "at_slot", int(self.at_slot))
        if self.action in _CELL_ACTIONS and self.cell is None:
            raise ValueError(f"{self.action} requires a cell")
        if self.action in _WORKER_ACTIONS and self.count < 1:
            raise ValueError(f"{self.action} count must be >= 1")
        if self.action == "migrate":
            if self.src_shard is None or self.dst_shard is None:
                raise ValueError("migrate requires src_shard and dst_shard")
            if self.src_shard == self.dst_shard:
                raise ValueError("migrate src_shard == dst_shard")
        if self.transfer_slots < 0 or self.warmup_slots < 0:
            raise ValueError("transfer_slots/warmup_slots must be >= 0")
        if self.warmup_factor < 1.0:
            raise ValueError("warmup_factor must be >= 1.0")

    def to_dict(self) -> dict:
        """JSON-able payload; only the fields the action uses."""
        payload: dict = {"action": self.action, "at_slot": self.at_slot}
        if self.action in _WORKER_ACTIONS:
            payload["count"] = self.count
        if self.action in _CELL_ACTIONS:
            payload["cell"] = self.cell
        if self.shard is not None:
            payload["shard"] = self.shard
        if self.action == "migrate":
            payload["src_shard"] = self.src_shard
            payload["dst_shard"] = self.dst_shard
        if self.action in ("migrate", "attach_cell"):
            payload["transfer_slots"] = self.transfer_slots
            payload["warmup_slots"] = self.warmup_slots
            payload["warmup_factor"] = self.warmup_factor
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "ReconfigEvent":
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                f"unknown reconfig event fields: {sorted(unknown)}")
        return cls(**payload)


def reconfig_from_payload(events) -> tuple:
    """Normalize a serialized timeline into ``ReconfigEvent`` tuples."""
    out = []
    for event in events:
        if isinstance(event, ReconfigEvent):
            out.append(event)
        elif isinstance(event, dict):
            out.append(ReconfigEvent.from_dict(event))
        else:
            raise TypeError(
                f"reconfig events must be ReconfigEvent or dict, "
                f"got {event!r}")
    return tuple(out)


def load_reconfig_script(path) -> tuple:
    """Load a reconfig timeline from a JSON script file.

    Accepts either ``{"events": [...]}`` or a bare JSON list of event
    dicts; returns a tuple of :class:`ReconfigEvent`.
    """
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    if isinstance(payload, dict):
        payload = payload.get("events", [])
    if not isinstance(payload, list):
        raise ValueError(
            f"reconfig script must be a JSON list or {{'events': [...]}}: "
            f"{path}")
    return reconfig_from_payload(payload)

"""Scenario assembly layer: serializable experiment descriptions.

``Scenario`` (plain data) says *what* to simulate; ``build_simulation``
assembles the live object graph.  See ARCHITECTURE.md ("Scenario
assembly & slot pipeline") for the layer diagram and the RNG-stream
map.
"""

from .scenario import (
    NAMED_POOLS,
    RECONFIG_SCHEMA,
    SCENARIO_SCHEMA,
    Scenario,
    cell_config_from_dict,
    cell_config_to_dict,
    pool_config_from_dict,
    pool_config_to_dict,
    resolve_pool,
)
from .reconfig import (
    RECONFIG_ACTIONS,
    ReconfigEvent,
    load_reconfig_script,
    reconfig_from_payload,
)
from .assembly import POLICY_NAMES, build_policy, build_simulation

__all__ = [
    "NAMED_POOLS",
    "POLICY_NAMES",
    "RECONFIG_ACTIONS",
    "RECONFIG_SCHEMA",
    "ReconfigEvent",
    "SCENARIO_SCHEMA",
    "Scenario",
    "build_policy",
    "build_simulation",
    "cell_config_from_dict",
    "cell_config_to_dict",
    "load_reconfig_script",
    "pool_config_from_dict",
    "pool_config_to_dict",
    "reconfig_from_payload",
    "resolve_pool",
]

"""Scenario assembly layer: serializable experiment descriptions.

``Scenario`` (plain data) says *what* to simulate; ``build_simulation``
assembles the live object graph.  See ARCHITECTURE.md ("Scenario
assembly & slot pipeline") for the layer diagram and the RNG-stream
map.
"""

from .scenario import (
    NAMED_POOLS,
    SCENARIO_SCHEMA,
    Scenario,
    pool_config_from_dict,
    pool_config_to_dict,
    resolve_pool,
)
from .assembly import POLICY_NAMES, build_policy, build_simulation

__all__ = [
    "NAMED_POOLS",
    "POLICY_NAMES",
    "SCENARIO_SCHEMA",
    "Scenario",
    "build_policy",
    "build_simulation",
    "pool_config_from_dict",
    "pool_config_to_dict",
    "resolve_pool",
]

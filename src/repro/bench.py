"""Hot-path benchmark, CI perf guard and profiler (``repro bench``).

Runs a Fig. 11-style simulation (20 MHz / 7 cells, collocated Redis,
``concordia-noml`` so no training rides on the measurement) and reports
wall-clock plus throughput in simulated slots per second.  Three uses:

* **benchmarking** — ``repro bench`` (or the thin
  ``scripts/bench_hotpath.py`` wrapper) prints best-of-N wall and
  slots-per-second for the current tree;
* **CI regression guard** — ``--check results/bench_hotpath_baseline.json``
  compares against a recorded baseline and exits non-zero when
  throughput regressed by more than ``--tolerance``;
  ``--write-baseline`` records the current tree as the new baseline;
* **profiling** — ``--profile`` dumps the cProfile top-30 by
  cumulative time plus the task-event fast path's share of the run,
  so the profile that motivated the fast-path work is reproducible
  with one command.

The report also carries an **engine micro-benchmark**: the same
self-rescheduling event fired through ``Engine.schedule_after`` (a
fresh heap entry per firing) and through a reusable ``Engine.timer``
entry, both over a 1k-deep heap backlog.  Both paths are timed in the
same process seconds apart, so their ratio is machine-load-free; the
guard only trips if the reusable path stops being at least as fast as
the churn path (minus the tolerance).

The recorded baseline carries the machine's single-core reference so
wildly different hardware is flagged rather than silently failed; CI
runners of the same class are comparable within the tolerance.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import time

__all__ = [
    "calibrate_reference",
    "timed_run",
    "engine_microbench",
    "profile_hotpath",
    "main",
]

#: Functions whose combined share of a profiled run defines the
#: "task-event fast path" (see docs/ARCHITECTURE.md).
FAST_PATH_FUNCS = ("_finish", "_dispatch", "_start")

#: Slots for the Fig. 3-calibrated idle-kernel measurement.
IDLE_KERNEL_SLOTS = 240

#: Minimum idle-slot coverage the window kernel must reach on the
#: Fig. 3-calibrated workload for ``--check`` to pass.  The run is
#: fully deterministic (fixed seed), so a drop below this means the
#: idle fast path stopped engaging, not statistical noise.
IDLE_KERNEL_MIN_SHARE = 0.5

#: Minimum certified-slot coverage the array-timeline kernel must
#: reach on the same fig03-calibrated workload.  Deterministic for the
#: same reason: below this floor the replay certification stopped
#: engaging (a regression in the kernel or its certification gates).
ARRAY_KERNEL_MIN_SHARE = 0.5


def calibrate_reference() -> float:
    """Cheap single-core reference score (higher = faster machine).

    A fixed pure-Python workload, timed: used only to annotate
    baselines so cross-machine comparisons can be recognized.
    """
    start = time.perf_counter()
    acc = 0
    for i in range(2_000_000):
        acc += i * 3 // 7
    wall = time.perf_counter() - start
    return round(1.0 / wall, 3)


def timed_run(slots: int, seed: int,
              engine: str = "event") -> tuple[float, object]:
    """One Fig. 11-style simulation; returns (wall_s, result)."""
    from repro.scenario import Scenario, build_simulation

    scenario = Scenario(
        pool={"name": "20mhz"},
        policy="concordia-noml",
        workload="redis",
        load_fraction=0.5,
        seed=seed,
        engine_mode=engine,
    )
    simulation = build_simulation(scenario)
    start = time.perf_counter()
    result = simulation.run(slots)
    return time.perf_counter() - start, result


def idle_kernel_run(slots: int = IDLE_KERNEL_SLOTS, seed: int = 7,
                    engine: str = "event") -> dict:
    """Fig. 3-calibrated idle-kernel measurement.

    One 20 MHz cell at 2 % load: per §2.2 a single cell is idle ~75 %
    of TTIs per direction, so most slots carry no traffic in *either*
    direction and the window kernel's idle fast path should cover the
    majority of the run.  Returns the kernel coverage counters plus
    throughput (the idle fast path is what makes low-load fleets
    cheap to simulate).  With ``engine="array"`` the same workload runs
    through the array-timeline kernel, which should certify and replay
    nearly every slot here.
    """
    from repro.ran.config import PoolConfig, cell_20mhz_fdd
    from repro.scenario import Scenario, build_simulation

    pool = PoolConfig(cells=(cell_20mhz_fdd("bench-idle"),),
                      num_cores=4, deadline_us=2000.0)
    scenario = Scenario(
        pool=pool,
        policy="concordia-noml",
        workload="none",
        load_fraction=0.02,
        seed=seed,
        engine_mode=engine,
    )
    simulation = build_simulation(scenario)
    start = time.perf_counter()
    simulation.run(slots)
    wall = time.perf_counter() - start
    stats = simulation.kernel_stats
    report = {
        "slots": stats["slots"],
        "wall_s": round(wall, 3),
        "slots_per_s": round(slots / wall, 1),
        "window_slots": stats["window_slots"],
        "idle_slots": stats["idle_slots"],
        "idle_share": round(stats["idle_slots"] / max(1, stats["slots"]),
                            3),
    }
    if engine == "array":
        report["array_slots"] = stats["array_slots"]
        report["array_share"] = round(
            stats["array_slots"] / max(1, stats["slots"]), 3)
        report["vector_slots"] = stats["vector_slots"]
        kernel = simulation._array_kernel
        # Wall-clock phase breakdown of the array run: window fill
        # (traffic/plan/DAG prebuild), closed-form vector commits,
        # fallback heap replays, certification-gate rejects, and the
        # end-of-run latency histogram/summary fold.
        report["phases"] = {
            "fill_wall_s": round(simulation.fill_wall_s, 4),
            "vector_wall_s": round(kernel.vector_wall_s, 4),
            "heap_wall_s": round(kernel.heap_wall_s, 4),
            "gate_wall_s": round(kernel.gate_wall_s, 4),
            "summary_wall_s": round(simulation.summary_wall_s, 4),
        }
    return report


# -- engine micro-benchmark ---------------------------------------------------


def engine_microbench(heap_depth: int = 1000,
                      firings: int = 50_000) -> dict:
    """Time per-event overhead: ``schedule_after`` churn vs Timer reuse.

    Both variants run one self-rescheduling callback for ``firings``
    events on top of a backlog of ``heap_depth`` far-future one-shots,
    so every push/pop pays a realistic O(log depth).  The churn variant
    allocates a fresh heap entry (and closure-captured callback slot)
    per firing; the Timer variant re-keys one reusable entry — the
    mechanism each ``Worker.finish_timer`` uses per task completion.
    """
    from repro.sim.engine import Engine

    def _backlogged_engine() -> Engine:
        engine = Engine()
        for i in range(heap_depth):
            engine.schedule_after(1e12 + i, _noop)
        return engine

    def _noop() -> None:
        pass

    # Variant A: one-shot churn via schedule_after.
    engine = _backlogged_engine()
    remaining = firings

    def churn_cb() -> None:
        nonlocal remaining
        remaining -= 1
        if remaining > 0:
            engine.schedule_after(1.0, churn_cb)

    engine.schedule_after(1.0, churn_cb)
    start = time.perf_counter()
    engine.run_until(firings + 10.0)
    churn_wall = time.perf_counter() - start

    # Variant B: reusable re-keyed Timer entry.
    engine = _backlogged_engine()
    remaining = firings
    timer = None

    def timer_cb() -> None:
        nonlocal remaining
        remaining -= 1
        if remaining > 0:
            timer.arm(1.0)

    timer = engine.timer(timer_cb)
    timer.arm(1.0)
    start = time.perf_counter()
    engine.run_until(firings + 10.0)
    timer_wall = time.perf_counter() - start

    return {
        "heap_depth": heap_depth,
        "firings": firings,
        "schedule_after_events_per_s": round(firings / churn_wall, 0),
        "timer_events_per_s": round(firings / timer_wall, 0),
        "timer_speedup": round(churn_wall / timer_wall, 3),
    }


# -- profiling ----------------------------------------------------------------


def profile_hotpath(slots: int, seed: int, top: int = 30,
                    engine: str = "event") -> int:
    """Profile one run; print cProfile top-N cumulative + fast-path share."""
    import cProfile
    import io
    import pstats

    from repro.scenario import Scenario, build_simulation

    scenario = Scenario(
        pool={"name": "20mhz"},
        policy="concordia-noml",
        workload="redis",
        load_fraction=0.5,
        seed=seed,
        engine_mode=engine,
    )
    simulation = build_simulation(scenario)
    profiler = cProfile.Profile()
    profiler.enable()
    simulation.run(slots)
    profiler.disable()

    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats("cumulative").print_stats(top)
    print(stream.getvalue())

    # Task-event fast path share: pool._finish / _dispatch / _start.
    total = stats.total_tt
    fast_tt = 0.0
    fast_cum = {}
    for (filename, _line, name), (_cc, _nc, tt, ct, _callers) in \
            stats.stats.items():
        if name in FAST_PATH_FUNCS and filename.endswith("pool.py"):
            fast_tt += tt
            fast_cum[name] = ct
    finish_cum = fast_cum.get("_finish", 0.0)
    print(f"task-event fast path (pool {'+'.join(FAST_PATH_FUNCS)}): "
          f"{fast_tt:.3f}s self time of {total:.3f}s total "
          f"({100.0 * fast_tt / total:.1f}%); "
          f"_finish cumulative {finish_cum:.3f}s "
          f"({100.0 * finish_cum / total:.1f}%)")
    kernel = simulation.kernel_stats
    print(f"window kernel: {kernel['windows']} windows covering "
          f"{kernel['window_slots']}/{kernel['slots']} slots, "
          f"{kernel['idle_slots']} idle-batched; "
          f"ticks batched {simulation.pool.ticks_batched} in "
          f"{simulation.pool.tick_batches} gaps")
    array_slots = kernel.get("array_slots", 0)
    vector_slots = kernel.get("vector_slots", 0)
    print(f"array kernel ({engine} engine): certified and replayed "
          f"{array_slots}/{kernel['slots']} slots "
          f"({100.0 * array_slots / max(1, kernel['slots']):.1f}%), "
          f"{vector_slots} via the closed-form vector path")
    # Phase breakdown of the same run (wall clock, not profiler time):
    # where a slot's wall goes once the certified window kernel engages.
    phases = [
        ("window fill (traffic/plan/DAG prebuild)",
         simulation.fill_wall_s),
        ("latency summary/histogram fold", simulation.summary_wall_s),
    ]
    array_kernel = getattr(simulation, "_array_kernel", None)
    if array_kernel is not None:
        phases[1:1] = [
            ("vector kernel (closed-form commits)",
             array_kernel.vector_wall_s),
            ("fallback heap replay", array_kernel.heap_wall_s),
            ("certification-gate rejects", array_kernel.gate_wall_s),
        ]
    print("phase breakdown:")
    for label, wall in phases:
        print(f"  {label}: {wall:.3f}s")
    return 0


# -- CLI ----------------------------------------------------------------------


def add_bench_arguments(parser: argparse.ArgumentParser) -> None:
    """Register the bench options on ``parser`` (shared with ``repro``)."""
    parser.add_argument("--slots", type=int, default=600)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--repeat", "--rounds", type=int, default=3,
                        dest="rounds", help="timed rounds (best-of)")
    parser.add_argument("--check", default=None,
                        help="baseline JSON to guard against")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="max fractional slowdown vs the baseline")
    parser.add_argument("--write-baseline", default=None,
                        help="record the current tree as baseline JSON")
    parser.add_argument("--engine", choices=("event", "array"),
                        default="event",
                        help="engine for the fig11-style headline run "
                             "(the fig03 A/B row always times both)")
    parser.add_argument("--profile", action="store_true",
                        help="cProfile one run (top-30 cumulative) "
                             "instead of timing")
    parser.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON")


def run_bench(args) -> int:
    if args.profile:
        return profile_hotpath(args.slots, args.seed, engine=args.engine)

    walls = []
    result = None
    for _ in range(args.rounds):
        wall, result = timed_run(args.slots, args.seed, engine=args.engine)
        walls.append(wall)
    best = min(walls)
    slots_per_s = args.slots / best
    # Seed pinned (not args.seed) in the fig03 rows: the --check
    # coverage guards depend on those runs being bit-reproducible.
    # Both engines are timed back to back (best-of-rounds each) so the
    # A/B ratio is immune to machine-load drift between reports.
    idle_event = idle_kernel_run()
    idle_array = idle_kernel_run(engine="array")
    for _ in range(args.rounds - 1):
        again = idle_kernel_run()
        if again["wall_s"] < idle_event["wall_s"]:
            idle_event = again
        again = idle_kernel_run(engine="array")
        if again["wall_s"] < idle_array["wall_s"]:
            idle_array = again
    idle_array["speedup_vs_event"] = round(
        idle_event["wall_s"] / idle_array["wall_s"], 3) \
        if idle_array["wall_s"] > 0 else 0.0
    report = {
        "slots": args.slots,
        "seed": args.seed,
        "rounds": args.rounds,
        "engine": args.engine,
        "wall_s_best": round(best, 3),
        "wall_s_all": [round(w, 3) for w in walls],
        "slots_per_s": round(slots_per_s, 1),
        "p99999_us": round(result.latency.p99999_us, 1),
        "idle_kernel": idle_event,
        "idle_kernel_array": idle_array,
        "engine_microbench": engine_microbench(),
        "machine_reference": calibrate_reference(),
        "python": platform.python_version(),
    }

    if not args.json:
        micro = report["engine_microbench"]
        idle = report["idle_kernel"]
        print(f"fig11-style hot path ({args.engine} engine): "
              f"{args.slots} slots in "
              f"{best:.2f}s best-of-{args.rounds} "
              f"({slots_per_s:,.0f} slots/s)")
        print(f"fig03-style idle kernel: {idle['slots']} slots at 2% "
              f"load ({idle['slots_per_s']:,.0f} slots/s), idle fast "
              f"path covered {idle['idle_share']:.0%}")
        print(f"fig03 array vs event: {idle_array['slots_per_s']:,.0f} "
              f"vs {idle['slots_per_s']:,.0f} slots/s "
              f"({idle_array['speedup_vs_event']:.2f}x), certified "
              f"slots {idle_array['array_share']:.0%}")
        print(f"engine microbench (heap depth {micro['heap_depth']}): "
              f"schedule_after {micro['schedule_after_events_per_s']:,.0f} "
              f"ev/s, reusable timer {micro['timer_events_per_s']:,.0f} "
              f"ev/s ({micro['timer_speedup']:.2f}x)")

    status = 0
    if args.check:
        baseline = json.loads(pathlib.Path(args.check).read_text())
        floor = baseline["slots_per_s"] * (1.0 - args.tolerance)
        report["baseline_slots_per_s"] = baseline["slots_per_s"]
        report["floor_slots_per_s"] = round(floor, 1)
        ratio = slots_per_s / baseline["slots_per_s"]
        report["ratio_vs_baseline"] = round(ratio, 3)
        if not args.json:
            print(f"baseline {baseline['slots_per_s']:,.0f} slots/s "
                  f"(machine ref {baseline.get('machine_reference')} vs "
                  f"{report['machine_reference']}); "
                  f"current/baseline = {ratio:.2f}x, "
                  f"floor {floor:,.0f} slots/s")
        if slots_per_s < floor:
            print("FAIL: hot-path throughput regressed beyond "
                  f"{args.tolerance:.0%} budget", file=sys.stderr)
            status = 1
        # The timer and churn variants run seconds apart in this very
        # process, so their ratio is immune to machine-load drift: only
        # a real regression of the reusable-entry path can drop it.
        if report["engine_microbench"]["timer_speedup"] < \
                1.0 - args.tolerance:
            print("FAIL: reusable-timer path slower than schedule_after "
                  "churn beyond budget", file=sys.stderr)
            status = 1
        # Kernel-share guard: the fig03-calibrated run is seed-fixed,
        # so coverage below the floor means the idle fast path stopped
        # engaging (a code regression), never sampling noise.
        if report["idle_kernel"]["idle_share"] < IDLE_KERNEL_MIN_SHARE:
            print("FAIL: idle-slot fast path covered "
                  f"{report['idle_kernel']['idle_share']:.0%} of the "
                  f"fig03-calibrated workload "
                  f"(< {IDLE_KERNEL_MIN_SHARE:.0%})", file=sys.stderr)
            status = 1
        # Same logic for the array-timeline kernel: its certified-slot
        # share on the fixed-seed fig03 workload is deterministic, and
        # its throughput is guarded against the baseline's array row
        # (present in baselines written since the kernel landed).
        if report["idle_kernel_array"]["array_share"] < \
                ARRAY_KERNEL_MIN_SHARE:
            print("FAIL: array-timeline kernel certified "
                  f"{report['idle_kernel_array']['array_share']:.0%} of "
                  f"the fig03-calibrated workload "
                  f"(< {ARRAY_KERNEL_MIN_SHARE:.0%})", file=sys.stderr)
            status = 1
        # The event and array engines run back-to-back in this process
        # (same seed, same workload), so their ratio is immune to
        # machine-load drift: the array timeline must never lose to the
        # per-event engine it certifies against.
        if report["idle_kernel_array"]["speedup_vs_event"] < 1.0:
            print("FAIL: array-timeline engine slower than the event "
                  "engine on the fig03 workload "
                  f"({report['idle_kernel_array']['speedup_vs_event']:.2f}x"
                  " < 1.00x)", file=sys.stderr)
            status = 1
        baseline_array = baseline.get("idle_kernel_array")
        if baseline_array:
            array_floor = baseline_array["slots_per_s"] * \
                (1.0 - args.tolerance)
            if report["idle_kernel_array"]["slots_per_s"] < array_floor:
                print("FAIL: array-engine fig03 throughput "
                      f"{report['idle_kernel_array']['slots_per_s']:,.0f} "
                      f"slots/s below floor {array_floor:,.0f} "
                      f"(baseline {baseline_array['slots_per_s']:,.0f}, "
                      f"tolerance {args.tolerance:.0%})", file=sys.stderr)
                status = 1
        if status == 0 and not args.json:
            print("OK")

    if args.write_baseline:
        path = pathlib.Path(args.write_baseline)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(report, indent=2) + "\n")
        if not args.json:
            print(f"baseline -> {path}")

    if args.json:
        print(json.dumps(report, indent=2))
    return status


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    add_bench_arguments(parser)
    return run_bench(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""QAM modulation and demodulation (paper Appendix A.1).

Gray-mapped square constellations for QPSK, 16-QAM, 64-QAM and
256-QAM, normalized to unit average energy — the reference for the
simulated MODULATION/DEMODULATION tasks, whose cost grows with the
modulation order.
"""

from __future__ import annotations

import numpy as np

__all__ = ["qam_constellation", "modulate", "demodulate_hard",
           "CONSTELLATIONS"]


def _gray(n: int) -> int:
    return n ^ (n >> 1)


def qam_constellation(bits_per_symbol: int) -> np.ndarray:
    """Gray-mapped square QAM constellation with unit average energy.

    Index ``i`` holds the complex point for the bit pattern ``i`` (MSB
    first: first half of the bits select the I coordinate).
    """
    if bits_per_symbol % 2 != 0 or bits_per_symbol < 2:
        raise ValueError("bits_per_symbol must be even and >= 2")
    half = bits_per_symbol // 2
    side = 1 << half
    # PAM levels in Gray order: level j -> amplitude 2*j - (side-1).
    levels = np.zeros(side)
    for value in range(side):
        levels[_gray(value)] = 2 * value - (side - 1)
    points = np.empty(side * side, dtype=np.complex128)
    for index in range(side * side):
        i_bits = index >> half
        q_bits = index & (side - 1)
        points[index] = levels[i_bits] + 1j * levels[q_bits]
    energy = np.mean(np.abs(points) ** 2)
    return points / np.sqrt(energy)


CONSTELLATIONS = {order: qam_constellation(order) for order in (2, 4, 6, 8)}


def modulate(bits: np.ndarray, bits_per_symbol: int) -> np.ndarray:
    """Map a bit array to complex symbols (zero-padded to a multiple)."""
    constellation = CONSTELLATIONS.get(bits_per_symbol)
    if constellation is None:
        constellation = qam_constellation(bits_per_symbol)
    bits = np.asarray(bits, dtype=np.uint8).ravel()
    remainder = len(bits) % bits_per_symbol
    if remainder:
        bits = np.concatenate([bits,
                               np.zeros(bits_per_symbol - remainder,
                                        dtype=np.uint8)])
    groups = bits.reshape(-1, bits_per_symbol)
    weights = 1 << np.arange(bits_per_symbol - 1, -1, -1)
    indices = groups @ weights
    return constellation[indices]


def demodulate_hard(symbols: np.ndarray, bits_per_symbol: int) -> np.ndarray:
    """Nearest-point hard demodulation back to bits."""
    constellation = CONSTELLATIONS.get(bits_per_symbol)
    if constellation is None:
        constellation = qam_constellation(bits_per_symbol)
    symbols = np.asarray(symbols, dtype=np.complex128).ravel()
    distances = np.abs(symbols[:, None] - constellation[None, :])
    indices = distances.argmin(axis=1)
    bits = ((indices[:, None] >> np.arange(bits_per_symbol - 1, -1, -1))
            & 1)
    return bits.astype(np.uint8).ravel()

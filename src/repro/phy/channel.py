"""Channels and channel estimation (paper Appendix A.1).

* :class:`AwgnChannel` — complex additive white Gaussian noise at a
  configured SNR.
* :class:`RayleighChannel` — flat i.i.d. Rayleigh MIMO channel.
* :func:`ls_channel_estimate` — least-squares channel estimation from
  known pilot symbols, the reference for the simulated
  CHANNEL_ESTIMATION task (interpolating the response through pilots).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["AwgnChannel", "RayleighChannel", "ls_channel_estimate"]


class AwgnChannel:
    """Complex AWGN at a given SNR (unit-energy signalling assumed)."""

    def __init__(self, snr_db: float,
                 rng: Optional[np.random.Generator] = None) -> None:
        self.snr_db = snr_db
        self.rng = rng if rng is not None else np.random.default_rng(0)

    @property
    def noise_variance(self) -> float:
        return 10.0 ** (-self.snr_db / 10.0)

    def __call__(self, symbols: np.ndarray) -> np.ndarray:
        symbols = np.asarray(symbols, dtype=np.complex128)
        sigma = np.sqrt(self.noise_variance / 2.0)
        noise = self.rng.normal(0, sigma, symbols.shape) + \
            1j * self.rng.normal(0, sigma, symbols.shape)
        return symbols + noise


class RayleighChannel:
    """Flat i.i.d. Rayleigh MIMO channel: y = H x + n."""

    def __init__(self, num_rx: int, num_tx: int, snr_db: float,
                 rng: Optional[np.random.Generator] = None) -> None:
        if num_rx < num_tx:
            raise ValueError("need at least as many receive antennas "
                             "as spatial streams")
        self.rng = rng if rng is not None else np.random.default_rng(1)
        self.num_rx = num_rx
        self.num_tx = num_tx
        self.snr_db = snr_db
        scale = np.sqrt(0.5)
        self.h = (self.rng.normal(0, scale, (num_rx, num_tx))
                  + 1j * self.rng.normal(0, scale, (num_rx, num_tx)))

    @property
    def noise_variance(self) -> float:
        return 10.0 ** (-self.snr_db / 10.0)

    def transmit(self, x: np.ndarray) -> np.ndarray:
        """Send one or more symbol vectors (columns) through H."""
        x = np.atleast_2d(np.asarray(x, dtype=np.complex128))
        if x.shape[0] != self.num_tx:
            x = x.T
        sigma = np.sqrt(self.noise_variance / 2.0)
        noise = (self.rng.normal(0, sigma, (self.num_rx, x.shape[1]))
                 + 1j * self.rng.normal(0, sigma, (self.num_rx, x.shape[1])))
        return self.h @ x + noise


def ls_channel_estimate(received_pilots: np.ndarray,
                        sent_pilots: np.ndarray) -> np.ndarray:
    """Least-squares MIMO channel estimate from pilot bursts.

    ``sent_pilots``  — (num_tx, num_pilots) known symbols;
    ``received_pilots`` — (num_rx, num_pilots) observations.
    Returns the (num_rx, num_tx) channel estimate
    ``H_hat = Y P^H (P P^H)^-1``.
    """
    y = np.atleast_2d(np.asarray(received_pilots, dtype=np.complex128))
    p = np.atleast_2d(np.asarray(sent_pilots, dtype=np.complex128))
    if y.shape[1] != p.shape[1]:
        raise ValueError("pilot lengths differ")
    if p.shape[1] < p.shape[0]:
        raise ValueError("need at least as many pilots as streams")
    gram = p @ p.conj().T
    return y @ p.conj().T @ np.linalg.inv(gram)

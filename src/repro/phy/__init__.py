"""Reference PHY kernels.

Small, testable NumPy implementations of the signal-processing
operations whose *runtimes* the simulator models (paper Appendix A.1):
CRC attachment/checking, LDPC encoding and iterative decoding, QAM
modulation/demodulation, OFDM channel estimation and MIMO
equalization.  They are not meant to be fast — they exist to

* document what each simulated task actually computes, and
* validate the cost model's qualitative assumptions (e.g. LDPC
  decoding iterations grow as the SNR margin shrinks, which is the
  non-linearity Concordia's per-leaf buffers capture).

See :mod:`repro.phy.validate` for the calibration checks.
"""

from .channel import AwgnChannel, RayleighChannel, ls_channel_estimate
from .crc import crc16, crc24, crc_append, crc_check
from .equalizer import mmse_equalize, zf_equalize
from .ldpc import LdpcCode, decode_bit_flip, encode
from .modulation import (
    CONSTELLATIONS,
    demodulate_hard,
    modulate,
    qam_constellation,
)
from .ofdm import OfdmConfig, ofdm_demodulate, ofdm_modulate
from .polar import PolarCode, bsc_llrs, polar_decode_sc, polar_encode

__all__ = [
    "AwgnChannel",
    "CONSTELLATIONS",
    "LdpcCode",
    "OfdmConfig",
    "ofdm_demodulate",
    "ofdm_modulate",
    "PolarCode",
    "bsc_llrs",
    "polar_decode_sc",
    "polar_encode",
    "RayleighChannel",
    "crc16",
    "crc24",
    "crc_append",
    "crc_check",
    "decode_bit_flip",
    "demodulate_hard",
    "encode",
    "ls_channel_estimate",
    "mmse_equalize",
    "modulate",
    "qam_constellation",
    "zf_equalize",
]

"""Cyclic redundancy checks (3GPP 38.212 §5.1).

5G NR attaches CRC-24A to transport blocks and CRC-24B to code blocks;
CRC-16 is used for small blocks.  Table-driven bitwise implementation
over NumPy bit arrays — the reference for the simulator's CRC_ATTACH /
CRC_CHECK tasks.
"""

from __future__ import annotations

import numpy as np

__all__ = ["crc24", "crc16", "crc_append", "crc_check",
           "CRC24A_POLY", "CRC16_POLY"]

#: CRC-24A generator polynomial of 38.212 (x^24 + x^23 + ... + 1),
#: expressed without the leading x^24 term.
CRC24A_POLY = 0x864CFB
#: CRC-16 generator polynomial (CCITT).
CRC16_POLY = 0x1021


def _crc(bits: np.ndarray, poly: int, width: int) -> int:
    """Bitwise long-division CRC over a 0/1 array (MSB first)."""
    bits = np.asarray(bits, dtype=np.uint8).ravel()
    register = 0
    top = 1 << (width - 1)
    mask = (1 << width) - 1
    for bit in bits:
        register ^= int(bit) << (width - 1)
        if register & top:
            register = ((register << 1) ^ poly) & mask
        else:
            register = (register << 1) & mask
    return register


def crc24(bits: np.ndarray) -> int:
    """CRC-24A checksum of a bit array."""
    return _crc(bits, CRC24A_POLY, 24)


def crc16(bits: np.ndarray) -> int:
    """CRC-16/CCITT checksum of a bit array."""
    return _crc(bits, CRC16_POLY, 16)


def _int_to_bits(value: int, width: int) -> np.ndarray:
    return np.array([(value >> (width - 1 - i)) & 1 for i in range(width)],
                    dtype=np.uint8)


def crc_append(bits: np.ndarray, width: int = 24) -> np.ndarray:
    """Append the CRC parity bits to a payload (transport-block CRC)."""
    bits = np.asarray(bits, dtype=np.uint8).ravel()
    if width == 24:
        checksum = crc24(bits)
    elif width == 16:
        checksum = crc16(bits)
    else:
        raise ValueError(f"unsupported CRC width {width}")
    return np.concatenate([bits, _int_to_bits(checksum, width)])


def crc_check(bits_with_crc: np.ndarray, width: int = 24) -> bool:
    """Verify a payload+CRC bit array; True when the checksum matches."""
    bits = np.asarray(bits_with_crc, dtype=np.uint8).ravel()
    if len(bits) <= width:
        raise ValueError("input shorter than the CRC itself")
    payload, parity = bits[:-width], bits[-width:]
    if width == 24:
        checksum = crc24(payload)
    elif width == 16:
        checksum = crc16(payload)
    else:
        raise ValueError(f"unsupported CRC width {width}")
    return bool(np.array_equal(parity, _int_to_bits(checksum, width)))

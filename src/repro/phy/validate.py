"""Cost-model validation against the reference PHY kernels.

The simulator's runtime cost model (repro.ran.tasks) encodes
qualitative claims about the signal-processing algorithms; this module
*measures* the corresponding quantities on the actual kernels:

* LDPC decoding iterations grow as SNR falls toward the MCS threshold
  (the §4.1 non-linearity behind Concordia's parameterized WCETs);
* higher modulation orders are more error-prone at equal SNR (which is
  why link adaptation picks them only at high SNR);
* MMSE equalization beats zero-forcing at low SNR and converges to it
  at high SNR.

Used by tests and the ``examples/phy_validation.py`` walkthrough.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .channel import AwgnChannel, RayleighChannel
from .equalizer import mmse_equalize, zf_equalize
from .ldpc import LdpcCode, decode_bit_flip, encode
from .modulation import demodulate_hard, modulate

__all__ = [
    "ldpc_iterations_vs_snr",
    "ber_vs_modulation",
    "equalizer_mse",
]


def _bsc_from_snr(snr_db: float, bits_per_symbol: int = 2) -> float:
    """Approximate bit-flip probability of hard-demodulated QAM+AWGN."""
    # Q-function approximation for Gray-mapped QAM.
    from math import erfc, sqrt
    snr = 10.0 ** (snr_db / 10.0)
    side = 2 ** (bits_per_symbol // 2)
    factor = 3.0 / (2 * (side**2 - 1))
    return 0.5 * erfc(sqrt(factor * snr))


def ldpc_iterations_vs_snr(
    snrs_db=(0.0, 2.0, 4.0, 6.0, 8.0),
    trials: int = 40,
    code: Optional[LdpcCode] = None,
    seed: int = 0,
) -> dict:
    """Mean decode iterations and success rate per SNR point.

    Bits are flipped with the hard-decision error probability implied
    by the SNR; the bit-flipping decoder's iteration count is the
    decoding-work proxy.
    """
    rng = np.random.default_rng(seed)
    code = code if code is not None else LdpcCode(n=96, rate=0.5, seed=1)
    results = {}
    for snr_db in snrs_db:
        flip_prob = _bsc_from_snr(snr_db)
        iterations = []
        successes = 0
        for __ in range(trials):
            message = rng.integers(0, 2, code.k).astype(np.uint8)
            codeword = encode(code, message)
            noisy = codeword ^ (rng.random(code.n) <
                                flip_prob).astype(np.uint8)
            outcome = decode_bit_flip(code, noisy, max_iterations=30)
            iterations.append(outcome.iterations)
            successes += outcome.success
        results[snr_db] = {
            "mean_iterations": float(np.mean(iterations)),
            "success_rate": successes / trials,
            "flip_probability": flip_prob,
        }
    return results


def ber_vs_modulation(snr_db: float = 12.0, num_bits: int = 12_000,
                      seed: int = 0) -> dict:
    """Hard-decision BER per modulation order over AWGN."""
    rng = np.random.default_rng(seed)
    results = {}
    for order in (2, 4, 6, 8):
        bits = rng.integers(0, 2, num_bits).astype(np.uint8)
        symbols = modulate(bits, order)
        received = AwgnChannel(snr_db,
                               rng=np.random.default_rng(seed + order))(
            symbols)
        decoded = demodulate_hard(received, order)[: num_bits]
        results[order] = float(np.mean(decoded != bits))
    return results


def equalizer_mse(snr_db: float, num_rx: int = 4, num_tx: int = 2,
                  num_vectors: int = 200, seed: int = 0) -> dict:
    """Mean squared symbol error of ZF vs MMSE over a Rayleigh channel."""
    rng = np.random.default_rng(seed)
    channel = RayleighChannel(num_rx, num_tx, snr_db,
                              rng=np.random.default_rng(seed + 1))
    sent = (rng.choice([-1, 1], (num_tx, num_vectors))
            + 1j * rng.choice([-1, 1], (num_tx, num_vectors))) / np.sqrt(2)
    received = channel.transmit(sent)
    zf = zf_equalize(channel.h, received)
    mmse = mmse_equalize(channel.h, received, channel.noise_variance)
    return {
        "zf_mse": float(np.mean(np.abs(zf - sent) ** 2)),
        "mmse_mse": float(np.mean(np.abs(mmse - sent) ** 2)),
    }

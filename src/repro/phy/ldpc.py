"""A small LDPC code with iterative decoding (paper Appendix A.1).

5G NR user data uses quasi-cyclic LDPC codes (38.212).  Here we build a
regular Gallager-style LDPC code over a deterministic pseudo-random
parity-check matrix, encode by solving for parity bits, and decode with
the classic bit-flipping algorithm.  The decoder reports its
**iteration count**, which is the quantity the cost model cares about:
decoding effort rises sharply as the channel degrades — the
non-linearity of §4.1 that makes single-number WCETs pessimistic.

The code here is a faithful miniature, not the 38.212 base graphs: the
simulator only needs the qualitative iteration/SNR behaviour (validated
in :mod:`repro.phy.validate`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LdpcCode", "encode", "decode_bit_flip", "DecodeResult"]


@dataclass(frozen=True)
class DecodeResult:
    """Outcome of an LDPC decode attempt."""

    bits: np.ndarray
    iterations: int
    success: bool


class LdpcCode:
    """Regular (column-weight-3) LDPC code in systematic form.

    The parity-check matrix is brought to the systematic form
    ``H = [P | I]`` over GF(2) so encoding is ``parity = P @ message``.
    ``n`` is the block length and ``k`` the message length.
    """

    def __init__(self, n: int = 96, rate: float = 0.5,
                 seed: int = 0) -> None:
        if not 0.1 <= rate <= 0.95:
            raise ValueError("rate must be in [0.1, 0.95]")
        if n < 8:
            raise ValueError("block length too small")
        self.n = n
        self.k = int(round(n * rate))
        m = n - self.k
        if m < 3:
            raise ValueError("need at least 3 parity checks")
        rng = np.random.default_rng(seed)
        self._h = self._systematic_parity_matrix(n, m, rng)

    @staticmethod
    def _systematic_parity_matrix(n: int, m: int,
                                  rng: np.random.Generator) -> np.ndarray:
        """Random sparse P next to an identity: H = [P | I_m]."""
        k = n - m
        p = np.zeros((m, k), dtype=np.uint8)
        for col in range(k):
            rows = rng.choice(m, size=min(3, m), replace=False)
            p[rows, col] = 1
        # Ensure no empty check rows (every check covers >= 2 columns).
        for row in range(m):
            while p[row].sum() < 2:
                p[row, rng.integers(k)] ^= 1
        return np.concatenate([p, np.eye(m, dtype=np.uint8)], axis=1)

    @property
    def parity_check_matrix(self) -> np.ndarray:
        return self._h.copy()

    @property
    def rate(self) -> float:
        return self.k / self.n

    def syndrome(self, codeword: np.ndarray) -> np.ndarray:
        return (self._h @ np.asarray(codeword, dtype=np.uint8)) % 2


def encode(code: LdpcCode, message: np.ndarray) -> np.ndarray:
    """Systematic encoding: codeword = [message | parity]."""
    message = np.asarray(message, dtype=np.uint8).ravel()
    if len(message) != code.k:
        raise ValueError(f"message must have {code.k} bits")
    p = code.parity_check_matrix[:, : code.k]
    parity = (p @ message) % 2
    return np.concatenate([message, parity]).astype(np.uint8)


def decode_bit_flip(code: LdpcCode, received: np.ndarray,
                    max_iterations: int = 50) -> DecodeResult:
    """Gallager bit-flipping decoding.

    Each iteration flips the bits participating in the most unsatisfied
    parity checks; terminates early when the syndrome clears.  The
    iteration count is the decoder's work measure.
    """
    h = code.parity_check_matrix
    bits = np.asarray(received, dtype=np.uint8).copy().ravel()
    if len(bits) != code.n:
        raise ValueError(f"codeword must have {code.n} bits")
    for iteration in range(1, max_iterations + 1):
        syndrome = (h @ bits) % 2
        if not syndrome.any():
            return DecodeResult(bits=bits, iterations=iteration - 1,
                                success=True)
        # Count unsatisfied checks per bit and flip the worst offenders.
        votes = h.T @ syndrome
        worst = votes.max()
        if worst == 0:
            break
        bits[votes == worst] ^= 1
    syndrome = (h @ bits) % 2
    return DecodeResult(bits=bits, iterations=max_iterations,
                        success=not syndrome.any())

"""OFDM (i)FFT processing (paper Appendix A.1's front-end tasks).

The simulator's FFT/IFFT tasks correspond to OFDM symbol processing:
mapping frequency-domain QAM symbols onto subcarriers, converting to
the time domain, and prepending a cyclic prefix (transmit side); the
receive side strips the prefix and returns to the frequency domain.
NumPy-FFT reference implementation used to validate that the front-end
cost scales with bandwidth (subcarrier count), not with traffic — which
is why the simulated FFT task costs the same on idle and busy slots.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["OfdmConfig", "ofdm_modulate", "ofdm_demodulate"]


@dataclass(frozen=True)
class OfdmConfig:
    """OFDM numerology for one carrier."""

    fft_size: int = 2048
    num_subcarriers: int = 1200  # occupied (active) subcarriers
    cyclic_prefix: int = 144

    def __post_init__(self) -> None:
        n = self.fft_size
        if n < 8 or (n & (n - 1)) != 0:
            raise ValueError("FFT size must be a power of two >= 8")
        if not 0 < self.num_subcarriers < self.fft_size:
            raise ValueError("occupied subcarriers must fit in the FFT")
        if self.cyclic_prefix < 0 or self.cyclic_prefix >= self.fft_size:
            raise ValueError("invalid cyclic prefix length")

    @property
    def symbol_length(self) -> int:
        """Time-domain samples per OFDM symbol including the prefix."""
        return self.fft_size + self.cyclic_prefix

    def _mapping(self) -> np.ndarray:
        """Subcarrier indices: centred around DC, DC unused."""
        half = self.num_subcarriers // 2
        negative = np.arange(self.fft_size - half, self.fft_size)
        positive = np.arange(1, self.num_subcarriers - half + 1)
        return np.concatenate([negative, positive])


def ofdm_modulate(config: OfdmConfig, symbols: np.ndarray) -> np.ndarray:
    """Frequency-domain symbols -> time-domain samples with CP.

    ``symbols`` is zero-padded to a whole number of OFDM symbols.
    Returns a 1-D complex array of ``k * symbol_length`` samples.
    """
    symbols = np.asarray(symbols, dtype=np.complex128).ravel()
    per_symbol = config.num_subcarriers
    remainder = len(symbols) % per_symbol
    if remainder:
        symbols = np.concatenate(
            [symbols, np.zeros(per_symbol - remainder, dtype=complex)])
    mapping = config._mapping()
    output = []
    for start in range(0, len(symbols), per_symbol):
        grid = np.zeros(config.fft_size, dtype=np.complex128)
        grid[mapping] = symbols[start:start + per_symbol]
        time_domain = np.fft.ifft(grid) * np.sqrt(config.fft_size)
        with_cp = np.concatenate(
            [time_domain[-config.cyclic_prefix:], time_domain]
            if config.cyclic_prefix else [time_domain])
        output.append(with_cp)
    return np.concatenate(output)


def ofdm_demodulate(config: OfdmConfig, samples: np.ndarray) -> np.ndarray:
    """Time-domain samples -> frequency-domain symbols (CP stripped)."""
    samples = np.asarray(samples, dtype=np.complex128).ravel()
    if len(samples) % config.symbol_length != 0:
        raise ValueError("samples must be whole OFDM symbols")
    mapping = config._mapping()
    output = []
    for start in range(0, len(samples), config.symbol_length):
        body = samples[start + config.cyclic_prefix:
                       start + config.symbol_length]
        grid = np.fft.fft(body) / np.sqrt(config.fft_size)
        output.append(grid[mapping])
    return np.concatenate(output)

"""Polar codes for control data (paper Appendix A.1).

5G NR protects control information with Polar codes (Arikan 2009).
This is a compact reference implementation: Bhattacharyya-parameter
channel ordering, systematic-free encoding via the Arikan kernel
``G = [[1, 0], [1, 1]]`` applied recursively, and successive
cancellation (SC) decoding over a binary symmetric channel.

Like the rest of :mod:`repro.phy`, it exists to document what the
simulated control-channel processing computes and to provide a
decoding-effort reference — SC decoding cost is deterministic in block
length (O(N log N)), which is why the paper's control tasks are far
more predictable than LDPC data decoding.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PolarCode", "polar_encode", "polar_decode_sc"]


def _bhattacharyya_order(n: int, design_p: float = 0.1) -> np.ndarray:
    """Channel reliability ordering via Bhattacharyya parameters.

    For a BSC with crossover ``design_p``, Z = 2 sqrt(p (1-p)); the
    polarization recursion is Z- = 2Z - Z^2 (worse) and Z+ = Z^2
    (better).  Returns channel indices sorted most-reliable first.
    """
    z = np.array([2.0 * np.sqrt(design_p * (1.0 - design_p))])
    while len(z) < n:
        worse = 2.0 * z - z**2
        better = z**2
        # Left half of the SC recursion sees the minus (worse)
        # channels, the right half the plus (better) ones.
        z = np.concatenate([worse, better])
    return np.argsort(z, kind="stable")


@dataclass(frozen=True)
class PolarCode:
    """An (N, K) polar code with a fixed information set."""

    block_length: int
    message_length: int
    design_p: float = 0.1

    def __post_init__(self) -> None:
        n = self.block_length
        if n < 2 or (n & (n - 1)) != 0:
            raise ValueError("block length must be a power of two >= 2")
        if not 0 < self.message_length <= n:
            raise ValueError("0 < K <= N required")

    @property
    def information_set(self) -> np.ndarray:
        """Indices of the K most reliable synthesized channels (sorted)."""
        order = _bhattacharyya_order(self.block_length, self.design_p)
        return np.sort(order[: self.message_length])

    @property
    def rate(self) -> float:
        return self.message_length / self.block_length


def _polar_transform(u: np.ndarray) -> np.ndarray:
    """Apply the Arikan transform G_N = B_N F^{(x) n} over GF(2).

    Iterative butterfly implementation (no bit-reversal needed because
    we apply the same transform at encode and track indices natively).
    """
    x = u.copy()
    n = len(x)
    step = 1
    while step < n:
        for start in range(0, n, 2 * step):
            for offset in range(step):
                i = start + offset
                x[i] ^= x[i + step]
        step *= 2
    return x


def polar_encode(code: PolarCode, message: np.ndarray) -> np.ndarray:
    """Encode K message bits into an N-bit polar codeword."""
    message = np.asarray(message, dtype=np.uint8).ravel()
    if len(message) != code.message_length:
        raise ValueError(f"message must have {code.message_length} bits")
    u = np.zeros(code.block_length, dtype=np.uint8)
    u[code.information_set] = message
    return _polar_transform(u)


def polar_decode_sc(code: PolarCode, llr: np.ndarray) -> np.ndarray:
    """Successive-cancellation decoding from channel LLRs.

    ``llr[i] > 0`` means bit i is more likely 0.  Frozen positions are
    forced to zero.  Returns the K decoded message bits.
    """
    llr = np.asarray(llr, dtype=np.float64).ravel()
    n = code.block_length
    if len(llr) != n:
        raise ValueError(f"need {n} LLRs")
    frozen = np.ones(n, dtype=bool)
    frozen[code.information_set] = False

    def decode(llrs, frozen_mask):
        """Returns (u bits, re-encoded x bits) of this subtree."""
        if len(llrs) == 1:
            if frozen_mask[0]:
                bit = np.zeros(1, dtype=np.uint8)
            else:
                bit = np.array([0 if llrs[0] >= 0 else 1], dtype=np.uint8)
            return bit, bit
        half = len(llrs) // 2
        a, b = llrs[:half], llrs[half:]
        # f-function (min-sum approximation).
        llr_left = np.sign(a) * np.sign(b) * np.minimum(np.abs(a),
                                                        np.abs(b))
        u_left, x_left = decode(llr_left, frozen_mask[:half])
        # g-function with partial-sum feedback from the re-encoded left.
        llr_right = b + (1.0 - 2.0 * x_left.astype(np.float64)) * a
        u_right, x_right = decode(llr_right, frozen_mask[half:])
        x = np.concatenate([x_left ^ x_right, x_right])
        u = np.concatenate([u_left, u_right])
        return u, x

    u_hat, __ = decode(llr, frozen)
    return u_hat[code.information_set]


def bsc_llrs(received: np.ndarray, crossover_p: float) -> np.ndarray:
    """LLRs of hard bits received over a BSC with crossover ``p``."""
    if not 0.0 < crossover_p < 0.5:
        raise ValueError("crossover probability must be in (0, 0.5)")
    received = np.asarray(received, dtype=np.uint8).ravel()
    magnitude = np.log((1.0 - crossover_p) / crossover_p)
    return np.where(received == 0, magnitude, -magnitude)

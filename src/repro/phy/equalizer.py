"""MIMO equalization and precoding references (paper Appendix A.1).

Zero-forcing and MMSE linear equalizers — the reference computations
behind the simulated EQUALIZATION task (undo the channel at the
receiver) and, transposed, the PRECODING task (pre-invert it at the
transmitter).  The paper notes linear schemes are what deployments use;
their cost scales with antennas × layers × bandwidth, which is how the
cost model parameterizes those tasks.
"""

from __future__ import annotations

import numpy as np

__all__ = ["zf_equalize", "mmse_equalize", "zf_precoder"]


def zf_equalize(h: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Zero-forcing: x_hat = (H^H H)^-1 H^H y (pseudo-inverse)."""
    h = np.atleast_2d(np.asarray(h, dtype=np.complex128))
    y = np.atleast_2d(np.asarray(y, dtype=np.complex128))
    if y.shape[0] != h.shape[0]:
        raise ValueError("y must have one row per receive antenna")
    return np.linalg.pinv(h) @ y


def mmse_equalize(h: np.ndarray, y: np.ndarray,
                  noise_variance: float) -> np.ndarray:
    """Linear MMSE: x_hat = (H^H H + sigma^2 I)^-1 H^H y.

    Trades residual interference against noise amplification; at high
    SNR it converges to the zero-forcing solution.
    """
    if noise_variance < 0:
        raise ValueError("noise variance must be non-negative")
    h = np.atleast_2d(np.asarray(h, dtype=np.complex128))
    y = np.atleast_2d(np.asarray(y, dtype=np.complex128))
    if y.shape[0] != h.shape[0]:
        raise ValueError("y must have one row per receive antenna")
    gram = h.conj().T @ h
    regularized = gram + noise_variance * np.eye(h.shape[1])
    return np.linalg.solve(regularized, h.conj().T @ y)


def zf_precoder(h: np.ndarray) -> np.ndarray:
    """Zero-forcing precoder W = H^H (H H^H)^-1, column-normalized.

    Used on the downlink so each user sees its own stream without
    inter-user interference (the paper's linear-precoding reference).
    """
    h = np.atleast_2d(np.asarray(h, dtype=np.complex128))
    w = h.conj().T @ np.linalg.inv(h @ h.conj().T)
    norms = np.linalg.norm(w, axis=0, keepdims=True)
    norms[norms == 0] = 1.0
    return w / norms

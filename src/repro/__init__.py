"""Concordia (SIGCOMM 2021) reproduction.

A microsecond-resolution simulation of a 5G vRAN pool sharing compute
with best-effort workloads, including:

* the Concordia userspace deadline scheduler with federated
  core allocation and a quantile-decision-tree WCET predictor;
* the FlexRAN-style vRAN substrate: 5G NR task DAGs, bursty traffic,
  calibrated runtime/OS/cache-interference models;
* baseline schedulers (vanilla FlexRAN, Shenango-variant,
  utilization-based) and WCET models (linear regression, gradient
  boosting, EVT-based pWCET);
* collocated workload models (Redis, Nginx, TPCC, MLPerf, Mix).

Quickstart::

    from repro import (pool_20mhz_7cells, train_predictor,
                       ConcordiaScheduler, Simulation)

    config = pool_20mhz_7cells()
    predictor = train_predictor(config, num_slots=2000)
    sim = Simulation(config, ConcordiaScheduler(predictor),
                     workload="redis", load_fraction=0.25, seed=1)
    result = sim.run(10_000)
    print(result.latency, result.reclaimed_fraction)
"""

from .baselines.flexran import DedicatedScheduler, FlexRanScheduler
from .baselines.shenango import ShenangoScheduler
from .baselines.static import StaticPartitionScheduler
from .baselines.utilization import UtilizationScheduler
from .core.federated import CoreDemand, federated_core_demand
from .core.leaf_evt import LeafEvtQuantileTree
from .core.models import (
    GradientBoostingWCET,
    LinearRegressionWCET,
    PwcetEVT,
    QuantileTreeWCET,
    WcetModel,
)
from .core.predictor import ConcordiaPredictor, OfflineDataset
from .core.quantile_tree import QuantileDecisionTree, TreeConfig
from .core.ring_buffer import RingBuffer
from .core.scheduler import ConcordiaScheduler
from .core.training import collect_offline_dataset, train_predictor
from .ran.config import (
    CellConfig,
    Duplex,
    PoolConfig,
    SlotType,
    cell_100mhz_tdd,
    cell_20mhz_fdd,
    pool_100mhz_2cells,
    pool_20mhz_7cells,
)
from .ran.dag import DagBuilder, DagInstance
from .ran.harq import HarqConfig, HarqManager
from .ran.mac import MacCell, ProportionalFairScheduler, RoundRobinScheduler
from .ran.tasks import FEATURE_NAMES, CostModel, TaskInstance, TaskType
from .ran.traffic import CellTraffic, MarkovBurstTraffic, lte_cell_traffic
from .sim.engine import Engine
from .sim.metrics import LatencySummary, Metrics
from .sim.pool import VranPool, Worker, WorkerState
from .sim.runner import Simulation, SimulationResult
from .workloads.base import Workload, WorkloadHost, WorkloadSpec
from .workloads.catalog import WORKLOAD_SPECS, make_host, make_workload

__version__ = "1.0.0"

__all__ = [
    "CellConfig",
    "CellTraffic",
    "ConcordiaPredictor",
    "ConcordiaScheduler",
    "CoreDemand",
    "CostModel",
    "DagBuilder",
    "DagInstance",
    "DedicatedScheduler",
    "Duplex",
    "Engine",
    "FEATURE_NAMES",
    "FlexRanScheduler",
    "GradientBoostingWCET",
    "LatencySummary",
    "LeafEvtQuantileTree",
    "LinearRegressionWCET",
    "MarkovBurstTraffic",
    "Metrics",
    "OfflineDataset",
    "PoolConfig",
    "PwcetEVT",
    "QuantileDecisionTree",
    "QuantileTreeWCET",
    "RingBuffer",
    "ShenangoScheduler",
    "StaticPartitionScheduler",
    "HarqConfig",
    "HarqManager",
    "MacCell",
    "ProportionalFairScheduler",
    "RoundRobinScheduler",
    "Simulation",
    "SimulationResult",
    "SlotType",
    "TaskInstance",
    "TaskType",
    "TreeConfig",
    "UtilizationScheduler",
    "VranPool",
    "WcetModel",
    "Worker",
    "WorkerState",
    "Workload",
    "WorkloadHost",
    "WorkloadSpec",
    "WORKLOAD_SPECS",
    "cell_100mhz_tdd",
    "cell_20mhz_fdd",
    "collect_offline_dataset",
    "federated_core_demand",
    "lte_cell_traffic",
    "make_host",
    "make_workload",
    "pool_100mhz_2cells",
    "pool_20mhz_7cells",
    "train_predictor",
]

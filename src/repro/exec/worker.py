"""Child-process entry point for the batch runner.

Each job runs in its own forked process with a dedicated pipe back to
the parent.  The worker never raises across the process boundary: any
exception — including :class:`SpecError` from a malformed payload — is
serialized as an error message plus traceback, so one crashing job can
never take the batch down.  Hard crashes (a worker dying without
reporting) surface in the parent as a nonzero exit code.
"""

from __future__ import annotations

import time
import traceback

from .spec import SimSpec, execute_spec

__all__ = ["run_job_in_child"]


def run_job_in_child(conn, spec_payload: dict, attempt: int) -> None:
    """Execute one spec and ship (status, payload) through ``conn``."""
    start = time.perf_counter()
    try:
        spec = SimSpec.from_dict(spec_payload)
        result = execute_spec(spec, attempt=attempt)
        conn.send(("ok", {
            "result": result,
            "wall_s": time.perf_counter() - start,
        }))
    except BaseException as exc:  # noqa: BLE001 - isolation boundary
        try:
            conn.send(("error", {
                "error": f"{type(exc).__name__}: {exc}",
                "traceback": traceback.format_exc(),
                "wall_s": time.perf_counter() - start,
            }))
        except (BrokenPipeError, OSError):  # parent gave up on us
            pass
    finally:
        conn.close()

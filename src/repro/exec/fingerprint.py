"""Fingerprint of the calibrated simulation models.

Cached experiment results are only valid for the model constants they
were produced with (docs/CALIBRATION.md registers every one).  Rather
than enumerating constants — easy to forget one — the fingerprint
hashes the *source* of every module that defines simulation behaviour:
any calibration change, however small, yields a new fingerprint and
cleanly invalidates all cached artifacts keyed under the old one.

Experiment drivers and the CLI live outside the fingerprint on
purpose: reformatting a table must not throw away cached simulations.
"""

from __future__ import annotations

import hashlib
from functools import lru_cache
from pathlib import Path

__all__ = ["model_fingerprint", "FINGERPRINTED_PACKAGES"]

#: Sub-packages of ``repro`` whose sources define simulation results.
FINGERPRINTED_PACKAGES = ("ran", "sim", "core", "workloads", "baselines",
                          "scenario")


@lru_cache(maxsize=1)
def model_fingerprint() -> str:
    """Hex digest over the model-defining sources (stable per tree)."""
    root = Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for package in FINGERPRINTED_PACKAGES:
        for path in sorted((root / package).rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
    return digest.hexdigest()[:16]

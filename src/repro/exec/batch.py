"""The worker-pool batch runner: specs in, outcomes + telemetry out.

Execution model (the experiment-faabric work-queue shape, adapted):

* jobs already in the cache are reported as hits without spawning
  anything;
* the parent pre-trains (or reloads) every distinct predictor the
  batch needs, so forked workers inherit the trained models instead of
  re-training them per process;
* at most ``jobs`` child processes run at once, each executing one
  spec hermetically and reporting through a pipe;
* a job that raises is recorded and retried up to ``retries`` times —
  a crash degrades to a recorded error, never kills the batch;
* a job that exceeds ``timeout_s`` is killed (``SIGTERM``) and
  recorded as a timeout (not retried: a deterministic job that timed
  out once will time out again).

``jobs=1`` (the default without ``REPRO_JOBS``) executes in-process in
submission order; because every spec is hermetic, the parallel results
are byte-identical to that serial baseline.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from multiprocessing.connection import wait as connection_wait
from typing import Callable, List, Optional, Sequence

from ..obs.events import CacheEvent, global_bus
from .cache import ResultCache, activated_cache, active_cache
from .fingerprint import model_fingerprint
from .spec import SimSpec, pool_config_from_dict, spec_key
from .worker import run_job_in_child

__all__ = ["JobOutcome", "BatchReport", "default_jobs", "run_batch"]

ProgressCallback = Callable[[dict], None]


def default_jobs() -> int:
    """Worker count from ``REPRO_JOBS`` (defaults to 1 = serial)."""
    raw = os.environ.get("REPRO_JOBS")
    if raw is None:
        return 1
    try:
        jobs = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_JOBS must be a positive integer, got {raw!r}"
        ) from None
    if jobs <= 0:
        raise ValueError(
            f"REPRO_JOBS must be a positive integer, got {raw!r}")
    return jobs


@dataclass
class JobOutcome:
    """What happened to one spec in a batch."""

    index: int
    spec: SimSpec
    key: str
    status: str  # "ok" | "cached" | "failed" | "timeout"
    attempts: int = 1
    wall_s: float = 0.0  # cumulative over attempts; 0 for cache hits
    error: Optional[str] = None
    result: Optional[dict] = None

    @property
    def succeeded(self) -> bool:
        return self.status in ("ok", "cached")


@dataclass
class BatchReport:
    """All outcomes plus the aggregate telemetry of one batch run."""

    outcomes: List[JobOutcome]
    jobs: int
    batch_wall_s: float
    fingerprint: str = ""
    retried: int = 0

    def _count(self, status: str) -> int:
        return sum(1 for o in self.outcomes if o.status == status)

    @property
    def executed(self) -> int:
        """Jobs that actually ran a simulation (successfully)."""
        return self._count("ok")

    @property
    def cached(self) -> int:
        return self._count("cached")

    @property
    def failed(self) -> int:
        return self._count("failed") + self._count("timeout")

    @property
    def total_job_wall_s(self) -> float:
        """CPU-side wall-clock spent inside jobs (all attempts)."""
        return sum(o.wall_s for o in self.outcomes)

    @property
    def speedup(self) -> float:
        """Aggregate job time over batch time (1.0 = no overlap)."""
        return self.total_job_wall_s / max(self.batch_wall_s, 1e-9)

    def results(self, strict: bool = True) -> list:
        """Per-spec :class:`SimulationResult`s, in submission order."""
        from ..sim.runner import SimulationResult

        failures = [o for o in self.outcomes if not o.succeeded]
        if failures and strict:
            lines = "; ".join(
                f"job {o.index} ({o.spec.label()}): {o.status}"
                f" — {o.error}" for o in failures)
            raise RuntimeError(
                f"{len(failures)} of {len(self.outcomes)} jobs failed: "
                f"{lines}")
        return [
            SimulationResult.from_dict(o.result) if o.succeeded else None
            for o in self.outcomes
        ]

    def summary(self) -> str:
        return (f"{len(self.outcomes)} jobs on {self.jobs} worker(s): "
                f"{self.executed} executed, {self.cached} cached, "
                f"{self.failed} failed ({self.retried} retries) | "
                f"wall {self.batch_wall_s:.1f}s, "
                f"job time {self.total_job_wall_s:.1f}s, "
                f"speedup {self.speedup:.1f}x")


@dataclass
class _Pending:
    index: int
    spec: SimSpec
    key: str
    attempt: int = 0
    wall_s: float = 0.0  # accumulated over failed attempts


@dataclass
class _Running:
    pending: _Pending
    process: multiprocessing.Process
    conn: object
    started: float = field(default_factory=time.perf_counter)


def _result_loadable(artifact: dict) -> bool:
    """True when the cached result payload deserializes today."""
    from ..sim.runner import RESULT_SCHEMAS

    result = artifact.get("result")
    return (isinstance(result, dict)
            and result.get("schema") in RESULT_SCHEMAS)


def run_batch(
    specs: Sequence[SimSpec],
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    use_cache: bool = True,
    timeout_s: Optional[float] = None,
    retries: int = 1,
    progress: Optional[ProgressCallback] = None,
) -> BatchReport:
    """Execute a batch of specs; never raises for individual jobs."""
    jobs = default_jobs() if jobs is None else max(1, int(jobs))
    if use_cache and cache is None:
        cache = active_cache()
    if not use_cache:
        cache = None
    fingerprint = model_fingerprint()
    started = time.perf_counter()
    outcomes: List[Optional[JobOutcome]] = [None] * len(specs)
    done = 0

    def emit(kind: str, outcome: JobOutcome) -> None:
        if progress is None:
            return
        progress({
            "kind": kind,
            "index": outcome.index,
            "total": len(specs),
            "done": done,
            "status": outcome.status,
            "label": outcome.spec.label(),
            "wall_s": outcome.wall_s,
            "error": outcome.error,
        })

    pending: List[_Pending] = []
    bus = global_bus()
    for index, spec in enumerate(specs):
        key = spec_key(spec, fingerprint)
        artifact = cache.get(key) if cache is not None else None
        if artifact is not None and not _result_loadable(artifact):
            # Result-schema bump since the artifact was written (the
            # spec payload hashes identically but the stored result
            # can no longer be deserialized): treat as a miss and
            # re-execute instead of crashing in BatchReport.results().
            artifact = None
        if artifact is not None:
            done += 1
            outcomes[index] = JobOutcome(index=index, spec=spec, key=key,
                                         status="cached", attempts=0,
                                         result=artifact["result"])
            if bus.enabled:
                bus.emit(CacheEvent(ts_us=bus.now(), kind="cache_hit",
                                    key=key, label=spec.label()))
            emit("cached", outcomes[index])
        else:
            if bus.enabled:
                bus.emit(CacheEvent(ts_us=bus.now(), kind="cache_miss",
                                    key=key, label=spec.label()))
            pending.append(_Pending(index=index, spec=spec, key=key))

    retried = 0
    if pending:
        # Activate the cache process-wide while warming so predictor
        # training persists/reloads through it (forked workers inherit
        # both the activation and the trained models).
        if cache is not None:
            with activated_cache(cache):
                _warm_predictors(pending)
        else:
            _warm_predictors(pending)

    def record(outcome: JobOutcome) -> None:
        nonlocal done
        done += 1
        outcomes[outcome.index] = outcome
        if (outcome.status == "ok" and cache is not None
                and outcome.result is not None):
            cache.put(outcome.key, {
                "schema": 1,
                "key": outcome.key,
                "fingerprint": fingerprint,
                "spec": outcome.spec.to_dict(),
                "result": outcome.result,
                "meta": {"wall_s": outcome.wall_s,
                         "attempts": outcome.attempts,
                         "created_unix": time.time()},
            })
        emit(outcome.status if outcome.succeeded else "failed", outcome)

    if jobs <= 1:
        retried = _run_serial(pending, retries, record)
    else:
        retried = _run_parallel(pending, jobs, timeout_s, retries, record)

    return BatchReport(
        outcomes=[o for o in outcomes if o is not None],
        jobs=jobs,
        batch_wall_s=time.perf_counter() - started,
        fingerprint=fingerprint,
        retried=retried,
    )


# -- predictor pre-warming ---------------------------------------------------------


def _warm_predictors(pending: Sequence[_Pending]) -> None:
    """Train/reload each distinct predictor once, in the parent.

    Forked workers then inherit the trained models through the
    process-local predictor cache instead of re-training one copy per
    worker; with an on-disk cache active the models also persist
    across batches.
    """
    from ..experiments.common import get_predictor
    from .spec import canonical_json

    seen = set()
    for item in pending:
        spec = item.spec
        if spec.policy != "concordia" or spec.training_slots is None:
            continue
        if "predictor" in spec.policy_kwargs:
            continue
        key = canonical_json({"config": spec.config,
                              "seed": spec.training_seed,
                              "slots": spec.training_slots})
        if key in seen:
            continue
        seen.add(key)
        try:
            get_predictor(pool_config_from_dict(spec.config),
                          seed=spec.training_seed,
                          num_slots=spec.training_slots)
        except Exception:  # noqa: BLE001 - the job itself will report it
            pass


# -- serial execution --------------------------------------------------------------


def _run_serial(pending: Sequence[_Pending], retries: int,
                record: Callable[[JobOutcome], None]) -> int:
    """In-process execution in submission order (no timeout support)."""
    from .spec import execute_spec

    retried = 0
    for item in pending:
        error = None
        while True:
            start = time.perf_counter()
            try:
                result = execute_spec(item.spec, attempt=item.attempt)
            except Exception as exc:  # noqa: BLE001 - isolation boundary
                item.wall_s += time.perf_counter() - start
                error = f"{type(exc).__name__}: {exc}"
                if item.attempt < retries:
                    item.attempt += 1
                    retried += 1
                    continue
                record(JobOutcome(index=item.index, spec=item.spec,
                                  key=item.key, status="failed",
                                  attempts=item.attempt + 1,
                                  wall_s=item.wall_s, error=error))
                break
            item.wall_s += time.perf_counter() - start
            record(JobOutcome(index=item.index, spec=item.spec,
                              key=item.key, status="ok",
                              attempts=item.attempt + 1,
                              wall_s=item.wall_s, result=result))
            break
    return retried


# -- parallel execution ------------------------------------------------------------


def _mp_context():
    """Fork when available (workers inherit trained predictors)."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else None)


def _run_parallel(pending: Sequence[_Pending], jobs: int,
                  timeout_s: Optional[float], retries: int,
                  record: Callable[[JobOutcome], None]) -> int:
    ctx = _mp_context()
    queue: List[_Pending] = list(pending)
    active: List[_Running] = []
    retried = 0

    def spawn(item: _Pending) -> None:
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=run_job_in_child,
            args=(child_conn, item.spec.to_dict(), item.attempt),
        )
        process.start()
        child_conn.close()
        active.append(_Running(pending=item, process=process,
                               conn=parent_conn))

    def finish(run: _Running, status: str, wall_s: float,
               result: Optional[dict] = None,
               error: Optional[str] = None) -> bool:
        """Record or requeue; returns True when the job was retried."""
        nonlocal retried
        item = run.pending
        item.wall_s += wall_s
        if status == "error" and item.attempt < retries:
            item.attempt += 1
            retried += 1
            queue.append(item)
            return True
        final = "ok" if status == "ok" else (
            "timeout" if status == "timeout" else "failed")
        record(JobOutcome(index=item.index, spec=item.spec, key=item.key,
                          status=final, attempts=item.attempt + 1,
                          wall_s=item.wall_s, result=result, error=error))
        return False

    try:
        _drain(queue, active, jobs, timeout_s, spawn, finish)
    except BaseException:
        # Ctrl-C (or any parent-side failure): kill the workers so the
        # interpreter's atexit join doesn't hang on orphaned
        # simulations.
        for run in active:
            run.process.terminate()
        for run in active:
            run.process.join(timeout=5.0)
            run.conn.close()
        raise
    return retried


def _drain(queue: List[_Pending], active: List[_Running], jobs: int,
           timeout_s: Optional[float],
           spawn: Callable[[_Pending], None],
           finish: Callable[..., bool]) -> None:
    """Run the spawn/wait loop until every queued job is finished.

    The parent blocks in :func:`multiprocessing.connection.wait` on the
    children's pipes — zero CPU while simulations run, immediate wakeup
    on the first completion.  A child that dies without reporting
    surfaces as an EOF on its (now readable) pipe; per-job timeouts
    bound the wait so overdue children are killed on schedule.
    """
    while queue or active:
        while queue and len(active) < jobs:
            spawn(queue.pop(0))
        # Reap overdue children first so the wait below never blocks
        # past the earliest per-job deadline.
        wait_timeout = None
        if timeout_s is not None:
            now = time.perf_counter()
            for run in list(active):
                if now - run.started > timeout_s:
                    run.process.terminate()
                    run.process.join(timeout=5.0)
                    run.conn.close()
                    active.remove(run)
                    finish(run, "timeout", now - run.started,
                           error=f"job exceeded timeout ({timeout_s:g}s) "
                                 f"and was killed")
            if not active:
                continue
            wait_timeout = max(
                0.0,
                min(timeout_s - (now - run.started) for run in active))
        if not active:
            continue
        ready = connection_wait([run.conn for run in active],
                                timeout=wait_timeout)
        by_conn = {run.conn: run for run in active}
        for conn in ready:
            run = by_conn[conn]
            try:
                status, payload = conn.recv()
            except (EOFError, OSError):
                # Died without reporting (segfault, os._exit, ...):
                # the closed pipe is what made the connection ready.
                run.process.join(timeout=5.0)
                exitcode = run.process.exitcode
                status, payload = "error", {
                    "error": f"worker exited with code {exitcode} "
                             f"without reporting a result",
                    "wall_s": time.perf_counter() - run.started}
            run.conn.close()
            run.process.join()
            active.remove(run)
            finish(run, status, payload.get("wall_s", 0.0),
                   result=payload.get("result"),
                   error=payload.get("error"))

"""Canonical result digests for determinism regression testing.

The fast-path work on the simulator (pooled events, O(1) dispatch,
vectorized DAG construction) is only admissible if it changes *no
numbers*: same RNG draw order, same event interleaving, same floats.
The cheapest way to enforce that across a whole
:class:`repro.sim.runner.SimulationResult` is to hash a canonical JSON
rendering of its payload and compare digests before/after a change
(and serial vs parallel execution).

Wall-clock telemetry (the scheduler's ``*_wall_s`` overhead counters)
is measured in host time and differs between otherwise identical runs,
so it is stripped before hashing.  Everything else — latency
percentiles, core-time integrals, event counters, histograms — is a
pure function of the scenario and seed and must reproduce exactly.
"""

from __future__ import annotations

import hashlib
import json

__all__ = ["canonical_result_payload", "canonical_json", "result_digest"]

#: Substrings identifying telemetry keys measured in *host* wall-clock
#: time; these are legitimately nondeterministic and excluded from the
#: canonical payload.
_VOLATILE_KEY_MARKERS = ("wall_s",)


def _is_volatile(key: str) -> bool:
    return any(marker in key for marker in _VOLATILE_KEY_MARKERS)


def canonical_result_payload(payload: dict) -> dict:
    """Strip host-time telemetry from a ``SimulationResult.to_dict()``.

    Returns a new dict; the input is not modified.
    """
    clean = dict(payload)
    scenario = clean.get("scenario")
    if isinstance(scenario, dict) and "engine_mode" in scenario:
        # The engine mode is an execution strategy, not a semantic
        # scenario parameter: the array-timeline kernel is required to
        # reproduce the event engine's results byte-for-byte, and the
        # digest is exactly the regression test of that contract.
        scenario = dict(scenario)
        del scenario["engine_mode"]
        clean["scenario"] = scenario
    telemetry = clean.get("telemetry")
    if isinstance(telemetry, dict):
        clean_telemetry = {}
        for section, values in telemetry.items():
            if isinstance(values, dict):
                clean_telemetry[section] = {
                    key: value for key, value in values.items()
                    if not _is_volatile(key)
                }
            else:
                clean_telemetry[section] = values
        clean["telemetry"] = clean_telemetry
    return clean


def canonical_json(payload: dict) -> str:
    """Deterministic JSON rendering: sorted keys, no whitespace noise.

    ``json.dumps`` renders floats with ``repr``, the shortest string
    that round-trips the exact double — two bitwise-identical results
    therefore produce identical text, and any ULP-level drift in the
    simulation shows up as a different digest.
    """
    return json.dumps(canonical_result_payload(payload), sort_keys=True,
                      separators=(",", ":"), allow_nan=True)


def result_digest(result) -> str:
    """SHA-256 hex digest of a result's canonical JSON payload.

    Accepts a :class:`~repro.sim.runner.SimulationResult` or an already
    serialized ``to_dict()`` payload.
    """
    payload = result if isinstance(result, dict) else result.to_dict()
    text = canonical_json(payload)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()

"""Content-addressed on-disk result cache.

Artifacts live under ``<root>/<key[:2]>/<key>.json`` where ``key`` is
the spec hash from :func:`repro.exec.spec.spec_key` (which already
folds in the model fingerprint — a calibration change changes every
key, so stale artifacts are simply never addressed again).  Trained
predictors are pickled under ``<root>/predictors/``.

A cache can be *activated* process-wide so that
:func:`repro.experiments.common.run_simulation` and the predictor
training path route through it without plumbing a handle through every
driver; setting ``REPRO_CACHE=1`` activates the default cache
(``results/cache``, overridable via ``REPRO_CACHE_DIR``).
"""

from __future__ import annotations

import contextlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Iterator, Optional

__all__ = [
    "ResultCache",
    "activate_cache",
    "activated_cache",
    "active_cache",
    "deactivate_cache",
    "default_cache_dir",
]

_FALSEY = ("", "0", "false", "no", "off")


def default_cache_dir() -> Path:
    """``REPRO_CACHE_DIR`` or ``results/cache`` under the cwd."""
    return Path(os.environ.get("REPRO_CACHE_DIR", "results/cache"))


class ResultCache:
    """JSON artifact store addressed by spec hash, plus predictor pickles."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    # -- result artifacts ---------------------------------------------------------

    def _artifact_path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[dict]:
        """The stored artifact for ``key``, or None (corrupt == miss)."""
        path = self._artifact_path(key)
        try:
            with path.open("r", encoding="utf-8") as handle:
                artifact = json.load(handle)
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            return None
        self.hits += 1
        return artifact

    def put(self, key: str, artifact: dict) -> Path:
        """Atomically persist an artifact (last writer wins)."""
        path = self._artifact_path(key)
        self._atomic_write(path, json.dumps(artifact, indent=1,
                                            sort_keys=True).encode())
        return path

    # -- trained predictors -------------------------------------------------------

    def predictor_path(self, key: str) -> Path:
        return self.root / "predictors" / f"{key}.pkl"

    def load_predictor(self, key: str):
        """Unpickle a stored predictor, or None (corrupt == miss)."""
        try:
            with self.predictor_path(key).open("rb") as handle:
                return pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError,
                AttributeError, ImportError):
            return None

    def store_predictor(self, key: str, predictor) -> Path:
        path = self.predictor_path(key)
        self._atomic_write(path, pickle.dumps(predictor))
        return path

    # -- internals ----------------------------------------------------------------

    @staticmethod
    def _atomic_write(path: Path, data: bytes) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent,
                                   prefix=f".{path.name}.")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            raise

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ResultCache({str(self.root)!r}, hits={self.hits}, "
                f"misses={self.misses})")


# -- process-wide activation -------------------------------------------------------

_ACTIVE: Optional[ResultCache] = None


def activate_cache(cache: Optional[ResultCache] = None) -> ResultCache:
    """Route ``run_simulation``/predictor training through ``cache``."""
    global _ACTIVE
    _ACTIVE = cache if cache is not None else ResultCache(default_cache_dir())
    return _ACTIVE


def deactivate_cache() -> None:
    global _ACTIVE
    _ACTIVE = None


@contextlib.contextmanager
def activated_cache(cache: Optional[ResultCache] = None) -> Iterator[ResultCache]:
    """Scoped activation (restores the previous cache on exit)."""
    global _ACTIVE
    previous = _ACTIVE
    active = activate_cache(cache)
    try:
        yield active
    finally:
        _ACTIVE = previous


def active_cache() -> Optional[ResultCache]:
    """The activated cache, else the env-enabled default, else None."""
    if _ACTIVE is not None:
        return _ACTIVE
    if os.environ.get("REPRO_CACHE", "").strip().lower() not in _FALSEY:
        return ResultCache(default_cache_dir())
    return None

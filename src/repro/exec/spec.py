"""Declarative simulation specs: the unit of work for the batch runner.

A :class:`SimSpec` captures everything that determines a simulation's
outcome — the pool configuration (inlined, so arbitrary experiment
pools work, not just the named Table 1/2 deployments), the policy and
its kwargs, the workload, load fraction, slot budget, the simulation
seed and the predictor-training budget.  Two properties follow:

* **hermetic execution** — :func:`execute_spec` builds everything it
  needs from the spec alone, including a private copy of the trained
  predictor, so a spec's result is a pure function of its payload and
  the model sources.  Serial and parallel execution are byte-identical.
* **content addressing** — :func:`spec_key` hashes the canonical JSON
  payload together with the model fingerprint, giving the on-disk
  cache key.
"""

from __future__ import annotations

import copy
import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Any, Optional

from ..ran.config import PoolConfig

# The pool converters now live in the scenario layer; re-exported here
# because spec payloads and downstream callers grew around these names.
from ..scenario.scenario import pool_config_from_dict, pool_config_to_dict

__all__ = [
    "SimSpec",
    "SpecError",
    "execute_spec",
    "pool_config_from_dict",
    "pool_config_to_dict",
    "predictor_cache_key",
    "spec_key",
]

#: Schema version embedded in every spec payload; bump on breaking
#: changes so stale cache entries can never be misread.
SPEC_SCHEMA = 1


class SpecError(ValueError):
    """A simulation call cannot be expressed as a declarative spec."""


# -- the spec ----------------------------------------------------------------------


@dataclass
class SimSpec:
    """One simulation, fully described by plain JSON-able values.

    ``policy_kwargs``/``sim_kwargs`` must hold JSON scalars and
    containers only; passing live objects (e.g. a trained predictor)
    raises :class:`SpecError` at construction, and callers fall back
    to direct, uncached execution.  ``knobs`` is a free-form dict that
    participates in the hash — used for forward-compatible extensions
    and for the batch runner's fault-injection tests.
    """

    config: dict
    policy: str
    workload: str = "none"
    load_fraction: float = 0.5
    num_slots: int = 2000
    seed: int = 7
    policy_kwargs: dict = field(default_factory=dict)
    sim_kwargs: dict = field(default_factory=dict)
    training_slots: Optional[int] = None
    training_seed: int = 42
    knobs: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.num_slots <= 0:
            raise SpecError("num_slots must be positive")
        try:
            canonical_json(self.to_dict())
        except TypeError as exc:
            raise SpecError(
                f"spec payload is not JSON-serializable: {exc}") from None

    def to_dict(self) -> dict:
        return {
            "schema": SPEC_SCHEMA,
            "config": self.config,
            "policy": self.policy,
            "workload": self.workload,
            "load_fraction": self.load_fraction,
            "num_slots": self.num_slots,
            "seed": self.seed,
            "policy_kwargs": self.policy_kwargs,
            "sim_kwargs": self.sim_kwargs,
            "training_slots": self.training_slots,
            "training_seed": self.training_seed,
            "knobs": self.knobs,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SimSpec":
        if payload.get("schema") != SPEC_SCHEMA:
            raise SpecError(
                f"unsupported spec schema {payload.get('schema')!r}")
        fields = {k: v for k, v in payload.items() if k != "schema"}
        return cls(**fields)

    def label(self) -> str:
        """Short human-readable job label for progress/telemetry."""
        cells = self.config.get("cells", [])
        bw = cells[0]["bandwidth_mhz"] if cells else 0
        return (f"{self.policy}+{self.workload}"
                f"@{self.load_fraction:.2f} "
                f"{len(cells)}x{bw:g}MHz/{self.config.get('num_cores')}c "
                f"slots={self.num_slots} seed={self.seed}")


def canonical_json(payload: Any) -> str:
    """Deterministic JSON encoding used for all hashing."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)


def spec_key(spec: SimSpec, fingerprint: str) -> str:
    """Content address of a spec under a model fingerprint."""
    blob = canonical_json({"fingerprint": fingerprint,
                           "spec": spec.to_dict()})
    return hashlib.sha256(blob.encode()).hexdigest()


def predictor_cache_key(config: PoolConfig, seed: int, num_slots: int,
                        fingerprint: str) -> str:
    """Content address of a trained default predictor."""
    blob = canonical_json({
        "fingerprint": fingerprint,
        "config": pool_config_to_dict(config),
        "seed": seed,
        "training_slots": num_slots,
        "kind": "quantile-tree-default",
    })
    return hashlib.sha256(blob.encode()).hexdigest()


# -- execution ---------------------------------------------------------------------


def _apply_test_hooks(spec: SimSpec, attempt: int) -> None:
    """Fault-injection knobs used by the batch runner's test suite."""
    hooks = spec.knobs
    if hooks.get("__test_crash__"):
        raise RuntimeError("injected crash (knobs.__test_crash__)")
    if attempt < hooks.get("__test_crash_until_attempt__", 0):
        raise RuntimeError(
            f"injected crash on attempt {attempt} "
            f"(knobs.__test_crash_until_attempt__)")
    sleep_s = hooks.get("__test_sleep_s__")
    if sleep_s:
        time.sleep(float(sleep_s))


def _scenario_kwargs(sim_kwargs: dict) -> dict:
    """Map legacy ``sim_kwargs`` spec names onto Scenario fields.

    Specs predate the scenario layer and carry ``Simulation``'s old
    keyword names; existing cache keys hash those payloads, so the
    spec schema keeps them and the translation happens here.
    """
    kwargs = dict(sim_kwargs)
    if "profiling_traffic" in kwargs:
        kwargs["traffic"] = ("profiling" if kwargs.pop("profiling_traffic")
                             else "model")
    if "allocation_mode" in kwargs:
        kwargs["allocation"] = kwargs.pop("allocation_mode")
    if "mix_interval_us" in kwargs:
        kwargs["mix_interval_us"] = tuple(kwargs["mix_interval_us"])
    return kwargs


def execute_spec(spec: SimSpec, attempt: int = 0,
                 event_bus=None) -> dict:
    """Run one spec to completion; returns the JSON-able result payload.

    Hermetic: the predictor (when the policy needs one) is trained —
    or reloaded from the active cache — for exactly
    ``(config, training_seed, training_slots)`` and then deep-copied,
    so this simulation's online learning never leaks into another
    run.  The result is therefore a pure function of the spec.

    ``event_bus`` (a ``repro.obs.events.EventBus``) records the run's
    structured events for tracing/post-mortems.  It does not affect
    the result payload, so cached and live results stay identical;
    the registry *telemetry* snapshot always rides in the payload.
    """
    # Imported lazily: experiments.common imports this module.
    from ..experiments.common import get_predictor
    from ..scenario import Scenario, build_simulation

    _apply_test_hooks(spec, attempt)
    config = pool_config_from_dict(spec.config)
    predictor = None
    policy_kwargs = dict(spec.policy_kwargs)
    if (spec.policy == "concordia" and "predictor" not in policy_kwargs
            and spec.training_slots is not None):
        base = get_predictor(config, seed=spec.training_seed,
                             num_slots=spec.training_slots)
        predictor = copy.deepcopy(base)
    scenario = Scenario(
        pool=config,
        policy=spec.policy,
        policy_params=policy_kwargs,
        workload=spec.workload,
        load_fraction=spec.load_fraction,
        seed=spec.seed,
        **_scenario_kwargs(spec.sim_kwargs),
    )
    simulation = build_simulation(scenario, predictor=predictor,
                                  policy_seed=spec.training_seed,
                                  event_bus=event_bus)
    result = simulation.run(spec.num_slots)
    return result.to_dict()

"""Parallel experiment orchestration with a persistent result cache.

Every simulation an experiment driver wants to run is described by a
declarative, picklable :class:`~repro.exec.spec.SimSpec` (pool config,
policy, workload, load, seed, slot budget, knobs).  Batches of specs
are executed by :func:`~repro.exec.batch.run_batch` through a worker
pool with deterministic per-spec seeding — a parallel run is
byte-identical to a serial one — backed by a content-addressed on-disk
result cache (:class:`~repro.exec.cache.ResultCache`) keyed by the
spec hash and a fingerprint of the calibrated model sources, so a
warm-cache sweep re-executes nothing and a calibration change
invalidates everything cleanly.

Entry points:

* ``python -m repro sweep --jobs N`` — CLI over a spec grid;
* :func:`repro.experiments.common.run_spec_batch` — driver-facing
  helper returning :class:`~repro.sim.runner.SimulationResult`s;
* ``REPRO_JOBS`` / ``REPRO_CACHE`` / ``REPRO_CACHE_DIR`` — environment
  opt-ins honoured by the drivers and the benchmark harness.
"""

from .batch import BatchReport, JobOutcome, default_jobs, run_batch
from .cache import (
    ResultCache,
    activate_cache,
    activated_cache,
    active_cache,
    deactivate_cache,
    default_cache_dir,
)
from .fingerprint import model_fingerprint
from .spec import (
    SimSpec,
    SpecError,
    execute_spec,
    pool_config_from_dict,
    pool_config_to_dict,
    predictor_cache_key,
    spec_key,
)

__all__ = [
    "BatchReport",
    "JobOutcome",
    "ResultCache",
    "SimSpec",
    "SpecError",
    "activate_cache",
    "activated_cache",
    "active_cache",
    "deactivate_cache",
    "default_cache_dir",
    "default_jobs",
    "execute_spec",
    "model_fingerprint",
    "pool_config_from_dict",
    "pool_config_to_dict",
    "predictor_cache_key",
    "run_batch",
    "spec_key",
]

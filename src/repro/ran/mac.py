"""MAC-layer radio scheduling (paper §7's 'other workloads' extension).

The paper points out that MAC schedulers are themselves deadline tasks
a vRAN pool could run, and that their complexity grows with users and
antennas.  This module provides a self-contained MAC substrate:

* :class:`UeSession` — a user with Poisson-burst downlink/uplink
  arrivals into an RLC buffer, and a slowly varying SNR
  (Ornstein-Uhlenbeck around a per-UE mean, modelling shadowing);
* :class:`ProportionalFairScheduler` — the classic PF rule: each slot,
  schedule the UEs with the largest instantaneous-rate / average-
  throughput ratio, split PRBs among them, and size transport blocks
  from the selected MCS;
* :class:`RoundRobinScheduler` — the fairness-agnostic baseline.

``Simulation(..., allocation_mode="mac")`` replaces the i.i.d.
byte-splitting of :func:`repro.ran.ue.bytes_to_allocations` with this
buffer-driven pipeline, making per-slot allocations correlated the way
real cells are (backlogged users persist across TTIs).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from .config import CellConfig
from .tasks import prbs_for_bandwidth
from .ue import UeAllocation, mcs_for_snr

__all__ = ["UeSession", "ProportionalFairScheduler",
           "RoundRobinScheduler", "MacCell"]

#: Throughput-averaging horizon of the PF metric (slots).
_PF_HORIZON = 100.0

#: Spectral-efficiency to payload factor: bytes a UE can carry on a
#: fraction of the band in one slot, per bit/s/Hz of its MCS.
_SYMBOLS_PER_PRB_PER_SLOT = 12 * 14  # subcarriers x OFDM symbols


@dataclass
class UeSession:
    """One attached user: traffic arrivals, buffer and link state."""

    ue_id: int
    mean_rate_bps: float
    mean_snr_db: float
    burst_mean_bytes: float = 4000.0
    snr_volatility_db: float = 2.0
    buffer_bytes: int = 0
    avg_throughput_bps: float = 1.0
    snr_db: float = field(default=None)

    def __post_init__(self) -> None:
        if self.mean_rate_bps < 0:
            raise ValueError("mean rate must be non-negative")
        if self.snr_db is None:
            self.snr_db = self.mean_snr_db

    def arrive(self, slot_duration_us: float,
               rng: np.random.Generator) -> None:
        """Poisson-burst arrivals into the RLC buffer."""
        mean_bytes_per_slot = self.mean_rate_bps / 8.0 * \
            slot_duration_us / 1e6
        if mean_bytes_per_slot <= 0:
            return
        burst_rate = mean_bytes_per_slot / self.burst_mean_bytes
        bursts = rng.poisson(burst_rate)
        for __ in range(bursts):
            self.buffer_bytes += int(rng.exponential(self.burst_mean_bytes))

    def fade(self, rng: np.random.Generator, theta: float = 0.05) -> None:
        """Ornstein-Uhlenbeck SNR evolution (slow shadowing)."""
        drift = theta * (self.mean_snr_db - self.snr_db)
        self.snr_db += drift + self.snr_volatility_db * math.sqrt(theta) \
            * rng.normal()

    def instantaneous_rate_bps(self, cell: CellConfig) -> float:
        """Rate if the whole band were granted this slot."""
        mcs = mcs_for_snr(self.snr_db)
        prbs = prbs_for_bandwidth(cell.bandwidth_mhz, cell.numerology)
        bits = mcs.spectral_efficiency * prbs * _SYMBOLS_PER_PRB_PER_SLOT
        return bits / (cell.slot_duration_us / 1e6)

    def record_service(self, served_bits: float,
                       slot_duration_us: float) -> None:
        """Update the PF throughput average after a slot."""
        instantaneous = served_bits / (slot_duration_us / 1e6)
        alpha = 1.0 / _PF_HORIZON
        self.avg_throughput_bps = (
            (1 - alpha) * self.avg_throughput_bps + alpha * instantaneous
        )


class ProportionalFairScheduler:
    """Max PF-metric user selection with equal PRB split."""

    name = "proportional_fair"

    def select(self, sessions: list, cell: CellConfig,
               max_ues: int) -> list:
        backlogged = [s for s in sessions if s.buffer_bytes > 0]
        backlogged.sort(
            key=lambda s: s.instantaneous_rate_bps(cell)
            / max(s.avg_throughput_bps, 1.0),
            reverse=True,
        )
        return backlogged[:max_ues]


class RoundRobinScheduler:
    """Cycle through backlogged users regardless of channel state."""

    name = "round_robin"

    def __init__(self) -> None:
        self._next_index = 0

    def select(self, sessions: list, cell: CellConfig,
               max_ues: int) -> list:
        backlogged = [s for s in sessions if s.buffer_bytes > 0]
        if not backlogged:
            return []
        start = self._next_index % len(backlogged)
        self._next_index += max_ues
        ordered = backlogged[start:] + backlogged[:start]
        return ordered[:max_ues]


class MacCell:
    """Per-cell MAC state machine producing per-slot UE allocations."""

    def __init__(
        self,
        cell: CellConfig,
        num_ues: int,
        total_rate_bps: float,
        scheduler=None,
        rng: Optional[np.random.Generator] = None,
        mean_snr_db: float = 15.0,
    ) -> None:
        if num_ues < 1:
            raise ValueError("need at least one UE")
        self.cell = cell
        self.scheduler = scheduler if scheduler is not None else \
            ProportionalFairScheduler()
        self.rng = rng if rng is not None else np.random.default_rng(29)
        # Heterogeneous users: rates and channel quality vary.
        shares = self.rng.dirichlet(np.ones(num_ues) * 3.0)
        self.sessions = [
            UeSession(
                ue_id=i,
                mean_rate_bps=float(total_rate_bps * shares[i]),
                mean_snr_db=float(self.rng.normal(mean_snr_db, 5.0)),
            )
            for i in range(num_ues)
        ]

    def step(self) -> tuple:
        """Advance one TTI: arrivals, fading, scheduling.

        Returns the slot's :class:`UeAllocation` tuple (possibly empty).
        """
        cell = self.cell
        slot_us = cell.slot_duration_us
        for session in self.sessions:
            session.arrive(slot_us, self.rng)
            session.fade(self.rng)
        chosen = self.scheduler.select(self.sessions, cell,
                                       cell.max_ues_per_slot)
        allocations = []
        if chosen:
            prbs = prbs_for_bandwidth(cell.bandwidth_mhz, cell.numerology)
            prb_share = prbs / len(chosen)
            for session in chosen:
                mcs = mcs_for_snr(session.snr_db)
                capacity_bits = (mcs.spectral_efficiency * prb_share
                                 * _SYMBOLS_PER_PRB_PER_SLOT)
                tbs = min(session.buffer_bytes, int(capacity_bits // 8))
                if tbs <= 0:
                    continue
                session.buffer_bytes -= tbs
                session.record_service(tbs * 8, slot_us)
                allocations.append(UeAllocation(
                    ue_id=session.ue_id,
                    tbs_bytes=tbs,
                    mcs=mcs,
                    layers=int(self.rng.integers(1, cell.max_layers + 1)),
                    snr_db=session.snr_db,
                ))
        # Unscheduled users' PF averages decay toward zero service.
        for session in self.sessions:
            if session not in chosen:
                session.record_service(0.0, slot_us)
        return tuple(allocations)

    @property
    def total_backlog_bytes(self) -> int:
        return sum(s.buffer_bytes for s in self.sessions)

"""UE (user equipment) modelling: MCS tables, transport blocks, codeblocks.

The WCET of a signal-processing task depends on the per-slot state of
the scheduled UEs: how many there are, their transport block sizes,
modulation-and-coding schemes (MCS), spatial layers and signal quality.
This module provides that state, derived from the 3GPP 38.214 MCS
structure in simplified form.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "MCS_TABLE",
    "McsEntry",
    "UeAllocation",
    "SlotLoad",
    "bytes_to_allocations",
    "CODEBLOCK_BITS",
]

#: LDPC base-graph-1 maximum codeblock size in bits (38.212).
CODEBLOCK_BITS = 8448


@dataclass(frozen=True)
class McsEntry:
    """One row of the (simplified) 5G NR MCS table."""

    index: int
    modulation_order: int  # bits per symbol: 2=QPSK, 4=16QAM, 6=64QAM, 8=256QAM
    code_rate: float  # effective code rate in (0, 1)
    min_snr_db: float  # SNR at which this MCS is typically selected

    @property
    def spectral_efficiency(self) -> float:
        return self.modulation_order * self.code_rate


def _build_mcs_table() -> tuple[McsEntry, ...]:
    """Simplified 28-entry MCS table spanning QPSK..256QAM."""
    entries = []
    # (modulation order, code-rate range, SNR range) per modulation family.
    families = [
        (2, 0.12, 0.66, -6.0, 4.0, 7),
        (4, 0.37, 0.64, 4.0, 11.0, 7),
        (6, 0.45, 0.93, 11.0, 19.0, 9),
        (8, 0.70, 0.93, 19.0, 25.0, 5),
    ]
    index = 0
    for mod, rate_lo, rate_hi, snr_lo, snr_hi, count in families:
        for i in range(count):
            frac = i / max(count - 1, 1)
            entries.append(
                McsEntry(
                    index=index,
                    modulation_order=mod,
                    code_rate=rate_lo + frac * (rate_hi - rate_lo),
                    min_snr_db=snr_lo + frac * (snr_hi - snr_lo),
                )
            )
            index += 1
    return tuple(entries)


MCS_TABLE: tuple[McsEntry, ...] = _build_mcs_table()

#: Ascending SNR thresholds of MCS_TABLE, for bisecting link adaptation.
_MCS_THRESHOLDS = tuple(entry.min_snr_db for entry in MCS_TABLE)


def mcs_for_snr(snr_db: float) -> McsEntry:
    """Highest MCS whose SNR threshold is satisfied (link adaptation).

    The thresholds are ascending, so the rightmost satisfied entry is
    found by bisection — this runs once per scheduled UE per slot.
    """
    index = bisect.bisect_right(_MCS_THRESHOLDS, snr_db)
    return MCS_TABLE[index - 1] if index else MCS_TABLE[0]


@dataclass(frozen=True)
class UeAllocation:
    """Per-slot allocation of one UE in one direction."""

    ue_id: int
    tbs_bytes: int  # transport block size
    mcs: McsEntry
    layers: int
    snr_db: float

    def __post_init__(self) -> None:
        if self.tbs_bytes < 0:
            raise ValueError("negative transport block size")
        if self.layers < 1:
            raise ValueError("a scheduled UE uses at least one layer")

    @property
    def num_codeblocks(self) -> int:
        """Number of LDPC codeblocks the transport block segments into."""
        if self.tbs_bytes == 0:
            return 0
        return max(1, math.ceil(self.tbs_bytes * 8 / CODEBLOCK_BITS))


class SlotLoad:
    """Everything the PHY must process for one cell in one direction.

    Aggregates are precomputed once at construction — they are read on
    the simulator's hot path (one DAG per slot per cell per direction).
    """

    __slots__ = ("cell_name", "slot_index", "uplink", "allocations",
                 "num_ues", "total_bytes", "total_codeblocks",
                 "total_layers")

    def __init__(self, cell_name: str, slot_index: int, uplink: bool,
                 allocations: tuple) -> None:
        self.cell_name = cell_name
        self.slot_index = slot_index
        self.uplink = uplink
        self.allocations = allocations
        if allocations:
            self.num_ues = len(allocations)
            self.total_bytes = sum(a.tbs_bytes for a in allocations)
            self.total_codeblocks = sum(
                a.num_codeblocks for a in allocations)
            self.total_layers = sum(a.layers for a in allocations)
        else:
            self.num_ues = 0
            self.total_bytes = 0
            self.total_codeblocks = 0
            self.total_layers = 0

    @property
    def idle(self) -> bool:
        return self.total_bytes == 0

    def __repr__(self) -> str:
        return (f"SlotLoad(cell={self.cell_name!r}, slot={self.slot_index}, "
                f"uplink={self.uplink}, ues={self.num_ues}, "
                f"bytes={self.total_bytes})")


def bytes_to_allocations(
    total_bytes: int,
    rng: np.random.Generator,
    max_ues: int = 16,
    max_layers: int = 4,
    mean_snr_db: float = 15.0,
    ue_id_base: int = 0,
) -> tuple[UeAllocation, ...]:
    """Split a slot's byte volume across a random set of UEs.

    The number of UEs grows with the traffic volume (a busy slot is busy
    because many users transmit), the per-UE share is Dirichlet-random,
    and each UE gets an SNR-driven MCS and a random layer count.
    """
    if total_bytes <= 0:
        return ()
    # Scale UE count with volume: ~1 UE per 4 KB, at least 1, at most max.
    mean_ues = 1.0 + total_bytes / 4096.0
    num_ues = int(min(max_ues, max(1, rng.poisson(mean_ues))))
    shares = rng.dirichlet(np.ones(num_ues) * 2.0)
    allocations = []
    remaining = total_bytes
    for i, share in enumerate(shares):
        if i == num_ues - 1:
            tbs = remaining
        else:
            tbs = int(round(share * total_bytes))
            tbs = min(tbs, remaining)
        remaining -= tbs
        if tbs <= 0:
            continue
        snr = float(rng.normal(mean_snr_db, 6.0))
        allocations.append(
            UeAllocation(
                ue_id=ue_id_base + i,
                tbs_bytes=tbs,
                mcs=mcs_for_snr(snr),
                layers=int(rng.integers(1, max_layers + 1)),
                snr_db=snr,
            )
        )
    return tuple(allocations)

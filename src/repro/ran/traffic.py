"""Bursty cell-traffic generation (paper §2.2, Fig. 3, §6 emulated traces).

The paper's LTE measurements around Cambridge station show that a single
cell is idle 75 % of TTIs, the 3-cell aggregate is idle 20 %, the median
aggregate transfer is 0.2 KB/slot and the 95th percentile is ~10× the
median, with bursts correlated at the millisecond scale.  We reproduce
that structure with a two-state Markov-modulated lognormal process:

* a cell alternates between IDLE and ACTIVE states with geometric
  sojourn times (bursts last several slots, like TCP flights);
* in the ACTIVE state per-slot bytes are lognormal (heavy-tailed),
  capped at the cell's per-slot peak.

The same generator, scaled up >×10, produces the 5G benchmark traces of
§6: ``CellTraffic.for_cell`` maps a cell config and a load percentage to
per-direction generators, with load 100 % meaning the cell sustains the
maximum allowed *average* throughput of Table 1 while bursting to the
Table 2 peaks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from .config import CellConfig

__all__ = ["MarkovBurstTraffic", "lte_cell_traffic", "CellTraffic"]


class MarkovBurstTraffic:
    """Two-state Markov-modulated lognormal per-slot traffic source."""

    def __init__(
        self,
        mean_bytes_per_slot: float,
        peak_bytes_per_slot: float,
        active_fraction: float,
        mean_burst_slots: float = 8.0,
        sigma: float = 1.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if not 0.0 < active_fraction <= 1.0:
            raise ValueError("active_fraction must be in (0, 1]")
        if mean_bytes_per_slot < 0 or peak_bytes_per_slot <= 0:
            raise ValueError("traffic volumes must be non-negative")
        if mean_burst_slots < 1.0:
            raise ValueError("bursts last at least one slot")
        self.mean_bytes_per_slot = mean_bytes_per_slot
        self.peak_bytes_per_slot = peak_bytes_per_slot
        self.active_fraction = active_fraction
        self.sigma = sigma
        self.rng = rng if rng is not None else np.random.default_rng(7)
        # Geometric sojourn times giving the requested stationary split.
        self._p_off = 1.0 / mean_burst_slots
        if active_fraction >= 1.0:
            self._p_on = 1.0
            self._p_off = 0.0
        else:
            self._p_on = (
                active_fraction * self._p_off / (1.0 - active_fraction)
            )
            self._p_on = min(1.0, self._p_on)
        self._active = self.rng.random() < active_fraction
        # Lognormal location so that E[bytes | active] hits the target.
        mean_active = mean_bytes_per_slot / active_fraction
        self._mu = math.log(max(mean_active, 1e-9)) - 0.5 * sigma**2

    def next_slot(self) -> int:
        """Bytes offered in the next slot (0 when idle)."""
        if self._active:
            if self.rng.random() < self._p_off:
                self._active = False
        else:
            if self.rng.random() < self._p_on:
                self._active = True
        if not self._active:
            return 0
        bytes_ = self.rng.lognormal(self._mu, self.sigma)
        return int(min(bytes_, self.peak_bytes_per_slot))

    def next_slots(self, num_slots: int) -> np.ndarray:
        """Bytes for the next ``num_slots`` slots in one batched call.

        Byte-identical to ``num_slots`` successive :meth:`next_slot`
        calls: the Markov transition and the conditional lognormal draw
        consume the generator's stream in exactly the per-slot order
        (the draw count depends on the state path, so the loop cannot
        be replaced by fixed-size vector draws) — but hoisting the
        attribute/bound-method lookups out of the loop makes this the
        slot-window pre-pass's bulk entry point.
        """
        out = np.zeros(num_slots, dtype=np.int64)
        rng = self.rng
        random = rng.random
        lognormal = rng.lognormal
        p_off = self._p_off
        p_on = self._p_on
        mu = self._mu
        sigma = self.sigma
        peak = self.peak_bytes_per_slot
        active = self._active
        for i in range(num_slots):
            if active:
                if random() < p_off:
                    active = False
                    continue
            elif random() < p_on:
                active = True
            else:
                continue
            out[i] = int(min(lognormal(mu, sigma), peak))
        self._active = active
        return out

    def trace(self, num_slots: int) -> np.ndarray:
        """Generate ``num_slots`` consecutive per-slot byte counts."""
        return self.next_slots(num_slots)


def lte_cell_traffic(rng: Optional[np.random.Generator] = None,
                     seed: Optional[int] = None) -> MarkovBurstTraffic:
    """A single LTE cell calibrated to the paper's Fig. 3 measurements.

    75 % idle slots; short heavy-tailed transfers such that a 3-cell
    aggregate has ~0.2 KB median and a 95th percentile ~10× the median.
    """
    if rng is None:
        rng = np.random.default_rng(seed)
    return MarkovBurstTraffic(
        mean_bytes_per_slot=220.0,
        peak_bytes_per_slot=5000.0,
        active_fraction=0.25,
        mean_burst_slots=10.0,
        sigma=1.15,
        rng=rng,
    )


@dataclass
class CellTraffic:
    """Per-cell UL + DL traffic generators for the 5G benchmark traces."""

    cell: CellConfig
    uplink: MarkovBurstTraffic
    downlink: MarkovBurstTraffic

    @classmethod
    def for_cell(
        cls,
        cell: CellConfig,
        load_fraction: float,
        rng: Optional[np.random.Generator] = None,
        seed: Optional[int] = None,
    ) -> "CellTraffic":
        """Build generators for ``cell`` at a fraction of its max load.

        ``load_fraction`` = 1.0 drives the cell at the Table 1 average
        throughput; bursts are capped at the Table 2 per-slot peak.
        Burstiness decreases (cells stay active longer) as load grows,
        mirroring how saturated cells stop being idle.
        """
        if not 0.0 <= load_fraction <= 1.0:
            raise ValueError("load_fraction must be in [0, 1]")
        if rng is None:
            rng = np.random.default_rng(seed)
        generators = {}
        for uplink in (True, False):
            avg_mbps = cell.avg_ul_mbps if uplink else cell.avg_dl_mbps
            mean_bytes = (
                load_fraction * avg_mbps * 1e6 / 8.0 * cell.slot_duration_us / 1e6
            )
            if cell.duplex.value == "tdd":
                share = cell.direction_share(uplink)
                if share > 0:
                    mean_bytes /= share
            peak_bytes = cell.peak_bytes_per_slot(uplink)
            active = min(0.95, 0.25 + 0.65 * load_fraction)
            generators[uplink] = MarkovBurstTraffic(
                mean_bytes_per_slot=max(mean_bytes, 1e-6),
                peak_bytes_per_slot=peak_bytes,
                active_fraction=active,
                mean_burst_slots=8.0,
                sigma=0.9,
                rng=np.random.default_rng(rng.integers(0, 2**63)),
            )
        return cls(cell=cell, uplink=generators[True], downlink=generators[False])

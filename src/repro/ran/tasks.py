"""Signal-processing task taxonomy and runtime cost models.

This module is the stand-in for the FlexRAN PHY pipeline: it defines the
task types of the 5G NR uplink and downlink chains (paper Fig. 1,
Fig. 16 and Appendix A.1) and a parameterized stochastic runtime model
calibrated to the paper's measurements:

* LDPC decoding of 3..15 codeblocks on one core costs ~100..500 µs and
  dominates uplink processing (>60 %, Table 5 / Fig. 6a);
* spreading codeblocks over multiple cores adds up to ~25 % memory-stall
  penalty (Fig. 6b);
* low SNR margin increases decoding iterations non-linearly (§4.1);
* per-task runtimes carry multiplicative noise, and collocated
  workloads inflate them with heavier tails (Fig. 7b).

The prediction feature vector X exposed per task intentionally includes
both the parameters the ground-truth cost depends on and irrelevant
ones, so that Algorithm 1's feature selection has real work to do.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..sim.fastrng import FastRng
from .config import CellConfig
from .ue import SlotLoad

__all__ = [
    "TaskType",
    "TYPE_CODE",
    "FEATURE_NAMES",
    "NUM_FEATURES",
    "TaskInstance",
    "CostModel",
    "UL_TASK_TYPES",
    "DL_TASK_TYPES",
    "prbs_for_bandwidth",
]


class TaskType(enum.Enum):
    """Signal-processing task kinds (Appendix A.1)."""

    # Uplink chain
    FFT = "fft"
    CHANNEL_ESTIMATION = "channel_estimation"
    EQUALIZATION = "equalization"
    DEMODULATION = "demodulation"
    DESCRAMBLING = "descrambling"
    RATE_DEMATCH = "rate_dematch"
    LDPC_DECODE = "ldpc_decode"
    CRC_CHECK = "crc_check"
    # Downlink chain
    CRC_ATTACH = "crc_attach"
    LDPC_ENCODE = "ldpc_encode"
    RATE_MATCH = "rate_match"
    SCRAMBLING = "scrambling"
    MODULATION = "modulation"
    PRECODING = "precoding"
    IFFT = "ifft"


#: Stable small-int codes for the vectorized cost path
#: (:meth:`CostModel.base_costs_batch`); order follows declaration.
_TYPE_LIST = tuple(TaskType)
TYPE_CODE = {t: i for i, t in enumerate(_TYPE_LIST)}

UL_TASK_TYPES = (
    TaskType.FFT,
    TaskType.CHANNEL_ESTIMATION,
    TaskType.EQUALIZATION,
    TaskType.DEMODULATION,
    TaskType.DESCRAMBLING,
    TaskType.RATE_DEMATCH,
    TaskType.LDPC_DECODE,
    TaskType.CRC_CHECK,
)

DL_TASK_TYPES = (
    TaskType.CRC_ATTACH,
    TaskType.LDPC_ENCODE,
    TaskType.RATE_MATCH,
    TaskType.SCRAMBLING,
    TaskType.MODULATION,
    TaskType.PRECODING,
    TaskType.IFFT,
)

#: Prediction features (the vRAN state X of §4.2).  The last few are
#: deliberately irrelevant to runtimes so that feature selection matters.
FEATURE_NAMES = (
    "num_ues",
    "slot_bytes",
    "slot_codeblocks",
    "total_layers",
    "mean_mcs_index",
    "min_snr_margin_db",
    "mean_mod_order",
    "mean_code_rate",
    "num_prbs",
    "num_antennas",
    "task_codeblocks",
    "task_bytes",
    "is_uplink",
    "slot_in_frame",
    "frame_number_mod",
    "rand_probe",
)
NUM_FEATURES = len(FEATURE_NAMES)
FEATURE_INDEX = {name: i for i, name in enumerate(FEATURE_NAMES)}


def prbs_for_bandwidth(bandwidth_mhz: float, numerology: int) -> int:
    """Approximate PRB count per 38.101 (106 for 20 MHz µ0, 273 for 100 MHz µ1)."""
    scs_khz = 15 * (2 ** numerology)
    usable_khz = bandwidth_mhz * 1000.0 * 0.97  # guard bands
    return max(11, int(usable_khz / (12 * scs_khz)))


@dataclass(slots=True)
class TaskInstance:
    """One runnable signal-processing task within a slot DAG.

    ``base_cost_us`` is the deterministic part of the ground-truth
    runtime, fixed at DAG construction.  The stochastic multipliers
    (noise, multi-core memory stalls, cache interference) are applied by
    :meth:`CostModel.sample_runtime` when the task actually executes.
    :meth:`CostModel.sample_runtimes` presamples the state-independent
    part of those draws into ``stoch_mult``/``cache_u``/``cache_tail``
    at DAG construction, one vectorized draw per DAG instead of several
    scalar RNG calls per task at dispatch.
    """

    task_id: int
    task_type: TaskType
    cell_name: str
    features: np.ndarray
    base_cost_us: float
    snr_margin_db: float = 10.0
    # DAG wiring, filled by repro.ran.dag
    predecessors_remaining: int = 0
    successors: list = field(default_factory=list)
    dag: Optional[object] = None
    # Execution bookkeeping, filled by the simulator
    enqueue_time: Optional[float] = None
    start_time: Optional[float] = None
    finish_time: Optional[float] = None
    runtime_us: Optional[float] = None
    predicted_wcet_us: Optional[float] = None
    #: Longest predicted path from this task to a DAG sink (µs), filled
    #: by the Concordia scheduler at slot start for O(1) critical-path
    #: maintenance.
    path_us: float = 0.0
    #: Presampled state-independent runtime multiplier (lognormal noise ×
    #: decode-iteration jitter × isolated tail), or None to fall back to
    #: scalar draws in :meth:`CostModel.sample_runtime`.
    stoch_mult: Optional[float] = None
    #: Presampled uniform for the cache-interference tail trigger; the
    #: pool compares it against the state-dependent tail probability at
    #: dispatch time (equivalent in distribution to drawing there).
    cache_u: Optional[float] = None
    #: Presampled cache-interference tail magnitude, applied iff
    #: ``cache_u`` lands under the tail probability.
    cache_tail: float = 1.0
    #: Whether this task type suffers multi-core memory stalls
    #: (precomputed: the frozenset membership test costs an enum hash
    #: on every :meth:`CostModel.sample_runtime` call otherwise).
    memory_bound: bool = False

    def __post_init__(self) -> None:
        self.memory_bound = self.task_type.is_memory_bound

    def feature(self, name: str) -> float:
        return float(self.features[FEATURE_INDEX[name]])

    @property
    def ready(self) -> bool:
        return self.predecessors_remaining == 0

    @property
    def deadline_us(self) -> float:
        """Absolute deadline inherited from the owning DAG."""
        if self.dag is None:
            raise ValueError("task is not attached to a DAG")
        return self.dag.deadline_us


# ---------------------------------------------------------------------------
# Cost-model constants, calibrated per DESIGN.md §4.
# ---------------------------------------------------------------------------

#: Per-codeblock LDPC decode base cost (µs); ~30 µs average with the
#: iteration factor applied, matching Fig. 6a (3 CB ≈ 100 µs, 15 ≈ 470 µs).
_DECODE_US_PER_CB = 21.0
_ENCODE_US_PER_CB = 4.0

#: Memory-stall penalty cap when codeblocks spread across cores (Fig. 6).
_MAX_CORE_PENALTY = 0.25

#: Task types whose runtimes suffer multi-core memory stalls.
_MEMORY_BOUND_TYPES = frozenset(
    {TaskType.LDPC_DECODE, TaskType.LDPC_ENCODE, TaskType.RATE_DEMATCH,
     TaskType.RATE_MATCH}
)

# Cache the two per-type lookups as plain member attributes: enum
# hashing is a Python-level call, and DAG construction reads both once
# per task.
for _t in _TYPE_LIST:
    _t.type_code = TYPE_CODE[_t]
    _t.is_memory_bound = _t in _MEMORY_BOUND_TYPES
del _t


def _iteration_factor(snr_margin_db: float) -> float:
    """Non-linear decoding-iteration inflation for low link margin.

    A UE scheduled right at its MCS threshold needs more LDPC
    iterations; with >5 dB of margin decoding converges in the minimum
    number of iterations.
    """
    shortfall = max(0.0, 5.0 - snr_margin_db)
    return 1.0 + 0.12 * min(shortfall, 6.0)


class CostModel:
    """Ground-truth runtime generator for signal-processing tasks.

    Deterministic base costs are functions of the slot/task features;
    :meth:`sample_runtime` layers multiplicative noise, the multi-core
    memory-stall penalty, and the caller-supplied cache-interference
    multiplier on top.
    """

    def __init__(
        self,
        rng: Optional[np.random.Generator] = None,
        noise_sigma: float = 0.04,
        isolated_tail_prob: float = 0.001,
        isolated_tail_scale: float = 1.35,
        decode_iteration_jitter: float = 0.06,
    ) -> None:
        self.rng = FastRng(rng if rng is not None else np.random.default_rng(0))
        self.noise_sigma = noise_sigma
        self.isolated_tail_prob = isolated_tail_prob
        self.isolated_tail_scale = isolated_tail_scale
        self.decode_iteration_jitter = decode_iteration_jitter

    # -- deterministic base costs -----------------------------------------

    def base_cost_us(
        self,
        task_type: TaskType,
        *,
        prbs: int,
        antennas: int,
        total_layers: int,
        slot_bytes: float,
        slot_codeblocks: int,
        task_codeblocks: int = 0,
        task_bytes: float = 0.0,
        snr_margin_db: float = 10.0,
        code_rate: float = 0.6,
        prb_share: float = 1.0,
        layers: int = 1,
    ) -> float:
        """Deterministic runtime (µs) of one task instance.

        Slot-scoped tasks (FFT/iFFT, precoding, CRC) depend on the whole
        slot; UE-scoped tasks (channel estimation through rate
        (de)matching) depend on that UE's PRB share, byte volume and
        layer count — FlexRAN fans these out per UE, which is what keeps
        the DAG's critical path short.
        """
        t = task_type
        if t is TaskType.FFT or t is TaskType.IFFT:
            return 2.0 + 0.04 * prbs * antennas
        if t is TaskType.CHANNEL_ESTIMATION:
            return 4.0 + 0.08 * prbs * prb_share * antennas
        if t is TaskType.EQUALIZATION:
            return 3.0 + 0.05 * prbs * prb_share * max(1, layers)
        if t is TaskType.DEMODULATION:
            return 2.0 + 0.0025 * task_bytes
        if t is TaskType.DESCRAMBLING:
            return 1.0 + 0.0003 * task_bytes
        if t is TaskType.RATE_DEMATCH:
            return 1.0 + 0.0010 * task_bytes
        if t is TaskType.LDPC_DECODE:
            per_cb = _DECODE_US_PER_CB * _iteration_factor(snr_margin_db)
            per_cb *= 1.0 + 0.35 * max(0.0, 0.8 - code_rate)
            return 2.0 + per_cb * task_codeblocks
        if t is TaskType.CRC_CHECK:
            return 1.0 + 0.0004 * slot_bytes
        if t is TaskType.CRC_ATTACH:
            return 1.0 + 0.0002 * slot_bytes
        if t is TaskType.LDPC_ENCODE:
            per_cb = _ENCODE_US_PER_CB * (1.0 + 0.3 * max(0.0, 0.8 - code_rate))
            return 1.0 + per_cb * task_codeblocks
        if t is TaskType.RATE_MATCH:
            return 1.0 + 0.0004 * task_bytes
        if t is TaskType.SCRAMBLING:
            return 1.0 + 0.0003 * task_bytes
        if t is TaskType.MODULATION:
            return 2.0 + 0.0009 * task_bytes
        if t is TaskType.PRECODING:
            return 2.0 + 0.08 * prbs * antennas
        raise ValueError(f"unknown task type {t}")

    def base_costs_batch(
        self,
        type_codes: np.ndarray,
        *,
        prbs: np.ndarray,
        antennas: np.ndarray,
        slot_bytes: np.ndarray,
        task_codeblocks: np.ndarray,
        task_bytes: np.ndarray,
        snr_margin_db: np.ndarray,
        code_rate: np.ndarray,
        prb_share: np.ndarray,
        layers: np.ndarray,
    ) -> np.ndarray:
        """Vectorized :meth:`base_cost_us` over parallel task arrays.

        ``type_codes`` holds :data:`TYPE_CODE` values; all other inputs
        are float64 arrays of the same length (per-DAG constants like
        ``prbs`` pre-expanded by the caller).  Each element is computed
        with the *same operation order* as the scalar method, so the
        results are bit-identical — numpy's elementwise float64 ops are
        the identical IEEE-754 operations, just dispatched once per
        task-type group instead of once per task.
        """
        out = np.empty(type_codes.shape[0], dtype=np.float64)
        for code in np.unique(type_codes):
            idx = np.nonzero(type_codes == code)[0]
            t = _TYPE_LIST[code]
            if t is TaskType.FFT or t is TaskType.IFFT:
                out[idx] = 2.0 + 0.04 * prbs[idx] * antennas[idx]
            elif t is TaskType.CHANNEL_ESTIMATION:
                out[idx] = 4.0 + 0.08 * prbs[idx] * prb_share[idx] \
                    * antennas[idx]
            elif t is TaskType.EQUALIZATION:
                out[idx] = 3.0 + 0.05 * prbs[idx] * prb_share[idx] \
                    * np.maximum(1, layers[idx])
            elif t is TaskType.DEMODULATION:
                out[idx] = 2.0 + 0.0025 * task_bytes[idx]
            elif t is TaskType.DESCRAMBLING or t is TaskType.SCRAMBLING:
                out[idx] = 1.0 + 0.0003 * task_bytes[idx]
            elif t is TaskType.RATE_DEMATCH:
                out[idx] = 1.0 + 0.0010 * task_bytes[idx]
            elif t is TaskType.LDPC_DECODE:
                shortfall = np.minimum(
                    np.maximum(0.0, 5.0 - snr_margin_db[idx]), 6.0)
                per_cb = _DECODE_US_PER_CB * (1.0 + 0.12 * shortfall)
                per_cb = per_cb * (
                    1.0 + 0.35 * np.maximum(0.0, 0.8 - code_rate[idx]))
                out[idx] = 2.0 + per_cb * task_codeblocks[idx]
            elif t is TaskType.CRC_CHECK:
                out[idx] = 1.0 + 0.0004 * slot_bytes[idx]
            elif t is TaskType.CRC_ATTACH:
                out[idx] = 1.0 + 0.0002 * slot_bytes[idx]
            elif t is TaskType.LDPC_ENCODE:
                per_cb = _ENCODE_US_PER_CB * (
                    1.0 + 0.3 * np.maximum(0.0, 0.8 - code_rate[idx]))
                out[idx] = 1.0 + per_cb * task_codeblocks[idx]
            elif t is TaskType.RATE_MATCH:
                out[idx] = 1.0 + 0.0004 * task_bytes[idx]
            elif t is TaskType.MODULATION:
                out[idx] = 2.0 + 0.0009 * task_bytes[idx]
            elif t is TaskType.PRECODING:
                out[idx] = 2.0 + 0.08 * prbs[idx] * antennas[idx]
            else:
                raise ValueError(f"unknown task type code {code}")
        return out

    # -- stochastic sampling ----------------------------------------------

    def core_penalty(self, task_type: TaskType, active_cores: int) -> float:
        """Multiplicative memory-stall penalty for memory-bound tasks.

        Grows with the number of cores concurrently working on the pool
        (cross-core codeblock fetches, Fig. 6b), saturating at +25 %.
        """
        if task_type not in _MEMORY_BOUND_TYPES or active_cores <= 1:
            return 0.0
        return _MAX_CORE_PENALTY * min(1.0, (active_cores - 1) / 5.0)

    def memory_stalls_per_cycle(
        self, task_codeblocks: int, active_cores: int
    ) -> float:
        """Proxy for Fig. 6b's stalls-per-cycle perf counter."""
        base = 0.02 + 0.004 * task_codeblocks
        spread = 0.0 if active_cores <= 1 else min(1.0, (active_cores - 1) / 5.0)
        return base * (1.0 + 6.0 * spread)

    def sample_runtime(
        self,
        task: TaskInstance,
        active_cores: int = 1,
        interference_multiplier: float = 1.0,
        tail_multiplier: float = 1.0,
    ) -> float:
        """Draw the actual execution time of ``task`` (µs).

        ``interference_multiplier``/``tail_multiplier`` come from the
        cache-interference model; 1.0 means the vRAN runs in isolation.
        """
        base = task.base_cost_us
        # Inline of core_penalty(): one method call per task execution
        # is measurable on the hot path.
        if active_cores > 1 and task.memory_bound:
            spread = (active_cores - 1) * 0.2
            base *= 1.0 + _MAX_CORE_PENALTY * (
                1.0 if spread >= 1.0 else spread)
        mult = task.stoch_mult
        if mult is None:
            mult = math.exp(self.rng.normal(0.0, self.noise_sigma))
            if task.task_type is TaskType.LDPC_DECODE:
                # Realized iteration count is data-dependent: two decodes
                # with identical parameters can need very different numbers
                # of iterations (§A.1).  The exponential tail is what makes
                # Gaussian prediction intervals under-cover decode runtimes
                # while the quantile tree's distribution-free leaf maximum
                # absorbs it (Fig. 14).
                mult *= 1.0 + self.decode_iteration_jitter * \
                    self.rng.exponential(1.0)
            if self.rng.random() < self.isolated_tail_prob:
                mult *= self.isolated_tail_scale
        runtime = base * mult * interference_multiplier * tail_multiplier
        return runtime if runtime > 0.3 else 0.3

    def sample_runtimes(
        self,
        tasks: list,
        rng: np.random.Generator,
    ) -> None:
        """Presample the state-independent stochastic draws for a DAG.

        One vectorized pass replaces the 3-5 scalar RNG calls that
        :meth:`sample_runtime` and the cache model would otherwise make
        per task at dispatch time.  Everything that does NOT depend on
        execution-time state is drawn here from the DAG's own ``rng``
        stream (see :class:`repro.ran.dag.DagBuilder` for how that
        stream is keyed) and folded into ``task.stoch_mult``:

        * multiplicative lognormal noise,
        * the data-dependent LDPC decode iteration jitter (§A.1),
        * the rare isolated-workload tail.

        The cache-interference tail needs execution-time state (cache
        churn/pressure), so only its *randomness* is presampled: a
        uniform trigger ``cache_u`` and a tail magnitude ``cache_tail``.
        The pool compares ``cache_u`` against the state-dependent tail
        probability at dispatch, which is equivalent in distribution to
        drawing there.  Multi-core memory-stall penalties remain an
        execution-time computation (:meth:`core_penalty`) because they
        depend on how many cores are active when the task starts.
        """
        n = len(tasks)
        if n == 0:
            return
        # Two generator calls cover all five per-task draws: generator
        # dispatch overhead dominates actual sampling at DAG sizes
        # (~15-40 tasks), so the uniforms come from one block and the
        # exponential jitter via inverse-CDF from a slice of it.
        u = rng.random(4 * n)
        mult = np.exp(rng.standard_normal(n) * self.noise_sigma)
        mult[u[:n] < self.isolated_tail_prob] *= self.isolated_tail_scale
        mults = mult.tolist()
        jitters = (-np.log1p(-u[n:2 * n])).tolist()
        cache_us = u[2 * n:3 * n].tolist()
        cache_tails = (1.5 + u[3 * n:]).tolist()
        coeff = self.decode_iteration_jitter
        decode = TaskType.LDPC_DECODE
        for i, task in enumerate(tasks):
            m = mults[i]
            if task.task_type is decode:
                m *= 1.0 + coeff * jitters[i]
            task.stoch_mult = m
            task.cache_u = cache_us[i]
            task.cache_tail = cache_tails[i]


_TASK_CB_IDX = FEATURE_INDEX["task_codeblocks"]
_TASK_BYTES_IDX = FEATURE_INDEX["task_bytes"]
_RAND_IDX = FEATURE_INDEX["rand_probe"]


def slot_base_features(
    load: SlotLoad,
    cell: CellConfig,
    slot_index: int,
) -> np.ndarray:
    """Slot-level part of the feature vector X, shared by all tasks.

    Per-task fields (task_codeblocks, task_bytes, rand_probe) are filled
    in by :func:`task_feature_vector`; computing the slot aggregates
    once per DAG keeps task construction off the profile.
    """
    allocations = load.allocations
    if allocations:
        n = len(allocations)
        mean_mcs = sum(a.mcs.index for a in allocations) / n
        min_margin = min(a.snr_db - a.mcs.min_snr_db for a in allocations)
        mean_mod = sum(a.mcs.modulation_order for a in allocations) / n
        mean_rate = sum(a.mcs.code_rate for a in allocations) / n
    else:
        mean_mcs, min_margin, mean_mod, mean_rate = 0.0, 10.0, 0.0, 0.0
    prbs = prbs_for_bandwidth(cell.bandwidth_mhz, cell.numerology)
    return np.array(
        [
            load.num_ues,
            load.total_bytes,
            load.total_codeblocks,
            load.total_layers,
            mean_mcs,
            min_margin,
            mean_mod,
            mean_rate,
            prbs,
            cell.num_antennas,
            0.0,  # task_codeblocks, per task
            0.0,  # task_bytes, per task
            1.0 if load.uplink else 0.0,
            slot_index % 10,
            (slot_index // 10) % 7,
            0.0,  # rand_probe, per task
        ],
        dtype=np.float64,
    )


def task_feature_vector(
    base: np.ndarray,
    task_codeblocks: int,
    task_bytes: float,
    rand_probe: float,
) -> np.ndarray:
    """Complete the per-task copy of a slot's base feature vector."""
    features = base.copy()
    features[_TASK_CB_IDX] = task_codeblocks
    features[_TASK_BYTES_IDX] = task_bytes
    features[_RAND_IDX] = rand_probe
    return features

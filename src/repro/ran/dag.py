"""Construction of per-slot signal-processing DAGs (paper Fig. 1 / Fig. 16).

Every slot, each cell contributes one DAG per active direction.  The
uplink chain is::

    FFT -> ChanEst -> Equalize -> Demod -> Descramble -> RateDematch
        -> {LDPC decode groups, parallel} -> CRC check

and the downlink chain is::

    CRC attach -> {LDPC encode groups, parallel} -> RateMatch
        -> Scramble -> Modulate -> Precode -> iFFT

Codeblocks are split into groups of at most :data:`MAX_CBS_PER_TASK`
per encode/decode task so that heavy coding work parallelizes across
worker cores, exactly like FlexRAN fans codeblocks out to its pool.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from .config import CellConfig
from .tasks import (
    FEATURE_INDEX,
    CostModel,
    TaskInstance,
    TaskType,
    prbs_for_bandwidth,
    slot_base_features,
    task_feature_vector,
)
from .ue import SlotLoad, UeAllocation

__all__ = ["DagInstance", "DagBuilder", "MAX_CBS_PER_TASK"]

#: Maximum codeblocks bundled into one encode/decode task instance.
MAX_CBS_PER_TASK = 4

_RAND_IDX = FEATURE_INDEX["rand_probe"]


@dataclass(slots=True)
class DagInstance:
    """One slot's worth of dependent signal-processing tasks for a cell."""

    dag_id: int
    cell_name: str
    slot_index: int
    uplink: bool
    release_us: float
    deadline_us: float
    tasks: list = field(default_factory=list)  # topological order
    tasks_remaining: int = 0
    completion_us: Optional[float] = None

    @property
    def finished(self) -> bool:
        return self.tasks_remaining == 0

    @property
    def latency_us(self) -> Optional[float]:
        """Slot processing latency: completion relative to release."""
        if self.completion_us is None:
            return None
        return self.completion_us - self.release_us

    def entry_tasks(self) -> list:
        return [t for t in self.tasks if t.predecessors_remaining == 0
                and t.start_time is None]

    def remaining_work_us(self, wcet: Callable[[TaskInstance], float],
                          now: float) -> float:
        """Sum of predicted-remaining WCETs over unfinished tasks."""
        total = 0.0
        for task in self.tasks:
            if task.finish_time is not None:
                continue
            estimate = wcet(task)
            if task.start_time is not None:
                estimate = max(0.0, estimate - (now - task.start_time))
            total += estimate
        return total

    def remaining_critical_path_us(self, wcet: Callable[[TaskInstance], float],
                                   now: float) -> float:
        """Longest remaining chain of predicted WCETs through the DAG.

        Tasks are stored in topological order, so a single reverse sweep
        computes the longest path to any sink.  Finished tasks contribute
        zero; running tasks contribute their remaining estimate.
        """
        if self.tasks_remaining == 0:
            return 0.0
        longest_from: dict[int, float] = {}
        best = 0.0
        for task in reversed(self.tasks):
            if task.finish_time is not None:
                cost = 0.0
            else:
                cost = wcet(task)
                if task.start_time is not None:
                    cost = max(0.0, cost - (now - task.start_time))
            tail = max(
                (longest_from.get(id(s), 0.0) for s in task.successors),
                default=0.0,
            )
            longest_from[id(task)] = cost + tail
            if cost + tail > best:
                best = cost + tail
        return best


def _link(parent: TaskInstance, child: TaskInstance) -> None:
    parent.successors.append(child)
    child.predecessors_remaining += 1


class DagBuilder:
    """Factory turning :class:`SlotLoad` objects into task DAGs.

    Stochastic sampling is *batched per DAG*: every build derives a
    private RNG stream keyed by ``(cell_index, slot_index, direction)``
    and draws all of the DAG's randomness (rand_probe features plus the
    :meth:`CostModel.sample_runtimes` presamples) from it in a few
    vectorized calls.  Keying by DAG identity rather than by draw order
    makes the streams independent of execution interleaving: a DAG's
    runtimes are identical whether it is built before or after its
    neighbours, which is what keeps serial and parallel experiment
    drivers byte-identical.

    Stream derivation is counter-based: ``seed_seq`` (a SeedSequence
    child of the simulation seed) generates a 128-bit Philox key once,
    and each DAG's stream sets the Philox counter to its identity
    ``(0, cell_index, slot_index, direction)``.  Distinct counters are
    distinct, never-overlapping streams by construction — the same
    independence guarantee as ``SeedSequence.spawn`` children, but
    resetting a counter costs ~2 µs where hashing a fresh SeedSequence
    plus constructing a bit generator costs ~20 µs, which matters at
    one stream per DAG on the hot path.
    """

    def __init__(self, cost_model: CostModel,
                 rng: Optional[np.random.Generator] = None,
                 seed_seq: Optional[np.random.SeedSequence] = None) -> None:
        self.cost_model = cost_model
        self.rng = rng if rng is not None else np.random.default_rng(1)
        if seed_seq is None:
            # Deterministic fallback for callers that only pass an rng.
            seed_seq = np.random.SeedSequence(int(self.rng.integers(2 ** 63)))
        self._seed_seq = seed_seq
        # One reusable Philox generator; _dag_rng re-keys its counter.
        self._philox = np.random.Philox(
            key=seed_seq.generate_state(2, np.uint64))
        self._dag_gen = np.random.Generator(self._philox)
        self._philox_template = self._philox.state
        self._task_ids = itertools.count()
        self._dag_ids = itertools.count()

    # -- helpers -----------------------------------------------------------

    def _dag_rng(self, cell_index: int, slot_index: int,
                 uplink: bool) -> np.random.Generator:
        """Generator positioned on one (cell, slot, direction) stream.

        Returns the builder's single reusable generator with its Philox
        counter reset to the DAG's identity — equivalent to a fresh
        ``Generator(Philox(key=key, counter=(0, cell, slot, dir)))``
        without the per-DAG construction cost.  The caller must finish
        drawing before the next ``_dag_rng`` call.
        """
        template = self._philox_template
        template["state"]["counter"][:] = (0, cell_index, slot_index,
                                           1 if uplink else 0)
        template["buffer_pos"] = 4
        template["has_uint32"] = 0
        self._philox.state = template
        return self._dag_gen

    def _new_task(
        self,
        task_type: TaskType,
        load: SlotLoad,
        cell: CellConfig,
        base_features: np.ndarray,
        prbs: int,
        *,
        task_codeblocks: int = 0,
        task_bytes: float = 0.0,
        snr_margin_db: float = 10.0,
        code_rate: float = 0.6,
        prb_share: float = 1.0,
        layers: int = 1,
    ) -> TaskInstance:
        base = self.cost_model.base_cost_us(
            task_type,
            prbs=prbs,
            antennas=cell.num_antennas,
            total_layers=load.total_layers,
            slot_bytes=load.total_bytes,
            slot_codeblocks=load.total_codeblocks,
            task_codeblocks=task_codeblocks,
            task_bytes=task_bytes,
            snr_margin_db=snr_margin_db,
            code_rate=code_rate,
            prb_share=prb_share,
            layers=layers,
        )
        # rand_probe is filled in vectorized at the end of build().
        features = task_feature_vector(
            base_features, task_codeblocks, task_bytes, 0.0
        )
        return TaskInstance(
            task_id=next(self._task_ids),
            task_type=task_type,
            cell_name=cell.name,
            features=features,
            base_cost_us=base,
            snr_margin_db=snr_margin_db,
        )

    @staticmethod
    def _codeblock_groups(
        alloc: UeAllocation,
    ) -> list[tuple[int, float, float, float]]:
        """Split one UE's codeblocks into (#cbs, bytes, margin, rate) groups."""
        groups = []
        cbs = alloc.num_codeblocks
        if cbs == 0:
            return groups
        margin = alloc.snr_db - alloc.mcs.min_snr_db
        bytes_per_cb = alloc.tbs_bytes / cbs
        while cbs > 0:
            group = min(cbs, MAX_CBS_PER_TASK)
            groups.append(
                (group, group * bytes_per_cb, margin, alloc.mcs.code_rate)
            )
            cbs -= group
        return groups

    # -- public API ---------------------------------------------------------

    def build(self, load: SlotLoad, cell: CellConfig,
              release_us: float, deadline_us: float,
              cell_index: int = 0) -> DagInstance:
        """Build the DAG for one (cell, direction, slot).

        ``cell_index`` keys this DAG's private RNG stream together with
        the slot index and direction; callers building DAGs for several
        cells must pass distinct indices so the streams stay distinct.
        """
        base_features = slot_base_features(load, cell, load.slot_index)
        prbs = prbs_for_bandwidth(cell.bandwidth_mhz, cell.numerology)
        if load.uplink:
            tasks = self._build_uplink(load, cell, base_features, prbs)
        else:
            tasks = self._build_downlink(load, cell, base_features, prbs)
        rng = self._dag_rng(cell_index, load.slot_index, load.uplink)
        probes = rng.random(len(tasks)).tolist()
        for task, probe in zip(tasks, probes):
            task.features[_RAND_IDX] = probe
        self.cost_model.sample_runtimes(tasks, rng)
        dag = DagInstance(
            dag_id=next(self._dag_ids),
            cell_name=cell.name,
            slot_index=load.slot_index,
            uplink=load.uplink,
            release_us=release_us,
            deadline_us=deadline_us,
            tasks=tasks,
            tasks_remaining=len(tasks),
        )
        for task in tasks:
            task.dag = dag
        return dag

    def _build_uplink(self, load: SlotLoad, cell: CellConfig,
                      base_features: np.ndarray, prbs: int) -> list:
        """FFT -> per-UE (ChanEst..RateDematch -> decode groups) -> CRC.

        FlexRAN processes scheduled UEs in parallel branches; the slot's
        critical path is the front-end FFT plus one UE's chain plus one
        decode group, not the sum over UEs.
        """
        fft = self._new_task(TaskType.FFT, load, cell, base_features, prbs)
        tasks = [fft]
        if load.idle:
            # Front-end processing runs even on empty slots (no PUSCH).
            return tasks
        crc = self._new_task(TaskType.CRC_CHECK, load, cell, base_features, prbs)
        slot_bytes = max(load.total_bytes, 1)
        for alloc in load.allocations:
            share = alloc.tbs_bytes / slot_bytes
            margin = alloc.snr_db - alloc.mcs.min_snr_db
            prev = fft
            for task_type in (TaskType.CHANNEL_ESTIMATION,
                              TaskType.EQUALIZATION,
                              TaskType.DEMODULATION,
                              TaskType.DESCRAMBLING,
                              TaskType.RATE_DEMATCH):
                task = self._new_task(
                    task_type, load, cell, base_features, prbs,
                    task_bytes=alloc.tbs_bytes,
                    snr_margin_db=margin,
                    code_rate=alloc.mcs.code_rate,
                    prb_share=share,
                    layers=alloc.layers,
                )
                _link(prev, task)
                tasks.append(task)
                prev = task
            for cbs, grp_bytes, grp_margin, rate in self._codeblock_groups(alloc):
                decode = self._new_task(
                    TaskType.LDPC_DECODE, load, cell, base_features, prbs,
                    task_codeblocks=cbs, task_bytes=grp_bytes,
                    snr_margin_db=grp_margin, code_rate=rate,
                    prb_share=share, layers=alloc.layers,
                )
                _link(prev, decode)
                _link(decode, crc)
                tasks.append(decode)
        tasks.append(crc)
        return tasks

    def _build_downlink(self, load: SlotLoad, cell: CellConfig,
                        base_features: np.ndarray, prbs: int) -> list:
        """CRC -> per-UE (encode groups -> RateMatch..Modulate) -> Precode -> iFFT."""
        if load.idle:
            # Broadcast/control symbols still get modulated and precoded.
            mod = self._new_task(TaskType.MODULATION, load, cell, base_features, prbs)
            ifft = self._new_task(TaskType.IFFT, load, cell, base_features, prbs)
            _link(mod, ifft)
            return [mod, ifft]
        crc = self._new_task(TaskType.CRC_ATTACH, load, cell, base_features, prbs)
        tasks = [crc]
        precode = self._new_task(TaskType.PRECODING, load, cell, base_features, prbs)
        slot_bytes = max(load.total_bytes, 1)
        for alloc in load.allocations:
            share = alloc.tbs_bytes / slot_bytes
            margin = alloc.snr_db - alloc.mcs.min_snr_db
            rate_match = self._new_task(
                TaskType.RATE_MATCH, load, cell, base_features, prbs,
                task_bytes=alloc.tbs_bytes, snr_margin_db=margin,
                code_rate=alloc.mcs.code_rate, prb_share=share,
                layers=alloc.layers,
            )
            for cbs, grp_bytes, grp_margin, rate in self._codeblock_groups(alloc):
                encode = self._new_task(
                    TaskType.LDPC_ENCODE, load, cell, base_features, prbs,
                    task_codeblocks=cbs, task_bytes=grp_bytes,
                    snr_margin_db=grp_margin, code_rate=rate,
                    prb_share=share, layers=alloc.layers,
                )
                _link(crc, encode)
                _link(encode, rate_match)
                tasks.append(encode)
            tasks.append(rate_match)
            prev = rate_match
            for task_type in (TaskType.SCRAMBLING, TaskType.MODULATION):
                task = self._new_task(
                    task_type, load, cell, base_features, prbs,
                    task_bytes=alloc.tbs_bytes, snr_margin_db=margin,
                    code_rate=alloc.mcs.code_rate, prb_share=share,
                    layers=alloc.layers,
                )
                _link(prev, task)
                tasks.append(task)
                prev = task
            _link(prev, precode)
        tasks.append(precode)
        ifft = self._new_task(TaskType.IFFT, load, cell, base_features, prbs)
        _link(precode, ifft)
        tasks.append(ifft)
        return tasks

"""Construction of per-slot signal-processing DAGs (paper Fig. 1 / Fig. 16).

Every slot, each cell contributes one DAG per active direction.  The
uplink chain is::

    FFT -> ChanEst -> Equalize -> Demod -> Descramble -> RateDematch
        -> {LDPC decode groups, parallel} -> CRC check

and the downlink chain is::

    CRC attach -> {LDPC encode groups, parallel} -> RateMatch
        -> Scramble -> Modulate -> Precode -> iFFT

Codeblocks are split into groups of at most :data:`MAX_CBS_PER_TASK`
per encode/decode task so that heavy coding work parallelizes across
worker cores, exactly like FlexRAN fans codeblocks out to its pool.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from .config import CellConfig
from .tasks import (
    FEATURE_INDEX,
    CostModel,
    TaskInstance,
    TaskType,
    prbs_for_bandwidth,
    slot_base_features,
)
from .ue import SlotLoad, UeAllocation

__all__ = ["DagInstance", "DagBuilder", "DagTopology", "MAX_CBS_PER_TASK",
           "batch_predicted_paths", "dag_kind_key", "topology_from_dag",
           "topology_for_kind", "topology_for_key", "plan_task_rows"]

#: Maximum codeblocks bundled into one encode/decode task instance.
MAX_CBS_PER_TASK = 4

_RAND_IDX = FEATURE_INDEX["rand_probe"]
_TASK_CB_IDX = FEATURE_INDEX["task_codeblocks"]
_TASK_BYTES_IDX = FEATURE_INDEX["task_bytes"]


@dataclass(slots=True)
class DagInstance:
    """One slot's worth of dependent signal-processing tasks for a cell."""

    dag_id: int
    cell_name: str
    slot_index: int
    uplink: bool
    release_us: float
    deadline_us: float
    tasks: list = field(default_factory=list)  # topological order
    tasks_remaining: int = 0
    completion_us: Optional[float] = None
    #: Slot for the scheduling policy's per-DAG state (owned by the
    #: policy; e.g. ConcordiaScheduler's incremental work/critical-path
    #: record).  An attribute load here replaces a dict lookup in the
    #: three per-task policy hooks.  Cleared by the policy when the DAG
    #: completes and on builder-pool reuse.
    policy_state: Optional[object] = None
    #: Predictor warm-up (elastic reconfiguration): the scheduling
    #: policy multiplies its per-task WCET predictions by this factor.
    #: A freshly migrated cell's DAGs carry >1.0 while the destination
    #: predictor has no history for the cell; sampling and ground-truth
    #: runtimes are never scaled, so demand digests are unaffected.
    wcet_inflation: float = 1.0
    #: Structural fingerprint ``(uplink, idle, per-alloc decode/encode
    #: group counts)``.  Two DAGs with equal kind keys are wired
    #: identically (same task count, same dependency edges, same
    #: ``dag.tasks`` order), which is what lets the array kernel look
    #: their topology up in :func:`topology_for_kind` instead of
    #: re-deriving it per slot.
    kind_key: Optional[tuple] = None

    @property
    def finished(self) -> bool:
        return self.tasks_remaining == 0

    @property
    def latency_us(self) -> Optional[float]:
        """Slot processing latency: completion relative to release."""
        if self.completion_us is None:
            return None
        return self.completion_us - self.release_us

    def entry_tasks(self) -> list:
        return [t for t in self.tasks if t.predecessors_remaining == 0
                and t.start_time is None]

    def remaining_work_us(self, wcet: Callable[[TaskInstance], float],
                          now: float) -> float:
        """Sum of predicted-remaining WCETs over unfinished tasks."""
        total = 0.0
        for task in self.tasks:
            if task.finish_time is not None:
                continue
            estimate = wcet(task)
            if task.start_time is not None:
                estimate = max(0.0, estimate - (now - task.start_time))
            total += estimate
        return total

    def remaining_critical_path_us(self, wcet: Callable[[TaskInstance], float],
                                   now: float) -> float:
        """Longest remaining chain of predicted WCETs through the DAG.

        Tasks are stored in topological order, so a single reverse sweep
        computes the longest path to any sink.  Finished tasks contribute
        zero; running tasks contribute their remaining estimate.
        """
        if self.tasks_remaining == 0:
            return 0.0
        longest_from: dict[int, float] = {}
        best = 0.0
        for task in reversed(self.tasks):
            if task.finish_time is not None:
                cost = 0.0
            else:
                cost = wcet(task)
                if task.start_time is not None:
                    cost = max(0.0, cost - (now - task.start_time))
            tail = max(
                (longest_from.get(id(s), 0.0) for s in task.successors),
                default=0.0,
            )
            longest_from[id(task)] = cost + tail
            if cost + tail > best:
                best = cost + tail
        return best


def _link(parent: TaskInstance, child: TaskInstance) -> None:
    parent.successors.append(child)
    child.predecessors_remaining += 1


def dag_kind_key(load: SlotLoad) -> tuple:
    """Structural fingerprint of the DAG a :class:`SlotLoad` builds.

    The builder wires a DAG from exactly three structural inputs: the
    direction, whether the slot is idle, and how many codeblock groups
    each allocation splits into (``_codeblock_groups`` emits
    ``ceil(num_codeblocks / MAX_CBS_PER_TASK)`` groups, zero for
    zero-codeblock allocations).  Everything else — byte counts, SNR,
    MCS — only changes task *costs*, never edges or ``dag.tasks``
    order, so this tuple indexes the topology-template registry.
    """
    if load.idle:
        return (load.uplink, True, ())
    groups = tuple((alloc.num_codeblocks + MAX_CBS_PER_TASK - 1)
                   // MAX_CBS_PER_TASK
                   for alloc in load.allocations)
    return (load.uplink, False, groups)


@dataclass(frozen=True)
class DagTopology:
    """Immutable index-space view of one DAG kind's wiring.

    All fields refer to positions in ``dag.tasks`` (topological
    order).  ``levels`` is the level-synchronous schedule — level k
    holds every task whose longest entry distance is k — and
    ``dependency_matrix()`` materialises the edge set; both exist so
    batch kernels (and the template-equality tests) can reason about
    the shape without touching task objects.
    """

    kind_key: tuple
    num_tasks: int
    entry_indices: tuple
    pred_counts: tuple
    successors: tuple  # tuple of per-task successor index tuples
    levels: tuple      # tuple of per-level task index tuples

    def dependency_matrix(self) -> np.ndarray:
        """Boolean ``(num_tasks, num_tasks)`` matrix: [i, j] = i -> j."""
        matrix = np.zeros((self.num_tasks, self.num_tasks), dtype=bool)
        for i, succ in enumerate(self.successors):
            for j in succ:
                matrix[i, j] = True
        return matrix


def topology_from_dag(dag: DagInstance) -> DagTopology:
    """Derive a :class:`DagTopology` from a freshly built DAG."""
    tasks = dag.tasks
    n = len(tasks)
    index = {id(task): i for i, task in enumerate(tasks)}
    successors = tuple(
        tuple(index[id(s)] for s in task.successors) for task in tasks)
    pred_counts = [0] * n
    for succ in successors:
        for j in succ:
            pred_counts[j] += 1
    entry_indices = tuple(i for i in range(n) if pred_counts[i] == 0)
    depth = [0] * n
    for i in range(n):  # tasks are topologically ordered
        for j in successors[i]:
            if depth[i] + 1 > depth[j]:
                depth[j] = depth[i] + 1
    levels: list[list[int]] = [[] for _ in range(max(depth, default=-1) + 1)]
    for i, d in enumerate(depth):
        levels[d].append(i)
    return DagTopology(
        kind_key=dag.kind_key,
        num_tasks=n,
        entry_indices=entry_indices,
        pred_counts=tuple(pred_counts),
        successors=successors,
        levels=tuple(tuple(level) for level in levels),
    )


#: kind_key -> DagTopology, lazily filled from the first DAG of each
#: kind.  Process-wide: topology is a pure function of the kind key.
_TOPOLOGY_REGISTRY: dict = {}


def topology_for_kind(dag: DagInstance) -> DagTopology:
    """Registry lookup of ``dag``'s topology template (lazy insert)."""
    key = dag.kind_key
    topology = _TOPOLOGY_REGISTRY.get(key)
    if topology is None:
        topology = topology_from_dag(dag)
        _TOPOLOGY_REGISTRY[key] = topology
    return topology


def topology_for_key(kind_key: tuple) -> Optional[DagTopology]:
    """Registry lookup by kind key alone; None until a DAG of that kind
    has been built (the registry only fills from real DAGs, never from
    synthesized wiring, so templates can't drift from the builder)."""
    return _TOPOLOGY_REGISTRY.get(kind_key)


#: Below this many tasks per slot the scalar prediction path beats the
#: vectorized one (array allocation + tolist() overhead dominates).
_BATCH_PATH_CUTOFF = 24


def batch_predicted_paths(dags: list, margin: float) -> list:
    """Vectorized WCET prediction + critical-path fill for a slot batch.

    Bit-identical replacement for the scalar per-task loop in
    ``ConcordiaScheduler.on_slot_start`` when no predictor is attached:
    every task's ``predicted_wcet_us`` is ``base_cost_us * margin``
    (times the DAG's ``wcet_inflation`` as a *second* multiply when it
    is not 1.0 — same two-step rounding as the scalar code), and
    ``path_us`` is filled by the same reverse topological sweep.  The
    per-task multiplies collapse into one numpy pass over the whole
    batch; the float left-fold of ``work_us`` and the running max of
    the critical path keep the scalar path's exact operation order.

    Returns one ``(work_us, critical_us, frontier)`` triple per DAG,
    where ``frontier`` maps entry-task ids to their ``path_us``.
    """
    flat = [task for dag in dags for task in dag.tasks]
    if len(flat) < _BATCH_PATH_CUTOFF:
        # Mostly-idle slots carry a handful of tasks; numpy's array
        # fill + tolist() round trip costs more than it saves there.
        # Scalar IEEE multiplies in the same two-step order are
        # bit-identical to the vectorized pass.
        predicted = []
        for dag in dags:
            inflation = dag.wcet_inflation
            if inflation != 1.0:
                predicted.extend(task.base_cost_us * margin * inflation
                                 for task in dag.tasks)
            else:
                predicted.extend(task.base_cost_us * margin
                                 for task in dag.tasks)
    else:
        base = np.empty(len(flat))
        for i, task in enumerate(flat):
            base[i] = task.base_cost_us
        predicted_arr = base * margin
        offset = 0
        for dag in dags:
            n = len(dag.tasks)
            if dag.wcet_inflation != 1.0:
                predicted_arr[offset:offset + n] *= dag.wcet_inflation
            offset += n
        predicted = predicted_arr.tolist()
    results = []
    offset = 0
    for dag in dags:
        tasks = dag.tasks
        work = 0.0
        for task, value in zip(tasks, predicted[offset:offset + len(tasks)]):
            task.predicted_wcet_us = value
            work += value
        offset += len(tasks)
        critical = 0.0
        frontier = {}
        for task in reversed(tasks):
            tail = 0.0
            for successor in task.successors:
                if successor.path_us > tail:
                    tail = successor.path_us
            task.path_us = task.predicted_wcet_us + tail
            if task.predecessors_remaining == 0:
                frontier[task.task_id] = task.path_us
                if task.path_us > critical:
                    critical = task.path_us
        results.append((work, critical, frontier))
    return results


class DagBuilder:
    """Factory turning :class:`SlotLoad` objects into task DAGs.

    Stochastic sampling is *batched per DAG*: every build derives a
    private RNG stream keyed by ``(cell_index, slot_index, direction)``
    and draws all of the DAG's randomness (rand_probe features plus the
    :meth:`CostModel.sample_runtimes` presamples) from it in a few
    vectorized calls.  Keying by DAG identity rather than by draw order
    makes the streams independent of execution interleaving: a DAG's
    runtimes are identical whether it is built before or after its
    neighbours, which is what keeps serial and parallel experiment
    drivers byte-identical.

    Stream derivation is counter-based: ``seed_seq`` (a SeedSequence
    child of the simulation seed) generates a 128-bit Philox key once,
    and each DAG's stream sets the Philox counter to its identity
    ``(0, cell_index, slot_index, direction)``.  Distinct counters are
    distinct, never-overlapping streams by construction — the same
    independence guarantee as ``SeedSequence.spawn`` children, but
    resetting a counter costs ~2 µs where hashing a fresh SeedSequence
    plus constructing a bit generator costs ~20 µs, which matters at
    one stream per DAG on the hot path.
    """

    def __init__(self, cost_model: CostModel,
                 rng: Optional[np.random.Generator] = None,
                 seed_seq: Optional[np.random.SeedSequence] = None) -> None:
        self.cost_model = cost_model
        self.rng = rng if rng is not None else np.random.default_rng(1)
        if seed_seq is None:
            # Deterministic fallback for callers that only pass an rng.
            seed_seq = np.random.SeedSequence(int(self.rng.integers(2 ** 63)))
        self._seed_seq = seed_seq
        # One reusable Philox generator; _dag_rng re-keys its counter.
        self._philox = np.random.Philox(
            key=seed_seq.generate_state(2, np.uint64))
        self._dag_gen = np.random.Generator(self._philox)
        self._philox_template = self._philox.state
        self._task_ids = itertools.count()
        self._dag_ids = itertools.count()
        # Instance pools: completed DAGs come back via recycle_dag()
        # and are scavenged at the next build, so no hook that runs at
        # completion time can observe a reset task.  Reset happens
        # lazily at re-acquisition.
        self._task_pool: list[TaskInstance] = []
        self._dag_pool: list[DagInstance] = []
        self._retired: list[DagInstance] = []
        # Deferred per-task cost/feature parameters, collected during
        # structural construction and evaluated in one vectorized pass
        # per build_many() batch.  One row tuple per task — a single
        # list append on the per-task path — unzipped into parallel
        # columns by the batch pass.  Rows are in *creation* order,
        # which differs from the topological order of dag.tasks (e.g.
        # the uplink CRC task is created second but listed last).
        self._pend_rows: list[tuple] = []

    # -- helpers -----------------------------------------------------------

    def _dag_rng(self, cell_index: int, slot_index: int,
                 uplink: bool) -> np.random.Generator:
        """Generator positioned on one (cell, slot, direction) stream.

        Returns the builder's single reusable generator with its Philox
        counter reset to the DAG's identity — equivalent to a fresh
        ``Generator(Philox(key=key, counter=(0, cell, slot, dir)))``
        without the per-DAG construction cost.  The caller must finish
        drawing before the next ``_dag_rng`` call.
        """
        template = self._philox_template
        template["state"]["counter"][:] = (0, cell_index, slot_index,
                                           1 if uplink else 0)
        template["buffer_pos"] = 4
        template["has_uint32"] = 0
        self._philox.state = template
        return self._dag_gen

    def _new_task(
        self,
        task_type: TaskType,
        cell_name: str,
        task_codeblocks: int = 0,
        task_bytes: float = 0.0,
        snr_margin_db: float = 10.0,
        code_rate: float = 0.6,
        prb_share: float = 1.0,
        layers: int = 1,
    ) -> TaskInstance:
        """Structural task construction: identity now, numbers later.

        The cost/feature parameters are appended to the pending batch
        columns; ``base_cost_us`` and ``features`` are filled by the
        vectorized pass at the end of :meth:`build_many` (values
        bit-identical to the old per-task scalar calls).
        """
        pool = self._task_pool
        if pool:
            task = pool.pop()
            task.predecessors_remaining = 0
            task.successors.clear()
            task.dag = None
            task.enqueue_time = None
            task.start_time = None
            task.finish_time = None
            task.runtime_us = None
            task.predicted_wcet_us = None
            task.path_us = 0.0
            task.task_id = next(self._task_ids)
            task.task_type = task_type
            task.memory_bound = task_type.is_memory_bound
            task.cell_name = cell_name
            task.snr_margin_db = snr_margin_db
        else:
            task = TaskInstance(
                task_id=next(self._task_ids),
                task_type=task_type,
                cell_name=cell_name,
                features=None,
                base_cost_us=0.0,
                snr_margin_db=snr_margin_db,
            )
        self._pend_rows.append(
            (task, task_type.type_code, task_codeblocks, task_bytes,
             snr_margin_db, code_rate, prb_share, layers))
        return task

    def recycle_dag(self, dag: DagInstance) -> None:
        """Mark a *completed* DAG's instances for reuse.

        Scavenging is deferred to the next build (a later slot
        boundary): completion-time hooks — the policy's finish hook,
        the final ``task_done`` record — still read intact fields.
        Callers must guarantee nothing retains the DAG's tasks past
        the slot boundary (the pool skips recycling entirely while a
        ``task_observer`` is attached).
        """
        self._retired.append(dag)

    def _drain_retired(self) -> None:
        task_pool = self._task_pool
        dag_pool = self._dag_pool
        for dag in self._retired:
            task_pool.extend(dag.tasks)
            dag.tasks = []
            dag_pool.append(dag)
        self._retired.clear()

    @staticmethod
    def _codeblock_groups(
        alloc: UeAllocation,
    ) -> list[tuple[int, float, float, float]]:
        """Split one UE's codeblocks into (#cbs, bytes, margin, rate) groups."""
        groups = []
        cbs = alloc.num_codeblocks
        if cbs == 0:
            return groups
        margin = alloc.snr_db - alloc.mcs.min_snr_db
        bytes_per_cb = alloc.tbs_bytes / cbs
        while cbs > 0:
            group = min(cbs, MAX_CBS_PER_TASK)
            groups.append(
                (group, group * bytes_per_cb, margin, alloc.mcs.code_rate)
            )
            cbs -= group
        return groups

    # -- public API ---------------------------------------------------------

    def build(self, load: SlotLoad, cell: CellConfig,
              release_us: float, deadline_us: float,
              cell_index: int = 0) -> DagInstance:
        """Build the DAG for one (cell, direction, slot).

        ``cell_index`` keys this DAG's private RNG stream together with
        the slot index and direction; callers building DAGs for several
        cells must pass distinct indices so the streams stay distinct.
        """
        return self.build_many(
            [(load, cell, release_us, deadline_us, cell_index)])[0]

    def build_many(self, jobs: list) -> list:
        """Build all DAGs of one slot in a single vectorized batch.

        ``jobs`` is a list of ``(load, cell, release_us, deadline_us,
        cell_index)`` tuples.  Structural construction (task wiring)
        runs per DAG as before, but the per-task ``base_cost_us`` and
        feature vectors are computed in one numpy pass over the whole
        batch — ~2 np calls per task *type* instead of ~7 Python-level
        calls per *task*.  RNG draws stay on each DAG's private
        counter-keyed stream in the original order (probes, then
        runtime presamples), so results are byte-identical to building
        each DAG separately.
        """
        if not jobs:
            return []
        self._drain_retired()
        self._pend_rows.clear()
        dag_tasks = []
        bases = []
        consts = []  # per-DAG (prbs, antennas, slot_bytes)
        for load, cell, _release, _deadline, _index in jobs:
            if load.uplink:
                tasks = self._build_uplink(load, cell)
            else:
                tasks = self._build_downlink(load, cell)
            dag_tasks.append(tasks)
            bases.append(slot_base_features(load, cell, load.slot_index))
            prbs = prbs_for_bandwidth(cell.bandwidth_mhz, cell.numerology)
            consts.append((float(prbs), float(cell.num_antennas),
                           float(load.total_bytes)))
        counts = np.array([len(tasks) for tasks in dag_tasks])
        const_arr = np.repeat(np.array(consts), counts, axis=0)
        (pend_tasks, codes, cbs, tbytes, margins, rates, shares,
         task_layers) = zip(*self._pend_rows)
        costs = self.cost_model.base_costs_batch(
            np.array(codes),
            prbs=const_arr[:, 0],
            antennas=const_arr[:, 1],
            slot_bytes=const_arr[:, 2],
            task_codeblocks=np.array(cbs, dtype=np.float64),
            task_bytes=np.array(tbytes),
            snr_margin_db=np.array(margins),
            code_rate=np.array(rates),
            prb_share=np.array(shares),
            layers=np.array(task_layers, dtype=np.float64),
        ).tolist()
        # One (total_tasks, NUM_FEATURES) matrix; each task's feature
        # vector is a row view.  Values match the old per-task
        # base.copy() + three scalar writes exactly.
        feats = np.repeat(np.stack(bases), counts, axis=0)
        feats[:, _TASK_CB_IDX] = cbs
        feats[:, _TASK_BYTES_IDX] = tbytes
        # list(feats) splits the matrix into row views in one C call;
        # per-row feats[i] indexing costs a Python-level __getitem__
        # per task.
        for task, row, cost in zip(pend_tasks, list(feats), costs):
            task.features = row
            task.base_cost_us = cost
        sample_runtimes = self.cost_model.sample_runtimes
        dags = []
        for job, tasks in zip(jobs, dag_tasks):
            load, cell, release_us, deadline_us, cell_index = job
            n = len(tasks)
            kind = dag_kind_key(load)
            rng = self._dag_rng(cell_index, load.slot_index, load.uplink)
            # Probes are drawn and assigned in dag.tasks (topological)
            # order, exactly like the old scalar path.
            probes = rng.random(n).tolist()
            for task, probe in zip(tasks, probes):
                task.features[_RAND_IDX] = probe
            sample_runtimes(tasks, rng)
            dag_pool = self._dag_pool
            if dag_pool:
                dag = dag_pool.pop()
                dag.dag_id = next(self._dag_ids)
                dag.cell_name = cell.name
                dag.slot_index = load.slot_index
                dag.uplink = load.uplink
                dag.release_us = release_us
                dag.deadline_us = deadline_us
                dag.tasks = tasks
                dag.tasks_remaining = n
                dag.completion_us = None
                dag.policy_state = None
                dag.wcet_inflation = 1.0
                dag.kind_key = kind
            else:
                dag = DagInstance(
                    dag_id=next(self._dag_ids),
                    cell_name=cell.name,
                    slot_index=load.slot_index,
                    uplink=load.uplink,
                    release_us=release_us,
                    deadline_us=deadline_us,
                    tasks=tasks,
                    tasks_remaining=n,
                    kind_key=kind,
                )
            for task in tasks:
                task.dag = dag
            dags.append(dag)
        return dags

    def _build_uplink(self, load: SlotLoad, cell: CellConfig) -> list:
        """FFT -> per-UE (ChanEst..RateDematch -> decode groups) -> CRC.

        FlexRAN processes scheduled UEs in parallel branches; the slot's
        critical path is the front-end FFT plus one UE's chain plus one
        decode group, not the sum over UEs.
        """
        name = cell.name
        new_task = self._new_task
        fft = new_task(TaskType.FFT, name)
        tasks = [fft]
        if load.idle:
            # Front-end processing runs even on empty slots (no PUSCH).
            return tasks
        crc = new_task(TaskType.CRC_CHECK, name)
        slot_bytes = max(load.total_bytes, 1)
        for alloc in load.allocations:
            share = alloc.tbs_bytes / slot_bytes
            margin = alloc.snr_db - alloc.mcs.min_snr_db
            tbs = alloc.tbs_bytes
            rate = alloc.mcs.code_rate
            layers = alloc.layers
            prev = fft
            for task_type in (TaskType.CHANNEL_ESTIMATION,
                              TaskType.EQUALIZATION,
                              TaskType.DEMODULATION,
                              TaskType.DESCRAMBLING,
                              TaskType.RATE_DEMATCH):
                task = new_task(task_type, name, 0, tbs, margin, rate,
                                share, layers)
                _link(prev, task)
                tasks.append(task)
                prev = task
            for cbs, grp_bytes, grp_margin, grp_rate in self._codeblock_groups(alloc):
                decode = new_task(TaskType.LDPC_DECODE, name, cbs,
                                  grp_bytes, grp_margin, grp_rate, share,
                                  layers)
                _link(prev, decode)
                _link(decode, crc)
                tasks.append(decode)
        tasks.append(crc)
        return tasks

    def _build_downlink(self, load: SlotLoad, cell: CellConfig) -> list:
        """CRC -> per-UE (encode groups -> RateMatch..Modulate) -> Precode -> iFFT."""
        name = cell.name
        new_task = self._new_task
        if load.idle:
            # Broadcast/control symbols still get modulated and precoded.
            mod = new_task(TaskType.MODULATION, name)
            ifft = new_task(TaskType.IFFT, name)
            _link(mod, ifft)
            return [mod, ifft]
        crc = new_task(TaskType.CRC_ATTACH, name)
        tasks = [crc]
        precode = new_task(TaskType.PRECODING, name)
        slot_bytes = max(load.total_bytes, 1)
        for alloc in load.allocations:
            share = alloc.tbs_bytes / slot_bytes
            margin = alloc.snr_db - alloc.mcs.min_snr_db
            tbs = alloc.tbs_bytes
            rate = alloc.mcs.code_rate
            layers = alloc.layers
            rate_match = new_task(TaskType.RATE_MATCH, name, 0, tbs,
                                  margin, rate, share, layers)
            for cbs, grp_bytes, grp_margin, grp_rate in self._codeblock_groups(alloc):
                encode = new_task(TaskType.LDPC_ENCODE, name, cbs,
                                  grp_bytes, grp_margin, grp_rate, share,
                                  layers)
                _link(crc, encode)
                _link(encode, rate_match)
                tasks.append(encode)
            tasks.append(rate_match)
            prev = rate_match
            for task_type in (TaskType.SCRAMBLING, TaskType.MODULATION):
                task = new_task(task_type, name, 0, tbs, margin, rate,
                                share, layers)
                _link(prev, task)
                tasks.append(task)
                prev = task
            _link(prev, precode)
        tasks.append(precode)
        ifft = new_task(TaskType.IFFT, name)
        _link(precode, ifft)
        tasks.append(ifft)
        return tasks

    def plan_stoch_mults(self, n: int, decode_indices: list,
                         cell_index: int, slot_index: int,
                         uplink: bool) -> list:
        """The ``task.stoch_mult`` values one DAG build would produce.

        Consumes exactly the draws :meth:`build_many` would from the
        DAG's counter-keyed stream — the probe block first, then the
        :meth:`CostModel.sample_runtimes` block — so a later real build
        of the same (cell, slot, direction) sees identical randomness.
        ``decode_indices`` lists the LDPC-decode positions in
        ``dag.tasks`` order; the cache_u/cache_tail draws are consumed
        but not returned (they only matter at event-path dispatch).
        """
        cm = self.cost_model
        rng = self._dag_rng(cell_index, slot_index, uplink)
        # One 5n draw replaces the probe block's random(n) followed by
        # sample_runtimes' random(4n): Generator.random consumes one
        # uint64 per double, so consecutive calls concatenate — the
        # block is bitwise the same stream prefix.
        block = rng.random(5 * n)
        u = block[n:]  # probes block[:n] feed only predictor features
        mult = np.exp(rng.standard_normal(n) * cm.noise_sigma)
        mult[u[:n] < cm.isolated_tail_prob] *= cm.isolated_tail_scale
        mults = mult.tolist()
        if decode_indices:
            jitters = (-np.log1p(-u[n:2 * n])).tolist()
            coeff = cm.decode_iteration_jitter
            for i in decode_indices:
                m = mults[i]
                m *= 1.0 + coeff * jitters[i]
                mults[i] = m
        return mults

    def plan_stoch_window(self, reqs: list) -> list:
        """Batched :meth:`plan_stoch_mults` over many DAGs.

        ``reqs`` holds one ``(n, decode_indices, cell_index,
        slot_index, uplink)`` tuple per DAG.  Each DAG's uniform and
        normal blocks are drawn from its own counter-keyed stream in
        request order, exactly like the per-DAG calls; only the
        elementwise transform (noise exp, tail scaling) is fused
        across DAGs, which cannot perturb any value.  Returns the
        multipliers as one flat list in request order (``n`` values
        per request).
        """
        if not reqs:
            return []
        cm = self.cost_model
        dag_rng = self._dag_rng
        blocks = []
        zs = []
        for n, _d, cell_index, slot_index, uplink in reqs:
            rng = dag_rng(cell_index, slot_index, uplink)
            blocks.append(rng.random(5 * n))
            zs.append(rng.standard_normal(n))
        mult_all = np.exp(np.concatenate(zs) * cm.noise_sigma)
        tail_u = np.concatenate(
            [block[req[0]:2 * req[0]]
             for block, req in zip(blocks, reqs)])
        mult_all[tail_u < cm.isolated_tail_prob] *= \
            cm.isolated_tail_scale
        mults = mult_all.tolist()
        coeff = cm.decode_iteration_jitter
        offset = 0
        for block, (n, decode_indices, _c, _s, _u) in zip(blocks, reqs):
            if decode_indices:
                jitters = (-np.log1p(-block[2 * n:3 * n])).tolist()
                for i in decode_indices:
                    m = mults[offset + i]
                    m *= 1.0 + coeff * jitters[i]
                    mults[offset + i] = m
            offset += n
        return mults


#: Default cost-row tail for parameter-less tasks, matching
#: ``DagBuilder._new_task``'s keyword defaults:
#: (codeblocks, bytes, snr_margin_db, code_rate, prb_share, layers).
_PLAN_DEFAULT_ROW = (0, 0.0, 10.0, 0.6, 1.0, 1)

_UL_CHAIN_TYPES = (TaskType.CHANNEL_ESTIMATION, TaskType.EQUALIZATION,
                   TaskType.DEMODULATION, TaskType.DESCRAMBLING,
                   TaskType.RATE_DEMATCH)

#: Idle-slot rows are load-independent; shared read-only lists.
_IDLE_UL_ROWS = [(TaskType.FFT,) + _PLAN_DEFAULT_ROW]
_IDLE_DL_ROWS = [(TaskType.MODULATION,) + _PLAN_DEFAULT_ROW,
                 (TaskType.IFFT,) + _PLAN_DEFAULT_ROW]


def plan_task_rows(load: SlotLoad, cell: CellConfig) -> list:
    """Cost-model inputs of one DAG's tasks, without building tasks.

    Returns one ``(task_type, codeblocks, bytes, margin, rate, share,
    layers)`` tuple per task in ``dag.tasks`` (topological) order,
    mirroring ``_build_uplink``/``_build_downlink`` parameter by
    parameter.  ``base_costs_batch`` over these rows reproduces every
    ``task.base_cost_us`` bit-for-bit, which is what lets the window
    fill certify and plan a slot before deciding whether to materialize
    its DAG objects at all.
    """
    if load.uplink:
        if load.idle:
            return _IDLE_UL_ROWS
        rows = [(TaskType.FFT,) + _PLAN_DEFAULT_ROW]
        slot_bytes = max(load.total_bytes, 1)
        for alloc in load.allocations:
            share = alloc.tbs_bytes / slot_bytes
            margin = alloc.snr_db - alloc.mcs.min_snr_db
            tbs = alloc.tbs_bytes
            rate = alloc.mcs.code_rate
            layers = alloc.layers
            for task_type in _UL_CHAIN_TYPES:
                rows.append((task_type, 0, tbs, margin, rate, share,
                             layers))
            for cbs, grp_bytes, grp_margin, grp_rate in (
                    DagBuilder._codeblock_groups(alloc)):
                rows.append((TaskType.LDPC_DECODE, cbs, grp_bytes,
                             grp_margin, grp_rate, share, layers))
        rows.append((TaskType.CRC_CHECK,) + _PLAN_DEFAULT_ROW)
        return rows
    if load.idle:
        return _IDLE_DL_ROWS
    rows = [(TaskType.CRC_ATTACH,) + _PLAN_DEFAULT_ROW]
    slot_bytes = max(load.total_bytes, 1)
    for alloc in load.allocations:
        share = alloc.tbs_bytes / slot_bytes
        margin = alloc.snr_db - alloc.mcs.min_snr_db
        tbs = alloc.tbs_bytes
        rate = alloc.mcs.code_rate
        layers = alloc.layers
        for cbs, grp_bytes, grp_margin, grp_rate in (
                DagBuilder._codeblock_groups(alloc)):
            rows.append((TaskType.LDPC_ENCODE, cbs, grp_bytes,
                         grp_margin, grp_rate, share, layers))
        rows.append((TaskType.RATE_MATCH, 0, tbs, margin, rate, share,
                     layers))
        for task_type in (TaskType.SCRAMBLING, TaskType.MODULATION):
            rows.append((task_type, 0, tbs, margin, rate, share,
                         layers))
    rows.append((TaskType.PRECODING,) + _PLAN_DEFAULT_ROW)
    rows.append((TaskType.IFFT,) + _PLAN_DEFAULT_ROW)
    return rows

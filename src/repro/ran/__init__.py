"""5G NR substrate: cell configs, UEs, task DAGs, traffic generation."""

"""Cell and pool configurations (Tables 1 and 2 of the paper).

Two reference deployments are used throughout the evaluation:

* ``100 MHz TDD`` — 2 cells, numerology 1 (500 µs slots), DDDSU TDD
  pattern, 1.5 ms slot-processing deadline, peak 1.5 Gbps DL /
  160 Mbps UL per cell, 12-core vRAN pool at peak.
* ``20 MHz FDD`` — 7 cells, numerology 0 (1 ms slots), UL+DL every
  slot, 2 ms deadline, peak 380 Mbps DL / 160 Mbps UL per cell,
  8-core vRAN pool at peak.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = [
    "Duplex",
    "SlotType",
    "CellConfig",
    "PoolConfig",
    "cell_100mhz_tdd",
    "cell_20mhz_fdd",
    "pool_100mhz_2cells",
    "pool_20mhz_7cells",
    "TDD_PATTERN_DDDSU",
]


class Duplex(enum.Enum):
    """Duplexing mode of a cell."""

    FDD = "fdd"
    TDD = "tdd"


class SlotType(enum.Enum):
    """Link direction(s) processed in a slot."""

    DOWNLINK = "D"
    UPLINK = "U"
    SPECIAL = "S"  # mostly DL symbols plus a short UL portion
    FULL_DUPLEX = "F"  # FDD: both directions every slot


# The standard 5G NR TDD pattern used in the paper's 100 MHz scenarios.
TDD_PATTERN_DDDSU: tuple[SlotType, ...] = (
    SlotType.DOWNLINK,
    SlotType.DOWNLINK,
    SlotType.DOWNLINK,
    SlotType.SPECIAL,
    SlotType.UPLINK,
)

#: 3GPP 38.211 slot durations per numerology (µs).
SLOT_DURATION_US = {0: 1000.0, 1: 500.0, 2: 250.0, 3: 125.0, 4: 62.5}


@dataclass(frozen=True)
class CellConfig:
    """Static configuration of a single 5G NR cell."""

    name: str
    bandwidth_mhz: float
    duplex: Duplex
    numerology: int
    peak_dl_mbps: float
    peak_ul_mbps: float
    avg_dl_mbps: float
    avg_ul_mbps: float
    max_ues_per_slot: int = 16
    num_antennas: int = 4
    max_layers: int = 4
    tdd_pattern: tuple[SlotType, ...] = TDD_PATTERN_DDDSU

    def __post_init__(self) -> None:
        if self.numerology not in SLOT_DURATION_US:
            raise ValueError(f"unsupported numerology {self.numerology}")
        if self.bandwidth_mhz <= 0:
            raise ValueError("bandwidth must be positive")
        if self.peak_dl_mbps < self.avg_dl_mbps or self.peak_ul_mbps < self.avg_ul_mbps:
            raise ValueError("peak throughput must be >= average throughput")

    @property
    def slot_duration_us(self) -> float:
        """Slot (TTI) duration in microseconds."""
        return SLOT_DURATION_US[self.numerology]

    def slot_type(self, slot_index: int) -> SlotType:
        """Direction of slot ``slot_index`` under this cell's duplexing."""
        if self.duplex is Duplex.FDD:
            return SlotType.FULL_DUPLEX
        return self.tdd_pattern[slot_index % len(self.tdd_pattern)]

    def peak_bytes_per_slot(self, uplink: bool) -> float:
        """Peak transport bytes carried in one slot for a direction.

        For TDD the per-direction peak is concentrated in that
        direction's slots, so the per-slot volume is scaled by the
        inverse of the direction's share of the TDD pattern.
        """
        mbps = self.peak_ul_mbps if uplink else self.peak_dl_mbps
        bytes_per_us = mbps * 1e6 / 8.0 / 1e6
        per_slot = bytes_per_us * self.slot_duration_us
        if self.duplex is Duplex.TDD:
            share = self.direction_share(uplink)
            if share > 0:
                per_slot /= share
        return per_slot

    def direction_share(self, uplink: bool) -> float:
        """Fraction of TDD slots carrying the given direction.

        Special slots count partially (0.3 uplink / 0.5 downlink,
        matching the simulator's SPECIAL_SLOT_*_SCALE traffic split).
        Callers use this to convert a direction's average rate into a
        per-active-slot rate: for FDD every slot carries both
        directions, so the share concept only applies to TDD patterns.
        """
        weights = 0.0
        for slot in self.tdd_pattern:
            if slot is SlotType.SPECIAL:
                weights += 0.3 if uplink else 0.5
            elif (slot is SlotType.UPLINK) == uplink:
                weights += 1.0
        return weights / len(self.tdd_pattern)


@dataclass(frozen=True)
class PoolConfig:
    """A vRAN pool: a set of cells sharing a bank of CPU cores."""

    cells: tuple[CellConfig, ...]
    num_cores: int
    deadline_us: float
    scheduler_tick_us: float = 20.0
    core_rotation_us: float = 2000.0

    def __post_init__(self) -> None:
        if not self.cells:
            raise ValueError("pool needs at least one cell")
        if self.num_cores <= 0:
            raise ValueError("pool needs at least one core")
        if self.deadline_us <= 0:
            raise ValueError("deadline must be positive")
        numerologies = {c.numerology for c in self.cells}
        if len(numerologies) != 1:
            raise ValueError("all pooled cells must share a numerology")

    @property
    def slot_duration_us(self) -> float:
        return self.cells[0].slot_duration_us


def cell_100mhz_tdd(name: str = "cell100") -> CellConfig:
    """The paper's 100 MHz TDD cell (Table 1/2)."""
    return CellConfig(
        name=name,
        bandwidth_mhz=100.0,
        duplex=Duplex.TDD,
        numerology=1,
        peak_dl_mbps=1500.0,
        peak_ul_mbps=160.0,
        avg_dl_mbps=750.0,
        avg_ul_mbps=80.0,
        num_antennas=4,
        max_layers=4,
    )


def cell_20mhz_fdd(name: str = "cell20") -> CellConfig:
    """The paper's 20 MHz FDD cell (Table 1/2)."""
    return CellConfig(
        name=name,
        bandwidth_mhz=20.0,
        duplex=Duplex.FDD,
        numerology=0,
        peak_dl_mbps=380.0,
        peak_ul_mbps=160.0,
        avg_dl_mbps=270.0,
        avg_ul_mbps=120.0,
        num_antennas=2,
        max_layers=2,
    )


def pool_100mhz_2cells(num_cores: int = 12, deadline_us: float = 1500.0) -> PoolConfig:
    """Table 1/2 deployment: 2 × 100 MHz TDD cells, 1.5 ms deadline."""
    cells = tuple(cell_100mhz_tdd(f"cell100-{i}") for i in range(2))
    return PoolConfig(cells=cells, num_cores=num_cores, deadline_us=deadline_us)


def pool_20mhz_7cells(num_cores: int = 8, deadline_us: float = 2000.0) -> PoolConfig:
    """Table 1/2 deployment: 7 × 20 MHz FDD cells, 2 ms deadline."""
    cells = tuple(cell_20mhz_fdd(f"cell20-{i}") for i in range(7))
    return PoolConfig(cells=cells, num_cores=num_cores, deadline_us=deadline_us)

"""HARQ retransmissions (hybrid ARQ, 3GPP 38.321).

When uplink decoding fails (CRC mismatch), 5G NR does not drop the
data: the gNB requests a retransmission, which arrives a few slots
later and adds to that slot's processing load.  For the scheduler this
matters because decode failures correlate with *low SNR margin* — the
same inputs that already take the longest to decode — so retransmission
load clusters exactly where the pool is already busiest.

:class:`HarqManager` models this feedback loop on top of the runner: it
assigns each uplink allocation a block-error probability from its SNR
margin, re-enqueues failed transport blocks ``rtt_slots`` later (same
UE parameters, boosted margin as link adaptation reacts), and gives up
after ``max_attempts`` (a residual loss, which the paper's 99.999 %
requirement exists to bound).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from .ue import UeAllocation

__all__ = ["HarqConfig", "HarqManager", "block_error_probability"]


def block_error_probability(snr_margin_db: float,
                            codeblocks: int) -> float:
    """BLER of a transport block given its link margin.

    Link adaptation targets roughly 10 % first-transmission BLER
    (standard operating point), so a typical fresh allocation — margin
    of a fraction of a dB above its MCS threshold — lands near 0.1.
    The error rate decays exponentially with extra margin (each HARQ
    retransmission adds combining gain) and grows mildly with the
    number of codeblocks that all must pass CRC.
    """
    base = 0.12 * math.exp(-0.9 * snr_margin_db)
    size_factor = math.sqrt(max(1, codeblocks) / 4.0)
    return min(0.8, max(0.0, base * size_factor))


@dataclass(frozen=True)
class HarqConfig:
    """HARQ process parameters."""

    rtt_slots: int = 4  # feedback + grant round trip
    max_attempts: int = 4
    #: Retransmissions combine with the buffered soft bits, so the
    #: effective margin improves by this much per attempt (chase
    #: combining gain, dB).
    combining_gain_db: float = 2.5


@dataclass
class _PendingRetransmission:
    due_slot: int
    allocation: UeAllocation
    attempt: int


class HarqManager:
    """Per-cell HARQ state: failures in, retransmissions out."""

    def __init__(self, config: Optional[HarqConfig] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        self.config = config if config is not None else HarqConfig()
        self.rng = rng if rng is not None else np.random.default_rng(37)
        self._pending: list = []
        self.transport_blocks = 0
        self.failures = 0
        self.retransmissions = 0
        self.residual_losses = 0

    def process_slot(self, slot_index: int,
                     allocations: tuple) -> tuple:
        """Run HARQ for one uplink slot.

        Takes the slot's fresh allocations, draws decode outcomes for
        every transport block (fresh and retransmitted), queues
        retransmissions, and returns the complete allocation tuple for
        the PHY (fresh + due retransmissions).
        """
        due = [p for p in self._pending if p.due_slot <= slot_index]
        self._pending = [p for p in self._pending
                         if p.due_slot > slot_index]
        combined = list(allocations)
        for pending in due:
            combined.append(pending.allocation)
            self.retransmissions += 1
        # Draw outcomes and queue the failures.
        attempt_of = {id(p.allocation): p.attempt for p in due}
        for allocation in combined:
            self.transport_blocks += 1
            attempt = attempt_of.get(id(allocation), 1)
            margin = (allocation.snr_db - allocation.mcs.min_snr_db
                      + (attempt - 1) * self.config.combining_gain_db)
            bler = block_error_probability(margin,
                                           allocation.num_codeblocks)
            if self.rng.random() >= bler:
                continue
            self.failures += 1
            if attempt >= self.config.max_attempts:
                self.residual_losses += 1
                continue
            self._pending.append(_PendingRetransmission(
                due_slot=slot_index + self.config.rtt_slots,
                allocation=allocation,
                attempt=attempt + 1,
            ))
        return tuple(combined)

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    @property
    def block_error_rate(self) -> float:
        """First-pass + retransmission failure rate."""
        return self.failures / max(1, self.transport_blocks)

    @property
    def residual_loss_rate(self) -> float:
        """Transport blocks lost after max HARQ attempts."""
        return self.residual_losses / max(1, self.transport_blocks)

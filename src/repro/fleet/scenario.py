"""Metro-scale deployment specs: :class:`FleetScenario` and its shards.

A fleet scenario describes a *metro* deployment — N homogeneous cells
of one reference kind (the paper's Table 1/2 cell types) — and how to
partition it into per-server cell-shards.  ``derive_shards()`` turns
the spec into one serializable :class:`~repro.scenario.Scenario` per
server: contiguous, balanced groups of cells, each with its own core
bank provisioned at the reference cores-per-cell ratio.

Two properties make sharding an *execution* choice rather than a
modelling one:

* **global cell identity** — cell ``g`` is named and RNG-keyed by its
  fleet-wide index (``Scenario.cell_id_base``), so its traffic,
  UE-allocation and per-DAG sampling streams are byte-identical no
  matter which shard it lands in or how many shards exist;
* **hermetic shards** — each shard's scenario is plain data, executed
  independently (in-process or in a persistent forked worker), so the
  planner is free to place shards anywhere.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import asdict, dataclass, field
from typing import Optional

from ..ran.config import (
    CellConfig,
    PoolConfig,
    cell_100mhz_tdd,
    cell_20mhz_fdd,
)
from ..scenario import POLICY_NAMES, ReconfigEvent, Scenario, \
    reconfig_from_payload

__all__ = ["FLEET_SCHEMA", "FLEET_RECONFIG_SCHEMA", "CELL_KINDS",
           "FleetScenario", "ShardSpec"]

#: Schema version embedded in serialized fleet scenarios.
FLEET_SCHEMA = 1

#: Schema used when a fleet scenario carries a reconfig timeline; an
#: empty timeline serializes as plain :data:`FLEET_SCHEMA`, keeping
#: pre-reconfig payloads (and cached reports) byte-identical.
FLEET_RECONFIG_SCHEMA = 2


@dataclass(frozen=True)
class _CellKind:
    """One reference cell type and its per-server provisioning ratio."""

    factory: object  # CellConfig factory taking a name
    deadline_us: float
    cores_per_cell: float  # the paper's reference server ratio
    name_prefix: str


#: Reference cell kinds (Table 1/2): the provisioning ratio is the
#: paper's reference server (8 cores / 7 x 20 MHz, 12 cores / 2 x
#: 100 MHz) carried over to arbitrary shard sizes.
CELL_KINDS = {
    "20mhz": _CellKind(cell_20mhz_fdd, 2000.0, 8.0 / 7.0, "cell20"),
    "100mhz": _CellKind(cell_100mhz_tdd, 1500.0, 12.0 / 2.0, "cell100"),
}


@dataclass(frozen=True)
class ShardSpec:
    """One server's slice of a fleet: a scenario plus its identity."""

    shard_index: int
    cell_id_base: int
    cell_names: tuple
    num_slots: int
    scenario: Scenario

    def to_dict(self) -> dict:
        return {
            "shard_index": self.shard_index,
            "cell_id_base": self.cell_id_base,
            "cell_names": list(self.cell_names),
            "num_slots": self.num_slots,
            "scenario": self.scenario.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ShardSpec":
        return cls(
            shard_index=payload["shard_index"],
            cell_id_base=payload["cell_id_base"],
            cell_names=tuple(payload["cell_names"]),
            num_slots=payload["num_slots"],
            scenario=Scenario.from_dict(payload["scenario"]),
        )


@dataclass
class FleetScenario:
    """A metro deployment: N cells of one kind, sharded K ways.

    ``cores_per_cell`` defaults to the kind's reference ratio; each
    shard's core bank is ``ceil(cores_per_cell * shard cells)``.  All
    shards share the fleet ``seed`` — per-cell streams are keyed by
    global cell id, so identical seeds never alias across shards.
    """

    cells: int
    shards: int = 1
    cell_kind: str = "20mhz"
    cores_per_cell: Optional[float] = None
    policy: str = "concordia-noml"
    policy_params: dict = field(default_factory=dict)
    workload: str = "none"
    load_fraction: float = 0.5
    seed: int = 0
    num_slots: int = 400
    allocation: str = "iid"
    harq: bool = False
    #: Declarative fleet reconfiguration timeline
    #: (:class:`~repro.scenario.reconfig.ReconfigEvent` or dict form):
    #: ``migrate`` events are executed by the planner's lockstep path;
    #: worker and detach/attach events are routed (via ``shard``) into
    #: the target shard's own :class:`~repro.scenario.Scenario`
    #: timeline.  ``cell`` may be a global cell index or a cell name.
    reconfig: tuple = ()
    #: Per-shard simulation engine ("event" or "array"); passed through
    #: verbatim to every derived shard scenario.  Array mode certifies
    #: per slot and falls back to the event path wherever it cannot, so
    #: fleet digests are unchanged either way.
    engine_mode: str = "event"

    def __post_init__(self) -> None:
        if self.cells < 1:
            raise ValueError("fleet needs at least one cell")
        if not 1 <= self.shards <= self.cells:
            raise ValueError(
                f"shards must be in [1, cells]; got {self.shards} "
                f"shards for {self.cells} cells")
        if self.cell_kind not in CELL_KINDS:
            raise ValueError(
                f"unknown cell kind {self.cell_kind!r}; "
                f"known: {sorted(CELL_KINDS)}")
        if self.policy not in POLICY_NAMES:
            raise ValueError(
                f"unknown policy {self.policy!r}; known: {POLICY_NAMES}")
        if self.num_slots <= 0:
            raise ValueError("num_slots must be positive")
        if self.cores_per_cell is not None and self.cores_per_cell <= 0:
            raise ValueError("cores_per_cell must be positive")
        if self.engine_mode not in ("event", "array"):
            raise ValueError(
                f"engine_mode must be 'event' or 'array', "
                f"got {self.engine_mode!r}")
        self.reconfig = reconfig_from_payload(self.reconfig)
        for event in self.reconfig:
            self._validate_event(event)

    def _validate_event(self, event: ReconfigEvent) -> None:
        if isinstance(event.cell, int):
            if not 0 <= event.cell < self.cells:
                raise ValueError(
                    f"reconfig cell index {event.cell} outside "
                    f"[0, {self.cells})")
        if event.action == "migrate":
            for label, shard in (("src_shard", event.src_shard),
                                 ("dst_shard", event.dst_shard)):
                if not 0 <= shard < self.shards:
                    raise ValueError(
                        f"migrate {label} {shard} outside "
                        f"[0, {self.shards})")
            # Migration pauses every shard at the barrier slot; slot 0
            # would mean "before the run", which is just a different
            # initial sharding.
            if not 1 <= event.at_slot < self.num_slots:
                raise ValueError(
                    f"migrate at_slot {event.at_slot} outside "
                    f"[1, {self.num_slots})")
        else:
            if event.shard is None:
                raise ValueError(
                    f"fleet {event.action} event needs a shard to "
                    f"route to")
            if not 0 <= event.shard < self.shards:
                raise ValueError(
                    f"reconfig shard {event.shard} outside "
                    f"[0, {self.shards})")
            if not 0 <= event.at_slot < self.num_slots:
                raise ValueError(
                    f"reconfig at_slot {event.at_slot} outside "
                    f"[0, {self.num_slots})")

    def resolve_cell(self, cell) -> str:
        """Resolve an event's ``cell`` (index or name) to a cell name."""
        if isinstance(cell, int):
            return self.cell_name(cell)
        return cell

    def migrations(self) -> tuple:
        """The planner's migrate events, in ``at_slot`` order."""
        return tuple(sorted(
            (e for e in self.reconfig if e.action == "migrate"),
            key=lambda e: e.at_slot))

    @property
    def kind(self) -> _CellKind:
        return CELL_KINDS[self.cell_kind]

    @property
    def deadline_us(self) -> float:
        return self.kind.deadline_us

    def _cores_per_cell(self) -> float:
        return (self.cores_per_cell if self.cores_per_cell is not None
                else self.kind.cores_per_cell)

    def cell_name(self, global_index: int) -> str:
        """Fleet-wide stable name of cell ``global_index``."""
        return f"{self.kind.name_prefix}-c{global_index:04d}"

    def shard_sizes(self) -> list:
        """Balanced contiguous partition of ``cells`` into ``shards``."""
        quotient, remainder = divmod(self.cells, self.shards)
        return [quotient + (1 if i < remainder else 0)
                for i in range(self.shards)]

    def _shard_cells(self, base: int, count: int) -> tuple:
        factory = self.kind.factory
        return tuple(factory(name=self.cell_name(base + i))
                     for i in range(count))

    def derive_shards(self) -> list:
        """The per-server :class:`ShardSpec` list for this fleet."""
        shards = []
        base = 0
        ratio = self._cores_per_cell()
        for shard_index, count in enumerate(self.shard_sizes()):
            cells: tuple[CellConfig, ...] = self._shard_cells(base, count)
            pool = PoolConfig(
                cells=cells,
                num_cores=max(1, math.ceil(ratio * count - 1e-9)),
                deadline_us=self.kind.deadline_us,
            )
            # Route this shard's non-migrate events into its own
            # scenario timeline (migrate stays a planner verb); cell
            # indices resolve to fleet-wide names, and the shard field
            # drops — it has done its routing job.
            routed = tuple(
                dataclasses.replace(
                    event, shard=None,
                    cell=(None if event.cell is None
                          else self.resolve_cell(event.cell)))
                for event in self.reconfig
                if event.action != "migrate"
                and event.shard == shard_index)
            scenario = Scenario(
                pool=pool,
                policy=self.policy,
                policy_params=dict(self.policy_params),
                workload=self.workload,
                load_fraction=self.load_fraction,
                seed=self.seed,
                allocation=self.allocation,
                harq=self.harq,
                cell_id_base=base,
                reconfig=routed,
                engine_mode=self.engine_mode,
            )
            shards.append(ShardSpec(
                shard_index=shard_index,
                cell_id_base=base,
                cell_names=tuple(c.name for c in cells),
                num_slots=self.num_slots,
                scenario=scenario,
            ))
            base += count
        return shards

    @property
    def provisioned_cores(self) -> int:
        """Total cores across all servers of the fleet."""
        ratio = self._cores_per_cell()
        return sum(max(1, math.ceil(ratio * count - 1e-9))
                   for count in self.shard_sizes())

    def to_dict(self) -> dict:
        payload = asdict(self)
        if payload["engine_mode"] == "event":
            # Event-mode fleets serialize exactly as they did before
            # the array engine existed (same invariant as reconfig).
            del payload["engine_mode"]
        if self.reconfig:
            payload["reconfig"] = [e.to_dict() for e in self.reconfig]
            payload["schema"] = FLEET_RECONFIG_SCHEMA
        else:
            # An empty timeline serializes exactly as a pre-reconfig
            # fleet scenario (same invariant as Scenario.reconfig).
            del payload["reconfig"]
            payload["schema"] = FLEET_SCHEMA
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "FleetScenario":
        if payload.get("schema") not in (FLEET_SCHEMA,
                                         FLEET_RECONFIG_SCHEMA):
            raise ValueError(
                f"unsupported fleet schema {payload.get('schema')!r}")
        fields_ = {k: v for k, v in payload.items() if k != "schema"}
        return cls(**fields_)

"""Per-cell sampling digests and federated core-demand rollups.

The :class:`ShardDemandRecorder` hangs off
``Simulation.demand_observer`` and sees every slot's freshly built DAG
batch — after the counter-keyed Philox draws have fixed each task's
``base_cost_us``/``stoch_mult``/``cache_*`` presamples, but before any
scheduling happens.  From that it derives two things:

* **per-cell sampling digests** — a SHA-256 over each cell's complete
  sampled demand trace (slot, direction, task costs and stochastic
  multipliers, in build order).  Because every draw involved is keyed
  by ``(global cell id, slot, direction)``, the digest is a pure
  function of ``(fleet seed, global cell id)``: it must be
  byte-identical whether the cell sits in a 50-cell pool or a 13-cell
  shard.  This is the fleet-scale proof of the PR-3 invariant that
  sampling is interleaving-independent.
* **federated core demand** — per cell, the mean per-slot work and
  critical path feed Li et al.'s federated allocation rule
  (:func:`repro.core.federated.federated_core_demand`); per shard the
  cells' demands aggregate via
  :func:`repro.core.federated.aggregate_demand` into the provisioning
  numbers the planner rolls up fleet-wide.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Sequence

from ..core.federated import CoreDemand, aggregate_demand, \
    federated_core_demand
from ..ran.config import CellConfig

__all__ = ["ShardDemandRecorder"]


class ShardDemandRecorder:
    """Accumulates per-cell digests and demand over one shard's run."""

    def __init__(self, cells: Sequence[CellConfig], deadline_us: float,
                 critical_margin_us: float = 20.0) -> None:
        self.deadline_us = deadline_us
        self.critical_margin_us = critical_margin_us
        self._hash: Dict[str, "hashlib._Hash"] = {
            cell.name: hashlib.sha256() for cell in cells}
        self._work_sum = {cell.name: 0.0 for cell in cells}
        self._crit_sum = {cell.name: 0.0 for cell in cells}
        self._peak_work = {cell.name: 0.0 for cell in cells}
        self._slots = {cell.name: 0 for cell in cells}
        self._dags = {cell.name: 0 for cell in cells}

    def __call__(self, dags: list) -> None:
        """Observe one slot boundary's DAG batch (all cells)."""
        slot_work: Dict[str, float] = {}
        slot_crit: Dict[str, float] = {}
        for dag in dags:
            name = dag.cell_name
            tasks = dag.tasks
            # The digest covers everything sampling determines for the
            # DAG: structure (task count tracks the UE allocations) and
            # the presampled stochastic draws.  repr() renders the
            # shortest exact round-trip of each double, so any
            # ULP-level drift changes the digest.
            parts = [f"{dag.slot_index}|{1 if dag.uplink else 0}"
                     f"|{len(tasks)}"]
            work = 0.0
            for task in tasks:
                cost = task.base_cost_us * task.stoch_mult
                work += cost
                parts.append(f"{task.base_cost_us!r},{task.stoch_mult!r},"
                             f"{task.cache_u!r},{task.cache_tail!r}")
            self._hash[name].update(";".join(parts).encode())
            crit = dag.remaining_critical_path_us(
                _sampled_cost, dag.release_us)
            slot_work[name] = slot_work.get(name, 0.0) + work
            slot_crit[name] = max(slot_crit.get(name, 0.0), crit)
            self._dags[name] += 1
        for name, work in slot_work.items():
            self._work_sum[name] += work
            self._crit_sum[name] += slot_crit[name]
            self._peak_work[name] = max(self._peak_work[name], work)
            self._slots[name] += 1

    # -- elastic migration -------------------------------------------------------

    def detach_cell(self, name: str) -> dict:
        """Remove one cell's accumulators; returns the carry state.

        The live hash object travels with the cell: the destination
        recorder keeps appending to the same SHA-256 stream, so the
        final per-cell digest of a migrated cell is byte-identical to
        an unmigrated run's.
        """
        return {
            "hash": self._hash.pop(name),
            "work_sum": self._work_sum.pop(name),
            "crit_sum": self._crit_sum.pop(name),
            "peak_work": self._peak_work.pop(name),
            "slots": self._slots.pop(name),
            "dags": self._dags.pop(name),
        }

    def attach_cell(self, name: str, carry: dict = None) -> None:
        """Adopt a cell, resuming from ``carry`` (or fresh counters)."""
        if name in self._hash:
            raise ValueError(f"recorder already tracks cell {name!r}")
        if carry is None:
            carry = {"hash": hashlib.sha256(), "work_sum": 0.0,
                     "crit_sum": 0.0, "peak_work": 0.0, "slots": 0,
                     "dags": 0}
        self._hash[name] = carry["hash"]
        self._work_sum[name] = carry["work_sum"]
        self._crit_sum[name] = carry["crit_sum"]
        self._peak_work[name] = carry["peak_work"]
        self._slots[name] = carry["slots"]
        self._dags[name] = carry["dags"]

    # -- results -----------------------------------------------------------------

    def cell_digests(self) -> Dict[str, str]:
        """SHA-256 hex digest of each cell's sampled demand trace."""
        return {name: h.hexdigest() for name, h in self._hash.items()}

    def cell_demand(self, name: str) -> CoreDemand:
        """Federated core demand of one cell at its mean per-slot load."""
        slots = self._slots[name]
        if slots == 0:
            return CoreDemand(0, False)
        return federated_core_demand(
            self._work_sum[name] / slots,
            self._crit_sum[name] / slots,
            slack_us=self.deadline_us,
            critical_margin_us=self.critical_margin_us,
        )

    def shard_demand(self) -> CoreDemand:
        """Aggregate demand over all of the shard's cells."""
        return aggregate_demand(
            self.cell_demand(name) for name in self._hash)

    def demand_payload(self) -> dict:
        """JSON-able per-cell and aggregate demand summary."""
        cells = {}
        for name in self._hash:
            demand = self.cell_demand(name)
            slots = max(1, self._slots[name])
            cells[name] = {
                "cores": demand.cores,
                "critical": demand.critical,
                "mean_work_us": self._work_sum[name] / slots,
                "mean_critical_path_us": self._crit_sum[name] / slots,
                "peak_work_us": self._peak_work[name],
                "slots": self._slots[name],
                "dags": self._dags[name],
            }
        total = self.shard_demand()
        return {
            "cells": cells,
            "cores": total.cores,
            "critical": total.critical,
            "deadline_us": self.deadline_us,
        }


def _sampled_cost(task) -> float:
    """Build-time WCET proxy: the presampled isolated runtime."""
    return task.base_cost_us * task.stoch_mult

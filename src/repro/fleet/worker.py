"""Shard execution: the hermetic job body and the persistent child loop.

This generalizes :mod:`repro.exec.worker`'s pipe protocol from "one
fork = one job" to "one fork = one *warm worker*": the child loop
blocks on its pipe, executes any number of ``("run", shard)`` commands
and reports each through ``("ok" | "error", payload)`` messages until
told to ``("stop", None)``.  Workers therefore keep their warmed
interpreter (imported numpy, trained predictors inherited on fork)
across planner rounds instead of paying a fork per shard.

:func:`execute_shard` is the job body, shared verbatim by the serial
(in-process) planner path and the forked workers — the fleet's
serial == parallel byte-identity rests on that.
"""

from __future__ import annotations

import os
import time
import traceback

from ..scenario import Scenario, build_simulation
from .demand import ShardDemandRecorder
from .report import latency_histogram

__all__ = ["execute_shard", "shard_payload", "shard_worker_loop"]


def shard_payload(simulation, result, recorder, meta: dict,
                  wall_s: float) -> dict:
    """The per-shard result payload, from a finished simulation.

    ``meta`` carries the shard identity keys (``shard_index``,
    ``cell_id_base``, ``cell_names``, ``num_slots``).  Shared by
    :func:`execute_shard` and the planner's in-process lockstep
    migration path, so both produce identical payload shapes.
    """
    metrics = simulation.metrics
    latency = result.latency
    deadline_us = simulation.pool_config.deadline_us
    return {
        "schema": 1,
        "shard_index": meta["shard_index"],
        "cell_id_base": meta["cell_id_base"],
        "cell_names": list(meta["cell_names"]),
        "num_cores": simulation.pool.num_cores,
        "num_slots": meta["num_slots"],
        "wall_s": wall_s,
        "latency": {
            "mean_us": latency.mean_us,
            "p50_us": latency.p50_us,
            "p99_us": latency.p99_us,
            "p9999_us": latency.p9999_us,
            "max_us": latency.max_us,
        },
        "histogram": latency_histogram(metrics.slot_latencies,
                                       deadline_us),
        "miss_count": metrics.slot_deadlines_missed,
        "slot_count": metrics.slot_count,
        "reclaimed_fraction": result.reclaimed_fraction,
        "vran_utilization": result.vran_utilization,
        "scheduling_events": result.scheduling_events,
        "duration_us": result.duration_us,
        "cell_digests": recorder.cell_digests(),
        "demand": recorder.demand_payload(),
    }


def execute_shard(payload: dict) -> dict:
    """Run one cell-shard to completion; returns a JSON-able payload.

    Hermetic: everything is rebuilt from the shard payload alone, so
    the result is a pure function of the payload — which worker (or
    the parent) executes it cannot matter.
    """
    started = time.perf_counter()
    scenario = Scenario.from_dict(payload["scenario"])
    config = scenario.pool_config()
    simulation = build_simulation(scenario)
    recorder = ShardDemandRecorder(config.cells, config.deadline_us)
    simulation.demand_observer = recorder
    result = simulation.run(payload["num_slots"])
    return shard_payload(simulation, result, recorder, payload,
                         time.perf_counter() - started)


def shard_worker_loop(conn, worker_id: int) -> None:
    """Persistent child entry point: serve shard jobs until stopped.

    Every job answer carries the worker's pid and a served-jobs
    counter, so the planner (and the tests) can verify workers really
    stay warm across rounds.  Exceptions never cross the process
    boundary — they are serialized as error payloads; a send failure
    means the parent is gone and the loop exits.
    """
    served = 0
    while True:
        try:
            command, payload = conn.recv()
        except (EOFError, OSError):  # parent died or closed the pipe
            break
        if command == "stop":
            break
        started = time.perf_counter()
        try:
            result = execute_shard(payload)
            served += 1
            result["worker"] = {"id": worker_id, "pid": os.getpid(),
                                "jobs_done": served}
            message = ("ok", result)
        except BaseException as exc:  # noqa: BLE001 - isolation boundary
            message = ("error", {
                "shard_index": payload.get("shard_index"),
                "error": f"{type(exc).__name__}: {exc}",
                "traceback": traceback.format_exc(),
                "wall_s": time.perf_counter() - started,
                "worker": {"id": worker_id, "pid": os.getpid(),
                           "jobs_done": served},
            })
        try:
            conn.send(message)
        except (BrokenPipeError, OSError):  # parent gave up on us
            break
    conn.close()

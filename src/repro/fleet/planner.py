"""The fleet planner: shard assignment, in-flight tracking, aggregation.

The planner owns a fleet run end to end (the makespan-scheduler shape:
a work queue of shards, a warm worker pool, in-flight and idle-slot
accounting):

1. derive the per-server shards from the :class:`FleetScenario`;
2. ``jobs <= 1``: execute every shard in-process, in shard order (the
   serial baseline); otherwise dispatch shards to a persistent
   :class:`~repro.fleet.pool.ShardWorkerPool`, keeping every worker
   busy while work remains and integrating idle worker-time when it
   runs dry;
3. merge the per-shard payloads into a
   :class:`~repro.fleet.report.FleetReport` — fleet tail latency from
   merged histograms, reclaimed-CPU totals, per-server utilization,
   the federated demand rollup and the sharding-invariant per-cell
   digests.

Because :func:`~repro.fleet.worker.execute_shard` is hermetic and the
report normalizes merge order, a fleet run is byte-identical (modulo
wall-clock telemetry) for any ``jobs``; and because per-cell sampling
is keyed by global cell id, the per-cell digests are further invariant
to the *shard count* itself.
"""

from __future__ import annotations

import logging
import time
from typing import Callable, List, Optional

from .pool import ShardWorkerPool
from .report import FleetReport, build_fleet_report
from .scenario import FleetScenario, ShardSpec
from .worker import execute_shard

__all__ = ["Planner"]

logger = logging.getLogger(__name__)

ProgressCallback = Callable[[dict], None]

#: A shard is flagged as a straggler (and the pool wait times out) once
#: it runs past this multiple of the median completed-shard wall time.
STRAGGLER_FACTOR = 10.0

#: Floor for the straggler threshold, so short shards on a noisy
#: machine don't trip spurious warnings.
STRAGGLER_MIN_S = 30.0


class Planner:
    """Runs one :class:`FleetScenario` and aggregates the fleet report."""

    def __init__(self, fleet: FleetScenario, jobs: int = 1,
                 progress: Optional[ProgressCallback] = None) -> None:
        self.fleet = fleet
        self.jobs = max(1, int(jobs))
        self.progress = progress

    # -- driving -----------------------------------------------------------------

    def run(self) -> FleetReport:
        shards = self.fleet.derive_shards()
        started = time.perf_counter()
        if self.jobs <= 1:
            payloads, failures, stats = self._run_serial(shards)
        else:
            payloads, failures, stats = self._run_pool(shards)
        return build_fleet_report(
            self.fleet, payloads, failures,
            jobs=self.jobs,
            wall_s=time.perf_counter() - started,
            **stats,
        )

    def _emit(self, kind: str, shard_index: int, total: int, done: int,
              **extra) -> None:
        if self.progress is None:
            return
        event = {"kind": kind, "shard": shard_index, "total": total,
                 "done": done}
        event.update(extra)
        self.progress(event)

    def _run_serial(self, shards: List[ShardSpec]):
        """In-process execution in shard order (the jobs=1 baseline)."""
        payloads, failures = [], []
        for done, shard in enumerate(shards):
            self._emit("dispatch", shard.shard_index, len(shards), done)
            try:
                payload = execute_shard(shard.to_dict())
            except Exception as exc:  # noqa: BLE001 - isolation boundary
                failures.append({"shard_index": shard.shard_index,
                                 "error": f"{type(exc).__name__}: {exc}"})
                self._emit("failed", shard.shard_index, len(shards),
                           done + 1, error=str(exc))
                continue
            payloads.append(payload)
            self._emit("done", shard.shard_index, len(shards), done + 1,
                       wall_s=payload["wall_s"])
        return payloads, failures, {"workers": 0, "idle_worker_s": 0.0,
                                    "max_in_flight": 1,
                                    "dispatches": len(shards)}

    def _run_pool(self, shards: List[ShardSpec]):
        """Dispatch shards onto a warm worker pool until all report.

        A worker that dies mid-job no longer forfeits its shard: the
        shard is requeued once (retry budget 1) — on a surviving
        worker, or through the in-process fallback if the pool has
        drained — and only a second loss records a failure.  Completed
        shard wall times feed a straggler threshold
        (``STRAGGLER_FACTOR`` x their median) that bounds every pool
        wait and logs any shard running past it.
        """
        workers = min(self.jobs, len(shards))
        queue: List[ShardSpec] = list(shards)
        in_flight = {}  # worker_id -> (ShardSpec, dispatch time)
        payloads, failures = [], []
        idle_worker_s = 0.0
        max_in_flight = 0
        done = 0
        dispatches = 0
        retried: set = set()  # shard_index values already requeued
        slow_warned: set = set()
        walls: List[float] = []  # completed shard wall times
        with ShardWorkerPool(workers) as pool:
            while queue or in_flight:
                while queue and pool.idle_workers():
                    worker_id = pool.idle_workers()[0]
                    shard = queue.pop(0)
                    pool.submit(worker_id, shard.to_dict())
                    in_flight[worker_id] = (shard, time.perf_counter())
                    dispatches += 1
                    max_in_flight = max(max_in_flight, len(in_flight))
                    self._emit("dispatch", shard.shard_index,
                               len(shards), done, worker=worker_id)
                if not in_flight:
                    # Workers died faster than work drained: fall back
                    # to in-process execution for what remains (this
                    # also serves requeued shards, so a retry cannot
                    # strand work when no worker survives).
                    while queue:
                        shard = queue.pop(0)
                        dispatches += 1
                        try:
                            payloads.append(
                                execute_shard(shard.to_dict()))
                        except Exception as exc:  # noqa: BLE001
                            failures.append({
                                "shard_index": shard.shard_index,
                                "error": f"{type(exc).__name__}: {exc}"})
                        done += 1
                    break
                # Every runnable shard is in flight; idle pool slots
                # (workers with no queued work left) accumulate here.
                timeout = None
                if walls:
                    median = sorted(walls)[len(walls) // 2]
                    timeout = max(STRAGGLER_FACTOR * median,
                                  STRAGGLER_MIN_S)
                idle = pool.alive - len(in_flight)
                wait_started = time.perf_counter()
                messages = pool.wait(timeout=timeout)
                now = time.perf_counter()
                idle_worker_s += idle * (now - wait_started)
                if timeout is not None:
                    for worker_id, (shard, started) in in_flight.items():
                        elapsed = now - started
                        if (elapsed > timeout
                                and shard.shard_index not in slow_warned):
                            slow_warned.add(shard.shard_index)
                            logger.warning(
                                "shard %d on worker %d is a straggler: "
                                "%.1fs elapsed, %.1fx the median shard "
                                "wall time", shard.shard_index,
                                worker_id, elapsed,
                                elapsed / max(median, 1e-9))
                            self._emit("straggler", shard.shard_index,
                                       len(shards), done,
                                       worker=worker_id,
                                       elapsed_s=elapsed)
                for message in messages:
                    shard, _started = in_flight.pop(message.worker_id)
                    if message.status == "ok":
                        done += 1
                        payloads.append(message.payload)
                        walls.append(message.payload["wall_s"])
                        self._emit("done", shard.shard_index,
                                   len(shards), done,
                                   worker=message.worker_id,
                                   wall_s=message.payload["wall_s"])
                    elif (message.status == "died"
                          and shard.shard_index not in retried):
                        retried.add(shard.shard_index)
                        queue.append(shard)
                        logger.warning(
                            "worker %d died running shard %d (%s); "
                            "requeueing the shard (retry 1 of 1)",
                            message.worker_id, shard.shard_index,
                            message.payload.get("error", "no detail"))
                        self._emit("retry", shard.shard_index,
                                   len(shards), done,
                                   worker=message.worker_id,
                                   error=message.payload.get("error"))
                    else:
                        done += 1
                        failures.append({
                            "shard_index": shard.shard_index,
                            "error": message.payload.get(
                                "error", "unknown worker error"),
                        })
                        self._emit("failed", shard.shard_index,
                                   len(shards), done,
                                   worker=message.worker_id,
                                   error=message.payload.get("error"))
        return payloads, failures, {"workers": workers,
                                    "idle_worker_s": idle_worker_s,
                                    "max_in_flight": max_in_flight,
                                    "dispatches": dispatches}

"""The fleet planner: shard assignment, in-flight tracking, aggregation.

The planner owns a fleet run end to end (the makespan-scheduler shape:
a work queue of shards, a warm worker pool, in-flight and idle-slot
accounting):

1. derive the per-server shards from the :class:`FleetScenario`;
2. ``jobs <= 1``: execute every shard in-process, in shard order (the
   serial baseline); otherwise dispatch shards to a persistent
   :class:`~repro.fleet.pool.ShardWorkerPool`, keeping every worker
   busy while work remains and integrating idle worker-time when it
   runs dry;
3. merge the per-shard payloads into a
   :class:`~repro.fleet.report.FleetReport` — fleet tail latency from
   merged histograms, reclaimed-CPU totals, per-server utilization,
   the federated demand rollup and the sharding-invariant per-cell
   digests.

Because :func:`~repro.fleet.worker.execute_shard` is hermetic and the
report normalizes merge order, a fleet run is byte-identical (modulo
wall-clock telemetry) for any ``jobs``; and because per-cell sampling
is keyed by global cell id, the per-cell digests are further invariant
to the *shard count* itself.
"""

from __future__ import annotations

import logging
import time
from typing import Callable, List, Optional

from ..scenario import build_simulation
from .demand import ShardDemandRecorder
from .pool import ShardWorkerPool
from .report import FleetReport, build_fleet_report
from .scenario import FleetScenario, ShardSpec
from .worker import execute_shard, shard_payload

__all__ = ["Planner"]

logger = logging.getLogger(__name__)

ProgressCallback = Callable[[dict], None]

#: A shard is flagged as a straggler (and the pool wait times out) once
#: it runs past this multiple of the median completed-shard wall time.
STRAGGLER_FACTOR = 10.0

#: Floor for the straggler threshold, so short shards on a noisy
#: machine don't trip spurious warnings.
STRAGGLER_MIN_S = 30.0


class Planner:
    """Runs one :class:`FleetScenario` and aggregates the fleet report."""

    def __init__(self, fleet: FleetScenario, jobs: int = 1,
                 progress: Optional[ProgressCallback] = None) -> None:
        self.fleet = fleet
        self.jobs = max(1, int(jobs))
        self.progress = progress

    # -- driving -----------------------------------------------------------------

    def run(self) -> FleetReport:
        shards = self.fleet.derive_shards()
        migrations = self.fleet.migrations()
        started = time.perf_counter()
        reconfig: List[dict] = []
        if migrations:
            # Mid-run migration needs every simulation paused at the
            # same slot boundary, which only the in-process lockstep
            # path can do; hermetic per-shard workers cannot exchange
            # cells mid-run.
            if self.jobs > 1:
                logger.info(
                    "reconfig timeline has %d migration(s); running "
                    "the fleet in-process (lockstep), ignoring jobs=%d",
                    len(migrations), self.jobs)
            payloads, failures, stats, reconfig = self._run_lockstep(
                shards, migrations)
        elif self.jobs <= 1:
            payloads, failures, stats = self._run_serial(shards)
        else:
            payloads, failures, stats = self._run_pool(shards)
        return build_fleet_report(
            self.fleet, payloads, failures,
            jobs=self.jobs,
            wall_s=time.perf_counter() - started,
            reconfig=reconfig,
            **stats,
        )

    def _emit(self, kind: str, shard_index: int, total: int, done: int,
              **extra) -> None:
        if self.progress is None:
            return
        event = {"kind": kind, "shard": shard_index, "total": total,
                 "done": done}
        event.update(extra)
        self.progress(event)

    def _run_serial(self, shards: List[ShardSpec]):
        """In-process execution in shard order (the jobs=1 baseline)."""
        payloads, failures = [], []
        for done, shard in enumerate(shards):
            self._emit("dispatch", shard.shard_index, len(shards), done)
            try:
                payload = execute_shard(shard.to_dict())
            except Exception as exc:  # noqa: BLE001 - isolation boundary
                failures.append({"shard_index": shard.shard_index,
                                 "error": f"{type(exc).__name__}: {exc}"})
                self._emit("failed", shard.shard_index, len(shards),
                           done + 1, error=str(exc))
                continue
            payloads.append(payload)
            self._emit("done", shard.shard_index, len(shards), done + 1,
                       wall_s=payload["wall_s"])
        return payloads, failures, {"workers": 0, "idle_worker_s": 0.0,
                                    "max_in_flight": 1,
                                    "dispatches": len(shards)}

    def _run_lockstep(self, shards: List[ShardSpec], migrations):
        """In-process lockstep execution with mid-run cell migration.

        Every shard simulation advances to each migration's slot
        barrier; there the planner detaches the cell from the source
        (portable snapshot: exact traffic/allocation/HARQ generator
        states) and attaches it to the destination with the
        migration-cost model (state-transfer hold, predictor warm-up).
        The demand recorder's live hash travels with the cell, so the
        migrated cell's sampling digest is byte-identical to an
        unmigrated run's.  Per-server utilization and deadline-miss
        counters are read at the barrier and again at the end, giving
        each migration a before/after row in the fleet report.
        """
        fleet = self.fleet
        started = time.perf_counter()
        sims, recorders, metas = [], [], []
        for shard in shards:
            config = shard.scenario.pool_config()
            simulation = build_simulation(shard.scenario)
            recorder = ShardDemandRecorder(config.cells,
                                           config.deadline_us)
            simulation.demand_observer = recorder
            sims.append(simulation)
            recorders.append(recorder)
            metas.append({"shard_index": shard.shard_index,
                          "cell_id_base": shard.cell_id_base,
                          "cell_names": list(shard.cell_names),
                          "num_slots": shard.num_slots})
        for simulation in sims:
            simulation.start(fleet.num_slots)
        # Register every pause slot before any window fills, so no
        # generator pre-draws across a membership change.
        for event in migrations:
            sims[event.src_shard].add_window_barrier(event.at_slot)
            sims[event.dst_shard].add_window_barrier(event.at_slot)
        reconfig_rows = []
        for event in migrations:
            for simulation in sims:
                simulation.run_to_barrier(event.at_slot)
            name = fleet.resolve_cell(event.cell)
            src = sims[event.src_shard]
            dst = sims[event.dst_shard]
            row = {
                "event": event.to_dict(),
                "cell": name,
                "util_before": {
                    "src": src.metrics.vran_utilization,
                    "dst": dst.metrics.vran_utilization,
                },
                "miss_at_barrier": {
                    "src": src.metrics.slot_deadlines_missed,
                    "dst": dst.metrics.slot_deadlines_missed,
                },
            }
            snapshot = src.detach_cell(name)
            dst.attach_cell(
                snapshot,
                transfer_slots=event.transfer_slots,
                warmup_slots=event.warmup_slots,
                warmup_factor=event.warmup_factor,
            )
            recorders[event.dst_shard].attach_cell(
                name, recorders[event.src_shard].detach_cell(name))
            reconfig_rows.append(row)
            self._emit("migrate", event.src_shard, len(shards), 0,
                       cell=name, dst_shard=event.dst_shard,
                       at_slot=event.at_slot)
        for simulation in sims:
            simulation.run_to_end()
        wall_each = (time.perf_counter() - started) / max(1, len(sims))
        payloads = []
        for simulation, recorder, meta in zip(sims, recorders, metas):
            result = simulation.finish()
            payloads.append(shard_payload(
                simulation, result, recorder, meta, wall_each))
            self._emit("done", meta["shard_index"], len(shards),
                       len(payloads), wall_s=wall_each)
        for row, event in zip(reconfig_rows, migrations):
            src_p = payloads[event.src_shard]
            dst_p = payloads[event.dst_shard]
            row["util_after"] = {
                "src": src_p["vran_utilization"],
                "dst": dst_p["vran_utilization"],
            }
            # Misses accumulated after the barrier: the migration's
            # bounded transient shows up here (held DAGs released late
            # with their original deadlines).
            row["miss_after_barrier"] = {
                "src": src_p["miss_count"]
                - row["miss_at_barrier"]["src"],
                "dst": dst_p["miss_count"]
                - row["miss_at_barrier"]["dst"],
            }
        stats = {"workers": 0, "idle_worker_s": 0.0,
                 "max_in_flight": 1, "dispatches": len(shards)}
        return payloads, [], stats, reconfig_rows

    def _run_pool(self, shards: List[ShardSpec]):
        """Dispatch shards onto a warm worker pool until all report.

        A worker that dies mid-job no longer forfeits its shard: the
        shard is requeued once (retry budget 1) — on a surviving
        worker, or through the in-process fallback if the pool has
        drained — and only a second loss records a failure.  Completed
        shard wall times feed a straggler threshold
        (``STRAGGLER_FACTOR`` x their median) that bounds every pool
        wait and logs any shard running past it.
        """
        workers = min(self.jobs, len(shards))
        queue: List[ShardSpec] = list(shards)
        in_flight = {}  # worker_id -> (ShardSpec, dispatch time)
        payloads, failures = [], []
        idle_worker_s = 0.0
        max_in_flight = 0
        done = 0
        dispatches = 0
        retried: set = set()  # shard_index values already requeued
        slow_warned: set = set()
        walls: List[float] = []  # completed shard wall times
        with ShardWorkerPool(workers) as pool:
            while queue or in_flight:
                while queue and pool.idle_workers():
                    worker_id = pool.idle_workers()[0]
                    shard = queue.pop(0)
                    try:
                        pool.submit(worker_id, shard.to_dict())
                    except RuntimeError as exc:
                        # The idle worker died before accepting; it is
                        # already retired from the pool — put the shard
                        # back and let a surviving worker (or the
                        # drained-pool fallback below) take it.
                        logger.warning("%s; requeueing shard %d",
                                       exc, shard.shard_index)
                        queue.insert(0, shard)
                        continue
                    in_flight[worker_id] = (shard, time.perf_counter())
                    dispatches += 1
                    max_in_flight = max(max_in_flight, len(in_flight))
                    self._emit("dispatch", shard.shard_index,
                               len(shards), done, worker=worker_id)
                if not in_flight:
                    # Workers died faster than work drained: fall back
                    # to in-process execution for what remains (this
                    # also serves requeued shards, so a retry cannot
                    # strand work when no worker survives).
                    while queue:
                        shard = queue.pop(0)
                        dispatches += 1
                        try:
                            payloads.append(
                                execute_shard(shard.to_dict()))
                        except Exception as exc:  # noqa: BLE001
                            failures.append({
                                "shard_index": shard.shard_index,
                                "error": f"{type(exc).__name__}: {exc}"})
                        done += 1
                    break
                # Every runnable shard is in flight; idle pool slots
                # (workers with no queued work left) accumulate here.
                timeout = None
                if walls:
                    median = sorted(walls)[len(walls) // 2]
                    timeout = max(STRAGGLER_FACTOR * median,
                                  STRAGGLER_MIN_S)
                idle = pool.alive - len(in_flight)
                wait_started = time.perf_counter()
                messages = pool.wait(timeout=timeout)
                now = time.perf_counter()
                idle_worker_s += idle * (now - wait_started)
                if timeout is not None:
                    for worker_id, (shard, started) in in_flight.items():
                        elapsed = now - started
                        if (elapsed > timeout
                                and shard.shard_index not in slow_warned):
                            slow_warned.add(shard.shard_index)
                            logger.warning(
                                "shard %d on worker %d is a straggler: "
                                "%.1fs elapsed, %.1fx the median shard "
                                "wall time", shard.shard_index,
                                worker_id, elapsed,
                                elapsed / max(median, 1e-9))
                            self._emit("straggler", shard.shard_index,
                                       len(shards), done,
                                       worker=worker_id,
                                       elapsed_s=elapsed)
                for message in messages:
                    shard, _started = in_flight.pop(message.worker_id)
                    if message.status == "ok":
                        done += 1
                        payloads.append(message.payload)
                        walls.append(message.payload["wall_s"])
                        self._emit("done", shard.shard_index,
                                   len(shards), done,
                                   worker=message.worker_id,
                                   wall_s=message.payload["wall_s"])
                    elif (message.status == "died"
                          and shard.shard_index not in retried):
                        retried.add(shard.shard_index)
                        queue.append(shard)
                        logger.warning(
                            "worker %d died running shard %d (%s); "
                            "requeueing the shard (retry 1 of 1)",
                            message.worker_id, shard.shard_index,
                            message.payload.get("error", "no detail"))
                        self._emit("retry", shard.shard_index,
                                   len(shards), done,
                                   worker=message.worker_id,
                                   error=message.payload.get("error"))
                    else:
                        done += 1
                        failures.append({
                            "shard_index": shard.shard_index,
                            "error": message.payload.get(
                                "error", "unknown worker error"),
                        })
                        self._emit("failed", shard.shard_index,
                                   len(shards), done,
                                   worker=message.worker_id,
                                   error=message.payload.get("error"))
        return payloads, failures, {"workers": workers,
                                    "idle_worker_s": idle_worker_s,
                                    "max_in_flight": max_in_flight,
                                    "dispatches": dispatches}

"""Fleet-level aggregation: mergeable histograms and the FleetReport.

Per-shard workers cannot ship every slot latency for a metro-scale run,
so each shard returns a fixed-geometry histogram (bins derived from the
fleet deadline, identical across shards) plus exact counts for the
quantities that must not be approximated (deadline misses, maxima,
core-time totals).  The planner merges histograms bin-wise — integer
counts, order-independent — and interpolates the fleet tail percentiles
from the merged distribution.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = [
    "FleetReport",
    "build_fleet_report",
    "histogram_percentile",
    "latency_histogram",
    "merge_histograms",
]

#: Bins per histogram; the range spans [0, 4 x deadline), so one bin is
#: deadline/128 wide (15.6 us at the 20 MHz deployment's 2 ms deadline).
HISTOGRAM_BINS = 512
_RANGE_DEADLINES = 4.0


def latency_histogram(latencies_us: Sequence[float],
                      deadline_us: float) -> dict:
    """Fixed-geometry latency histogram keyed off the fleet deadline.

    Rejects non-finite and negative latencies explicitly: ``int()``
    truncates toward zero, so a small negative value would land in bin
    0 and a large one would Python-negative-index into the top bins —
    both silently corrupt the tail percentiles.
    """
    width = _RANGE_DEADLINES * deadline_us / HISTOGRAM_BINS
    counts = [0] * HISTOGRAM_BINS
    overflow = 0
    max_us = 0.0
    total = 0.0
    for value in latencies_us:
        if not math.isfinite(value) or value < 0.0:
            raise ValueError(
                f"latency values must be finite and non-negative, "
                f"got {value!r}")
        total += value
        if value > max_us:
            max_us = value
        index = int(value / width)
        if index >= HISTOGRAM_BINS:
            overflow += 1
        else:
            counts[index] += 1
    return {
        "bin_width_us": width,
        "counts": counts,
        "overflow": overflow,
        "count": len(latencies_us),
        "sum_us": total,
        "max_us": max_us,
    }


def merge_histograms(histograms: Sequence[dict]) -> dict:
    """Bin-wise merge; all inputs must share the bin geometry."""
    if not histograms:
        return latency_histogram([], 1.0)
    widths = {round(h["bin_width_us"], 9) for h in histograms}
    if len(widths) != 1:
        raise ValueError(
            f"cannot merge histograms with different bin widths: {widths}")
    merged = {
        "bin_width_us": histograms[0]["bin_width_us"],
        "counts": [0] * HISTOGRAM_BINS,
        "overflow": 0,
        "count": 0,
        "sum_us": 0.0,
        "max_us": 0.0,
    }
    for hist in histograms:
        for i, c in enumerate(hist["counts"]):
            merged["counts"][i] += c
        merged["overflow"] += hist["overflow"]
        merged["count"] += hist["count"]
        merged["sum_us"] += hist["sum_us"]
        merged["max_us"] = max(merged["max_us"], hist["max_us"])
    return merged


def histogram_percentile(hist: dict, quantile: float) -> float:
    """Percentile estimate by linear interpolation within a bin.

    A percentile that lands past the histogram range interpolates
    through the *overflow* region — between the range top and the
    exact recorded maximum, proportionally to how deep into the
    overflow count it falls — instead of collapsing the whole tail
    onto ``max_us``.  (p99.9 with a handful of overflowed slots used
    to report the single worst slot; now it reports a tail estimate
    that is monotone in the quantile.)
    """
    count = hist["count"]
    if count == 0:
        return 0.0
    if not 0.0 <= quantile <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {quantile}")
    needed = quantile * count
    width = hist["bin_width_us"]
    overflow = hist["overflow"]
    in_range = count - overflow
    if overflow and needed > in_range:
        range_top = width * len(hist["counts"])
        inside = min(float(overflow), needed - in_range)
        return range_top + (hist["max_us"] - range_top) * (
            inside / overflow)
    cumulative = 0.0
    for index, bin_count in enumerate(hist["counts"]):
        if bin_count == 0:
            continue
        if cumulative + bin_count >= needed:
            inside = max(0.0, needed - cumulative)
            return width * (index + inside / bin_count)
        cumulative += bin_count
    return hist["max_us"]


# -- the report --------------------------------------------------------------------


@dataclass
class FleetReport:
    """Fleet-level rollup of one planner run."""

    fleet: dict  # serialized FleetScenario
    servers: List[dict]  # per-shard rows, sorted by shard_index
    failures: List[dict]
    #: Fleet tail latency from the merged histogram (p50/p99/p99.9/max).
    latency_us: dict
    miss_fraction: float
    slot_count: int
    #: Reclaimed-CPU totals: mean fraction and whole-fleet core count.
    reclaimed_fraction: float
    reclaimed_cores: float
    provisioned_cores: int
    #: Federated demand rollup (repro.core.federated) over all shards.
    demand_cores: int
    demand_critical: bool
    #: name -> SHA-256 of the cell's sampled demand trace.
    cell_digests: Dict[str, str] = field(repr=False)
    #: SHA-256 over the sorted per-cell digests: one fleet-wide value
    #: that must be invariant to sharding and worker placement.
    fleet_digest: str = ""
    #: One row per applied migration (lockstep planner path): the
    #: event, and per-server utilization / deadline-miss counters
    #: before and after the cell moved.  Empty for static runs.
    reconfig: List[dict] = field(default_factory=list)
    # planner telemetry
    jobs: int = 1
    workers: int = 0
    wall_s: float = 0.0
    total_job_wall_s: float = 0.0
    idle_worker_s: float = 0.0
    max_in_flight: int = 0
    dispatches: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def speedup(self) -> float:
        return self.total_job_wall_s / max(self.wall_s, 1e-9)

    @property
    def idle_fraction(self) -> float:
        """Idle worker-slot share of the planner's parallel span."""
        span = self.wall_s * max(self.workers, 1)
        return self.idle_worker_s / max(span, 1e-9)

    def to_dict(self) -> dict:
        return {
            "schema": 1,
            "fleet": self.fleet,
            "servers": self.servers,
            "failures": self.failures,
            "latency_us": self.latency_us,
            "miss_fraction": self.miss_fraction,
            "slot_count": self.slot_count,
            "reclaimed_fraction": self.reclaimed_fraction,
            "reclaimed_cores": self.reclaimed_cores,
            "provisioned_cores": self.provisioned_cores,
            "demand_cores": self.demand_cores,
            "demand_critical": self.demand_critical,
            "cell_digests": self.cell_digests,
            "fleet_digest": self.fleet_digest,
            "reconfig": self.reconfig,
            "planner": {
                "jobs": self.jobs,
                "workers": self.workers,
                "wall_s": self.wall_s,
                "total_job_wall_s": self.total_job_wall_s,
                "speedup": self.speedup,
                "idle_worker_s": self.idle_worker_s,
                "idle_fraction": self.idle_fraction,
                "max_in_flight": self.max_in_flight,
                "dispatches": self.dispatches,
            },
        }

    def render(self) -> str:
        fleet = self.fleet
        lines = [
            f"fleet: {fleet['cells']} x {fleet['cell_kind']} cells, "
            f"{fleet['shards']} shard(s), policy={fleet['policy']}, "
            f"workload={fleet['workload']}"
            f"@{fleet['load_fraction']:.2f}, "
            f"{fleet['num_slots']} slots, seed={fleet['seed']}",
            f"planner: {self.dispatches} dispatches on "
            f"{self.workers or 1} worker(s), wall {self.wall_s:.1f}s, "
            f"job time {self.total_job_wall_s:.1f}s "
            f"(speedup {self.speedup:.1f}x, "
            f"idle slots {self.idle_fraction * 100:.0f}%)",
            f"tail latency: p50={self.latency_us['p50']:.0f}us "
            f"p99={self.latency_us['p99']:.0f}us "
            f"p99.9={self.latency_us['p999']:.0f}us "
            f"max={self.latency_us['max']:.0f}us "
            f"(deadline {self.latency_us['deadline']:.0f}us, "
            f"miss {self.miss_fraction:.2e} over {self.slot_count} "
            f"cell-slots)",
            f"reclaimed CPU: {self.reclaimed_fraction * 100:.1f}% = "
            f"{self.reclaimed_cores:.1f} of {self.provisioned_cores} "
            f"provisioned cores; federated demand "
            f"{self.demand_cores} cores"
            + (" [CRITICAL]" if self.demand_critical else ""),
        ]
        for row in self.servers:
            lines.append(
                f"  server {row['shard_index']:3d}: "
                f"{len(row['cells']):3d} cells / {row['num_cores']:3d} "
                f"cores  util={row['utilization'] * 100:5.1f}%  "
                f"reclaimed={row['reclaimed_fraction'] * 100:5.1f}%  "
                f"p99={row['p99_us']:7.0f}us  "
                f"miss={row['miss_fraction']:.2e}  "
                f"demand={row['demand_cores']}c")
        for row in self.failures:
            lines.append(f"  server {row['shard_index']:3d}: FAILED — "
                         f"{row['error']}")
        for row in self.reconfig:
            event = row["event"]
            lines.append(
                f"  migrate {row['cell']} shard "
                f"{event['src_shard']}->{event['dst_shard']} "
                f"@slot {event['at_slot']}: util "
                f"src {row['util_before']['src'] * 100:.1f}%"
                f"->{row['util_after']['src'] * 100:.1f}%  "
                f"dst {row['util_before']['dst'] * 100:.1f}%"
                f"->{row['util_after']['dst'] * 100:.1f}%  "
                f"transient misses "
                f"src+{row['miss_after_barrier']['src']} "
                f"dst+{row['miss_after_barrier']['dst']}")
        lines.append(f"fleet digest: {self.fleet_digest}")
        return "\n".join(lines)


def combined_digest(cell_digests: Dict[str, str]) -> str:
    """One order-independent SHA-256 over all per-cell digests."""
    blob = "\n".join(f"{name}:{digest}" for name, digest
                     in sorted(cell_digests.items()))
    return hashlib.sha256(blob.encode()).hexdigest()


def build_fleet_report(
    fleet,
    shard_payloads: Sequence[dict],
    failures: Sequence[dict] = (),
    *,
    jobs: int = 1,
    workers: int = 0,
    wall_s: float = 0.0,
    idle_worker_s: float = 0.0,
    max_in_flight: int = 0,
    dispatches: Optional[int] = None,
    reconfig: Sequence[dict] = (),
) -> FleetReport:
    """Aggregate per-shard result payloads into a :class:`FleetReport`.

    ``shard_payloads`` are :func:`repro.fleet.worker.execute_shard`
    dicts; merge order is normalized to shard_index so serial and
    parallel planner runs aggregate identically.
    """
    payloads = sorted(shard_payloads, key=lambda p: p["shard_index"])
    deadline = fleet.deadline_us
    merged = merge_histograms([p["histogram"] for p in payloads])
    miss_count = sum(p["miss_count"] for p in payloads)
    slot_count = sum(p["slot_count"] for p in payloads)
    servers = []
    cell_digests: Dict[str, str] = {}
    total_cores = 0
    reclaimed_cores = 0.0
    demand_total = 0
    demand_critical = False
    for payload in payloads:
        demand = payload["demand"]
        servers.append({
            "shard_index": payload["shard_index"],
            "cells": list(payload["cell_names"]),
            "num_cores": payload["num_cores"],
            "utilization": payload["vran_utilization"],
            "reclaimed_fraction": payload["reclaimed_fraction"],
            "reclaimed_cores": payload["reclaimed_fraction"]
            * payload["num_cores"],
            "p99_us": payload["latency"]["p99_us"],
            "miss_fraction": payload["miss_count"]
            / max(1, payload["slot_count"]),
            "demand_cores": demand["cores"],
            "demand_critical": demand["critical"],
            "wall_s": payload["wall_s"],
            "worker": payload.get("worker"),
        })
        cell_digests.update(payload["cell_digests"])
        total_cores += payload["num_cores"]
        reclaimed_cores += payload["reclaimed_fraction"] \
            * payload["num_cores"]
        demand_total += demand["cores"]
        demand_critical = demand_critical or demand["critical"]
    latency = {
        "p50": histogram_percentile(merged, 0.50),
        "p99": histogram_percentile(merged, 0.99),
        "p999": histogram_percentile(merged, 0.999),
        "max": merged["max_us"],
        "mean": merged["sum_us"] / max(1, merged["count"]),
        "deadline": deadline,
    }
    return FleetReport(
        fleet=fleet.to_dict(),
        servers=servers,
        failures=list(failures),
        latency_us=latency,
        miss_fraction=miss_count / max(1, slot_count),
        slot_count=slot_count,
        reclaimed_fraction=reclaimed_cores / max(1, total_cores),
        reclaimed_cores=reclaimed_cores,
        provisioned_cores=total_cores,
        demand_cores=demand_total,
        demand_critical=demand_critical,
        cell_digests=cell_digests,
        fleet_digest=combined_digest(cell_digests),
        reconfig=list(reconfig),
        jobs=jobs,
        workers=workers,
        wall_s=wall_s,
        total_job_wall_s=sum(p["wall_s"] for p in payloads),
        idle_worker_s=idle_worker_s,
        max_in_flight=max_in_flight,
        dispatches=dispatches if dispatches is not None else len(payloads),
    )

"""repro.fleet — metro-scale multi-cell sharding and the fleet planner.

The fleet layer scales one :class:`~repro.scenario.Scenario`-based
simulation to a metro deployment: a :class:`FleetScenario` describes N
cells partitioned into K per-server shards, a :class:`Planner` drives
the shards over a persistent :class:`ShardWorkerPool` of warm forked
workers, and the per-shard payloads aggregate into a
:class:`FleetReport` (fleet tail latency, reclaimed CPU, per-server
utilization, federated core demand).

Determinism contract: per-cell sampling streams are keyed by *global*
cell id, so each cell's demand-trace digest is byte-identical for any
shard count or worker placement — ``repro fleet --verify-serial``
checks exactly that.
"""

from .demand import ShardDemandRecorder
from .planner import Planner
from .pool import ShardWorkerPool, WorkerMessage
from .report import (
    FleetReport,
    build_fleet_report,
    combined_digest,
    histogram_percentile,
    latency_histogram,
    merge_histograms,
)
from .scenario import CELL_KINDS, FLEET_SCHEMA, FleetScenario, ShardSpec
from .worker import execute_shard, shard_worker_loop

__all__ = [
    "CELL_KINDS",
    "FLEET_SCHEMA",
    "FleetReport",
    "FleetScenario",
    "Planner",
    "ShardDemandRecorder",
    "ShardSpec",
    "ShardWorkerPool",
    "WorkerMessage",
    "build_fleet_report",
    "combined_digest",
    "execute_shard",
    "histogram_percentile",
    "latency_histogram",
    "merge_histograms",
    "shard_worker_loop",
]

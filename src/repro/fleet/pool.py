"""The persistent forked-worker pool backing the fleet planner.

Unlike :mod:`repro.exec.batch` — which forks one process per job —
this pool forks ``workers`` children *once* and keeps them warm: each
worker runs :func:`repro.fleet.worker.shard_worker_loop`, serving any
number of jobs over a duplex pipe.  The parent multiplexes completions
with :func:`multiprocessing.connection.wait`, so it burns no CPU while
shards simulate and reacts to the first completion immediately (the
same primitive replaced ``exec.batch``'s poll loop).

A worker that dies mid-job surfaces as an EOF on its pipe; the pool
retires it and reports the failure to the caller rather than crashing
the fleet run.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from multiprocessing.connection import wait as connection_wait
from typing import Dict, List, Optional

from .worker import shard_worker_loop

__all__ = ["ShardWorkerPool", "WorkerMessage"]


def _mp_context():
    """Fork when available (workers inherit the parent's warm state)."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else None)


def _close_process(process) -> None:
    """Release a joined worker's Process handle (its sentinel fd).

    Long planner sessions retire many workers; without this the
    sentinel pipe fd of every dead worker leaks until the Process
    object is garbage-collected.  A process that refused to die keeps
    its handle (``close()`` on a live process raises), which only
    happens on the hard-kill path for a wedged child.
    """
    try:
        process.close()
    except ValueError:  # still alive after terminate+join
        pass


@dataclass
class WorkerMessage:
    """One completion delivered by :meth:`ShardWorkerPool.wait`."""

    worker_id: int
    status: str  # "ok" | "error" | "died"
    payload: dict = field(default_factory=dict)


@dataclass
class _Worker:
    worker_id: int
    process: multiprocessing.Process
    conn: object
    busy: bool = False


class ShardWorkerPool:
    """A fixed set of warm forked workers speaking the shard protocol."""

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError("pool needs at least one worker")
        self._requested = workers
        self._workers: Dict[int, _Worker] = {}
        self._started = False

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        if self._started:
            raise RuntimeError("pool already started")
        ctx = _mp_context()
        for worker_id in range(self._requested):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            process = ctx.Process(
                target=shard_worker_loop,
                args=(child_conn, worker_id),
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._workers[worker_id] = _Worker(
                worker_id=worker_id, process=process, conn=parent_conn)
        self._started = True

    def shutdown(self, timeout_s: float = 5.0) -> None:
        """Stop every worker: polite ``stop``, then terminate stragglers."""
        for worker in self._workers.values():
            try:
                worker.conn.send(("stop", None))
            except (BrokenPipeError, OSError):
                pass
        for worker in self._workers.values():
            worker.process.join(timeout=timeout_s)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=timeout_s)
            worker.conn.close()
            _close_process(worker.process)
        self._workers.clear()
        self._started = False

    def terminate(self) -> None:
        """Hard-kill everything (Ctrl-C path)."""
        for worker in self._workers.values():
            worker.process.terminate()
        for worker in self._workers.values():
            worker.process.join(timeout=5.0)
            worker.conn.close()
            _close_process(worker.process)
        self._workers.clear()
        self._started = False

    def __enter__(self) -> "ShardWorkerPool":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.shutdown()
        else:
            self.terminate()

    # -- work --------------------------------------------------------------------

    @property
    def alive(self) -> int:
        return len(self._workers)

    def idle_workers(self) -> List[int]:
        return [w.worker_id for w in self._workers.values() if not w.busy]

    def busy_workers(self) -> List[int]:
        return [w.worker_id for w in self._workers.values() if w.busy]

    def submit(self, worker_id: int, payload: dict) -> None:
        """Dispatch one shard job to an idle worker."""
        worker = self._workers[worker_id]
        if worker.busy:
            raise RuntimeError(f"worker {worker_id} is busy")
        try:
            worker.conn.send(("run", payload))
        except (BrokenPipeError, OSError) as exc:
            # The worker died between wait() and submit(): retire it
            # (closing both the pipe and the process handle) so the
            # caller can requeue the shard on a surviving worker.
            worker.process.join(timeout=5.0)
            worker.conn.close()
            _close_process(worker.process)
            del self._workers[worker_id]
            raise RuntimeError(
                f"worker {worker_id} died before accepting work"
            ) from exc
        worker.busy = True

    def wait(self, timeout: Optional[float] = None) -> List[WorkerMessage]:
        """Block until >= 1 busy worker reports (or the timeout passes).

        Returns completions in worker-id order; a worker that died
        without reporting comes back as status ``"died"`` and is
        retired from the pool.
        """
        busy = {w.conn: w for w in self._workers.values() if w.busy}
        if not busy:
            return []
        ready = connection_wait(list(busy), timeout=timeout)
        messages = []
        for conn in sorted(ready, key=lambda c: busy[c].worker_id):
            worker = busy[conn]
            try:
                status, payload = conn.recv()
            except (EOFError, OSError):
                worker.process.join(timeout=5.0)
                exitcode = worker.process.exitcode
                conn.close()
                _close_process(worker.process)
                del self._workers[worker.worker_id]
                messages.append(WorkerMessage(
                    worker_id=worker.worker_id,
                    status="died",
                    payload={"error": f"worker exited with code "
                                      f"{exitcode} without reporting"},
                ))
                continue
            worker.busy = False
            messages.append(WorkerMessage(
                worker_id=worker.worker_id, status=status,
                payload=payload))
        return messages

"""Setuptools shim enabling offline `pip install -e .` (legacy editable
path: the sandbox has no `wheel` package, so PEP 517 editable builds
are unavailable)."""

from setuptools import setup

setup()

"""Tests for the cache-interference model (§2.3, Fig. 7b, Fig. 9)."""

import numpy as np
import pytest

from repro.sim.cache import CacheInterferenceModel


@pytest.fixture
def model():
    return CacheInterferenceModel(rng=np.random.default_rng(0))


class TestPressure:
    def test_clamped_to_unit_interval(self, model):
        model.set_pressure(3.0)
        assert model.pressure == 1.0
        model.set_pressure(-1.0)
        assert model.pressure == 0.0

    def test_no_pressure_no_inflation(self, model):
        model.set_pressure(0.0)
        for t in range(0, 10000, 50):
            model.record_scheduling_event(float(t))
        mean, tail = model.sample_multipliers(10000.0)
        assert mean == 1.0
        assert tail == 1.0


class TestChurn:
    def test_no_events_no_churn(self, model):
        assert model.churn_factor(1000.0) == 0.0

    def test_frequent_events_saturate(self, model):
        t = 0.0
        for _ in range(500):
            t += 50.0  # 20 events per ms
            model.record_scheduling_event(t)
        assert model.churn_factor(t) == pytest.approx(1.0)

    def test_churn_decays_when_quiet(self, model):
        t = 0.0
        for _ in range(200):
            t += 100.0
            model.record_scheduling_event(t)
        busy = model.churn_factor(t)
        quiet = model.churn_factor(t + 50_000.0)
        assert quiet < 0.1 * busy

    def test_sparse_events_low_churn(self, model):
        t = 0.0
        for _ in range(100):
            t += 2000.0  # one event every 2 ms
            model.record_scheduling_event(t)
        assert model.churn_factor(t) < 0.1


class TestStallIncrease:
    def _drive(self, model, gap_us, pressure, n=400):
        model.set_pressure(pressure)
        t = 0.0
        for _ in range(n):
            t += gap_us
            model.record_scheduling_event(t)
        return model.stall_increase(t)

    def test_fig9_shape(self):
        """High-churn (FlexRAN-like) pool gets ~25% extra stalls with
        Redis; low-churn (Concordia-like) stays near 2% (Fig. 9)."""
        flexran = self._drive(CacheInterferenceModel(), gap_us=65,
                              pressure=0.5)
        concordia = self._drive(CacheInterferenceModel(), gap_us=500,
                                pressure=0.5)
        assert 0.15 <= flexran <= 0.35
        assert concordia <= 0.05
        assert flexran > 5 * concordia

    def test_scales_with_pressure(self):
        heavy = self._drive(CacheInterferenceModel(), 100, 1.0)
        light = self._drive(CacheInterferenceModel(), 100, 0.2)
        assert heavy == pytest.approx(5 * light, rel=1e-6)


class TestMultipliers:
    def test_mean_multiplier_above_one_under_load(self, model):
        model.set_pressure(0.5)
        t = 0.0
        for _ in range(300):
            t += 80.0
            model.record_scheduling_event(t)
        mean, __ = model.sample_multipliers(t)
        assert mean > 1.0

    def test_tails_heavier_under_interference(self):
        """Fig. 7b: collocated runtime distributions get heavy tails."""
        model = CacheInterferenceModel(rng=np.random.default_rng(2))
        model.set_pressure(1.0)
        t = 0.0
        tails = []
        for _ in range(200_000):
            t += 50.0
            if len(tails) % 100 == 0:
                model.record_scheduling_event(t)
            __, tail = model.sample_multipliers(t)
            tails.append(tail)
        tails = np.array(tails)
        spike_rate = (tails > 1.0).mean()
        assert 0.0005 < spike_rate < 0.02
        assert tails.max() <= 2.5

    def test_reporting_accumulates(self, model):
        model.set_pressure(0.4)
        t = 0.0
        for _ in range(100):
            t += 60.0
            model.record_scheduling_event(t)
            model.sample_multipliers(t)
        assert model.mean_stall_increase > 0.0
        assert model.l1_miss_increase() < model.mean_stall_increase
        assert model.llc_load_increase() < model.mean_stall_increase

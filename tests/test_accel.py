"""Tests for the FPGA-offload extension (§7, Tables 3-4)."""

from repro.accel.offload import (
    Accelerator,
    AcceleratorConfig,
    attach_accelerator,
    cell_100mhz_tdd_accel,
    pool_100mhz_accel,
)
from repro.ran.config import PoolConfig, cell_20mhz_fdd
from repro.ran.tasks import TaskType
from repro.sim.engine import Engine
from repro.sim.pool import VranPool

from .test_pool import ManualPolicy, _FixedCost, _fast_os, make_dag


def make_accel_pool(num_cores=4, accel_config=None):
    engine = Engine()
    config = PoolConfig(cells=(cell_20mhz_fdd(),), num_cores=num_cores,
                        deadline_us=4000.0)
    pool = VranPool(
        engine=engine, config=config, policy=ManualPolicy(),
        cost_model=_FixedCost(noise_sigma=0.0, isolated_tail_prob=0.0),
        os_model=_fast_os(),
    )
    accel = attach_accelerator(pool, Accelerator(engine, accel_config))
    return engine, pool, accel


class TestAcceleratorModel:
    def test_service_time_scales_with_codeblocks(self):
        engine, pool, accel = make_accel_pool()
        dag = make_dag(total_bytes=40_000)
        decodes = [t for t in dag.tasks
                   if t.task_type is TaskType.LDPC_DECODE]
        big = max(decodes, key=lambda t: t.feature("task_codeblocks"))
        small = min(decodes, key=lambda t: t.feature("task_codeblocks"))
        if big.feature("task_codeblocks") > small.feature("task_codeblocks"):
            assert accel.config.service_time_us(big) > \
                accel.config.service_time_us(small)

    def test_offload_saves_cpu_not_latency(self):
        """Offloading frees CPU cycles; end-to-end latency can be higher
        than the CPU path (paper Table 4: waits dominate slot time)."""
        config = AcceleratorConfig()
        assert config.roundtrip_us > 0.0
        assert config.decode_us_per_cb > 0.0
        # A 4-CB decode group costs more wall time on the accelerator
        # than the CPU's ~21 µs/CB, yet zero CPU cycles.
        assert config.roundtrip_us + 4 * config.decode_us_per_cb > 4 * 21.0

    def test_dag_completes_with_offload(self):
        engine, pool, accel = make_accel_pool()
        dag = make_dag(total_bytes=20_000)
        pool.release_slot([dag])
        engine.run_until(100_000.0)
        assert dag.finished
        assert accel.tasks_served > 0

    def test_offloaded_tasks_never_occupy_workers(self):
        engine, pool, accel = make_accel_pool(num_cores=1)
        dag = make_dag(total_bytes=20_000)
        running_types = []
        original = pool._start
        def spy(worker, task):
            running_types.append(task.task_type)
            original(worker, task)
        pool._start = spy
        pool.release_slot([dag])
        engine.run_until(100_000.0)
        assert dag.finished
        assert TaskType.LDPC_DECODE not in running_types
        assert TaskType.LDPC_ENCODE not in running_types

    def test_pipeline_limit_respected(self):
        engine, pool, accel = make_accel_pool(
            accel_config=AcceleratorConfig(pipelines=1))
        dag = make_dag(total_bytes=60_000)
        pool.release_slot([dag])
        engine.run_until(200_000.0)
        assert dag.finished
        # With one pipeline, decodes are strictly serialized.
        decodes = sorted(
            ((t.start_time, t.finish_time) for t in dag.tasks
             if t.task_type is TaskType.LDPC_DECODE),
        )
        for (__, f1), (s2, __) in zip(decodes, decodes[1:]):
            assert s2 >= f1 - 1e-9

    def test_dependencies_still_respected(self):
        engine, pool, accel = make_accel_pool()
        dag = make_dag(total_bytes=20_000)
        pool.release_slot([dag])
        engine.run_until(100_000.0)
        for task in dag.tasks:
            for successor in task.successors:
                assert successor.start_time >= task.finish_time - 1e-9


class TestAccelConfigs:
    def test_table3_cell(self):
        cell = cell_100mhz_tdd_accel()
        assert cell.peak_dl_mbps == 1600.0
        assert cell.peak_ul_mbps == 150.0
        assert cell.slot_duration_us == 500.0

    def test_pool_factory(self):
        pool = pool_100mhz_accel(num_cells=3, num_cores=4)
        assert len(pool.cells) == 3
        assert pool.num_cores == 4

"""Tests for :mod:`repro.exec` — specs, cache, batch runner, routing.

Simulation budgets are tiny (one-to-few hundred slots on small pools):
the goal is exercising the orchestration machinery, not the paper's
numbers.
"""

import json

import pytest

from repro.core.training import train_predictor
from repro.exec import (
    ResultCache,
    SimSpec,
    SpecError,
    activated_cache,
    model_fingerprint,
    pool_config_from_dict,
    pool_config_to_dict,
    run_batch,
    spec_key,
)
from repro.exec.batch import default_jobs
from repro.experiments.common import make_spec, repro_scale, run_simulation
from repro.ran.config import PoolConfig, cell_20mhz_fdd, pool_20mhz_7cells


def small_config(num_cores: int = 4) -> PoolConfig:
    return pool_20mhz_7cells(num_cores=num_cores)


def tiny_config() -> PoolConfig:
    return PoolConfig(cells=(cell_20mhz_fdd("t0"),), num_cores=2,
                      deadline_us=2000.0)


def flexran_spec(seed: int = 3, num_slots: int = 120, **kwargs) -> SimSpec:
    return make_spec(small_config(), "flexran", num_slots=num_slots,
                     seed=seed, **kwargs)


class TestSpec:
    def test_round_trip(self):
        spec = flexran_spec(workload="redis", load_fraction=0.3)
        clone = SimSpec.from_dict(spec.to_dict())
        assert clone.to_dict() == spec.to_dict()
        assert pool_config_from_dict(clone.config) == small_config()

    def test_key_depends_on_payload_and_fingerprint(self):
        a, b = flexran_spec(seed=1), flexran_spec(seed=2)
        assert spec_key(a, "fp") != spec_key(b, "fp")
        assert spec_key(a, "fp") == spec_key(flexran_spec(seed=1), "fp")
        assert spec_key(a, "fp") != spec_key(a, "other-fp")

    def test_live_objects_are_rejected(self):
        with pytest.raises(SpecError):
            make_spec(small_config(), "concordia",
                      policy_kwargs={"predictor": object()})

    def test_label_mentions_the_grid_point(self):
        label = flexran_spec(load_fraction=0.25).label()
        assert "flexran" in label and "@0.25" in label

    def test_fingerprint_is_stable_hex(self):
        assert model_fingerprint() == model_fingerprint()
        int(model_fingerprint(), 16)


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("ab" * 32) is None
        cache.put("ab" * 32, {"result": {"x": 1}})
        assert cache.get("ab" * 32)["result"] == {"x": 1}
        assert cache.hits == 1 and cache.misses == 1

    def test_corrupt_artifact_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "cd" * 32
        path = cache.put(key, {"result": {}})
        path.write_text("{not json")
        assert cache.get(key) is None


class TestBatchRunner:
    def test_parallel_matches_serial_byte_for_byte(self):
        specs = [flexran_spec(seed=s, num_slots=100) for s in (1, 2, 3)]
        serial = run_batch(specs, jobs=1, use_cache=False)
        parallel = run_batch(specs, jobs=3, use_cache=False)
        dump = lambda rep: [json.dumps(o.result, sort_keys=True)
                            for o in rep.outcomes]
        assert dump(serial) == dump(parallel)
        assert parallel.executed == 3 and parallel.failed == 0

    def test_warm_cache_executes_nothing(self, tmp_path):
        cache = ResultCache(tmp_path)
        specs = [flexran_spec(seed=s, num_slots=100) for s in (4, 5)]
        cold = run_batch(specs, jobs=2, cache=cache)
        warm = run_batch(specs, jobs=2, cache=cache)
        assert (cold.executed, cold.cached) == (2, 0)
        assert (warm.executed, warm.cached) == (0, 2)
        assert [o.result for o in warm.outcomes] == \
            [o.result for o in cold.outcomes]

    def test_fingerprint_change_invalidates(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        specs = [flexran_spec(seed=6, num_slots=100)]
        run_batch(specs, jobs=1, cache=cache)
        monkeypatch.setattr("repro.exec.batch.model_fingerprint",
                            lambda: "recalibrated")
        again = run_batch(specs, jobs=1, cache=cache)
        assert again.cached == 0 and again.executed == 1

    def test_crash_is_isolated_and_retried(self):
        crash = flexran_spec(seed=7, num_slots=100)
        crash.knobs["__test_crash__"] = True
        flaky = flexran_spec(seed=8, num_slots=100)
        flaky.knobs["__test_crash_until_attempt__"] = 1
        good = flexran_spec(seed=9, num_slots=100)
        report = run_batch([crash, flaky, good], jobs=2,
                           use_cache=False, retries=1)
        by_status = {o.spec.seed: o for o in report.outcomes}
        assert by_status[7].status == "failed"
        assert by_status[7].attempts == 2
        assert "injected crash" in by_status[7].error
        assert by_status[8].status == "ok"  # succeeded on retry
        assert by_status[9].status == "ok"
        assert report.retried >= 2
        with pytest.raises(RuntimeError, match="1 of 3 jobs failed"):
            report.results(strict=True)
        results = report.results(strict=False)
        assert results[0] is None and results[2] is not None

    def test_timeout_kills_the_job(self):
        slow = flexran_spec(seed=10, num_slots=100)
        slow.knobs["__test_sleep_s__"] = 30.0
        report = run_batch([slow], jobs=2, use_cache=False,
                           timeout_s=0.5)
        outcome = report.outcomes[0]
        assert outcome.status == "timeout"
        assert "killed" in outcome.error
        assert report.batch_wall_s < 10.0

    def test_telemetry_and_progress_stream(self, tmp_path):
        cache = ResultCache(tmp_path)
        events = []
        spec = flexran_spec(seed=11, num_slots=100)
        run_batch([spec], jobs=1, cache=cache, progress=events.append)
        run_batch([spec], jobs=1, cache=cache, progress=events.append)
        kinds = [e["status"] for e in events]
        assert kinds == ["ok", "cached"]
        assert events[0]["wall_s"] > 0
        assert events[0]["total"] == 1


class TestRunSimulationRouting:
    def test_hit_returns_identical_payload(self, tmp_path):
        config = small_config()
        with activated_cache(ResultCache(tmp_path)) as cache:
            first = run_simulation(config, "flexran", num_slots=100,
                                   seed=12)
            second = run_simulation(config, "flexran", num_slots=100,
                                    seed=12)
        assert cache.hits >= 1
        assert first.metrics is None and first.pool is None
        assert first.to_dict() == second.to_dict()

    def test_use_cache_false_bypasses(self, tmp_path):
        config = small_config()
        with activated_cache(ResultCache(tmp_path)) as cache:
            result = run_simulation(config, "flexran", num_slots=100,
                                    seed=13, use_cache=False)
        assert result.metrics is not None  # live, uncached result
        assert cache.hits == 0 and cache.misses == 0

    def test_unspeccable_call_falls_back(self, tmp_path):
        config = small_config()
        with activated_cache(ResultCache(tmp_path)) as cache:
            result = run_simulation(config, "flexran", num_slots=100,
                                    seed=14, record_tasks=True)
        # record_tasks needs the live metrics object, so the call must
        # bypass the cache entirely.
        assert result.metrics is not None
        assert cache.hits == 0 and cache.misses == 0


class TestPredictorPersistence:
    def test_train_persist_reload(self, tmp_path):
        config = tiny_config()
        path = tmp_path / "predictor.pkl"
        trained = train_predictor(config, num_slots=200, seed=5,
                                  cache_path=path)
        assert path.exists()
        reloaded = train_predictor(config, num_slots=200, seed=5,
                                   cache_path=path)
        assert set(reloaded.models) == set(trained.models)
        assert reloaded.selected_features == trained.selected_features


class TestEnvValidation:
    def test_repro_scale_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "fast")
        with pytest.raises(ValueError, match="REPRO_SCALE"):
            repro_scale()

    def test_repro_scale_rejects_nonpositive(self, monkeypatch):
        for bad in ("0", "-2", "inf", "nan"):
            monkeypatch.setenv("REPRO_SCALE", bad)
            with pytest.raises(ValueError, match="REPRO_SCALE"):
                repro_scale()

    def test_repro_scale_accepts_numbers(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "2.5")
        assert repro_scale() == 2.5
        monkeypatch.delenv("REPRO_SCALE")
        assert repro_scale() == 1.0

    def test_repro_jobs_validation(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "4")
        assert default_jobs() == 4
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ValueError, match="REPRO_JOBS"):
            default_jobs()
        monkeypatch.setenv("REPRO_JOBS", "0")
        with pytest.raises(ValueError, match="REPRO_JOBS"):
            default_jobs()
        monkeypatch.delenv("REPRO_JOBS")
        assert default_jobs() == 1

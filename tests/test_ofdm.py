"""Tests for the OFDM reference kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy.channel import AwgnChannel
from repro.phy.modulation import demodulate_hard, modulate
from repro.phy.ofdm import OfdmConfig, ofdm_demodulate, ofdm_modulate


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            OfdmConfig(fft_size=100)  # not a power of two
        with pytest.raises(ValueError):
            OfdmConfig(fft_size=64, num_subcarriers=64)
        with pytest.raises(ValueError):
            OfdmConfig(fft_size=64, num_subcarriers=32, cyclic_prefix=64)

    def test_symbol_length(self):
        config = OfdmConfig(fft_size=256, num_subcarriers=120,
                            cyclic_prefix=16)
        assert config.symbol_length == 272

    def test_mapping_avoids_dc(self):
        config = OfdmConfig(fft_size=64, num_subcarriers=24,
                            cyclic_prefix=4)
        mapping = config._mapping()
        assert 0 not in mapping
        assert len(set(mapping.tolist())) == 24


class TestRoundtrip:
    def test_noiseless_roundtrip(self):
        config = OfdmConfig(fft_size=256, num_subcarriers=120,
                            cyclic_prefix=18)
        rng = np.random.default_rng(0)
        symbols = (rng.normal(size=360) + 1j * rng.normal(size=360)) \
            / np.sqrt(2)
        time_domain = ofdm_modulate(config, symbols)
        assert len(time_domain) % config.symbol_length == 0
        recovered = ofdm_demodulate(config, time_domain)
        assert np.allclose(recovered[:360], symbols, atol=1e-10)

    def test_zero_padding_to_whole_symbols(self):
        config = OfdmConfig(fft_size=128, num_subcarriers=48,
                            cyclic_prefix=8)
        symbols = np.ones(50, dtype=complex)  # 48 + 2 -> two symbols
        time_domain = ofdm_modulate(config, symbols)
        assert len(time_domain) == 2 * config.symbol_length
        recovered = ofdm_demodulate(config, time_domain)
        assert np.allclose(recovered[48:50], 1.0)
        assert np.allclose(recovered[50:], 0.0, atol=1e-12)

    def test_partial_symbol_rejected_on_receive(self):
        config = OfdmConfig(fft_size=64, num_subcarriers=24,
                            cyclic_prefix=4)
        with pytest.raises(ValueError):
            ofdm_demodulate(config, np.zeros(65, dtype=complex))

    def test_power_preserved(self):
        """The unitary scaling keeps average power comparable."""
        config = OfdmConfig(fft_size=256, num_subcarriers=128,
                            cyclic_prefix=0)
        rng = np.random.default_rng(1)
        symbols = (rng.normal(size=1280) + 1j * rng.normal(size=1280))
        time_domain = ofdm_modulate(config, symbols)
        power_in = np.mean(np.abs(symbols) ** 2) * len(symbols)
        power_out = np.mean(np.abs(time_domain) ** 2) * len(time_domain)
        assert power_out == pytest.approx(power_in, rel=0.05)

    @given(st.integers(min_value=0, max_value=2**31 - 1),
           st.integers(min_value=1, max_value=200))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, seed, count):
        config = OfdmConfig(fft_size=128, num_subcarriers=48,
                            cyclic_prefix=8)
        rng = np.random.default_rng(seed)
        symbols = rng.normal(size=count) + 1j * rng.normal(size=count)
        recovered = ofdm_demodulate(config, ofdm_modulate(config, symbols))
        assert np.allclose(recovered[:count], symbols, atol=1e-9)


class TestEndToEnd:
    def test_qam_over_ofdm_awgn(self):
        """Full TX chain slice: QAM -> OFDM -> AWGN -> OFDM -> QAM."""
        config = OfdmConfig(fft_size=256, num_subcarriers=120,
                            cyclic_prefix=18)
        rng = np.random.default_rng(2)
        bits = rng.integers(0, 2, 960).astype(np.uint8)
        qam = modulate(bits, 4)
        tx = ofdm_modulate(config, qam)
        rx = AwgnChannel(25.0, rng=np.random.default_rng(3))(tx)
        recovered = ofdm_demodulate(config, rx)[: len(qam)]
        decoded = demodulate_hard(recovered, 4)[: len(bits)]
        assert np.mean(decoded != bits) < 0.01

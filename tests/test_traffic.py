"""Tests for the bursty traffic generator (Fig. 3 calibration)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ran.config import cell_100mhz_tdd, cell_20mhz_fdd
from repro.ran.traffic import (
    CellTraffic,
    MarkovBurstTraffic,
    lte_cell_traffic,
)


class TestMarkovBurstTraffic:
    def test_validation(self):
        with pytest.raises(ValueError):
            MarkovBurstTraffic(100, 1000, active_fraction=0.0)
        with pytest.raises(ValueError):
            MarkovBurstTraffic(100, 1000, active_fraction=0.5,
                               mean_burst_slots=0.5)
        with pytest.raises(ValueError):
            MarkovBurstTraffic(-1, 1000, active_fraction=0.5)

    def test_trace_nonnegative_and_capped(self):
        gen = MarkovBurstTraffic(500, 2000, 0.3,
                                 rng=np.random.default_rng(0))
        trace = gen.trace(5000)
        assert (trace >= 0).all()
        assert trace.max() <= 2000

    def test_idle_fraction_matches_target(self):
        gen = MarkovBurstTraffic(500, 1e9, 0.3, rng=np.random.default_rng(1))
        trace = gen.trace(40_000)
        idle = (trace == 0).mean()
        assert idle == pytest.approx(0.7, abs=0.05)

    def test_mean_volume_matches_target(self):
        gen = MarkovBurstTraffic(500, 1e9, 0.3, rng=np.random.default_rng(2))
        trace = gen.trace(60_000)
        assert trace.mean() == pytest.approx(500, rel=0.1)

    def test_bursts_are_correlated(self):
        """Busy slots cluster: P(active | active) >> P(active)."""
        gen = MarkovBurstTraffic(500, 1e9, 0.25, mean_burst_slots=10,
                                 rng=np.random.default_rng(3))
        trace = gen.trace(40_000) > 0
        p_active = trace.mean()
        joint = (trace[1:] & trace[:-1]).mean()
        p_cond = joint / p_active
        assert p_cond > 2 * p_active

    def test_always_active_mode(self):
        gen = MarkovBurstTraffic(500, 1e9, 1.0, rng=np.random.default_rng(4))
        assert (gen.trace(2000) > 0).all()


class TestLteCalibration:
    """The paper's Fig. 3 facts about the Cambridge LTE traces."""

    def test_single_cell_idle_75_percent(self):
        trace = lte_cell_traffic(seed=0).trace(60_000)
        assert (trace == 0).mean() == pytest.approx(0.75, abs=0.04)

    def test_three_cell_aggregate_idle_near_20_percent(self):
        traces = [lte_cell_traffic(seed=s).trace(60_000) for s in (0, 1, 2)]
        aggregate = np.sum(traces, axis=0)
        idle = (aggregate == 0).mean()
        assert 0.35 <= idle <= 0.50  # 0.75^3 ≈ 0.42 for independent cells

    def test_aggregate_median_near_200_bytes(self):
        """§2.2: the 3-cell aggregate's median transfer per TTI is
        ~0.2 KB (median over all slots, idle slots included)."""
        traces = [lte_cell_traffic(seed=s).trace(60_000) for s in (3, 4, 5)]
        aggregate = np.sum(traces, axis=0)
        median = np.median(aggregate)
        assert 50 <= median <= 500

    def test_heavy_tail_p95_vs_median(self):
        """p95 is ~10x the median per §2.2."""
        traces = [lte_cell_traffic(seed=s).trace(60_000) for s in (6, 7, 8)]
        aggregate = np.sum(traces, axis=0)
        busy = aggregate[aggregate > 0]
        ratio = np.percentile(busy, 95) / np.median(busy)
        assert ratio > 4.0


class TestCellTraffic:
    def test_invalid_load_rejected(self):
        with pytest.raises(ValueError):
            CellTraffic.for_cell(cell_20mhz_fdd(), 1.5)

    def test_load_scales_mean(self):
        cell = cell_20mhz_fdd()
        low = CellTraffic.for_cell(cell, 0.1, seed=0).uplink.trace(30_000)
        high = CellTraffic.for_cell(cell, 0.9, seed=0).uplink.trace(30_000)
        assert high.mean() > 3 * low.mean()

    def test_full_load_tracks_table1_average(self):
        cell = cell_20mhz_fdd()
        trace = CellTraffic.for_cell(cell, 1.0, seed=1).uplink.trace(50_000)
        target = cell.avg_ul_mbps * 1e6 / 8 * cell.slot_duration_us / 1e6
        # The per-slot peak cap truncates the lognormal, so the achieved
        # mean sits somewhat below the nominal target.
        assert 0.5 * target <= trace.mean() <= 1.05 * target

    def test_bursts_capped_at_table2_peak(self):
        cell = cell_20mhz_fdd()
        traffic = CellTraffic.for_cell(cell, 1.0, seed=2)
        assert traffic.uplink.trace(20_000).max() <= \
            cell.peak_bytes_per_slot(uplink=True)

    def test_tdd_direction_scaling(self):
        """TDD concentrates direction traffic into fewer slots."""
        cell = cell_100mhz_tdd()
        traffic = CellTraffic.for_cell(cell, 1.0, seed=3)
        ul_mean = traffic.uplink.trace(30_000).mean()
        naive = cell.avg_ul_mbps * 1e6 / 8 * cell.slot_duration_us / 1e6
        assert ul_mean > naive  # concentrated into the UL share of slots

    @given(st.floats(min_value=0.0, max_value=1.0),
           st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_generator_invariants(self, load, seed):
        traffic = CellTraffic.for_cell(cell_20mhz_fdd(), load, seed=seed)
        trace = traffic.downlink.trace(500)
        assert (trace >= 0).all()
        assert trace.max() <= cell_20mhz_fdd().peak_bytes_per_slot(False)

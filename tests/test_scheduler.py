"""Unit tests for the Concordia scheduler and baseline policies."""

import numpy as np
import pytest

from repro.baselines.flexran import DedicatedScheduler, FlexRanScheduler
from repro.baselines.shenango import ShenangoScheduler
from repro.baselines.utilization import UtilizationScheduler
from repro.core.scheduler import ConcordiaScheduler

from .test_pool import _FixedCost, _fast_os, make_dag
from repro.ran.config import PoolConfig, cell_20mhz_fdd
from repro.sim.engine import Engine
from repro.sim.pool import VranPool


def make_pool_with(policy, num_cores=4, os_model=None):
    engine = Engine()
    config = PoolConfig(cells=(cell_20mhz_fdd(),), num_cores=num_cores,
                        deadline_us=2000.0)
    pool = VranPool(
        engine=engine,
        config=config,
        policy=policy,
        cost_model=_FixedCost(noise_sigma=0.0, isolated_tail_prob=0.0),
        os_model=os_model or _fast_os(),
    )
    return engine, pool


class TestConcordiaScheduler:
    def test_predicts_every_task_at_slot_start(self):
        policy = ConcordiaScheduler(predictor=None)
        engine, pool = make_pool_with(policy)
        dag = make_dag(total_bytes=10_000)
        pool.release_slot([dag])
        assert all(t.predicted_wcet_us is not None for t in dag.tasks)

    def test_fallback_prediction_is_inflated_base(self):
        policy = ConcordiaScheduler(predictor=None, wcet_fallback_margin=1.5)
        engine, pool = make_pool_with(policy)
        dag = make_dag(total_bytes=5_000)
        pool.release_slot([dag])
        task = dag.tasks[0]
        assert task.predicted_wcet_us == pytest.approx(
            task.base_cost_us * 1.5)

    def test_path_us_computed_topologically(self):
        policy = ConcordiaScheduler(predictor=None)
        engine, pool = make_pool_with(policy)
        dag = make_dag(total_bytes=10_000)
        pool.release_slot([dag])
        for task in dag.tasks:
            tail = max((s.path_us for s in task.successors), default=0.0)
            assert task.path_us == pytest.approx(
                task.predicted_wcet_us + tail)

    def test_releases_cores_when_idle(self):
        policy = ConcordiaScheduler(predictor=None, release_hold_us=50.0)
        engine, pool = make_pool_with(policy)
        engine.run_until(5_000.0)  # many idle ticks
        assert pool.reserved_count == 0

    def test_min_standby_respected(self):
        policy = ConcordiaScheduler(predictor=None, min_standby_cores=2,
                                    release_hold_us=50.0)
        engine, pool = make_pool_with(policy)
        engine.run_until(5_000.0)
        assert pool.reserved_count == 2

    def test_critical_stage_grabs_all_cores(self):
        policy = ConcordiaScheduler(predictor=None, release_hold_us=50.0)
        engine, pool = make_pool_with(policy, num_cores=4)
        engine.run_until(1_000.0)
        assert pool.reserved_count == 0
        # A DAG whose slack is below its critical path -> critical stage.
        dag = make_dag(total_bytes=30_000, release=1_000.0,
                       deadline=1_200.0)
        pool.release_slot([dag])
        assert pool.target_cores == 4

    def test_completion_releases_after_hold(self):
        policy = ConcordiaScheduler(predictor=None, release_hold_us=100.0)
        engine, pool = make_pool_with(policy)
        dag = make_dag(total_bytes=5_000)
        pool.release_slot([dag])
        engine.run_until(50_000.0)
        assert dag.finished
        assert pool.reserved_count == 0

    def test_hold_window_delays_release(self):
        policy = ConcordiaScheduler(predictor=None, release_hold_us=400.0)
        engine, pool = make_pool_with(policy)
        dag = make_dag(total_bytes=5_000)
        pool.release_slot([dag])
        engine.run_until(50_000.0)
        completion = dag.completion_us
        # Cores must have been held for roughly the hold window after
        # the last demand, visible in the reserved-time integral.
        last_yield_metrics = pool.metrics
        assert last_yield_metrics.reserved_core_time_us > 0
        # After the hold window expires everything is released.
        assert pool.reserved_count == 0

    def test_overhead_counters_advance(self):
        policy = ConcordiaScheduler(predictor=None)
        engine, pool = make_pool_with(policy)
        pool.release_slot([make_dag(total_bytes=5_000)])
        engine.run_until(3_000.0)
        assert policy.prediction_calls == 1
        assert policy.scheduling_calls > 10
        assert policy.mean_scheduling_us >= 0.0
        assert policy.mean_prediction_us >= 0.0

    def test_wakeup_compensation(self):
        """A stuck waking core triggers an extra reservation."""
        from repro.sim.osmodel import LatencyBucket, WakeupLatencyModel
        slow = WakeupLatencyModel(
            rng=np.random.default_rng(0),
            isolated_buckets=(LatencyBucket(1.0, 5_000.0, 5_000.1),),
            collocated_buckets=(LatencyBucket(1.0, 5_000.0, 5_000.1),),
        )
        policy = ConcordiaScheduler(predictor=None, wakeup_overdue_us=25.0,
                                    release_hold_us=50.0)
        engine, pool = make_pool_with(policy, num_cores=4, os_model=slow)
        engine.run_until(1_000.0)
        assert pool.reserved_count == 0
        dag = make_dag(total_bytes=400, release=1_000.0, deadline=9_000.0)
        pool.release_slot([dag])
        engine.run_until(1_200.0)
        # The first wake is stuck for 5 ms; ticks must have signalled
        # at least one additional core in compensation.
        assert pool.reserved_count >= 2


class TestFlexRan:
    def test_tracks_queue_length(self):
        policy = FlexRanScheduler()
        engine, pool = make_pool_with(policy)
        dag = make_dag(total_bytes=1_000)
        pool.release_slot([dag])
        engine.run_until(50_000.0)
        assert dag.finished
        # Once drained, all cores are relinquished.
        assert pool.reserved_count == 0

    def test_idle_pool_holds_no_cores(self):
        policy = FlexRanScheduler()
        engine, pool = make_pool_with(policy)
        dag = make_dag(total_bytes=2_000)
        pool.release_slot([dag])
        engine.run_until(50_000.0)
        before = pool.metrics.yield_events
        engine.run_until(100_000.0)
        assert pool.metrics.yield_events == before  # no churn while idle

    def test_generates_more_events_than_concordia(self):
        """Fig. 10's headline: FlexRAN has far more scheduling events."""
        def run(policy):
            engine, pool = make_pool_with(policy, num_cores=4)
            for i in range(30):
                release = 1000.0 * i
                engine.run_until(release)
                pool.release_slot([make_dag(total_bytes=15_000,
                                            release=release,
                                            deadline=release + 2000.0,
                                            seed=i)])
            engine.run_until(40_000.0)
            return pool.metrics.scheduling_events

        flexran_events = run(FlexRanScheduler())
        concordia_events = run(ConcordiaScheduler(predictor=None))
        assert flexran_events > 1.5 * concordia_events


class TestDedicated:
    def test_never_releases(self):
        policy = DedicatedScheduler()
        engine, pool = make_pool_with(policy)
        dag = make_dag(total_bytes=2_000)
        pool.release_slot([dag])
        engine.run_until(50_000.0)
        assert pool.reserved_count == pool.num_cores
        assert pool.metrics.reclaimed_fraction == pytest.approx(0.0, abs=1e-9)


class TestShenango:
    def test_adds_core_on_queue_delay(self):
        policy = ShenangoScheduler(queue_delay_threshold_us=10.0,
                                   check_interval_us=5.0)
        engine, pool = make_pool_with(policy, num_cores=4)
        pool.request_cores(0)
        dag = make_dag(total_bytes=20_000)
        pool.release_slot([dag])
        engine.run_until(200.0)
        assert pool.reserved_count >= 1

    def test_releases_on_drain(self):
        policy = ShenangoScheduler(queue_delay_threshold_us=5.0)
        engine, pool = make_pool_with(policy)
        pool.release_slot([make_dag(total_bytes=5_000)])
        engine.run_until(50_000.0)
        assert pool.reserved_count == 0

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            ShenangoScheduler(queue_delay_threshold_us=-1.0)


class TestUtilization:
    def test_scales_up_when_busy(self):
        policy = UtilizationScheduler(threshold=0.3, window_slots=1,
                                      slot_duration_us=500.0)
        engine, pool = make_pool_with(policy, num_cores=4)
        start = pool.reserved_count
        for i in range(10):
            release = 500.0 * i
            engine.run_until(release)
            pool.release_slot([make_dag(total_bytes=30_000, release=release,
                                        deadline=release + 4000.0, seed=i)])
        engine.run_until(5_000.0)
        assert pool.reserved_count > start or pool.target_cores == 4

    def test_scales_down_when_idle(self):
        policy = UtilizationScheduler(threshold=0.5, window_slots=2,
                                      slot_duration_us=500.0)
        engine, pool = make_pool_with(policy, num_cores=4)
        engine.run_until(20_000.0)
        assert pool.reserved_count == 1

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            UtilizationScheduler(threshold=0.0)

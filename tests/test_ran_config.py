"""Tests for cell/pool configurations (Tables 1 and 2)."""

import pytest

from repro.ran.config import (
    Duplex,
    PoolConfig,
    SlotType,
    cell_100mhz_tdd,
    cell_20mhz_fdd,
    pool_100mhz_2cells,
    pool_20mhz_7cells,
)


class TestCellConfig:
    def test_table1_100mhz(self):
        cell = cell_100mhz_tdd()
        assert cell.duplex is Duplex.TDD
        assert cell.slot_duration_us == 500.0
        assert cell.peak_dl_mbps == 1500.0
        assert cell.peak_ul_mbps == 160.0

    def test_table1_20mhz(self):
        cell = cell_20mhz_fdd()
        assert cell.duplex is Duplex.FDD
        assert cell.slot_duration_us == 1000.0
        assert cell.peak_dl_mbps == 380.0

    def test_fdd_slots_are_full_duplex(self):
        cell = cell_20mhz_fdd()
        assert all(cell.slot_type(i) is SlotType.FULL_DUPLEX
                   for i in range(10))

    def test_tdd_pattern_dddsu(self):
        cell = cell_100mhz_tdd()
        pattern = [cell.slot_type(i) for i in range(5)]
        assert pattern == [SlotType.DOWNLINK, SlotType.DOWNLINK,
                           SlotType.DOWNLINK, SlotType.SPECIAL,
                           SlotType.UPLINK]
        assert cell.slot_type(5) is SlotType.DOWNLINK  # wraps around

    def test_invalid_numerology(self):
        with pytest.raises(ValueError):
            cell_100mhz_tdd().__class__(
                name="bad", bandwidth_mhz=10, duplex=Duplex.FDD,
                numerology=9, peak_dl_mbps=10, peak_ul_mbps=10,
                avg_dl_mbps=5, avg_ul_mbps=5,
            )

    def test_peak_below_average_rejected(self):
        with pytest.raises(ValueError):
            cell_20mhz_fdd().__class__(
                name="bad", bandwidth_mhz=20, duplex=Duplex.FDD,
                numerology=0, peak_dl_mbps=10, peak_ul_mbps=10,
                avg_dl_mbps=50, avg_ul_mbps=5,
            )

    def test_tdd_per_slot_peak_concentrates_direction(self):
        """TDD carries a direction's traffic only in its slots, so the
        per-slot peak exceeds the naive bandwidth-delay product."""
        cell = cell_100mhz_tdd()
        naive_ul = cell.peak_ul_mbps * 1e6 / 8 * cell.slot_duration_us / 1e6
        assert cell.peak_bytes_per_slot(uplink=True) > naive_ul

    def test_fdd_per_slot_peak_matches_rate(self):
        cell = cell_20mhz_fdd()
        expected = cell.peak_ul_mbps * 1e6 / 8 * cell.slot_duration_us / 1e6
        assert cell.peak_bytes_per_slot(uplink=True) == pytest.approx(expected)


class TestPoolConfig:
    def test_table2_pools(self):
        pool100 = pool_100mhz_2cells()
        assert len(pool100.cells) == 2
        assert pool100.num_cores == 12
        assert pool100.deadline_us == 1500.0
        pool20 = pool_20mhz_7cells()
        assert len(pool20.cells) == 7
        assert pool20.num_cores == 8
        assert pool20.deadline_us == 2000.0

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            PoolConfig(cells=(), num_cores=4, deadline_us=1000.0)

    def test_mixed_numerology_rejected(self):
        with pytest.raises(ValueError):
            PoolConfig(cells=(cell_100mhz_tdd(), cell_20mhz_fdd()),
                       num_cores=4, deadline_us=1000.0)

    def test_zero_cores_rejected(self):
        with pytest.raises(ValueError):
            PoolConfig(cells=(cell_20mhz_fdd(),), num_cores=0,
                       deadline_us=1000.0)

    def test_slot_duration_from_cells(self):
        assert pool_100mhz_2cells().slot_duration_us == 500.0
        assert pool_20mhz_7cells().slot_duration_us == 1000.0

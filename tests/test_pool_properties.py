"""Property-based stress tests: pool invariants under random driving."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ran.config import PoolConfig, cell_20mhz_fdd
from repro.sim.engine import Engine
from repro.sim.pool import VranPool, WorkerState

from .test_pool import ManualPolicy, _FixedCost, _fast_os, make_dag


@st.composite
def _driving_script(draw):
    """A random interleaving of slot releases and core requests."""
    steps = draw(st.lists(
        st.one_of(
            st.tuples(st.just("release"),
                      st.integers(min_value=0, max_value=30_000),
                      st.integers(min_value=0, max_value=2**31 - 1)),
            st.tuples(st.just("request"),
                      st.integers(min_value=0, max_value=8),
                      st.just(0)),
            st.tuples(st.just("advance"),
                      st.integers(min_value=10, max_value=2_000),
                      st.just(0)),
        ),
        min_size=3, max_size=25,
    ))
    return steps


@given(script=_driving_script(),
       num_cores=st.integers(min_value=1, max_value=6),
       pin=st.booleans())
@settings(max_examples=60, deadline=None)
def test_pool_invariants_under_random_driving(script, num_cores, pin):
    engine = Engine()
    config = PoolConfig(cells=(cell_20mhz_fdd(),), num_cores=num_cores,
                        deadline_us=100_000.0)
    policy = ManualPolicy()
    policy.pin_tasks_to_wakeups = pin
    pool = VranPool(
        engine=engine, config=config, policy=policy,
        cost_model=_FixedCost(noise_sigma=0.0, isolated_tail_prob=0.0),
        os_model=_fast_os(),
    )
    released = []
    for action, value, seed in script:
        if action == "release":
            dag = make_dag(total_bytes=value, release=engine.now,
                           deadline=engine.now + 100_000.0, seed=seed)
            pool.release_slot([dag])
            released.append(dag)
        elif action == "request":
            pool.request_cores(value)
        else:
            engine.run_until(engine.now + value)
        _check_counters(pool)
    # Give everything a chance to finish (ensure capacity exists).
    pool.request_cores(num_cores)
    engine.run_until(engine.now + 2_000_000.0)
    _check_counters(pool)
    # Everything released must have completed exactly once.
    assert all(dag.finished for dag in released)
    assert pool.metrics.slot_count == len(released)
    assert pool.ready_count == 0
    assert pool.pinned_count == 0
    assert pool.running_count == 0
    # Per-task sanity: times ordered, runtimes positive.
    for dag in released:
        for task in dag.tasks:
            assert task.finish_time >= task.start_time >= \
                task.enqueue_time >= dag.release_us
            assert task.runtime_us > 0


def _check_counters(pool):
    """Incremental counters always match a full worker scan."""
    scan_reserved = sum(1 for w in pool.workers
                        if w.state is not WorkerState.YIELDED)
    scan_running = sum(1 for w in pool.workers
                       if w.state is WorkerState.RUNNING)
    scan_waking = sum(1 for w in pool.workers
                      if w.state is WorkerState.WAKING)
    scan_pinned = sum(1 for w in pool.workers
                      if w.pinned_task is not None)
    assert pool.reserved_count == scan_reserved
    assert pool.running_count == scan_running
    assert pool._waking == scan_waking
    assert pool.pinned_count == scan_pinned
    assert 0 <= pool.reserved_count <= pool.num_cores

"""Tests for the statistics helpers (KS test, Wasserstein distance)."""

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.analysis.stats import (
    empirical_cdf,
    ks_two_sample,
    percentile_summary,
    violin_summary,
    wasserstein_distance,
)


class TestEmpiricalCdf:
    def test_levels_monotone(self):
        values, levels = empirical_cdf(np.array([3.0, 1.0, 2.0]))
        assert list(values) == [1.0, 2.0, 3.0]
        assert list(levels) == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            empirical_cdf(np.array([]))


class TestKsTest:
    def test_identical_samples_high_p(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=2000)
        b = rng.normal(size=2000)
        stat, p = ks_two_sample(a, b)
        assert stat < 0.05
        assert p > 0.05

    def test_shifted_distributions_detected(self):
        """§4.1: collocated runtimes yield p << 0.001."""
        rng = np.random.default_rng(1)
        isolated = rng.gamma(4.0, 10.0, 3000)
        interfered = rng.gamma(4.0, 10.0, 3000) * 1.15
        stat, p = ks_two_sample(isolated, interfered)
        assert p < 0.001

    def test_matches_scipy(self):
        rng = np.random.default_rng(2)
        a = rng.normal(0, 1, 500)
        b = rng.normal(0.3, 1, 400)
        stat, p = ks_two_sample(a, b)
        ref = scipy_stats.ks_2samp(a, b)
        assert stat == pytest.approx(ref.statistic, abs=1e-9)
        assert p == pytest.approx(ref.pvalue, rel=0.1)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ks_two_sample(np.array([]), np.array([1.0]))


class TestWasserstein:
    def test_identical_zero(self):
        a = np.array([1.0, 2.0, 3.0])
        assert wasserstein_distance(a, a) == 0.0

    def test_shift_equals_offset(self):
        rng = np.random.default_rng(3)
        a = rng.normal(0, 1, 4000)
        assert wasserstein_distance(a, a + 2.5) == pytest.approx(2.5,
                                                                 rel=0.02)

    def test_matches_scipy(self):
        rng = np.random.default_rng(4)
        a = rng.gamma(2, 3, 1000)
        b = rng.gamma(3, 2, 800)
        ours = wasserstein_distance(a, b)
        ref = scipy_stats.wasserstein_distance(a, b)
        assert ours == pytest.approx(ref, rel=1e-6)

    def test_symmetric(self):
        rng = np.random.default_rng(5)
        a, b = rng.normal(size=300), rng.normal(1, 2, 400)
        assert wasserstein_distance(a, b) == pytest.approx(
            wasserstein_distance(b, a))


class TestSummaries:
    def test_percentile_summary_keys(self):
        summary = percentile_summary(range(1000))
        assert set(summary) == {"p50", "p95", "p99", "p99.99", "p99.999"}
        assert summary["p50"] <= summary["p99.999"]

    def test_violin_summary(self):
        summary = violin_summary(np.arange(100.0))
        assert summary.count == 100
        assert summary.q05 < summary.q50 < summary.q95 <= summary.maximum

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            violin_summary([])
        with pytest.raises(ValueError):
            percentile_summary([])

"""Byte-identity regression tests for the task-event fast path.

The fast-path optimizations (reusable engine timers, O(1) bitmap
dispatch, task/DAG instance pooling, vectorized DAG construction,
coalesced metrics emission, incremental scheduler tick) are only
admissible because they leave ``SimulationResult`` byte-identical:
no RNG draw may be added, dropped or reordered, and no float may be
accumulated in a different order.

The golden digests below are SHA-256 hashes of the canonical-JSON
result payload (wall-clock telemetry stripped; see
:mod:`repro.exec.digest`), captured on the pre-optimization tree.
They must never change as a side effect of performance work — a
mismatch means a behavioural regression, not a stale test.  Only an
intentional model/semantics change may regenerate them (with
``python -m tests.test_determinism`` printing the current values).

The ``concordia`` (ML) policy is excluded: its predictor's disk cache
makes run-to-run digests environment-dependent.  ``concordia-noml``
exercises the identical pool/scheduler fast path without training.
"""

import json

from repro.exec import run_batch
from repro.exec.digest import result_digest
from repro.experiments.common import make_spec
from repro.fleet import FleetScenario, Planner, combined_digest
from repro.ran.config import pool_20mhz_7cells
from repro.scenario import Scenario, build_simulation

SLOTS = 80
SEED = 11

#: Fleet golden: a 50-cell metro (20 MHz kind, 40 slots, seed 11) must
#: sample every cell byte-identically regardless of sharding; this is
#: the combined SHA-256 over all 50 per-cell demand-trace digests.
FLEET_CELLS = 50
FLEET_SLOTS = 40
GOLDEN_FLEET_DIGEST = \
    "09afc0cea67eadc9ee0326c89bf6568343c2758f4562286fbec94ab38173d0b9"

#: (policy, workload) -> SHA-256 of the canonical result payload,
#: captured before the fast-path work (fixed 20 MHz / 7-cell pool,
#: load 0.5, seed 11, 80 slots).
GOLDEN_DIGESTS = {
    ("concordia-noml", "none"):
        "9d18158d2eaa7d0ae779756eed3a7ad3dacabe6874646dee593f1e3372c0d77c",
    ("concordia-noml", "redis"):
        "94b52502423062a80c69153f43569403d1764d02b4cf92058769dc3a00314807",
    ("flexran", "none"):
        "05233ba9661b81a50d5039f26ca4c818900dfe8a25080ec814f9057f0036383b",
    ("flexran", "redis"):
        "a3296113bb9479bbb30b7b5150ddea5c40ab06fc48c8ec4e6ecd548f3c1ace89",
}


def _run_digest(policy: str, workload: str) -> str:
    scenario = Scenario(
        pool={"name": "20mhz"},
        policy=policy,
        workload=workload,
        load_fraction=0.5,
        seed=SEED,
    )
    result = build_simulation(scenario).run(SLOTS)
    return result_digest(result)


class TestGoldenDigests:
    def test_all_policy_workload_cells_match_golden(self):
        mismatches = {}
        for (policy, workload), expected in GOLDEN_DIGESTS.items():
            got = _run_digest(policy, workload)
            if got != expected:
                mismatches[(policy, workload)] = got
        assert not mismatches, (
            "result digests drifted from the pre-optimization goldens "
            f"(behavioural regression): {mismatches}")

    def test_digest_is_run_to_run_stable(self):
        first = _run_digest("concordia-noml", "redis")
        second = _run_digest("concordia-noml", "redis")
        assert first == second


def _fleet_digests(shards: int, jobs: int = 1) -> dict:
    fleet = FleetScenario(cells=FLEET_CELLS, shards=shards,
                          num_slots=FLEET_SLOTS, seed=SEED)
    report = Planner(fleet, jobs=jobs).run()
    assert report.ok, report.failures
    return report.cell_digests


class TestFleetShardingInvariance:
    """serial == ``--shards 4``: per-cell sampling is shard-invariant.

    Per-cell streams are keyed by global cell id, so a 50-cell fleet
    sharded 4 ways must produce byte-identical per-cell demand digests
    to the unsharded serial run — and both must match the golden
    captured when the fleet layer landed.
    """

    def test_serial_matches_golden(self):
        digests = _fleet_digests(shards=1)
        assert len(digests) == FLEET_CELLS
        assert combined_digest(digests) == GOLDEN_FLEET_DIGEST, (
            "fleet sampling drifted from the golden digest "
            "(behavioural regression)")

    def test_four_shards_byte_identical_to_serial(self):
        serial = _fleet_digests(shards=1)
        sharded = _fleet_digests(shards=4)
        assert sharded == serial
        assert combined_digest(sharded) == GOLDEN_FLEET_DIGEST


class TestSerialParallelEquivalence:
    def test_serial_and_two_jobs_byte_identical(self):
        specs = [
            make_spec(pool_20mhz_7cells(), "concordia-noml",
                      workload="redis", num_slots=60, seed=s)
            for s in (11, 12)
        ]
        serial = run_batch(specs, jobs=1, use_cache=False)
        parallel = run_batch(specs, jobs=2, use_cache=False)
        assert [o.status for o in serial.outcomes] == ["ok", "ok"]
        assert [o.status for o in parallel.outcomes] == ["ok", "ok"]
        serial_digests = [result_digest(o.result) for o in serial.outcomes]
        parallel_digests = [result_digest(o.result)
                            for o in parallel.outcomes]
        assert serial_digests == parallel_digests


if __name__ == "__main__":  # pragma: no cover — golden regeneration aid
    current = {
        cell: _run_digest(*cell) for cell in GOLDEN_DIGESTS
    }
    payload = {f"{p}/{w}": d for (p, w), d in current.items()}
    payload["fleet"] = combined_digest(_fleet_digests(shards=1))
    print(json.dumps(payload, indent=2))

"""Tests for the elastic runtime: worker add/remove, cell detach/attach,
declarative reconfig timelines, and mid-run fleet migration.

The invariants under test:

* ``VranPool.add_worker``/``remove_worker`` change the *physical* core
  set mid-run — distinct from the ``request_cores`` ratchet — with
  drain-then-retire semantics (a busy worker is never preempted) and
  capacity-segment-aware core-time accounting;
* a cell's portable snapshot (traffic/allocation/HARQ generator states
  plus in-flight HARQ) resumes byte-identically in another simulation,
  so a mid-run fleet migration leaves the migrated cell's sampling
  digest untouched while rebalancing per-server utilization;
* an *empty* reconfig timeline is invisible: scenarios serialize with
  their legacy schemas and all digests are byte-identical;
* the migration-cost model produces a bounded deadline-miss transient
  (state-transfer hold) and predictor warm-up (WCET inflation) without
  touching any sampling stream.
"""

import hashlib
import json

import pytest

from repro.cli import main
from repro.exec.digest import (canonical_json, canonical_result_payload,
                               result_digest)
from repro.fleet import FleetScenario, Planner
from repro.obs.events import CoreEvent, EventBus
from repro.obs.export import chrome_trace
from repro.ran.config import PoolConfig, cell_20mhz_fdd
from repro.scenario import (
    RECONFIG_SCHEMA,
    ReconfigEvent,
    SCENARIO_SCHEMA,
    Scenario,
    build_simulation,
    load_reconfig_script,
    reconfig_from_payload,
)
from repro.sim.engine import Engine
from repro.sim.pool import VranPool, WorkerState

from .test_pool import ManualPolicy, _FixedCost, _fast_os, make_dag, make_pool


def make_bus_pool(num_cores=4):
    """A pool wired to a live EventBus (make_pool has no bus)."""
    engine = Engine()
    config = PoolConfig(cells=(cell_20mhz_fdd(),), num_cores=num_cores,
                        deadline_us=2000.0)
    bus = EventBus()
    pool = VranPool(
        engine=engine, config=config, policy=ManualPolicy(),
        cost_model=_FixedCost(noise_sigma=0.0, isolated_tail_prob=0.0),
        os_model=_fast_os(), event_bus=bus,
    )
    return engine, pool, bus


class TestElasticWorkers:
    def test_add_worker_grows_capacity(self):
        engine, pool = make_pool(num_cores=2)
        core = pool.add_worker()
        assert core == 2
        assert pool.num_cores == 3
        added = next(w for w in pool.workers if w.core_id == core)
        # New cores join the best-effort side until the policy asks.
        assert added.state is WorkerState.YIELDED
        pool.request_cores(3)
        engine.run_until(100.0)
        assert pool.reserved_count == 3

    def test_add_worker_rejects_duplicate_core(self):
        engine, pool = make_pool(num_cores=2)
        with pytest.raises(ValueError):
            pool.add_worker(core_id=1)

    def test_remove_idle_worker_is_immediate(self):
        engine, pool = make_pool(num_cores=3)
        core = pool.remove_worker()
        assert pool.num_cores == 2
        assert all(w.core_id != core for w in pool.workers)

    def test_remove_busy_worker_drains_then_retires(self):
        engine, pool = make_pool(num_cores=1)
        dag = make_dag(total_bytes=3000)
        pool.add_worker()
        pool.request_cores(2)
        pool.release_slot([dag])
        # Let the workers pick up tasks, then ask for a shrink.
        while pool.running_count == 0 and engine.step():
            pass
        busy = next(w for w in pool.workers
                    if w.state is WorkerState.RUNNING)
        pool.remove_worker(core_id=busy.core_id)
        # Drain-then-retire: the worker keeps its task, the pool still
        # counts the core until the in-flight work completes.
        assert busy.retiring
        assert pool.num_cores == 2
        engine.run_until(50_000.0)
        assert dag.finished
        assert pool.num_cores == 1
        assert all(w.core_id != busy.core_id for w in pool.workers)

    def test_cannot_remove_last_worker(self):
        engine, pool = make_pool(num_cores=1)
        with pytest.raises(ValueError):
            pool.remove_worker()

    def test_remove_retiring_core_again_rejected(self):
        engine, pool = make_pool(num_cores=2)
        dag = make_dag(total_bytes=8000)
        pool.release_slot([dag])
        while pool.running_count < 1 and engine.step():
            pass
        busy = next(w for w in pool.workers
                    if w.state is WorkerState.RUNNING)
        pool.remove_worker(core_id=busy.core_id)
        with pytest.raises(ValueError):
            pool.remove_worker(core_id=busy.core_id)

    def test_core_time_uses_capacity_segments(self):
        engine, pool = make_pool(num_cores=2)
        engine.run_until(1000.0)
        pool.add_worker()
        pool.request_cores(3)
        engine.run_until(2000.0)
        pool.metrics.finalize(engine.now)
        # 2 cores for 1 ms, then 3 cores for 1 ms.
        assert pool.metrics.total_core_time_us == pytest.approx(
            2 * 1000.0 + 3 * 1000.0)

    def test_static_pool_core_time_matches_legacy_product(self):
        engine, pool = make_pool(num_cores=4)
        engine.run_until(2500.0)
        pool.metrics.finalize(engine.now)
        assert pool.metrics.total_core_time_us == pytest.approx(
            4 * 2500.0)


class TestElasticObservability:
    def test_worker_add_remove_events_recorded(self):
        engine, pool, bus = make_bus_pool(num_cores=2)
        engine.run_until(100.0)
        core = pool.add_worker()
        pool.remove_worker(core_id=core)
        kinds = [(e.kind, e.core) for e in bus.events
                 if isinstance(e, CoreEvent)
                 and e.kind.startswith("pool.worker")]
        assert ("pool.worker_add", core) in kinds
        assert ("pool.worker_remove", core) in kinds

    def test_grant_revoke_aggregate_records_signed_delta(self):
        engine, pool, bus = make_bus_pool(num_cores=4)
        pool.request_cores(1)   # revoke 3
        pool.request_cores(3)   # grant 2
        deltas = [(e.kind, e.core) for e in bus.events
                  if isinstance(e, CoreEvent)
                  and e.kind in ("pool.core_grant", "pool.core_revoke")]
        assert deltas[0] == ("pool.core_revoke", -3)
        # The grant lands once the woken workers are counted reserved
        # (the wake is synchronous bookkeeping, so immediately).
        assert deltas[1][0] == "pool.core_grant"
        assert deltas[1][1] > 0

    def test_chrome_trace_emits_pool_instants(self):
        engine, pool, bus = make_bus_pool(num_cores=2)
        engine.run_until(50.0)
        pool.add_worker()
        pool.request_cores(1)
        doc = chrome_trace(bus.events)
        instants = [e for e in doc["traceEvents"]
                    if e.get("ph") == "i"
                    and e["name"].startswith("pool.")]
        names = {e["name"] for e in instants}
        assert "pool.worker_add" in names
        assert "pool.core_revoke" in names
        for entry in instants:
            assert set(entry["args"]) == {"core", "reserved", "target"}


class TestReconfigEvent:
    def test_roundtrip(self):
        event = ReconfigEvent(at_slot=20, action="migrate", cell=2,
                              src_shard=0, dst_shard=1, transfer_slots=3,
                              warmup_slots=6, warmup_factor=2.0)
        (clone,) = reconfig_from_payload(
            json.loads(json.dumps([event.to_dict()])))
        assert clone == event

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError):
            ReconfigEvent(at_slot=0, action="teleport_cell")

    def test_migrate_needs_distinct_shards(self):
        with pytest.raises(ValueError):
            ReconfigEvent(at_slot=1, action="migrate", cell=0,
                          src_shard=1, dst_shard=1)

    def test_load_reconfig_script(self, tmp_path):
        path = tmp_path / "timeline.json"
        path.write_text(json.dumps({
            "_comment": "ignored",
            "events": [{"action": "add_worker", "at_slot": 4,
                        "count": 2}],
        }))
        (event,) = load_reconfig_script(path)
        assert event.action == "add_worker"
        assert event.at_slot == 4
        assert event.count == 2

    def test_scenario_empty_timeline_keeps_legacy_schema(self):
        payload = Scenario(pool={"name": "20mhz"}).to_dict()
        assert payload["schema"] == SCENARIO_SCHEMA
        assert "reconfig" not in payload

    def test_scenario_timeline_roundtrip(self):
        scenario = Scenario(
            pool={"name": "20mhz"}, seed=3,
            reconfig=({"action": "add_worker", "at_slot": 5},))
        payload = json.loads(json.dumps(scenario.to_dict()))
        assert payload["schema"] == RECONFIG_SCHEMA
        clone = Scenario.from_dict(payload)
        assert clone.reconfig == scenario.reconfig
        assert clone == scenario

    def test_fleet_empty_timeline_keeps_legacy_schema(self):
        payload = FleetScenario(cells=4, shards=2, num_slots=10).to_dict()
        assert "reconfig" not in payload
        clone = FleetScenario.from_dict(json.loads(json.dumps(payload)))
        assert clone.reconfig == ()

    def test_fleet_timeline_roundtrip(self):
        fleet = FleetScenario(
            cells=6, shards=2, num_slots=30, seed=4,
            reconfig=({"action": "migrate", "cell": 1, "src_shard": 0,
                       "dst_shard": 1, "at_slot": 10},))
        clone = FleetScenario.from_dict(
            json.loads(json.dumps(fleet.to_dict())))
        assert clone == fleet
        assert clone.migrations() == fleet.migrations()

    def test_fleet_validates_migrate_endpoints(self):
        with pytest.raises(ValueError):
            FleetScenario(cells=4, shards=2, num_slots=10, reconfig=(
                {"action": "migrate", "cell": 9, "src_shard": 0,
                 "dst_shard": 1, "at_slot": 5},))
        with pytest.raises(ValueError):
            FleetScenario(cells=4, shards=2, num_slots=10, reconfig=(
                {"action": "migrate", "cell": 0, "src_shard": 0,
                 "dst_shard": 5, "at_slot": 5},))
        with pytest.raises(ValueError):
            FleetScenario(cells=4, shards=2, num_slots=10, reconfig=(
                {"action": "migrate", "cell": 0, "src_shard": 0,
                 "dst_shard": 1, "at_slot": 99},))


def _scenario(reconfig=(), seed=11):
    return Scenario(pool={"name": "20mhz"}, policy="concordia-noml",
                    load_fraction=0.5, seed=seed, reconfig=reconfig)


class TestSimulationTimeline:
    def test_worker_timeline_changes_capacity(self):
        simulation = build_simulation(_scenario((
            {"action": "add_worker", "at_slot": 10, "count": 2},
            {"action": "remove_worker", "at_slot": 30},
        )))
        result = simulation.run(40)
        assert result.num_slots == 40
        assert simulation.pool.num_cores == 8 + 2 - 1

    def test_migrate_rejected_at_simulation_level(self):
        simulation = build_simulation(_scenario((
            {"action": "migrate", "cell": 0, "src_shard": 0,
             "dst_shard": 1, "at_slot": 5},)))
        with pytest.raises(ValueError, match="fleet-planner verb"):
            simulation.run(20)

    def test_timeline_slot_out_of_range_rejected(self):
        simulation = build_simulation(_scenario((
            {"action": "add_worker", "at_slot": 50},)))
        with pytest.raises(ValueError, match="outside"):
            simulation.run(20)

    def test_detach_attach_same_slot_is_identity(self):
        # Detaching the *last* cell and re-attaching it at the same
        # boundary preserves within-slot build order, so every sampled
        # and accumulated number must be byte-identical to a
        # timeline-free run.  The embedded scenario payload is excluded
        # from the comparison — carrying a timeline legitimately bumps
        # its schema.
        def behavior_digest(result):
            payload = canonical_result_payload(result.to_dict())
            payload.pop("scenario", None)
            return hashlib.sha256(
                canonical_json(payload).encode()).hexdigest()

        baseline = build_simulation(_scenario()).run(40)
        cycled = build_simulation(_scenario((
            {"action": "detach_cell", "cell": "cell20-6", "at_slot": 20},
            {"action": "attach_cell", "cell": "cell20-6", "at_slot": 20,
             "transfer_slots": 0, "warmup_slots": 0},
        ))).run(40)
        assert behavior_digest(cycled) == behavior_digest(baseline)

    def test_detach_outage_reattach_later(self):
        simulation = build_simulation(_scenario((
            {"action": "detach_cell", "cell": "cell20-3", "at_slot": 10},
            {"action": "attach_cell", "cell": "cell20-3", "at_slot": 25,
             "transfer_slots": 0, "warmup_slots": 0},
        )))
        result = simulation.run(40)
        assert result.num_slots == 40
        assert not simulation.detached_cells
        assert len(simulation._cell_list) == 7

    def test_attach_without_snapshot_rejected(self):
        simulation = build_simulation(_scenario((
            {"action": "attach_cell", "cell": "cell20-2", "at_slot": 5},)))
        with pytest.raises(ValueError, match="no detached snapshot"):
            simulation.run(20)

    def test_detach_unknown_cell_rejected(self):
        simulation = build_simulation(_scenario())
        simulation.start(10)
        with pytest.raises(ValueError, match="no attached cell"):
            simulation.detach_cell("nonesuch")

    def test_attach_rejects_foreign_seed(self):
        donor = build_simulation(_scenario(seed=11))
        donor.start(10)
        snapshot = donor.detach_cell("cell20-6")
        other = build_simulation(_scenario(seed=12))
        other.start(10)
        with pytest.raises(ValueError, match="seed"):
            other.attach_cell(snapshot)

    def test_attach_rejects_duplicate_cell(self):
        donor = build_simulation(_scenario())
        donor.start(10)
        snapshot = donor.detach_cell("cell20-6")
        donor.attach_cell(snapshot)
        with pytest.raises(ValueError, match="already attached"):
            donor.attach_cell(snapshot)

    def test_segmented_run_matches_monolithic(self):
        baseline = build_simulation(_scenario()).run(40)
        segmented = build_simulation(_scenario())
        segmented.start(40)
        segmented.add_window_barrier(13)
        segmented.add_window_barrier(27)
        segmented.run_to_barrier(13)
        segmented.run_to_barrier(27)
        segmented.run_to_end()
        result = segmented.finish()
        assert result_digest(result) == result_digest(baseline)


MIGRATION = ({"action": "migrate", "cell": 2, "src_shard": 0,
              "dst_shard": 1, "at_slot": 15, "transfer_slots": 2,
              "warmup_slots": 6, "warmup_factor": 1.5},)


class TestFleetMigration:
    def _reports(self, slots=40, cells=8):
        baseline = Planner(FleetScenario(
            cells=cells, shards=2, num_slots=slots, seed=7)).run()
        migrated = Planner(FleetScenario(
            cells=cells, shards=2, num_slots=slots, seed=7,
            reconfig=MIGRATION)).run()
        return baseline, migrated

    def test_migrated_digests_match_baseline(self):
        baseline, migrated = self._reports()
        assert migrated.cell_digests == baseline.cell_digests
        assert migrated.fleet_digest == baseline.fleet_digest

    def test_report_carries_reconfig_rows(self):
        _, migrated = self._reports()
        (row,) = migrated.reconfig
        assert row["event"]["action"] == "migrate"
        assert row["cell"] == "cell20-c0002"
        for key in ("util_before", "util_after", "miss_at_barrier",
                    "miss_after_barrier"):
            assert set(row[key]) == {"src", "dst"}
        # Utilization rebalances: the source sheds load, the
        # destination picks it up.
        assert row["util_after"]["src"] < row["util_before"]["src"]
        assert row["util_after"]["dst"] > row["util_before"]["dst"]
        # The transient is bounded, not a meltdown: the held slots can
        # miss, later ones must not pile up unboundedly.
        assert 0 <= row["miss_after_barrier"]["dst"] <= 2 * \
            MIGRATION[0]["transfer_slots"] + MIGRATION[0]["warmup_slots"]

    def test_reconfig_in_report_payload_and_render(self):
        _, migrated = self._reports()
        payload = migrated.to_dict()
        assert payload["reconfig"] == migrated.reconfig
        text = migrated.render()
        assert "migrate cell20-c0002 shard 0->1" in text

    def test_lockstep_ignores_jobs(self):
        fleet = FleetScenario(cells=6, shards=2, num_slots=30, seed=7,
                              reconfig=(
                                  {"action": "migrate", "cell": 1,
                                   "src_shard": 0, "dst_shard": 1,
                                   "at_slot": 10},))
        report = Planner(fleet, jobs=4).run()
        assert len(report.reconfig) == 1
        serial = Planner(FleetScenario(
            cells=6, shards=2, num_slots=30, seed=7)).run()
        assert report.cell_digests == serial.cell_digests


class TestReconfigCli:
    def test_fleet_reconfig_json(self, tmp_path, capsys):
        script = tmp_path / "spike.json"
        script.write_text(json.dumps({"events": list(MIGRATION)}))
        code = main(["fleet", "--cells", "6", "--shards", "2",
                     "--slots", "30", "--seed", "7",
                     "--reconfig", str(script), "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        (row,) = payload["reconfig"]
        assert row["cell"] == "cell20-c0002"
        assert "util_after" in row

    def test_fleet_reconfig_verify_serial(self, capsys):
        code = main(["fleet", "--cells", "6", "--shards", "2",
                     "--slots", "30", "--seed", "7",
                     "--reconfig", "examples/reconfig_spike.json",
                     "--verify-serial"])
        assert code == 0
        assert "verify-serial OK" in capsys.readouterr().out

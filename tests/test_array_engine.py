"""A/B byte-identity tests for the array-timeline engine mode.

``engine_mode="array"`` replays certified slots synchronously inside
the slot-boundary callback (``repro.sim.arraykernel``), bypassing the
event heap while invoking the real pool/policy/metrics/OS-model
methods in exact (time, seq) order.  It is only admissible because the
result payload is byte-identical to the event engine: the canonical
digest must match on every workload, whether a run certifies every
slot (fig03-calibrated low load), none (the load-0.5 goldens), or a
per-slot mixture — and the kernel must cleanly self-disable under
every mode whose interior the replay cannot certify.
"""

import pytest

from tests.test_determinism import (
    FLEET_CELLS,
    FLEET_SLOTS,
    GOLDEN_DIGESTS,
    GOLDEN_FLEET_DIGEST,
    SEED,
    SLOTS,
)

from repro.exec.digest import result_digest
from repro.fleet import FleetScenario, Planner, combined_digest
from repro.ran.config import PoolConfig, cell_20mhz_fdd
from repro.scenario import Scenario, build_simulation


def _scenario(**overrides) -> Scenario:
    base = dict(
        pool={"name": "20mhz"},
        policy="concordia-noml",
        workload="none",
        load_fraction=0.5,
        seed=SEED,
        engine_mode="array",
    )
    base.update(overrides)
    return Scenario(**base)


def _fig03_scenario(**overrides) -> Scenario:
    pool = PoolConfig(cells=(cell_20mhz_fdd("c0"),), num_cores=4,
                      deadline_us=2000.0)
    return _scenario(pool=pool, load_fraction=0.02, seed=7, **overrides)


def _ab(scenario_kwargs: dict, slots: int):
    """(array digest, event digest, array simulation)."""
    array_sim = build_simulation(_scenario(**scenario_kwargs))
    on = result_digest(array_sim.run(slots))
    event_sim = build_simulation(_scenario(engine_mode="event",
                                           **scenario_kwargs))
    off = result_digest(event_sim.run(slots))
    assert event_sim.kernel_stats["array_slots"] == 0
    return on, off, array_sim


class TestGoldenWorkloadsByteIdentity:
    """Array mode must reproduce the four frozen golden digests."""

    @pytest.mark.parametrize("policy,workload",
                             list(GOLDEN_DIGESTS.keys()))
    def test_array_mode_matches_golden(self, policy, workload):
        scenario = _scenario(policy=policy, workload=workload)
        result = build_simulation(scenario).run(SLOTS)
        assert result_digest(result) == GOLDEN_DIGESTS[(policy, workload)], (
            f"array-mode digest drifted from the golden for "
            f"({policy}, {workload})")

    def test_engine_mode_not_digest_relevant(self):
        # The digest canonicalization strips engine_mode: the mode is
        # an execution strategy, and the digest is the regression test
        # of its byte-identity contract.
        on, off, _ = _ab({}, slots=40)
        assert on == off


class TestCertifiedReplayByteIdentity:
    def test_fig03_low_load_fully_certified(self):
        # One 20 MHz cell at 2 % load: every slot passes certification
        # (quiescent boundary, makespan fits), so this exercises the
        # pure replay path including the boundary-coincident tick
        # parking (500 us slots / 20 us ticks divide evenly).
        array_sim = build_simulation(_fig03_scenario())
        on = result_digest(array_sim.run(240))
        event_sim = build_simulation(_fig03_scenario(engine_mode="event"))
        off = result_digest(event_sim.run(240))
        assert on == off
        stats = array_sim.kernel_stats
        assert stats["array_slots"] / stats["slots"] >= 0.5

    def test_mixed_certified_and_fallback_slots(self):
        # Seven cells at 10 % load: some slots certify, others carry
        # DAGs across the boundary or blow the makespan budget and
        # fall back mid-run — the hard case for the parked-tick and
        # sequence-parity bookkeeping.
        on, off, sim = _ab(dict(load_fraction=0.1, seed=7), slots=120)
        assert on == off
        stats = sim.kernel_stats
        assert 0 < stats["array_slots"] < stats["slots"], (
            "expected a per-slot mixture of replay and fallback, got "
            f"{stats}")

    def test_flexran_policy_never_certifies_but_matches(self):
        on, off, sim = _ab(dict(policy="flexran"), slots=40)
        assert on == off
        assert sim.kernel_stats["array_slots"] == 0


class TestFleetByteIdentity:
    def test_array_fleet_matches_golden(self):
        # Fleet shards drive slots through run_to_barrier, whose
        # horizon ends at each boundary, so certification's run_end
        # gate falls back every slot — and the digests must still be
        # exactly the event-mode goldens.
        fleet = FleetScenario(cells=FLEET_CELLS, shards=2,
                              num_slots=FLEET_SLOTS, seed=SEED,
                              engine_mode="array")
        report = Planner(fleet, jobs=1).run()
        assert report.ok, report.failures
        assert len(report.cell_digests) == FLEET_CELLS
        assert combined_digest(report.cell_digests) == GOLDEN_FLEET_DIGEST


class TestKernelSelfDisable:
    """Modes the replay cannot certify must fall back cleanly."""

    @pytest.mark.parametrize("overrides", [
        dict(allocation="mac"),
        dict(traffic="profiling"),
        dict(workload="redis"),
        dict(reconfig=({"action": "add_worker", "at_slot": 5},)),
    ])
    def test_static_gate_disables_kernel(self, overrides):
        simulation = build_simulation(_fig03_scenario(**overrides))
        simulation.run(20)
        assert simulation.kernel_stats["array_slots"] == 0
        assert simulation.kernel_stats["slots"] == 20

    def test_task_observer_disables_certification(self):
        simulation = build_simulation(_fig03_scenario())
        simulation.pool.task_observer = lambda task: None
        simulation.run(20)
        assert simulation.kernel_stats["array_slots"] == 0

    def test_task_recording_disables_certification(self):
        simulation = build_simulation(_fig03_scenario())
        simulation.metrics.record_tasks = True
        simulation.run(20)
        assert simulation.kernel_stats["array_slots"] == 0


class TestPredictedPathBatchCutoff:
    def test_scalar_and_vector_paths_byte_identical(self, monkeypatch):
        # on_slot_start's WCET/critical-path fill picks a scalar or
        # numpy implementation by slot size; forcing each branch for a
        # whole run must not move a single float.
        import repro.ran.dag as dag_mod

        digests = set()
        for cutoff in (0, 10**9):
            monkeypatch.setattr(dag_mod, "_BATCH_PATH_CUTOFF", cutoff)
            simulation = build_simulation(
                _scenario(engine_mode="event", load_fraction=0.3))
            digests.add(result_digest(simulation.run(40)))
        assert len(digests) == 1


class TestFastRngBlockSize:
    """The stream is a deterministic function of (seed, block).

    The default block must reproduce the historical layout exactly —
    uniform presample first, normal presample second, raw-generator
    consumers continuing after both — because every golden digest
    depends on it.  Non-default blocks are deterministic too, but are
    deliberately distinct streams (see the fastrng module docstring).
    """

    def test_default_block_pins_historical_layout(self):
        import numpy as np

        from repro.sim.fastrng import DEFAULT_BLOCK, FastRng

        rng = FastRng(np.random.default_rng(42))
        raw = np.random.default_rng(42)
        expected_uniform = raw.random(DEFAULT_BLOCK)
        expected_normal = raw.standard_normal(DEFAULT_BLOCK)
        assert [rng.random() for _ in range(64)] == \
            expected_uniform[:64].tolist()
        assert [rng.standard_normal() for _ in range(64)] == \
            expected_normal[:64].tolist()
        # Raw-generator consumers (the wakeup model) resume exactly
        # after the two presample blocks.
        assert rng.generator.random() == raw.random()

    def test_explicit_default_block_identical_to_implicit(self):
        import numpy as np

        from repro.sim.fastrng import DEFAULT_BLOCK, FastRng

        implicit = FastRng(np.random.default_rng(7))
        explicit = FastRng(np.random.default_rng(7), block=DEFAULT_BLOCK)
        assert [implicit.random() for _ in range(32)] == \
            [explicit.random() for _ in range(32)]
        assert [implicit.standard_normal() for _ in range(32)] == \
            [explicit.standard_normal() for _ in range(32)]

    @pytest.mark.parametrize("block", [1, 7, 64])
    def test_each_block_size_is_deterministic(self, block):
        import numpy as np

        from repro.sim.fastrng import FastRng

        a = FastRng(np.random.default_rng(9), block=block)
        b = FastRng(np.random.default_rng(9), block=block)
        draws_a = [a.random() for _ in range(3 * block)] + \
            [a.standard_normal() for _ in range(3 * block)]
        draws_b = [b.random() for _ in range(3 * block)] + \
            [b.standard_normal() for _ in range(3 * block)]
        assert draws_a == draws_b

    def test_block_must_be_positive(self):
        import numpy as np

        from repro.sim.fastrng import FastRng

        with pytest.raises(ValueError):
            FastRng(np.random.default_rng(0), block=0)

"""A/B byte-identity tests for the array-timeline engine mode.

``engine_mode="array"`` replays certified slots synchronously inside
the slot-boundary callback (``repro.sim.arraykernel``), bypassing the
event heap while invoking the real pool/policy/metrics/OS-model
methods in exact (time, seq) order.  It is only admissible because the
result payload is byte-identical to the event engine: the canonical
digest must match on every workload, whether a run certifies every
slot (fig03-calibrated low load), none (the load-0.5 goldens), or a
per-slot mixture — and the kernel must cleanly self-disable under
every mode whose interior the replay cannot certify.
"""

import numpy as np
import pytest

from tests.test_determinism import (
    FLEET_CELLS,
    FLEET_SLOTS,
    GOLDEN_DIGESTS,
    GOLDEN_FLEET_DIGEST,
    SEED,
    SLOTS,
)

from repro.exec.digest import result_digest
from repro.fleet import FleetScenario, Planner, combined_digest
from repro.fleet.report import histogram_percentile, latency_histogram
from repro.ran.config import PoolConfig, cell_20mhz_fdd
from repro.ran.dag import (
    DagBuilder,
    dag_kind_key,
    plan_task_rows,
    topology_for_kind,
    topology_from_dag,
)
from repro.ran.tasks import CostModel, TaskType, prbs_for_bandwidth
from repro.ran.ue import SlotLoad, UeAllocation, mcs_for_snr
from repro.scenario import Scenario, build_simulation
from repro.sim.metrics import Metrics


def _scenario(**overrides) -> Scenario:
    base = dict(
        pool={"name": "20mhz"},
        policy="concordia-noml",
        workload="none",
        load_fraction=0.5,
        seed=SEED,
        engine_mode="array",
    )
    base.update(overrides)
    return Scenario(**base)


def _fig03_scenario(**overrides) -> Scenario:
    pool = PoolConfig(cells=(cell_20mhz_fdd("c0"),), num_cores=4,
                      deadline_us=2000.0)
    return _scenario(pool=pool, load_fraction=0.02, seed=7, **overrides)


def _ab(scenario_kwargs: dict, slots: int):
    """(array digest, event digest, array simulation)."""
    array_sim = build_simulation(_scenario(**scenario_kwargs))
    on = result_digest(array_sim.run(slots))
    event_sim = build_simulation(_scenario(engine_mode="event",
                                           **scenario_kwargs))
    off = result_digest(event_sim.run(slots))
    assert event_sim.kernel_stats["array_slots"] == 0
    return on, off, array_sim


class TestGoldenWorkloadsByteIdentity:
    """Array mode must reproduce the four frozen golden digests."""

    @pytest.mark.parametrize("policy,workload",
                             list(GOLDEN_DIGESTS.keys()))
    def test_array_mode_matches_golden(self, policy, workload):
        scenario = _scenario(policy=policy, workload=workload)
        result = build_simulation(scenario).run(SLOTS)
        assert result_digest(result) == GOLDEN_DIGESTS[(policy, workload)], (
            f"array-mode digest drifted from the golden for "
            f"({policy}, {workload})")

    def test_engine_mode_not_digest_relevant(self):
        # The digest canonicalization strips engine_mode: the mode is
        # an execution strategy, and the digest is the regression test
        # of its byte-identity contract.
        on, off, _ = _ab({}, slots=40)
        assert on == off


class TestCertifiedReplayByteIdentity:
    def test_fig03_low_load_fully_certified(self):
        # One 20 MHz cell at 2 % load: every slot passes certification
        # (quiescent boundary, makespan fits), so this exercises the
        # pure replay path including the boundary-coincident tick
        # parking (500 us slots / 20 us ticks divide evenly).
        array_sim = build_simulation(_fig03_scenario())
        on = result_digest(array_sim.run(240))
        event_sim = build_simulation(_fig03_scenario(engine_mode="event"))
        off = result_digest(event_sim.run(240))
        assert on == off
        stats = array_sim.kernel_stats
        assert stats["array_slots"] / stats["slots"] >= 0.5

    def test_mixed_certified_and_fallback_slots(self):
        # Seven cells at 10 % load: some slots certify, others carry
        # DAGs across the boundary or blow the makespan budget and
        # fall back mid-run — the hard case for the parked-tick and
        # sequence-parity bookkeeping.
        on, off, sim = _ab(dict(load_fraction=0.1, seed=7), slots=120)
        assert on == off
        stats = sim.kernel_stats
        assert 0 < stats["array_slots"] < stats["slots"], (
            "expected a per-slot mixture of replay and fallback, got "
            f"{stats}")

    def test_flexran_policy_never_certifies_but_matches(self):
        on, off, sim = _ab(dict(policy="flexran"), slots=40)
        assert on == off
        assert sim.kernel_stats["array_slots"] == 0


class TestVectorKernelInterleave:
    """Closed-form vector commits and heap replays share one run.

    The window-vectorized kernel (ISSUE 10) commits most certified
    slots without touching the event heap; slots whose OS wakeup draw
    lands in the overdue tail (or whose DAGs were materialized at fill
    time with inflation pending) replay through the heap instead.  The
    two paths interleave slot by slot and the digest must not move.
    """

    def test_fig03_vector_and_heap_slots_interleave(self):
        array_sim = build_simulation(_fig03_scenario())
        on = result_digest(array_sim.run(240))
        event_sim = build_simulation(_fig03_scenario(engine_mode="event"))
        off = result_digest(event_sim.run(240))
        assert on == off
        stats = array_sim.kernel_stats
        # Every slot is array-replayed, most in closed form, and the
        # remainder (overdue-wakeup tail draws, ~5 % of slots) through
        # the heap fallback — both kinds must occur in this run for
        # the test to mean anything.
        assert stats["array_slots"] == stats["slots"]
        assert 0 < stats["vector_slots"] < stats["array_slots"]
        assert event_sim.kernel_stats["vector_slots"] == 0

    def test_mixed_load_vector_slots_subset_of_array_slots(self):
        on, off, sim = _ab(dict(load_fraction=0.1, seed=7), slots=120)
        assert on == off
        stats = sim.kernel_stats
        assert 0 < stats["vector_slots"] <= stats["array_slots"] \
            < stats["slots"]

    def test_window_barrier_splits_certified_run(self):
        # A barrier splits the window fill without disabling the
        # kernel: the certified run is planned across two shorter
        # windows (one extra fill pass) and stays byte-identical.
        base = build_simulation(_fig03_scenario())
        reference = result_digest(base.run(240))
        split = build_simulation(_fig03_scenario())
        split.add_window_barrier(37)
        assert result_digest(split.run(240)) == reference
        stats = split.kernel_stats
        assert stats["windows"] == base.kernel_stats["windows"] + 1
        assert stats["array_slots"] == stats["slots"]
        assert stats["vector_slots"] > 0


def _alloc(ue_id: int, tbs_bytes: int, snr_db: float,
           layers: int) -> UeAllocation:
    return UeAllocation(ue_id=ue_id, tbs_bytes=tbs_bytes,
                        mcs=mcs_for_snr(snr_db), layers=layers,
                        snr_db=snr_db)


def _load_catalog() -> list:
    """One SlotLoad per structurally distinct DAG kind.

    Covers idle and busy slots in both directions, multi-allocation
    slots with multi-group LDPC splits, and a zero-codeblock
    allocation (a HARQ artifact: scheduled UE, empty transport block),
    whose decode/encode group count is zero.
    """
    multi = (
        _alloc(0, 12000, 18.0, 2),  # 12 codeblocks -> 3 decode groups
        _alloc(1, 800, 6.0, 1),     # 1 codeblock -> 1 group
        _alloc(2, 0, 12.0, 1),      # 0 codeblocks -> 0 groups
    )
    single = (_alloc(3, 40000, 22.0, 4),)  # 38 codeblocks -> 10 groups
    return [
        SlotLoad("cat", 3, True, ()),
        SlotLoad("cat", 3, False, ()),
        SlotLoad("cat", 5, True, multi),
        SlotLoad("cat", 5, False, multi),
        SlotLoad("cat", 9, True, single),
        SlotLoad("cat", 9, False, single),
    ]


class TestTopologyTemplatesAndPlanPipeline:
    """The plan-direct fill must mirror the builder bit for bit.

    The window fill certifies slots from ``plan_task_rows`` +
    ``base_costs_batch`` + ``plan_stoch_window`` without constructing
    task objects; a later fallback build of the same jobs must then
    reproduce exactly the values the plan was computed from.  These
    tests pin that equivalence per DAG kind, against freshly built
    DAGs.
    """

    CELL_INDEX = 4

    def _builder(self) -> DagBuilder:
        return DagBuilder(
            CostModel(rng=np.random.default_rng(0)),
            rng=np.random.default_rng(1),
            seed_seq=np.random.SeedSequence(entropy=123, spawn_key=(6,)))

    @pytest.mark.parametrize("load", _load_catalog(),
                             ids=lambda load: repr(dag_kind_key(load)))
    def test_topology_template_matches_fresh_dag(self, load):
        builder = self._builder()
        cell = cell_20mhz_fdd("cat")
        dag = builder.build(load, cell, 0.0, 2000.0,
                            cell_index=self.CELL_INDEX)
        assert dag.kind_key == dag_kind_key(load)
        template = topology_for_kind(dag)
        fresh = builder.build(load, cell, 0.0, 2000.0,
                              cell_index=self.CELL_INDEX)
        derived = topology_from_dag(fresh)
        assert derived == template
        # The level-synchronous schedule and the edge matrix describe
        # the same wiring.
        matrix = template.dependency_matrix()
        assert int(matrix.sum()) == sum(
            len(s) for s in template.successors)
        seen: set = set()
        for level in template.levels:
            for i in level:
                preds = np.nonzero(matrix[:, i])[0]
                assert all(p in seen for p in preds), (
                    "level schedule ordered a task before a predecessor")
            seen.update(level)
        assert len(seen) == template.num_tasks == len(fresh.tasks)

    @pytest.mark.parametrize("load", _load_catalog(),
                             ids=lambda load: repr(dag_kind_key(load)))
    def test_plan_rows_reproduce_built_task_values(self, load):
        builder = self._builder()
        cell = cell_20mhz_fdd("cat")
        dag = builder.build(load, cell, 0.0, 2000.0,
                            cell_index=self.CELL_INDEX)
        rows = plan_task_rows(load, cell)
        assert [row[0] for row in rows] == \
            [task.task_type for task in dag.tasks]
        # Base costs: the same batch call the window fill issues, over
        # the rows alone, must equal every built task's base_cost_us.
        (types, cbs, tbytes, margins, rates, shares,
         layers_col) = zip(*rows)
        n = len(rows)
        prbs = prbs_for_bandwidth(cell.bandwidth_mhz, cell.numerology)
        costs = builder.cost_model.base_costs_batch(
            np.array([t.type_code for t in types]),
            prbs=np.full(n, float(prbs)),
            antennas=np.full(n, float(cell.num_antennas)),
            slot_bytes=np.full(n, float(load.total_bytes)),
            task_codeblocks=np.array(cbs, dtype=np.float64),
            task_bytes=np.array(tbytes, dtype=np.float64),
            snr_margin_db=np.array(margins, dtype=np.float64),
            code_rate=np.array(rates, dtype=np.float64),
            prb_share=np.array(shares, dtype=np.float64),
            layers=np.array(layers_col, dtype=np.float64),
        ).tolist()
        assert costs == [task.base_cost_us for task in dag.tasks]
        # Stochastic multipliers: replaying the DAG's counter-keyed
        # stream through the plan path yields the built values.
        decode_indices = [i for i, row in enumerate(rows)
                          if row[0] is TaskType.LDPC_DECODE]
        mults = builder.plan_stoch_mults(
            n, decode_indices, self.CELL_INDEX, load.slot_index,
            load.uplink)
        assert mults == [task.stoch_mult for task in dag.tasks]

    def test_window_batched_stoch_equals_per_dag_calls(self):
        builder = self._builder()
        cell = cell_20mhz_fdd("cat")
        reqs = []
        expected = []
        for load in _load_catalog():
            rows = plan_task_rows(load, cell)
            decode_indices = [i for i, row in enumerate(rows)
                              if row[0] is TaskType.LDPC_DECODE]
            req = (len(rows), decode_indices, self.CELL_INDEX,
                   load.slot_index, load.uplink)
            reqs.append(req)
            expected.extend(builder.plan_stoch_mults(*req))
        assert builder.plan_stoch_window(reqs) == expected


class TestBatchLatencyIngest:
    """Batched slot-latency ingest is the scalar path, verbatim.

    The vector kernel flushes each slot's completions through
    ``Metrics.record_slot_batch``; the fix from the fleet-percentile
    work (overflow interpolation past the histogram range) must keep
    holding when the values arrive batched rather than one call per
    slot.
    """

    def test_batch_ingest_matches_scalar_ingest(self):
        values = [100.0, 250.5, 1999.9, 2300.0, 9000.0, 0.0, 7750.25]
        deadlines = [2000.0] * len(values)
        scalar = Metrics(4)
        for value, deadline in zip(values, deadlines):
            scalar.on_slot_complete(value, deadline)
        batched = Metrics(4)
        batched.record_slot_batch(tuple(values), tuple(deadlines))
        assert batched.slot_latencies == scalar.slot_latencies
        assert batched.slot_count == scalar.slot_count
        assert batched.slot_deadlines_missed == \
            scalar.slot_deadlines_missed
        assert latency_histogram(batched.slot_latencies, 2000.0) == \
            latency_histogram(scalar.slot_latencies, 2000.0)

    def test_overflow_interpolation_holds_for_batched_inserts(self):
        deadline = 2000.0
        range_top = 4.0 * deadline
        in_range = [100.0] * 994
        overflow = [9000.0, 9500.0, 10000.0, 11000.0, 12000.0, 20000.0]
        metrics = Metrics(4)
        metrics.record_slot_batch(in_range + overflow,
                                  [deadline] * 1000)
        hist = latency_histogram(metrics.slot_latencies, deadline)
        assert hist["overflow"] == len(overflow)
        assert hist["max_us"] == 20000.0
        p999 = histogram_percentile(hist, 0.999)
        p9999 = histogram_percentile(hist, 0.9999)
        # Tail percentiles interpolate *through* the overflow region —
        # strictly between the range top and the recorded maximum, and
        # monotone in the quantile — instead of collapsing onto max_us.
        assert range_top < p999 < p9999 <= 20000.0
        needed = 0.999 * hist["count"]
        inside = min(float(hist["overflow"]),
                     needed - (hist["count"] - hist["overflow"]))
        assert p999 == range_top + (20000.0 - range_top) * (
            inside / hist["overflow"])


class TestFleetByteIdentity:
    def test_array_fleet_matches_golden(self):
        # Fleet shards drive slots through run_to_barrier, whose
        # horizon ends at each boundary, so certification's run_end
        # gate falls back every slot — and the digests must still be
        # exactly the event-mode goldens.
        fleet = FleetScenario(cells=FLEET_CELLS, shards=2,
                              num_slots=FLEET_SLOTS, seed=SEED,
                              engine_mode="array")
        report = Planner(fleet, jobs=1).run()
        assert report.ok, report.failures
        assert len(report.cell_digests) == FLEET_CELLS
        assert combined_digest(report.cell_digests) == GOLDEN_FLEET_DIGEST


class TestKernelSelfDisable:
    """Modes the replay cannot certify must fall back cleanly."""

    @pytest.mark.parametrize("overrides", [
        dict(allocation="mac"),
        dict(traffic="profiling"),
        dict(workload="redis"),
        dict(reconfig=({"action": "add_worker", "at_slot": 5},)),
    ])
    def test_static_gate_disables_kernel(self, overrides):
        simulation = build_simulation(_fig03_scenario(**overrides))
        simulation.run(20)
        assert simulation.kernel_stats["array_slots"] == 0
        assert simulation.kernel_stats["slots"] == 20

    def test_task_observer_disables_certification(self):
        simulation = build_simulation(_fig03_scenario())
        simulation.pool.task_observer = lambda task: None
        simulation.run(20)
        assert simulation.kernel_stats["array_slots"] == 0

    def test_task_recording_disables_certification(self):
        simulation = build_simulation(_fig03_scenario())
        simulation.metrics.record_tasks = True
        simulation.run(20)
        assert simulation.kernel_stats["array_slots"] == 0


class TestPredictedPathBatchCutoff:
    def test_scalar_and_vector_paths_byte_identical(self, monkeypatch):
        # on_slot_start's WCET/critical-path fill picks a scalar or
        # numpy implementation by slot size; forcing each branch for a
        # whole run must not move a single float.
        import repro.ran.dag as dag_mod

        digests = set()
        for cutoff in (0, 10**9):
            monkeypatch.setattr(dag_mod, "_BATCH_PATH_CUTOFF", cutoff)
            simulation = build_simulation(
                _scenario(engine_mode="event", load_fraction=0.3))
            digests.add(result_digest(simulation.run(40)))
        assert len(digests) == 1


class TestFastRngBlockSize:
    """The stream is a deterministic function of (seed, block).

    The default block must reproduce the historical layout exactly —
    uniform presample first, normal presample second, raw-generator
    consumers continuing after both — because every golden digest
    depends on it.  Non-default blocks are deterministic too, but are
    deliberately distinct streams (see the fastrng module docstring).
    """

    def test_default_block_pins_historical_layout(self):
        import numpy as np

        from repro.sim.fastrng import DEFAULT_BLOCK, FastRng

        rng = FastRng(np.random.default_rng(42))
        raw = np.random.default_rng(42)
        expected_uniform = raw.random(DEFAULT_BLOCK)
        expected_normal = raw.standard_normal(DEFAULT_BLOCK)
        assert [rng.random() for _ in range(64)] == \
            expected_uniform[:64].tolist()
        assert [rng.standard_normal() for _ in range(64)] == \
            expected_normal[:64].tolist()
        # Raw-generator consumers (the wakeup model) resume exactly
        # after the two presample blocks.
        assert rng.generator.random() == raw.random()

    def test_explicit_default_block_identical_to_implicit(self):
        import numpy as np

        from repro.sim.fastrng import DEFAULT_BLOCK, FastRng

        implicit = FastRng(np.random.default_rng(7))
        explicit = FastRng(np.random.default_rng(7), block=DEFAULT_BLOCK)
        assert [implicit.random() for _ in range(32)] == \
            [explicit.random() for _ in range(32)]
        assert [implicit.standard_normal() for _ in range(32)] == \
            [explicit.standard_normal() for _ in range(32)]

    @pytest.mark.parametrize("block", [1, 7, 64])
    def test_each_block_size_is_deterministic(self, block):
        import numpy as np

        from repro.sim.fastrng import FastRng

        a = FastRng(np.random.default_rng(9), block=block)
        b = FastRng(np.random.default_rng(9), block=block)
        draws_a = [a.random() for _ in range(3 * block)] + \
            [a.standard_normal() for _ in range(3 * block)]
        draws_b = [b.random() for _ in range(3 * block)] + \
            [b.standard_normal() for _ in range(3 * block)]
        assert draws_a == draws_b

    def test_block_must_be_positive(self):
        import numpy as np

        from repro.sim.fastrng import FastRng

        with pytest.raises(ValueError):
            FastRng(np.random.default_rng(0), block=0)
